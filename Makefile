.PHONY: install test test-fast bench bench-figures profile experiments export examples api-doc goldens sentinel bench-history fault-matrix fault-smoke audit-smoke fuzz-smoke store-stress serve-smoke serve-chaos report-smoke dse-smoke ci all

export PYTHONPATH := src

install:
	pip install -e .[dev]

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not goldens"

bench:
	python benchmarks/bench_perf.py

bench-figures:
	pytest benchmarks/ --benchmark-only

profile:
	python -c "import cProfile, pstats, sys; \
	from repro.harness.runner import run_all; \
	cProfile.run('run_all()', '/tmp/repro_harness.prof'); \
	pstats.Stats('/tmp/repro_harness.prof').sort_stats('cumulative').print_stats(25)"

experiments:
	python -m repro.harness.runner

export:
	python -m repro.harness.runner --export-dir results

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done; echo "all examples OK"

api-doc:
	python tools/gen_api_doc.py

goldens:
	python tools/gen_goldens.py

sentinel:
	python tools/check_regression.py

bench-history: bench
	python tools/check_regression.py --append --skip-goldens

fault-matrix:
	python -m pytest -q tests/resilience/

fault-smoke:
	python tools/fault_smoke.py

audit-smoke:
	python -m repro run fig13 --audit full

fuzz-smoke:
	python -m repro fuzz --specs 200 --seed 0 --no-corpus

store-stress:
	python -m pytest -q tests/store/

serve-smoke:
	python tools/serve_smoke.py

serve-chaos:
	python tools/serve_chaos.py

dse-smoke:
	python tools/dse_smoke.py

report-smoke:
	python -m repro report fig13 fig16 --top 5

ci:
	python -m pytest -x -q -m "not goldens" tests/
	python -m pytest -q -m goldens tests/
	python tools/check_regression.py
	python tools/fault_smoke.py
	python -m repro run fig13 --audit full
	python -m repro fuzz --specs 200 --seed 0 --no-corpus
	python -m pytest -q tests/store/
	python tools/serve_smoke.py
	python tools/serve_chaos.py
	python -m repro report fig13 fig16 --top 5
	python tools/dse_smoke.py

all: test bench experiments
