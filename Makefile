.PHONY: install test bench experiments export examples api-doc all

install:
	pip install -e .[dev]

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro.harness.runner

export:
	python -m repro.harness.runner --export-dir results

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done; echo "all examples OK"

api-doc:
	python tools/gen_api_doc.py

all: test bench experiments
