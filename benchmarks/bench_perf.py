"""Performance-layer benchmark: writes ``BENCH_perf.json`` at the repo root.

Measures the three things the perf layer is for:

- full-harness wall time (every experiment, results exported to a tempdir),
  as a subprocess so module import and process startup are charged honestly;
- ``simulate_conv`` throughput in layers/second on ResNet-50 and VGG-16,
  cold (empty cache, schedules built) and warm (pure cache hits), plus the
  **per-layer latency distribution** of both passes as Prometheus-style
  histograms (the tail is what a fleet scheduler cares about, and a mean
  hides it);
- the simulation cache's hit rate over one full in-process harness run;
- warm serve-path round-trip latency (p50/p99 over real sockets) plus the
  robustness counters that must stay zero on benign traffic
  (``serve.breaker_false_trips``, ``serve.deadline_timeouts``).

Every run is recorded through the observability layer: the report gains a
``provenance`` block (run id, git SHA, versions, config fingerprints —
schema stays backward-compatible, all pre-existing keys are unchanged) and
a ``results/<run_id>/manifest.json`` captures the run's wall/CPU/RSS.
Feed the report to ``tools/check_regression.py`` (or ``repro sentinel``)
to gate drift against ``BENCH_history.jsonl``.

Run via ``make bench`` or ``python benchmarks/bench_perf.py``.  With
``--audit-overhead`` the report additionally gains an ``audit`` block
(full-audit wall-clock overhead ratio on fig13 plus the violation count —
which the sentinel gates to zero); the default report's bytes are unchanged
when the flag is absent.
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.harness import runner  # noqa: E402
from repro.obs import log as obs_log  # noqa: E402
from repro.obs.manifest import RunContext  # noqa: E402
from repro.perf.cache import cache_stats, clear_cache  # noqa: E402
from repro.resilience.atomic import atomic_write_text  # noqa: E402
from repro.systolic.simulator import TPUSim  # noqa: E402
from repro.trace.metrics import Histogram  # noqa: E402
from repro.workloads.networks import resnet50, vgg16  # noqa: E402

#: Per-layer simulate_conv latencies span ~250ns (warm hit through the
#: batched-engine dispatch) to ~100ms (cold schedule build), so the buckets
#: cover that range log-ish.  The two sub-microsecond buckets exist to make
#: dispatch-overhead wins visible: before them every warm hit collapsed
#: into the first bucket.
LATENCY_BUCKETS_S = (
    2.5e-7, 5e-7,
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1,
)


def harness_wall_seconds(repeats: int = 3) -> float:
    """Best-of-N full harness run (subprocess, exports included)."""
    best = float("inf")
    with tempfile.TemporaryDirectory() as export_dir:
        for _ in range(repeats):
            start = time.perf_counter()
            subprocess.run(
                [sys.executable, "-m", "repro.harness.runner", "--export-dir", export_dir],
                cwd=REPO,
                env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
                check=True,
                stdout=subprocess.DEVNULL,
            )
            best = min(best, time.perf_counter() - start)
    return best


def layers_per_second(layers, repeats: int = 3):
    """(cold, warm, cold_hist, warm_hist) over one network's conv layers.

    Throughputs stay best-of-N with *uninstrumented* inner loops — the
    exact pre-histogram protocol, so the layers/sec series in
    ``BENCH_history.jsonl`` stays comparable across PRs.  The latency
    histograms come from one extra dedicated cold+warm pass whose
    per-layer ``perf_counter`` bracketing never touches the timed loops.
    """
    sim = TPUSim()
    cold = warm = float("inf")
    for _ in range(repeats):
        clear_cache()
        start = time.perf_counter()
        for layer in layers:
            sim.simulate_conv(layer)
        cold = min(cold, time.perf_counter() - start)
        start = time.perf_counter()
        for layer in layers:
            sim.simulate_conv(layer)
        warm = min(warm, time.perf_counter() - start)
    cold_hist = Histogram(LATENCY_BUCKETS_S)
    warm_hist = Histogram(LATENCY_BUCKETS_S)
    clear_cache()
    for hist in (cold_hist, warm_hist):
        for layer in layers:
            layer_start = time.perf_counter()
            sim.simulate_conv(layer)
            hist.observe(time.perf_counter() - layer_start)
    return len(layers) / cold, len(layers) / warm, cold_hist, warm_hist


def harness_hit_rate() -> dict:
    """Cache statistics over one full in-process harness run.

    One table, three hit tiers: *exact* hits (same fingerprint), *canonical*
    hits (a timing-equivalent spec already priced under a symmetry-folded
    key) and *persistent* hits (served by an attached on-disk store after
    both in-memory keys missed — always 0 here, where no store is attached;
    the ``store`` block below measures that tier).  The sentinel gates the
    rates separately.
    """
    clear_cache()
    runner.run_all()
    stats = cache_stats()
    probes = stats.hits + stats.misses
    return {
        "hits": stats.hits,
        "exact_hits": stats.exact_hits,
        "canonical_hits": stats.canonical_hits,
        "persistent_hits": stats.persistent_hits,
        "misses": stats.misses,
        "entries": stats.entries,
        "hit_rate": round(stats.hit_rate, 4),
        "canonical_hit_rate": round(stats.canonical_hits / probes, 4) if probes else 0.0,
    }


def store_warm_start(experiment_id: str = "fig13", repeats: int = 3) -> dict:
    """Cold vs persistent-warm wall clock of one experiment (tmpdir store).

    The cold pass populates a fresh :mod:`repro.store` result store; each
    warm pass then drops the in-memory cache (``clear_cache``) so *every*
    result must come off disk — the cross-process warm-start this PR exists
    for, measured in-process.  The final accounting pass asserts the
    acceptance criterion: a warm run performs **zero** new simulations
    (``misses == 0``, ``hit_rate == 1.0``), and the sentinel gates
    ``store.hit_rate`` downward drift.
    """
    from repro.store import attach, detach

    with tempfile.TemporaryDirectory() as store_dir:
        store = attach(store_dir)
        try:
            clear_cache()
            start = time.perf_counter()
            runner.run_experiment(experiment_id, quick=False)
            cold = time.perf_counter() - start
            warm = float("inf")
            for _ in range(repeats):
                clear_cache()  # drop memory; the store stays warm
                start = time.perf_counter()
                runner.run_experiment(experiment_id, quick=False)
                warm = min(warm, time.perf_counter() - start)
            clear_cache()
            runner.run_experiment(experiment_id, quick=False)
            stats = cache_stats()
            records = len(store)
        finally:
            detach()
    if stats.misses:
        raise AssertionError(
            f"warm {experiment_id} run re-simulated {stats.misses} layer(s); "
            "the persistent store must serve every lookup"
        )
    return {
        "experiment": experiment_id,
        "cold_seconds": round(cold, 4),
        "warm_seconds": round(warm, 4),
        "warm_speedup": round(cold / warm, 2) if warm > 0 else None,
        "hits": stats.hits,
        "persistent_hits": stats.persistent_hits,
        "misses": stats.misses,
        "hit_rate": round(stats.hit_rate, 4),
        "records": records,
    }


def experiment_wall_seconds(repeats: int = 3) -> dict:
    """Best-of-N cold wall time of the two batched-engine drivers.

    In-process (``runner.run_experiment``) with a cleared cache each
    repeat, so the number isolates schedule construction + execution —
    exactly what the batched engine accelerates — from process startup.
    """
    timings = {}
    for experiment_id, key in (("fig13", "fig13_batched"), ("batch_sweep", "batch_sweep")):
        best = float("inf")
        for _ in range(repeats):
            clear_cache()
            start = time.perf_counter()
            runner.run_experiment(experiment_id, quick=False)
            best = min(best, time.perf_counter() - start)
        timings[key] = round(best, 4)
    return timings


def audit_overhead(experiment_id: str = "fig13", repeats: int = 3) -> dict:
    """Wall-clock cost of the full invariant audit on one experiment.

    Subprocess best-of-N for both arms (startup charged honestly, same
    protocol as :func:`harness_wall_seconds`, cold caches by construction);
    the check/violation counts come from one extra in-process audited run.
    """
    from repro.audit import auditor as audit_mod

    def best_of(extra) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            subprocess.run(
                [sys.executable, "-m", "repro.harness.runner", experiment_id, *extra],
                cwd=REPO,
                env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
                check=True,
                stdout=subprocess.DEVNULL,
            )
            best = min(best, time.perf_counter() - start)
        return best

    off = best_of([])
    full = best_of(["--audit", "full"])
    try:
        clear_cache()
        audit_mod.configure("full")
        audit_mod.reset()
        runner.run_experiment(experiment_id, quick=False)
        snapshot = audit_mod.snapshot()
    finally:
        audit_mod.configure("off")
    return {
        "experiment": experiment_id,
        "off_seconds": round(off, 4),
        "full_seconds": round(full, 4),
        "overhead_ratio": round(full / off, 3) if off > 0 else None,
        "checks": snapshot["checks"],
        "violations": snapshot["violations"],
    }


def serve_latency(requests: int = 200, specs: int = 4) -> dict:
    """Warm serve-path latency over real sockets, plus robustness counters.

    Boots the daemon in-process on an ephemeral port, warms ``specs``
    distinct queries, then measures ``requests`` sequential round-trips
    (all memo hits — this times the serving machinery, not the engine).
    ``breaker_false_trips`` and ``deadline_timeouts`` must stay 0 on
    benign traffic: a trip here means the breaker punished a healthy
    spec, which the sentinel gates as a regression.
    """
    import asyncio

    from repro.store.serve import (
        ReproServer,
        ServeConfig,
        SimulationService,
        http_request,
    )

    async def scenario() -> dict:
        config = ServeConfig(host="127.0.0.1", port=0, watchdog=False)
        service = SimulationService(config)
        server = ReproServer(service, run_id="bench")
        host, port = await server.start()
        try:
            queries = [
                {"spec": {
                    "n": 1, "c_in": 16 * (1 + i % 2), "h_in": 14, "w_in": 14,
                    "c_out": 32, "h_filter": 3, "w_filter": 3,
                    "stride": 1, "padding": 1, "name": f"bench-serve-{i}",
                }}
                for i in range(specs)
            ]
            for query in queries:  # warm every spec: memo hits from here on
                status, _ = await http_request(
                    host, port, "POST", "/v1/conv", query
                )
                assert status == 200, status
            latencies = []
            for i in range(requests):
                start = time.perf_counter()
                status, _ = await http_request(
                    host, port, "POST", "/v1/conv", queries[i % specs]
                )
                latencies.append(time.perf_counter() - start)
                assert status == 200, status
            latencies.sort()
            counters = service.registry.counters
            return {
                "requests": requests,
                "p50_ms": round(latencies[len(latencies) // 2] * 1e3, 3),
                "p99_ms": round(
                    latencies[min(len(latencies) - 1,
                                  int(0.99 * len(latencies)))] * 1e3, 3
                ),
                "breaker_false_trips": service.breakers.trips,
                "deadline_timeouts": int(
                    counters.get("repro_serve_deadline_timeouts_total", 0)
                ),
            }
        finally:
            await server.shutdown()

    clear_cache()
    try:
        return asyncio.run(scenario())
    finally:
        clear_cache()


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--audit-overhead", action="store_true",
        help="also measure full-audit overhead on fig13 and add an 'audit' "
        "block to the report (default report bytes are unchanged without it)",
    )
    args = parser.parse_args(argv)
    with RunContext(
        tool="benchmarks.bench_perf", results_dir=str(REPO / "results")
    ) as run_ctx:
        obs_log.info("bench.start", run_id=run_ctx.run_id)
        resnet = resnet50(batch=8)
        vgg = vgg16(batch=8)
        resnet_cold, resnet_warm, resnet_cold_hist, resnet_warm_hist = (
            layers_per_second(resnet)
        )
        vgg_cold, vgg_warm, vgg_cold_hist, vgg_warm_hist = layers_per_second(vgg)
        report = {
            "harness_wall_seconds": round(harness_wall_seconds(), 3),
            "simulate_conv_layers_per_second": {
                "resnet50_batch8_cold": round(resnet_cold, 1),
                "resnet50_batch8_warm": round(resnet_warm, 1),
                "vgg16_batch8_cold": round(vgg_cold, 1),
                "vgg16_batch8_warm": round(vgg_warm, 1),
            },
            "simulate_conv_latency_histograms": {
                "resnet50_batch8_cold": resnet_cold_hist.to_dict(),
                "resnet50_batch8_warm": resnet_warm_hist.to_dict(),
                "vgg16_batch8_cold": vgg_cold_hist.to_dict(),
                "vgg16_batch8_warm": vgg_warm_hist.to_dict(),
            },
            "experiment_wall_seconds": experiment_wall_seconds(),
            "cache": harness_hit_rate(),
            "store": store_warm_start(),
            "serve": serve_latency(),
            **({"audit": audit_overhead()} if args.audit_overhead else {}),
            "provenance": {
                "run_id": run_ctx.run_id,
                "git": run_ctx.manifest.provenance["git"],
                "python": run_ctx.manifest.provenance["python"],
                "numpy": run_ctx.manifest.provenance["numpy"],
                "config_fingerprints": run_ctx.manifest.provenance[
                    "config_fingerprints"
                ],
            },
        }
        out = REPO / "BENCH_perf.json"
        atomic_write_text(out, json.dumps(report, indent=2) + "\n")
        run_ctx.add_output(out)
        print(json.dumps(report, indent=2))
        print(f"wrote {out}")
    print(f"manifest: {run_ctx.manifest_path}")


if __name__ == "__main__":
    main()
