"""Performance-layer benchmark: writes ``BENCH_perf.json`` at the repo root.

Measures the three things the perf layer is for:

- full-harness wall time (every experiment, results exported to a tempdir),
  as a subprocess so module import and process startup are charged honestly;
- ``simulate_conv`` throughput in layers/second on ResNet-50 and VGG-16,
  cold (empty cache, schedules built) and warm (pure cache hits);
- the simulation cache's hit rate over one full in-process harness run.

Run via ``make bench`` or ``python benchmarks/bench_perf.py``.
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.harness import runner  # noqa: E402
from repro.perf.cache import cache_stats, clear_cache  # noqa: E402
from repro.systolic.simulator import TPUSim  # noqa: E402
from repro.workloads.networks import resnet50, vgg16  # noqa: E402


def harness_wall_seconds(repeats: int = 3) -> float:
    """Best-of-N full harness run (subprocess, exports included)."""
    best = float("inf")
    with tempfile.TemporaryDirectory() as export_dir:
        for _ in range(repeats):
            start = time.perf_counter()
            subprocess.run(
                [sys.executable, "-m", "repro.harness.runner", "--export-dir", export_dir],
                cwd=REPO,
                env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
                check=True,
                stdout=subprocess.DEVNULL,
            )
            best = min(best, time.perf_counter() - start)
    return best


def layers_per_second(layers, repeats: int = 3):
    """(cold, warm) simulate_conv throughput over one network's conv layers."""
    sim = TPUSim()
    cold = warm = float("inf")
    for _ in range(repeats):
        clear_cache()
        start = time.perf_counter()
        for layer in layers:
            sim.simulate_conv(layer)
        cold = min(cold, time.perf_counter() - start)
        start = time.perf_counter()
        for layer in layers:
            sim.simulate_conv(layer)
        warm = min(warm, time.perf_counter() - start)
    return len(layers) / cold, len(layers) / warm


def harness_hit_rate() -> dict:
    """Cache statistics over one full in-process harness run."""
    clear_cache()
    runner.run_all()
    stats = cache_stats()
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "entries": stats.entries,
        "hit_rate": round(stats.hit_rate, 4),
    }


def main() -> None:
    resnet = resnet50(batch=8)
    vgg = vgg16(batch=8)
    resnet_cold, resnet_warm = layers_per_second(resnet)
    vgg_cold, vgg_warm = layers_per_second(vgg)
    report = {
        "harness_wall_seconds": round(harness_wall_seconds(), 3),
        "simulate_conv_layers_per_second": {
            "resnet50_batch8_cold": round(resnet_cold, 1),
            "resnet50_batch8_warm": round(resnet_warm, 1),
            "vgg16_batch8_cold": round(vgg_cold, 1),
            "vgg16_batch8_warm": round(vgg_warm, 1),
        },
        "cache": harness_hit_rate(),
    }
    out = REPO / "BENCH_perf.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
