"""Fig 14: multi-tile parameter effect and the inferred TPU policy."""

from repro.harness.experiments import fig14


def test_fig14(benchmark):
    result = benchmark(fig14.run)
    table = result.table("Fig 14a: tiles vs performance and workspace")
    speedups = table.column("speedup vs 1")
    assert speedups[2] > 1.5  # 3 tiles beats 1 substantially
    assert abs(speedups[-1] - speedups[2]) / speedups[2] < 0.05  # plateau
    note = [n for n in result.notes if "Policy" in n][0]
    assert float(note.split(":")[1].split("%")[0]) < 9.0  # paper: 5.3%
