"""Table II: the TPUSim configuration print-out (pins Tbl. II parameters)."""

from repro.harness.experiments import table2


def test_table2(benchmark):
    result = benchmark(table2.run)
    rendered = result.render()
    assert "128 x 128" in rendered
    assert "32 MB" in rendered
    assert "700 GB/s" in rendered
