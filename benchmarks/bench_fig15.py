"""Fig 15: end-to-end model validation, TPUSim vs TPU-v2 (batch 8)."""

from repro.harness.experiments import fig15


def test_fig15(benchmark):
    result = benchmark(fig15.run)
    dist = result.table("Fig 15b: layer-wise error distribution")
    mae = dist.rows[0][1]
    assert mae < 10.0  # paper: 5.8%
    models = result.table("Fig 15a: per-network conv latency (ms)")
    for error in models.column("error %"):
        assert error < 12.0
