"""Fig 18: strided-conv speedup over cuDNN and the inter-tile-reuse gain."""

from repro.harness.experiments import fig18


def test_fig18(benchmark):
    result = benchmark(fig18.run)
    speedups = result.table("Fig 18a: strided layers, ours vs cuDNN").column("speedup")
    assert sum(speedups) / len(speedups) > 1.1  # paper: +20% average
    assert max(speedups) > 1.3  # paper: up to +40%
    gains = result.table("Fig 18b: inter-tile reuse impact").column("improvement %")
    assert 8.0 <= sum(gains) / len(gains) <= 45.0  # paper: 16.7%
