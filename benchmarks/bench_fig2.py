"""Fig 2: explicit vs implicit im2col on GPU (a) and TPU (b), batch 64."""

from repro.harness.experiments import fig2


def test_fig2(benchmark):
    result = benchmark(fig2.run)
    gpu = result.table("Fig 2a: V100 GPU (normalized to implicit)")
    assert all(total > 1.0 for total in gpu.column("explicit total"))
    tpu = result.table("Fig 2b: TPU-v2 (normalized to implicit; transform est. from GPU)")
    totals = tpu.column("explicit total")
    assert all(t > 1.0 for t in totals)
    assert 1.05 <= sum(totals) / len(totals) <= 1.45  # paper: 1.23
