"""Ablation/extension studies: design-choice sensitivity benches."""

from repro.harness.experiments import ablations


def test_ablations(benchmark):
    result = benchmark.pedantic(ablations.run, rounds=2, iterations=1)
    cl = result.table("Counterfactual: channel-last schedule on the TPU (TFLOPS)")
    advantage = dict(zip(cl.column("stride"), cl.column("CF advantage")))
    assert advantage[4] > 3.0
    variants = result.table("CONV variants on V100 (ms)")
    assert {r[0]: r[3] for r in variants.rows}["deformable"] > 1.1


def test_extensions(benchmark):
    from repro.harness.experiments import extensions

    result = benchmark.pedantic(extensions.run, rounds=2, iterations=1)
    grouped = result.table("Grouped conv on the TPU (C=256, 28x28, 3x3, batch 8)")
    util = dict(zip(grouped.column("groups"), grouped.column("utilization")))
    assert util[1] > 0.9 and util[256] < 0.01


def test_batch_sweep(benchmark):
    from repro.harness.experiments import batch_sweep

    result = benchmark.pedantic(batch_sweep.run, rounds=2, iterations=1)
    table = result.table("TFLOPS vs batch (28x28, 128->128, 3x3)")
    for row in table.rows:
        assert row[2] < row[1]  # explicit always trails


def test_sparsity(benchmark):
    from repro.harness.experiments import sparsity

    result = benchmark.pedantic(sparsity.run, rounds=2, iterations=1)
    table = result.table("VGG16 at 5/9 positions per layer (batch 8)")
    assert 1.4 <= table.rows[1][2] <= 1.8
