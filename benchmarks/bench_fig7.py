"""Fig 7: HWC vs CHW DRAM layouts for tile fills."""

from repro.harness.experiments import fig7


def test_fig7(benchmark):
    result = benchmark(fig7.run)
    table = result.table("Fig 7: tile-fill cost by DRAM layout")
    grouped = {}
    for row in table.rows:
        grouped.setdefault(row[0], {})[row[1]] = row[4]
    for stride, cycles in grouped.items():
        assert cycles["NHWC"] <= cycles["NCHW"] * 1.01
    assert grouped[4]["NCHW"] / grouped[4]["NHWC"] > grouped[1]["NCHW"] / grouped[1]["NHWC"]
