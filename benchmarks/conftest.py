"""Benchmark-suite configuration.

Each ``bench_*`` module regenerates one of the paper's tables/figures under
pytest-benchmark timing and asserts the paper-shape properties on the
produced numbers, so `pytest benchmarks/ --benchmark-only` both measures the
harness and re-verifies every reproduced artifact.
"""

import pytest
