"""Fig 16: hardware design-space exploration (array size, SRAM word size)."""

from repro.harness.experiments import fig16


def test_fig16(benchmark):
    result = benchmark(fig16.run)
    arrays = result.table("Fig 16a: array size sweep (VGG16)")
    util = dict(zip(arrays.column("array"), arrays.column("utilization")))
    assert util[256] < 0.65 * util[128]  # utilization roughly halves
    words = result.table("Fig 16b: vector-memory word size (256 KB macro)")
    ratios = dict(zip(words.column("word (elems)"), words.column("area vs word-32")))
    # word-1-element (4 B) vs word-8-element (32 B): the paper's 3.2x point
    assert 2.5 <= ratios[1] / ratios[8] <= 4.0
