"""Fig 4: TFLOPS vs stride — GPU degrades, TPU insensitive."""

from repro.harness.experiments import fig4


def test_fig4(benchmark):
    result = benchmark(fig4.run)
    gpu = result.table("Fig 4a: V100 tensor cores (TFLOPS)")
    for row in gpu.rows:
        assert row[2] < 0.85 * row[1]  # stride 2 drop
        assert row[3] < 0.5 * row[1]  # stride 4 drop
    tpu = result.table("Fig 4b: TPU (TFLOPS)")
    for row in tpu.rows:
        assert row[2] > 0.85 * row[1]
        assert row[3] > 0.8 * row[1]
