"""Fig 17: our channel-first GPU implementation vs cuDNN, batch 8."""

from repro.harness.experiments import fig17


def test_fig17(benchmark):
    result = benchmark(fig17.run)
    ratios = result.table("Fig 17").column("ours (normalized)")
    average = sum(ratios) / len(ratios)
    assert abs(average - 1.0) < 0.05  # paper: ~1% slower
    assert all(0.85 <= r <= 1.15 for r in ratios)
