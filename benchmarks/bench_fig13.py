"""Fig 13: TPUSim-vs-TPUv2 validation on GEMM and CONV microbenchmarks."""

from repro.harness.experiments import fig13


def test_fig13a_gemm_validation(benchmark):
    run = benchmark(fig13.gemm_validation)
    assert run.mape() < 8.0  # paper: 4.42%


def test_fig13b_conv_validation(benchmark):
    run = benchmark(fig13.conv_validation)
    assert run.mape() < 8.0  # paper: 4.87%
