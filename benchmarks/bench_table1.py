"""Table I: explicit-im2col memory usage across five CNNs."""

from repro.harness.experiments import table1


def test_table1(benchmark):
    result = benchmark(table1.run)
    table = result.table("Table I (batch 1, FP16)")
    ifmaps, lowered, expansion = table.rows
    for i in range(1, len(ifmaps)):
        assert lowered[i] > 1.5 * ifmaps[i]
        assert expansion[i] <= 12.0
