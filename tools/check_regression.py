"""Perf-regression + golden bit-exactness gate (CI entry point).

Thin wrapper over :mod:`repro.obs.sentinel` — the same engine behind
``python -m repro sentinel``.  Compares the current ``BENCH_perf.json``
against the rolling baseline in ``BENCH_history.jsonl`` (median of the
last N entries, explicit worse-direction per metric) and re-derives every
golden cycle snapshot against the committed files.  Exits nonzero on perf
drift beyond the threshold or on any bit-exactness break.

    python tools/check_regression.py                 # full gate
    python tools/check_regression.py --skip-goldens  # perf gate only
    python tools/check_regression.py --append        # also record this run

Run from the repo root (paths default to the repo-root artifacts).
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.sentinel import run_sentinel  # noqa: E402  (path bootstrap above)


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Anchor the default artifact paths at the repo root; explicit flags in
    # ``argv`` come later and therefore win.
    defaults = [
        "--current", str(ROOT / "BENCH_perf.json"),
        "--history", str(ROOT / "BENCH_history.jsonl"),
    ]
    return run_sentinel(defaults + list(argv))


if __name__ == "__main__":
    sys.exit(main())
