"""End-to-end smoke of ``repro serve``: boot, query, scrape, drain.

Boots the daemon as a subprocess on an ephemeral port with a tmpdir
persistent store, issues one conv-timing query plus the same query again
(which must be served without a new simulation — the store/memo answer),
checks ``/healthz`` and ``/metrics`` expose the serve counters, then
shuts the daemon down gracefully (SIGTERM) and requires a clean exit.

Run via ``make serve-smoke``.  Exit 0 = every step held.
"""

import asyncio
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.store.serve import http_request  # noqa: E402

QUERY = {
    "spec": {
        "n": 8, "c_in": 128, "h_in": 28, "w_in": 28,
        "c_out": 128, "h_filter": 3, "w_filter": 3,
        "stride": 1, "padding": 1, "name": "smoke",
    }
}


def wait_for_port(proc: subprocess.Popen, timeout_s: float = 30.0) -> int:
    """Parse the listen port from the daemon's startup line."""
    deadline = time.monotonic() + timeout_s
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(f"serve exited early (rc={proc.poll()})")
        sys.stdout.write(line)
        match = re.search(r"http://[^:]+:(\d+)", line)
        if match:
            return int(match.group(1))
    raise SystemExit("serve never reported a listen address")


async def exercise(port: int) -> None:
    status, health = await http_request("127.0.0.1", port, "GET", "/healthz")
    assert status == 200 and health["status"] == "ok", (status, health)

    status, first = await http_request("127.0.0.1", port, "POST", "/v1/conv", QUERY)
    assert status == 200, (status, first)
    assert first["cycles"] > 0 and 0 < first["utilization"] <= 1, first

    status, again = await http_request("127.0.0.1", port, "POST", "/v1/conv", QUERY)
    assert status == 200 and again == first, "repeat query must be identical"

    status, metrics = await http_request("127.0.0.1", port, "GET", "/metrics")
    assert status == 200, status
    for needle in (
        "repro_serve_requests_total",
        "repro_serve_simulations_total",
        "repro_serve_batches_total",
        "repro_sim_cache_hit_rate",
    ):
        assert needle in metrics, f"missing {needle} in /metrics"
    sims = re.search(r"repro_serve_simulations_total (\d+)", metrics)
    assert sims and int(sims.group(1)) == 1, (
        f"repeat query must not re-simulate: {sims and sims.group(0)}"
    )
    print(f"serve-smoke: 2 queries, 1 simulation, /metrics ok (port {port})")


def main() -> int:
    with tempfile.TemporaryDirectory() as store_dir:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--store", store_dir],
            cwd=REPO,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            port = wait_for_port(proc)
            asyncio.run(exercise(port))
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=30)
            tail = proc.stdout.read() if proc.stdout else ""
            sys.stdout.write(tail)
            assert rc == 0, f"serve exited {rc} on graceful shutdown"
            assert "drained" in tail, "shutdown must report a drain"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
    print("serve-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
