"""End-to-end smoke of ``repro serve``: boot, query, scrape, drain.

Boots the daemon as a subprocess on an ephemeral port with a tmpdir
persistent store, issues one conv-timing query plus the same query again
(which must be served without a new simulation — the store/memo answer),
schema-checks ``/healthz`` and ``/statusz``, checks ``/metrics`` exposes
the serve counters (including the per-route latency histogram) and that
responses carry ``X-Repro-Run-Id``/``X-Repro-Trace-Id``, then shuts the
daemon down gracefully (SIGTERM) and requires a clean exit.

A malformed (non-JSON, or JSON of the wrong shape) control-endpoint
response is a hard failure — the tool exits nonzero with the offending
payload, it never tracebacks through a ``KeyError``.

Run via ``make serve-smoke``.  Exit 0 = every step held.
"""

import asyncio
import json
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.store.serve import http_request, http_request_retry  # noqa: E402

QUERY = {
    "spec": {
        "n": 8, "c_in": 128, "h_in": 28, "w_in": 28,
        "c_out": 128, "h_filter": 3, "w_filter": 3,
        "stride": 1, "padding": 1, "name": "smoke",
    }
}


def wait_for_port(proc: subprocess.Popen, timeout_s: float = 30.0) -> int:
    """Parse the listen port from the daemon's startup line."""
    deadline = time.monotonic() + timeout_s
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(f"serve exited early (rc={proc.poll()})")
        sys.stdout.write(line)
        match = re.search(r"http://[^:]+:(\d+)", line)
        if match:
            return int(match.group(1))
    raise SystemExit("serve never reported a listen address")


def check_json_doc(endpoint: str, body, required: dict) -> dict:
    """Schema gate for a control endpoint: JSON object + typed keys.

    ``http_request`` returns the raw text when the server mislabels (or
    corrupts) a JSON body, so a ``str`` here means malformed JSON — fail
    with the payload, not a ``KeyError`` traceback downstream.
    """
    if isinstance(body, str):
        try:
            body = json.loads(body)
        except json.JSONDecodeError as err:
            raise SystemExit(
                f"{endpoint}: malformed JSON ({err}): {body[:200]!r}"
            )
    if not isinstance(body, dict):
        raise SystemExit(f"{endpoint}: expected a JSON object, got {body!r}")
    for key, expected_type in required.items():
        if key not in body:
            raise SystemExit(
                f"{endpoint}: missing {key!r} (got keys {sorted(body)})"
            )
        if not isinstance(body[key], expected_type):
            raise SystemExit(
                f"{endpoint}: {key!r} should be {expected_type}, "
                f"got {body[key]!r}"
            )
    return body


async def exercise(port: int) -> None:
    status, health, headers = await http_request_retry(
        "127.0.0.1", port, "GET", "/healthz", deadline_s=15.0
    )
    assert status == 200, (status, health)
    health = check_json_doc(
        "/healthz", health, {"status": str, "pending": int, "budget": dict}
    )
    assert health["status"] == "ok", health
    assert headers.get("x-repro-run-id"), f"no X-Repro-Run-Id: {headers}"
    assert headers.get("x-repro-trace-id"), f"no X-Repro-Trace-Id: {headers}"

    status, ready = await http_request("127.0.0.1", port, "GET", "/readyz")
    assert status == 200, (status, ready)
    ready = check_json_doc("/readyz", ready, {"ready": bool, "rung": str})
    assert ready["ready"] is True and ready["rung"] == "full", ready

    status, topdoc = await http_request("127.0.0.1", port, "GET", "/statusz")
    assert status == 200, (status, topdoc)
    topdoc = check_json_doc(
        "/statusz",
        topdoc,
        {"kind": str, "role": str, "serve": dict, "cache": dict, "budget": dict},
    )
    assert topdoc["kind"] == "repro-status" and topdoc["role"] == "serve", topdoc

    status, first, _ = await http_request_retry(
        "127.0.0.1", port, "POST", "/v1/conv", QUERY, deadline_s=60.0
    )
    assert status == 200, (status, first)
    first = check_json_doc(
        "/v1/conv", first, {"cycles": (int, float), "utilization": (int, float)}
    )
    assert first["cycles"] > 0 and 0 < first["utilization"] <= 1, first

    status, again = await http_request("127.0.0.1", port, "POST", "/v1/conv", QUERY)
    assert status == 200 and again == first, "repeat query must be identical"

    status, metrics = await http_request("127.0.0.1", port, "GET", "/metrics")
    assert status == 200, status
    for needle in (
        "repro_serve_requests_total",
        "repro_serve_simulations_total",
        "repro_serve_batches_total",
        "repro_sim_cache_hit_rate",
        'repro_serve_request_seconds_bucket{le="0.005",route="/v1/conv"}',
    ):
        assert needle in metrics, f"missing {needle} in /metrics"
    sims = re.search(r"repro_serve_simulations_total (\d+)", metrics)
    assert sims and int(sims.group(1)) == 1, (
        f"repeat query must not re-simulate: {sims and sims.group(0)}"
    )
    print(
        f"serve-smoke: 2 queries, 1 simulation, /healthz+/readyz+/statusz "
        f"schema ok, /metrics ok (port {port})"
    )


def main() -> int:
    with tempfile.TemporaryDirectory() as store_dir:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--store", store_dir],
            cwd=REPO,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            port = wait_for_port(proc)
            asyncio.run(exercise(port))
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=30)
            tail = proc.stdout.read() if proc.stdout else ""
            sys.stdout.write(tail)
            assert rc == 0, f"serve exited {rc} on graceful shutdown"
            assert "drained" in tail, "shutdown must report a drain"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
    print("serve-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
