"""Chaos campaign for ``repro serve``: kill the workers, keep the promises.

The invariant under test (ISSUE/DESIGN.md §4l): **every admitted request
receives a response and the store stays verify-clean**, while the daemon
is being actively sabotaged on every layer at once:

- server-side seeded faults (``--inject-faults serve=conn-reset,
  worker-crash,...``): connections aborted before the request is read,
  workers calling ``os._exit(137)`` mid-campaign;
- client-side hostility played by this tool off the same plan: slowloris
  header drips, truncated bodies, garbage JSON;
- two externally ``kill -9``'d workers mid-campaign;
- a seeded poison spec (AuditFault at pricing) that must trip its
  circuit breaker into a fast 422 verdict, then half-open after cooldown.

Gates, all hard failures:

1. every good query converges to HTTP 200 through the retrying client
   (connection resets and 5xx+Retry-After are retried; *no* query is
   silently lost);
2. every hostile exchange gets a definitive outcome (4xx/408 or a
   connection close) within a bounded time — never a hang;
3. the supervisor restores the full worker count after the murders
   (supervisor status file) and the fleet still answers;
4. the poison spec's breaker trips (422 + verdict document) and
   half-opens after cooldown (a probe is re-admitted);
5. the daemon drains cleanly on SIGTERM (exit 0);
6. ``repro store verify`` over the shared store exits 0.

Run via ``make serve-chaos``.  Exit 0 = every gate held.
"""

import asyncio
import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.store.serve import http_request, http_request_retry  # noqa: E402

WORKERS = 4
# Injection rate is per *connection*; the retrying client amplifies every
# reset into more connections, so a hot rate crash-storms the fleet past
# the supervisor's respawn budget.  2% yields a handful of injected
# crashes/resets over the campaign — plus the two external kill -9s.
FAULTS = ("serve=conn-reset,slowloris,truncated-body,worker-crash,"
          "rate=0.02,seed=11,poison=chaos-poison")
BREAKER_THRESHOLD = 3
BREAKER_COOLDOWN_S = 2.0
GOOD_SPECS = 6
REPEATS_PER_SPEC = 5
HOSTILE_ROUNDS = 6


def good_query(i: int) -> dict:
    return {"spec": {
        "n": 1, "c_in": 8 + 8 * (i % 4), "h_in": 7 + 7 * (i % 2), "w_in": 7,
        "c_out": 16 + 16 * (i % 3), "h_filter": 3, "w_filter": 3,
        "stride": 1, "padding": 1, "name": f"chaos-good-{i}",
    }}


POISON_QUERY = {"spec": {
    "n": 1, "c_in": 48, "h_in": 9, "w_in": 9, "c_out": 48,
    "h_filter": 3, "w_filter": 3, "stride": 1, "padding": 1,
    "name": "chaos-poison-spec",
}}


def wait_for_port(proc: subprocess.Popen, timeout_s: float = 30.0) -> int:
    deadline = time.monotonic() + timeout_s
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(f"serve exited early (rc={proc.poll()})")
        sys.stdout.write(line)
        match = re.search(r"http://[^:]+:(\d+)", line)
        if match:
            return int(match.group(1))
    raise SystemExit("serve never reported a listen address")


def read_supervisor(status_file: pathlib.Path, want, deadline_s: float = 30.0):
    """Poll the supervisor beacon file until ``want(extra)`` holds."""
    deadline = time.monotonic() + deadline_s
    last = None
    while time.monotonic() < deadline:
        try:
            doc = json.loads(status_file.read_text())
        except (OSError, json.JSONDecodeError):
            time.sleep(0.2)
            continue
        last = doc.get("extra", {})
        if want(last):
            return last
        time.sleep(0.2)
    raise SystemExit(f"supervisor status never converged; last: {last}")


async def hostile_exchange(port: int, kind: str) -> str:
    """One deliberately malformed exchange; returns its definitive outcome.

    Outcomes: ``"4xx"`` (server answered with a clean client error),
    ``"closed"`` (server or chaos hook hung up — the exchange *ended*).
    A hang past the deadline raises, which fails the campaign.
    """
    try:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
    except (ConnectionError, OSError):
        return "closed"  # injected conn-reset at accept: definitive enough
    try:
        try:
            if kind == "slowloris":
                for byte in b"GET /he":
                    writer.write(bytes([byte]))
                    await writer.drain()
                    await asyncio.sleep(0.12)
            elif kind == "truncated-body":
                writer.write(b"POST /v1/conv HTTP/1.1\r\nHost: x\r\n"
                             b"Content-Length: 400\r\n\r\n{\"spec\":")
                await writer.drain()
                writer.write_eof()
            else:  # garbage JSON
                body = b"{\"spec\": \xde\xad\xbe\xef"
                writer.write(
                    b"POST /v1/conv HTTP/1.1\r\nHost: x\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # server hung up mid-send: that is an outcome, keep reading
        raw = await asyncio.wait_for(reader.read(), timeout=20.0)
    except asyncio.TimeoutError:
        raise SystemExit(f"hostile exchange {kind!r} HUNG (no outcome in 20s)")
    except (ConnectionError, OSError):
        return "closed"
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    if not raw:
        return "closed"
    status = int(raw.split(b" ", 2)[1])
    if not (400 <= status < 500):
        raise SystemExit(f"hostile exchange {kind!r} got HTTP {status}, "
                         f"expected a 4xx: {raw[:200]!r}")
    return "4xx"


async def drive_breaker_trip(port: int) -> None:
    """Feed the poison spec until its breaker answers a fast 422 verdict."""
    deadline = time.monotonic() + 60.0
    failures = 0
    while time.monotonic() < deadline:
        try:
            status, body, headers = await http_request(
                "127.0.0.1", port, "POST", "/v1/conv", POISON_QUERY,
                return_headers=True,
            )
        except (ConnectionError, OSError):
            await asyncio.sleep(0.1)  # chaos ate the connection; again
            continue
        if status == 500:
            failures += 1
            continue
        if status == 422:
            verdict = body.get("verdict", {})
            assert verdict.get("state") in ("open", "half-open"), body
            assert verdict.get("trip_reason") == "AuditFault", body
            assert "retry-after" in headers, headers
            print(f"serve-chaos: breaker tripped after {failures} failures; "
                  f"verdict fingerprint={verdict.get('fingerprint')}")
            return
        if status in (429, 503, 504):
            await asyncio.sleep(0.2)
            continue
        raise SystemExit(f"poison spec got unexpected HTTP {status}: {body}")
    raise SystemExit("breaker never tripped on the poison spec")


async def prove_half_open(port: int) -> None:
    """After cooldown a probe must be re-admitted (500), then re-open (422)."""
    await asyncio.sleep(BREAKER_COOLDOWN_S + 0.5)
    deadline = time.monotonic() + 30.0
    saw_probe = False
    while time.monotonic() < deadline:
        try:
            status, body = await http_request(
                "127.0.0.1", port, "POST", "/v1/conv", POISON_QUERY
            )
        except (ConnectionError, OSError):
            await asyncio.sleep(0.1)
            continue
        if status == 500:
            saw_probe = True  # the engine ran again: half-open re-admitted
        elif status == 422:
            if saw_probe:
                print("serve-chaos: half-open probe re-admitted, re-opened "
                      "on failure")
                return
            # Still open on this worker (per-worker breakers); wait out its
            # cooldown and try again.
            await asyncio.sleep(0.3)
        elif status in (429, 503, 504):
            await asyncio.sleep(0.2)
        else:
            raise SystemExit(f"half-open probe got HTTP {status}: {body}")
    raise SystemExit("never observed a half-open probe after cooldown")


async def run_campaign(port: int, status_file: pathlib.Path) -> dict:
    """Good + hostile traffic with two worker murders in the middle."""
    answered = {"good": 0, "hostile_4xx": 0, "hostile_closed": 0}

    async def one_good(i: int, rep: int) -> None:
        status, body, _ = await http_request_retry(
            "127.0.0.1", port, "POST", "/v1/conv", good_query(i),
            deadline_s=90.0,
        )
        if status != 200:
            raise SystemExit(
                f"good query {i}#{rep} ended {status}: {body}"
            )
        answered["good"] += 1

    async def one_hostile(round_i: int) -> None:
        kind = ("slowloris", "truncated-body", "garbage")[round_i % 3]
        outcome = await hostile_exchange(port, kind)
        answered[f"hostile_{'4xx' if outcome == '4xx' else 'closed'}"] += 1

    async def murder_two() -> None:
        await asyncio.sleep(1.0)  # mid-campaign, not before it
        extra = await asyncio.to_thread(
            read_supervisor,
            status_file, lambda e: len(e.get("worker_pids", [])) >= 2,
        )
        victims = sorted(extra["worker_pids"])[:2]
        for pid in victims:
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        print(f"serve-chaos: kill -9 workers {victims}")

    tasks = [
        one_good(i, rep)
        for i in range(GOOD_SPECS)
        for rep in range(REPEATS_PER_SPEC)
    ]
    tasks += [one_hostile(i) for i in range(HOSTILE_ROUNDS)]
    tasks.append(murder_two())
    await asyncio.gather(*tasks)
    return answered


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = pathlib.Path(tmp) / "store"
        status_file = pathlib.Path(tmp) / "supervisor.json"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", str(WORKERS), "--store", str(store_dir),
             "--status-file", str(status_file),
             "--inject-faults", FAULTS,
             "--breaker-threshold", str(BREAKER_THRESHOLD),
             "--breaker-cooldown", str(BREAKER_COOLDOWN_S),
             "--no-watchdog"],
            cwd=REPO,
            env=dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1"),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            port = wait_for_port(proc)
            read_supervisor(
                status_file, lambda e: e.get("workers_alive") == WORKERS
            )
            print(f"serve-chaos: fleet of {WORKERS} up on port {port}")

            answered = asyncio.run(run_campaign(port, status_file))
            print(f"serve-chaos: campaign done: {answered}")
            expected = GOOD_SPECS * REPEATS_PER_SPEC
            assert answered["good"] == expected, answered
            assert (
                answered["hostile_4xx"] + answered["hostile_closed"]
                == HOSTILE_ROUNDS
            ), answered

            # The supervisor must have respawned the murdered (and any
            # chaos-crashed) workers back to full strength.
            extra = read_supervisor(
                status_file,
                lambda e: e.get("workers_alive") == WORKERS,
                deadline_s=60.0,
            )
            assert extra["workers_target"] == WORKERS, extra
            print(f"serve-chaos: supervisor restored {WORKERS} workers "
                  f"(pids {sorted(extra['worker_pids'])})")

            asyncio.run(drive_breaker_trip(port))
            asyncio.run(prove_half_open(port))

            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=60)
            tail = proc.stdout.read() if proc.stdout else ""
            sys.stdout.write(tail)
            assert rc == 0, f"supervisor exited {rc} on graceful shutdown"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        verify = subprocess.run(
            [sys.executable, "-m", "repro", "store", "verify", str(store_dir)],
            cwd=REPO, env=dict(os.environ, PYTHONPATH="src"),
            capture_output=True, text=True,
        )
        sys.stdout.write(verify.stdout)
        if verify.returncode != 0:
            sys.stdout.write(verify.stderr)
            raise SystemExit(
                f"store verify failed ({verify.returncode}) after the campaign"
            )
    print("serve-chaos: OK — every admitted request answered, fleet "
          "restored, breaker verdicts served, store verify clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
