"""End-to-end crash-recovery smoke: run, kill -9 mid-flight, resume, compare.

The scripted acceptance check behind the fault-tolerant run engine
(``make fault-smoke``, CI's ``fault-injection`` job):

1. run a small two-experiment sweep serially to get the reference stdout;
2. start the same sweep under ``--jobs 2 --checkpoint`` with an injected
   hang (``--inject-faults hang@1``), wait until the first experiment's
   result is durably journaled, then ``SIGKILL`` the whole process group —
   the unceremonious end every long sweep must survive;
3. ``--resume`` the run id without faults and require (a) exactly one
   checkpoint hit, and (b) stdout byte-identical to the reference.

Exits 0 on success, 1 with a diagnosis otherwise.  Run from the repo root:

    python tools/fault_smoke.py
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
IDS = ["fig4", "table2"]
RUN_ID = "fault-smoke"


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _runner(argv, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro.harness.runner", *argv],
        cwd=REPO, env=_env(), capture_output=True, text=True,
        timeout=600, **kwargs,
    )


def fail(message: str) -> int:
    print(f"FAULT SMOKE FAILED: {message}", file=sys.stderr)
    return 1


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="fault-smoke-") as results_dir:
        results_dir = pathlib.Path(results_dir)
        print(f"[1/3] reference serial run: {' '.join(IDS)} --quick")
        reference = _runner(
            [*IDS, "--quick", "--export-dir", str(results_dir / "ref")]
        )
        if reference.returncode != 0:
            return fail(f"reference run exited {reference.returncode}")

        print("[2/3] checkpointed run with injected hang; kill -9 mid-flight")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.harness.runner", *IDS,
                "--quick", "--jobs", "2", "--checkpoint",
                "--run-id", RUN_ID, "--results-dir", results_dir,
                "--inject-faults", "hang@1",
            ],
            cwd=REPO, env=_env(), start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        journal = pathlib.Path(results_dir) / RUN_ID / "checkpoint.jsonl"
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                return fail(f"hung run exited early ({proc.returncode})")
            if journal.exists() and journal.read_text().count("\n") >= 1:
                break
            time.sleep(0.2)
        else:
            proc.kill()
            return fail("first experiment never reached the journal")
        os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
        proc.wait(timeout=30)
        print(f"      killed pid {proc.pid} with 1 record journaled")

        print("[3/3] resume and compare report + exports")
        resumed = _runner(
            [*IDS, "--quick", "--resume", RUN_ID,
             "--results-dir", str(results_dir),
             "--export-dir", str(results_dir / "resumed")]
        )
        if resumed.returncode != 0:
            return fail(
                f"resume exited {resumed.returncode}: {resumed.stderr[-500:]}"
            )
        expected = f"resume {RUN_ID}: 1 checkpoint hit(s), 1 experiment(s) to run"
        if expected not in resumed.stderr:
            return fail(f"missing {expected!r} in resume stderr: {resumed.stderr!r}")
        def report_lines(text: str):
            # The trailing "exported N files to <dir>" line names the export
            # directory, which legitimately differs between the two runs.
            return [l for l in text.splitlines() if not l.startswith("exported ")]

        if report_lines(resumed.stdout) != report_lines(reference.stdout):
            return fail("resumed report differs from the uninterrupted run")
        ref_files = sorted(p.name for p in (results_dir / "ref").iterdir())
        res_files = sorted(p.name for p in (results_dir / "resumed").iterdir())
        if ref_files != res_files:
            return fail(f"export sets differ: {ref_files} vs {res_files}")
        for name in ref_files:
            if (results_dir / "ref" / name).read_bytes() != (
                results_dir / "resumed" / name
            ).read_bytes():
                return fail(f"export {name} differs after resume")
        print(f"      {len(ref_files)} exported artifacts byte-identical")
    print("fault smoke OK: kill -9 survived, resume bit-identical (1 hit)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
