"""Regenerate the golden cycle-accounting snapshots under tests/trace/goldens/.

Each paper figure/table with a golden set (see
:data:`repro.trace.goldens.GOLDEN_EXPERIMENTS`) gets one JSON file freezing
the per-layer cycle breakdown of its full workload sweep at full float
precision.  Run from the repo root after an intentional timing-model change:

    make goldens            # or: PYTHONPATH=src python tools/gen_goldens.py

then review the diff — every changed number is a deliberate behaviour change
you are signing off on.  ``tests/trace/test_goldens.py`` compares the stored
payloads bit-exactly against fresh recomputation.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.trace.goldens import (  # noqa: E402  (path bootstrap above)
    GOLDEN_EXPERIMENTS,
    compute_golden,
    golden_filename,
)

GOLDEN_DIR = ROOT / "tests" / "trace" / "goldens"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiment ids to regenerate (default: all of {list(GOLDEN_EXPERIMENTS)})",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the stored files instead of writing; exit 1 on drift",
    )
    args = parser.parse_args(argv)
    ids = args.experiments or list(GOLDEN_EXPERIMENTS)
    for eid in ids:
        if eid not in GOLDEN_EXPERIMENTS:
            raise SystemExit(
                f"no golden set for {eid!r}; known: {sorted(GOLDEN_EXPERIMENTS)}"
            )
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    drifted = []
    for eid in ids:
        payload = compute_golden(eid)
        path = GOLDEN_DIR / golden_filename(eid)
        text = json.dumps(payload, indent=1, sort_keys=True) + "\n"
        if args.check:
            if not path.exists() or path.read_text() != text:
                drifted.append(eid)
                print(f"{eid}: DRIFT ({path})")
            else:
                print(f"{eid}: ok ({len(payload['entries'])} entries)")
        else:
            path.write_text(text)
            print(f"wrote {path} ({len(payload['entries'])} entries)")
    if drifted:
        print(f"{len(drifted)} golden set(s) drifted; regenerate with: make goldens")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
