"""End-to-end sweep-resilience smoke: chaos + kill -9 + resume, byte-compare.

The scripted acceptance check behind the DSE engine (``make dse-smoke``,
CI's ``dse`` job):

1. run a small smoke-preset sweep **serially, fault-free** to produce the
   reference ``frontier.json``;
2. run the same sweep sharded (``--jobs 4``) under the full chaos
   campaign (``--inject-faults crash,hang,flaky,corrupt-store``), wait
   until results are flowing, then ``SIGKILL`` the coordinator's whole
   process group — workers and all;
3. ``--resume`` the killed sweep (chaos still on) and require the final
   ``frontier.json`` to be **byte-identical** to the fault-free serial
   reference;
4. require the chaos run to have actually exercised the machinery
   (failure records, and lease steals or worker respawns in the journal).

Exits 0 on success, 1 with a diagnosis otherwise.  Run from the repo root:

    python tools/dse_smoke.py
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent

SWEEP_ARGS = [
    "--preset", "smoke",
    "--workloads", "AlexNet@4",
    "--quick",
    "--rounds", "2",
]
CHAOS = "crash,hang,flaky,corrupt-store,rate=0.5,seed=7"


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _dse(argv, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", "dse", *argv],
        cwd=REPO, env=_env(), capture_output=True, text=True,
        timeout=600, **kwargs,
    )


def fail(message: str) -> int:
    print(f"DSE SMOKE FAILED: {message}", file=sys.stderr)
    return 1


def _result_count(out: pathlib.Path) -> int:
    count = 0
    for shard in (out / "results").glob("shard-*.jsonl"):
        count += sum(1 for line in shard.read_text().splitlines() if line)
    return count


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="dse-smoke-") as tmp:
        tmp = pathlib.Path(tmp)
        serial_out = tmp / "serial"
        chaos_out = tmp / "chaos"

        print("[1/4] fault-free serial reference sweep")
        reference = _dse(["sweep", "--out", str(serial_out), *SWEEP_ARGS])
        if reference.returncode != 0:
            return fail(
                f"serial reference failed rc={reference.returncode}: "
                f"{reference.stderr[-800:]}"
            )
        reference_bytes = (serial_out / "frontier.json").read_bytes()

        print("[2/4] chaos sweep (--jobs 4), kill -9 mid-flight")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "dse", "sweep",
             "--out", str(chaos_out), *SWEEP_ARGS,
             "--jobs", "4", "--lease-s", "2", "--inject-faults", CHAOS],
            cwd=REPO, env=_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            start_new_session=True,
        )
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                if _result_count(chaos_out) >= 2:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.1)
            else:
                return fail("chaos sweep produced no results within 120s")
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        if (chaos_out / "frontier.json").exists() and proc.returncode == 0:
            # The sweep finished before the kill landed; the resume below
            # then only rebuilds the artifact — still a valid byte-compare,
            # but flag it so a systematically-too-fast smoke gets noticed.
            print("      note: sweep finished before the kill landed")

        print("[3/4] resume the killed sweep (chaos still on)")
        resumed = _dse(
            ["sweep", "--out", str(chaos_out), *SWEEP_ARGS,
             "--jobs", "4", "--lease-s", "2", "--inject-faults", CHAOS,
             "--resume"]
        )
        if resumed.returncode != 0:
            return fail(
                f"resume failed rc={resumed.returncode}: "
                f"{resumed.stderr[-800:]}"
            )
        chaos_bytes = (chaos_out / "frontier.json").read_bytes()
        if chaos_bytes != reference_bytes:
            return fail(
                "frontier.json differs between the fault-free serial run "
                "and the chaotic kill-9'd/resumed run"
            )
        print("      frontier.json is byte-identical to the reference")

        print("[4/4] chaos actually exercised the machinery")
        failures_path = chaos_out / "failures.jsonl"
        failures = (
            [json.loads(line) for line in
             failures_path.read_text().splitlines() if line]
            if failures_path.exists() else []
        )
        if not failures:
            return fail(
                "chaos campaign recorded no task failures — the fault "
                "plan did not engage"
            )
        status = _dse(["status", "--out", str(chaos_out), "--json"])
        if status.returncode != 0:
            return fail(f"dse status failed: {status.stderr[-400:]}")
        print(
            f"      {len(failures)} injected failure(s) survived; "
            "status reads clean"
        )
    print("DSE SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
