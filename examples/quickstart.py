"""Quickstart: the channel-first implicit im2col algorithm in five minutes.

Run:  python examples/quickstart.py

1. Defines a convolution layer.
2. Executes it three ways — direct reference, explicit im2col + GEMM, and
   the paper's implicit channel-first decomposition — and checks they agree
   bit-for-bit.
3. Simulates the layer on the TPU-v2 model (TPUSim) and on the V100
   tensor-core model, printing cycles/TFLOPS and what bound each platform.
"""

import numpy as np

from repro.core import (
    ColumnOrder,
    ConvSpec,
    conv2d_channel_first,
    direct_conv2d,
    flatten_filters,
    im2col,
    ofmap_from_gemm,
    random_conv_operands,
)
from repro.gpu import V100, channel_first_conv_time
from repro.systolic import TPUSim


def main() -> None:
    # A ResNet-ish layer: 128 channels at 28x28, 3x3 filter, batch 8.
    spec = ConvSpec(
        n=8, c_in=128, h_in=28, w_in=28, c_out=128,
        h_filter=3, w_filter=3, stride=1, padding=1,
        name="quickstart",
    )
    print(f"Layer: {spec.describe()}")
    print(f"  {spec.macs / 1e6:.1f} MMACs, lowered matrix "
          f"{spec.lowered_rows()} x {spec.lowered_cols()} "
          f"({spec.lowering_expansion():.1f}x the IFMap)")

    # --- numerics: three routes, one answer -------------------------------
    ifmap, weights = random_conv_operands(spec, seed=0)
    reference = direct_conv2d(ifmap, weights, spec)

    lowered = im2col(ifmap, spec, ColumnOrder.CHANNEL_FIRST)
    explicit = ofmap_from_gemm(
        lowered.astype(np.float64) @ flatten_filters(weights, spec, ColumnOrder.CHANNEL_FIRST),
        spec,
    )
    implicit = conv2d_channel_first(ifmap, weights, spec)

    assert np.array_equal(explicit, reference), "explicit lowering diverged"
    assert np.array_equal(implicit, reference), "channel-first diverged"
    print("  numerics: direct == explicit im2col == implicit channel-first  [OK]")

    # --- TPU timing --------------------------------------------------------
    sim = TPUSim()
    tpu = sim.simulate_conv(spec)
    print(f"TPU-v2 (simulated): {tpu.cycles:,.0f} cycles, "
          f"{tpu.tflops:.1f} TFLOPS, utilization {tpu.utilization:.0%}, "
          f"multi-tile={tpu.group_size}")

    # --- GPU timing --------------------------------------------------------
    gpu = channel_first_conv_time(spec, V100)
    print(f"V100 tensor cores (modelled): {gpu.seconds * 1e6:.1f} us, "
          f"{gpu.tflops:.0f} TFLOPS, bound={gpu.kernel.bound}, "
          f"inter-tile reuse={gpu.reuse_fraction:.0%}")


if __name__ == "__main__":
    main()
