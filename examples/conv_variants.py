"""Convolution variants through the channel-first machinery (extension).

Run:  python examples/conv_variants.py

Demonstrates the paper's Sec. II-C claim — that the channel-first
decomposition handles the convolution variants that break the channel-last
design — with executable numerics and model timings:

1. dilated conv (exact numerics + GPU timing comparison),
2. deformable conv (bilinear-gathered decomposed tiles; fused vs the
   explicit-gather fallback),
3. depthwise conv (the honest GEMM-engine worst case).
"""

import numpy as np

from repro.core import (
    ConvSpec,
    GroupedConvSpec,
    conv2d_channel_first,
    deformable_conv2d,
    direct_conv2d,
    grouped_conv2d,
    random_conv_operands,
    zero_offsets,
)
from repro.gpu import (
    V100,
    deformable_conv_time_channel_first,
    deformable_conv_time_fallback,
    dilated_conv_times,
)
from repro.systolic import TPUSim


def dilated_demo() -> None:
    spec = ConvSpec(n=2, c_in=8, h_in=16, w_in=16, c_out=8,
                    h_filter=3, w_filter=3, stride=1, padding=2, dilation=2,
                    name="dilated-d2")
    x, w = random_conv_operands(spec, seed=1)
    assert np.array_equal(conv2d_channel_first(x, w, spec), direct_conv2d(x, w, spec))
    timing_spec = ConvSpec(n=8, c_in=128, h_in=28, w_in=28, c_out=128,
                           h_filter=3, w_filter=3, padding=2, dilation=2)
    cl, cf = dilated_conv_times(timing_spec, V100)
    print(f"dilated d=2: numerics exact; V100 channel-last {cl.seconds * 1e6:.1f} us "
          f"vs channel-first {cf.seconds * 1e6:.1f} us")


def deformable_demo() -> None:
    spec = ConvSpec(n=2, c_in=4, h_in=10, w_in=10, c_out=4,
                    h_filter=3, w_filter=3, stride=1, padding=1)
    x, w = random_conv_operands(spec, seed=2)
    rng = np.random.default_rng(3)
    offsets = rng.uniform(-0.8, 0.8, size=zero_offsets(spec).shape)
    out = deformable_conv2d(x, w, offsets, spec)
    plain = deformable_conv2d(x, w, zero_offsets(spec), spec)
    assert np.allclose(plain, direct_conv2d(x, w, spec))
    print(f"deformable: zero-offset case exact; learned offsets shift the output "
          f"by up to {np.abs(out - plain).max():.1f} (as they should)")

    timing_spec = ConvSpec(n=8, c_in=128, h_in=28, w_in=28, c_out=128,
                           h_filter=3, w_filter=3, padding=1)
    fused = deformable_conv_time_channel_first(timing_spec, V100)
    fallback = deformable_conv_time_fallback(timing_spec, V100)
    print(f"deformable timing: fused channel-first {fused.seconds * 1e6:.1f} us vs "
          f"explicit gather+GEMM {fallback.seconds * 1e6:.1f} us "
          f"({fallback.seconds / fused.seconds:.2f}x)")


def depthwise_demo() -> None:
    base = ConvSpec(n=2, c_in=8, h_in=12, w_in=12, c_out=8,
                    h_filter=3, w_filter=3, padding=1)
    grouped = GroupedConvSpec(base=base, groups=8)
    rng = np.random.default_rng(4)
    x = rng.integers(-3, 4, base.ifmap_shape).astype(np.float64)
    w = rng.integers(-3, 4, grouped.weight_shape).astype(np.float64)
    out = grouped_conv2d(x, w, grouped)
    assert out.shape == base.ofmap_shape
    sim = TPUSim()
    dense = sim.simulate_conv(base)
    per_group = sim.simulate_conv(grouped.per_group_spec())
    dw_cycles = per_group.cycles * grouped.groups
    print(f"depthwise: numerics OK; on the MXU the depthwise version takes "
          f"{dw_cycles / dense.cycles:.1f}x the DENSE layer's cycles for "
          f"{grouped.groups}x fewer MACs — the GEMM engine's honest limit")


def main() -> None:
    dilated_demo()
    deformable_demo()
    depthwise_demo()


if __name__ == "__main__":
    main()
