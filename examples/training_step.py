"""Training with the channel-first decomposition (extension example).

Run:  python examples/training_step.py

The TPU-v2/v3 are training chips, and both convolution backward passes lower
through the same decomposed-1x1 machinery as the forward pass.  This example
runs one numerically-checked SGD step on a tiny conv "network" using only
this repository's kernels, then times the three passes of a real layer on
TPUSim (forward, backward-data and backward-weights are all GEMM sequences
of the same family).
"""

import numpy as np

from repro.core import (
    ConvSpec,
    conv2d_backward_data,
    conv2d_backward_weights,
    conv2d_channel_first,
    random_conv_operands,
)
from repro.core.conv_spec import GemmShape
from repro.systolic import TPUSim


def numeric_grad_check() -> None:
    """Directional-derivative check of both backward passes."""
    spec = ConvSpec(n=2, c_in=3, h_in=8, w_in=8, c_out=4,
                    h_filter=3, w_filter=3, stride=2, padding=1)
    x, w = random_conv_operands(spec, seed=1)
    x = x.astype(np.float64)
    w = w.astype(np.float64)
    rng = np.random.default_rng(2)
    g = rng.standard_normal(spec.ofmap_shape)  # dL/dOFMap

    dx = conv2d_backward_data(g, w, spec)
    dw = conv2d_backward_weights(x, g, spec)

    eps = 1e-6
    direction_x = rng.standard_normal(x.shape)
    loss = lambda xx, ww: float((conv2d_channel_first(xx, ww, spec) * g).sum())
    numeric = (loss(x + eps * direction_x, w) - loss(x - eps * direction_x, w)) / (2 * eps)
    analytic = float((dx * direction_x).sum())
    assert abs(numeric - analytic) < 1e-5 * max(1.0, abs(numeric))

    direction_w = rng.standard_normal(w.shape)
    numeric_w = (loss(x, w + eps * direction_w) - loss(x, w - eps * direction_w)) / (2 * eps)
    analytic_w = float((dw * direction_w).sum())
    assert abs(numeric_w - analytic_w) < 1e-5 * max(1.0, abs(numeric_w))
    print("gradient checks: backward-data and backward-weights  [OK]")


def sgd_step_demo() -> None:
    """One SGD step reduces a quadratic loss — end to end on our kernels."""
    spec = ConvSpec(n=4, c_in=4, h_in=10, w_in=10, c_out=6,
                    h_filter=3, w_filter=3, stride=1, padding=1)
    x, w = random_conv_operands(spec, seed=3)
    x = x.astype(np.float64)
    w = w.astype(np.float64)
    rng = np.random.default_rng(4)
    target = rng.standard_normal(spec.ofmap_shape)

    def loss_and_grad(weights):
        out = conv2d_channel_first(x, weights, spec)
        residual = out - target
        grad_w = conv2d_backward_weights(x, residual, spec)
        return 0.5 * float((residual ** 2).sum()), grad_w

    loss0, grad = loss_and_grad(w)
    w1 = w - 1e-4 * grad
    loss1, _ = loss_and_grad(w1)
    assert loss1 < loss0
    print(f"SGD step: loss {loss0:.1f} -> {loss1:.1f}  [OK]")


def tpu_training_time() -> None:
    """Time forward + both backward GEMM volumes of a layer on TPUSim.

    Backward-data is a ``[M, C_O] x [C_O, C_I]`` GEMM per position and
    backward-weights ``[C_I, M] x [M, C_O]`` — same decomposed family, so we
    time them as the equivalent GEMM primitives.
    """
    spec = ConvSpec(n=8, c_in=128, h_in=28, w_in=28, c_out=128,
                    h_filter=3, w_filter=3, stride=1, padding=1)
    sim = TPUSim()
    forward = sim.simulate_conv(spec)
    m = spec.lowered_rows()
    bwd_data = sim.simulate_gemm(
        GemmShape(m=m, n=spec.c_in * spec.positions, k=spec.c_out), name="bwd-data"
    )
    bwd_weights = sim.simulate_gemm(
        GemmShape(m=spec.c_in * spec.positions, n=spec.c_out, k=m), name="bwd-weights"
    )
    total = forward.cycles + bwd_data.cycles + bwd_weights.cycles
    print(f"TPU training step for {spec.describe()}:")
    print(f"  forward          {forward.cycles:>10,.0f} cycles ({forward.tflops:.1f} TF)")
    print(f"  backward-data    {bwd_data.cycles:>10,.0f} cycles")
    print(f"  backward-weights {bwd_weights.cycles:>10,.0f} cycles")
    print(f"  total            {total:>10,.0f} cycles "
          f"({total / (0.7e9) * 1e6:.0f} us @ 700 MHz)")


def main() -> None:
    numeric_grad_check()
    sgd_step_demo()
    tpu_training_time()


if __name__ == "__main__":
    main()
