"""End-to-end network simulation on both platforms (Figs 15 and 17).

Run:  python examples/end_to_end_network.py [network] [batch]

Simulates every conv layer of a network (default ResNet-50, batch 8) on
TPUSim and the V100 model, prints a per-layer table for the heaviest layers
and the totals, and compares the TPU simulation against the TPU-v2
measurement stand-in the way Fig 15 does.
"""

import sys

from repro.gpu import V100, channel_first_conv_time
from repro.oracle import TPUv2Oracle
from repro.systolic import TPUSim
from repro.workloads import network, network_names


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "ResNet"
    batch = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    layers = network(name, batch)
    sim = TPUSim()
    oracle = TPUv2Oracle()
    clock = sim.config.clock_ghz * 1e9

    rows = []
    tpu_total = 0.0
    oracle_total = 0.0
    gpu_total = 0.0
    for layer in layers:
        tpu = sim.simulate_conv(layer)
        measured = oracle.measured_conv_cycles(layer)
        gpu = channel_first_conv_time(layer, V100)
        tpu_total += tpu.cycles
        oracle_total += measured
        gpu_total += gpu.seconds
        rows.append((layer, tpu, measured, gpu))

    print(f"{name} (batch {batch}): {len(layers)} conv layers, "
          f"{sum(l.macs for l in layers) * 2 / 1e9:.1f} GFLOPs\n")
    print(f"{'layer':>28} {'TPU us':>9} {'TPUv2 us':>9} {'err%':>5} {'GPU us':>8} {'TPU tf':>7}")
    heaviest = sorted(rows, key=lambda r: r[1].cycles, reverse=True)[:12]
    for layer, tpu, measured, gpu in heaviest:
        err = 100 * abs(tpu.cycles - measured) / measured
        print(f"{layer.name:>28} {tpu.cycles / clock * 1e6:>9.1f} "
              f"{measured / clock * 1e6:>9.1f} {err:>5.1f} "
              f"{gpu.seconds * 1e6:>8.1f} {tpu.tflops:>7.1f}")
    print("  ... (heaviest 12 layers shown)\n")

    err_total = 100 * abs(tpu_total - oracle_total) / oracle_total
    print(f"Totals: TPUSim {tpu_total / clock * 1e3:.2f} ms vs TPUv2 "
          f"{oracle_total / clock * 1e3:.2f} ms (error {err_total:.1f}%); "
          f"GPU {gpu_total * 1e3:.2f} ms")
    print(f"Known networks: {', '.join(network_names())}")


if __name__ == "__main__":
    main()
