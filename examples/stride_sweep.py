"""The stride story (Figs 3, 4, 8, 18a): why channel-last implicit im2col
collapses under stride while channel-first does not.

Run:  python examples/stride_sweep.py

Sweeps stride over representative layers and prints, per platform:
- GPU channel-last (cuDNN-like), GPU channel-first (ours), GEMM reference;
- TPU channel-first via TPUSim.
"""

from repro.core import ConvSpec
from repro.gpu import (
    V100,
    channel_first_conv_time,
    channel_last_conv_time,
    gemm_kernel_time,
)
from repro.systolic import TPUSim

LAYERS = [
    ConvSpec(n=64, c_in=64, h_in=56, w_in=56, c_out=64,
             h_filter=3, w_filter=3, padding=1, name="56-64-64-3"),
    ConvSpec(n=64, c_in=128, h_in=28, w_in=28, c_out=128,
             h_filter=3, w_filter=3, padding=1, name="28-128-128-3"),
]
STRIDES = (1, 2, 4)


def main() -> None:
    sim = TPUSim()
    header = f"{'layer':>14} {'s':>2} | {'GPU CL':>7} {'GPU CF':>7} {'GEMM':>7} | {'TPU CF':>7}"
    print(header)
    print("-" * len(header))
    for layer in LAYERS:
        for stride in STRIDES:
            spec = layer.with_stride(stride)
            cl = channel_last_conv_time(spec, V100).tflops
            cf = channel_first_conv_time(spec, V100).tflops
            gemm = gemm_kernel_time(spec.gemm_shape(), V100).tflops
            tpu = sim.simulate_conv(spec).tflops
            print(f"{layer.name:>14} {stride:>2} | {cl:7.1f} {cf:7.1f} {gemm:7.1f} | {tpu:7.1f}")
        print()
    print("TFLOPS.  GPU CL = channel-last implicit (the cuDNN-like path);")
    print("GPU CF = our block-level channel-first; GEMM = equivalent-size GEMM;")
    print("TPU CF = channel-first on TPUSim.  Note CL's collapse at stride 4,")
    print("CF's resilience, and the TPU's near-total insensitivity (Fig 4).")


if __name__ == "__main__":
    main()
