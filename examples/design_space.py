"""Hardware design-space exploration with TPUSim (Fig 16).

Run:  python examples/design_space.py

Uses the simulator's configurability to answer two of the paper's design
questions:
1. Why a 128x128 array?  Sweep the array size on VGG16 and watch the
   FLOPS/utilization trade-off.
2. Why an 8-element vector-memory word?  Sweep the word size and price the
   SRAM macro area (OpenRAM-substitute model) against the port idle ratio.
"""

from repro.memory import SRAMModel
from repro.systolic import TPU_V2, TPUSim, VectorMemoryModel
from repro.workloads import vgg16


def array_size_sweep() -> None:
    print("Array-size sweep (VGG16, batch 8):")
    print(f"  {'array':>6} {'TFLOPS':>8} {'utilization':>12}")
    layers = vgg16(batch=8)
    for size in (32, 64, 128, 256, 512):
        sim = TPUSim(TPU_V2.with_array(size))
        cycles = 0.0
        macs = 0
        for layer in layers:
            res = sim.simulate_conv(layer)
            cycles += res.cycles
            macs += res.macs
        tflops = 2 * macs * sim.config.clock_ghz / cycles / 1e3
        util = macs / (sim.config.peak_macs_per_cycle * cycles)
        marker = "  <- TPU-v2" if size == 128 else ""
        print(f"  {size:>6} {tflops:>8.1f} {util:>12.0%}{marker}")
    print("  Bigger arrays buy FLOPS but waste utilization; 128 is the knee.\n")


def word_size_sweep() -> None:
    print("Vector-memory word-size sweep (256 KB macro):")
    print(f"  {'word':>5} {'area mm^2':>10} {'vs 32-elem':>11} {'port idle':>10}")
    sram = SRAMModel()
    capacity = 256 * 1024
    for word in (1, 2, 4, 8, 16, 32):
        word_bytes = word * TPU_V2.sram_elem_bytes
        area = sram.area_mm2(capacity, word_bytes)
        ratio = sram.area_ratio(capacity, word_bytes, 32 * TPU_V2.sram_elem_bytes)
        idle = VectorMemoryModel(TPU_V2.with_word_elems(word)).idle_ratio()
        marker = "  <- TPU-v2" if word == 8 else ""
        print(f"  {word:>5} {area:>10.2f} {ratio:>11.2f} {idle:>10.0%}{marker}")
    print("  Word 8 sits past the area knee but leaves >50% of port bandwidth")
    print("  idle — the headroom the TPU-v3 spends on a second systolic array.")


def main() -> None:
    array_size_sweep()
    word_size_sweep()


if __name__ == "__main__":
    main()
