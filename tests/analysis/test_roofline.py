"""Roofline placement."""

import pytest

from repro.analysis import conv_roofline, gemm_roofline, ridge_intensity
from repro.core import ConvSpec, GemmShape


def test_ridge_intensity():
    # 22.9 TFLOPS over 700 GB/s -> ~32.8 FLOPs/byte
    assert ridge_intensity(22.9, 700) == pytest.approx(32.7, rel=0.01)


def test_ridge_validation():
    with pytest.raises(ValueError):
        ridge_intensity(0, 700)


def test_big_gemm_compute_bound():
    point = gemm_roofline(GemmShape(4096, 4096, 4096), peak_tflops=22.9, bandwidth_gbps=700)
    assert point.bound == "compute"
    assert point.attainable_tflops == pytest.approx(22.9)


def test_skinny_gemm_memory_bound():
    point = gemm_roofline(GemmShape(4096, 1, 4096), peak_tflops=22.9, bandwidth_gbps=700)
    assert point.memory_bound
    assert point.attainable_tflops < 22.9


def test_conv_intensity_grows_with_filter():
    small = ConvSpec(n=1, c_in=64, h_in=28, w_in=28, c_out=64, h_filter=1, w_filter=1)
    big = ConvSpec(n=1, c_in=64, h_in=28, w_in=28, c_out=64, h_filter=3, w_filter=3, padding=1)
    p_small = conv_roofline(small, 22.9, 700)
    p_big = conv_roofline(big, 22.9, 700)
    assert p_big.intensity_flops_per_byte > p_small.intensity_flops_per_byte


def test_attainable_never_exceeds_peak():
    layer = ConvSpec(n=64, c_in=512, h_in=14, w_in=14, c_out=512, h_filter=3, w_filter=3, padding=1)
    point = conv_roofline(layer, 22.9, 700)
    assert point.attainable_tflops <= 22.9
