"""Validation-run machinery."""

import pytest

from repro.analysis import ValidationRun


@pytest.fixture
def run():
    r = ValidationRun("test")
    r.add("a", 105, 100)
    r.add("b", 95, 100)
    r.add("c", 120, 100)
    return r


def test_point_error(run):
    assert run.points[0].error_pct == pytest.approx(5.0)


def test_mape(run):
    assert run.mape() == pytest.approx((5 + 5 + 20) / 3)


def test_stats(run):
    stats = run.stats()
    assert stats.count == 3
    assert stats.max_pct == pytest.approx(20.0)


def test_worst_ordering(run):
    worst = run.worst(2)
    assert [p.label for p in worst] == ["c", "a"] or [p.label for p in worst] == ["c", "b"]


def test_labels(run):
    assert run.labels == ("a", "b", "c")


def test_assert_mape_below_passes(run):
    run.assert_mape_below(15.0)


def test_assert_mape_below_fails(run):
    with pytest.raises(AssertionError, match="MAPE"):
        run.assert_mape_below(5.0)
