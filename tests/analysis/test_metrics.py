"""Metrics and error statistics."""

import pytest

from repro.analysis import (
    error_stats,
    geometric_mean,
    mean_absolute_percentage_error,
    normalized,
    relative_error,
    tflops,
)


class TestTflops:
    def test_basic(self):
        assert tflops(macs=5e11, seconds=1.0) == pytest.approx(1.0)

    def test_rejects_zero_time(self):
        with pytest.raises(ValueError):
            tflops(1, 0)


class TestNormalized:
    def test_values(self):
        assert normalized([2.0, 4.0], 2.0) == [1.0, 2.0]

    def test_zero_reference(self):
        with pytest.raises(ValueError):
            normalized([1.0], 0.0)


class TestErrors:
    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(90, 100) == pytest.approx(0.1)

    def test_mape(self):
        assert mean_absolute_percentage_error([110, 95], [100, 100]) == pytest.approx(7.5)

    def test_mape_validation(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([], [])
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([1], [1, 2])

    def test_error_stats(self):
        stats = error_stats([101, 110, 80], [100, 100, 100])
        assert stats.count == 3
        assert stats.mean_pct == pytest.approx((1 + 10 + 20) / 3)
        assert stats.max_pct == pytest.approx(20)
        assert stats.median_pct == pytest.approx(10)

    def test_p90_on_larger_set(self):
        sims = [100 + i for i in range(10)]
        stats = error_stats(sims, [100] * 10)
        assert stats.p90_pct == pytest.approx(8.0)


class TestGeomean:
    def test_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])
