"""Measurement stand-ins: determinism, noise statistics, plausibility."""

import pytest

from repro.core import ConvSpec, GemmShape
from repro.oracle import GPUOracle, TPUv2Oracle, deterministic_noise


@pytest.fixture
def tpu():
    return TPUv2Oracle()


@pytest.fixture
def gpu():
    return GPUOracle()


@pytest.fixture
def layer():
    return ConvSpec(n=8, c_in=128, h_in=28, w_in=28, c_out=128,
                    h_filter=3, w_filter=3, stride=1, padding=1)


class TestNoise:
    def test_deterministic(self):
        assert deterministic_noise("x", 0.05, 1) == deterministic_noise("x", 0.05, 1)

    def test_bounded(self):
        for i in range(200):
            assert abs(deterministic_noise(f"key{i}", 0.05)) <= 0.05

    def test_zero_amplitude(self):
        assert deterministic_noise("x", 0.0) == 0.0

    def test_key_and_seed_sensitivity(self):
        assert deterministic_noise("a", 0.1) != deterministic_noise("b", 0.1)
        assert deterministic_noise("a", 0.1, 1) != deterministic_noise("a", 0.1, 2)

    def test_roughly_uniform(self):
        values = [deterministic_noise(f"k{i}", 1.0) for i in range(500)]
        mean = sum(values) / len(values)
        assert abs(mean) < 0.15
        assert min(values) < -0.8 and max(values) > 0.8

    def test_negative_amplitude_rejected(self):
        with pytest.raises(ValueError):
            deterministic_noise("x", -1.0)


class TestTPUOracle:
    def test_gemm_cycles_plausible(self, tpu):
        """A big square GEMM must land between 100% and ~130% of the ideal
        systolic cycle count."""
        shape = GemmShape(4096, 4096, 4096)
        ideal = (4096 / 128) * (4096 / 128) * 4096
        measured = tpu.measured_gemm_cycles(shape)
        assert ideal * 0.9 <= measured <= ideal * 1.3

    def test_conv_cycles_positive_and_deterministic(self, tpu, layer):
        a = tpu.measured_conv_cycles(layer)
        assert a > 0
        assert a == tpu.measured_conv_cycles(layer)

    def test_conv_tflops_near_or_below_peak(self, tpu, layer):
        """Measurement noise can nudge a near-peak layer slightly above the
        nominal peak (as real measurements do); it must stay within the
        noise band."""
        tflops = tpu.measured_conv_tflops(layer)
        assert 0 < tflops <= tpu.config.peak_tflops * (1 + tpu.noise_amplitude + 0.01)

    def test_multi_tile_policy_reflected(self, tpu):
        """Small C_I with the policy engaged must beat the no-merge estimate
        implied by 9 full passes."""
        small = ConvSpec(n=8, c_in=8, h_in=64, w_in=64, c_out=128,
                         h_filter=3, w_filter=3, padding=1)
        tflops = tpu.measured_conv_tflops(small)
        # With merge: 3 groups instead of 9 -> ~3x the unmerged throughput.
        assert tflops > 1.0

    def test_network_cycles_sum(self, tpu, layer):
        assert tpu.measured_network_cycles([layer, layer]) == pytest.approx(
            2 * tpu.measured_conv_cycles(layer)
        )

    def test_stride_fragmentation_surcharge(self, tpu, layer):
        """Strided convs pay a memory fragmentation factor (only visible on
        memory-bound shapes, but the factor must never make stride cheaper
        per MAC)."""
        s2 = layer.with_stride(2)
        per_mac_1 = tpu.measured_conv_cycles(layer) / layer.macs
        per_mac_2 = tpu.measured_conv_cycles(s2) / s2.macs
        assert per_mac_2 > 0.8 * per_mac_1


class TestGPUOracle:
    def test_implicit_seconds_deterministic(self, gpu, layer):
        assert gpu.measured_implicit_seconds(layer) == gpu.measured_implicit_seconds(layer)

    def test_explicit_split_reported(self, gpu, layer):
        result = gpu.measured_explicit(layer)
        assert result.transform.seconds > 0
        assert result.gemm.seconds > 0
        assert result.workspace_bytes == layer.lowered_bytes(2)

    def test_explicit_noise_independent_per_kernel(self, gpu, layer):
        """Transform and GEMM perturb independently (separate profiler
        entries)."""
        a = gpu.measured_explicit(layer)
        clean = GPUOracle(noise_amplitude=0.0).measured_explicit(layer)
        t_factor = a.transform.seconds / clean.transform.seconds
        g_factor = a.gemm.seconds / clean.gemm.seconds
        assert t_factor != pytest.approx(g_factor, abs=1e-9)

    def test_tflops_below_peak(self, gpu, layer):
        assert 0 < gpu.measured_implicit_tflops(layer) < gpu.config.peak_tflops
