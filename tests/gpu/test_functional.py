"""Functional blocked GPU kernels: numerics, no-atomics, measured reuse."""

import numpy as np
import pytest

from repro.core import ConvSpec, direct_conv2d, random_conv_operands
from repro.gpu.functional import BlockedChannelFirstKernel, BlockedChannelLastKernel


@pytest.fixture
def spec():
    return ConvSpec(n=2, c_in=8, h_in=12, w_in=12, c_out=8,
                    h_filter=3, w_filter=3, stride=1, padding=1)


def test_channel_first_matches_reference(spec):
    x, w = random_conv_operands(spec, 41)
    kernel = BlockedChannelFirstKernel(tile_m=16, tile_n=8)
    out = kernel.run(x, w, spec)  # verify=True raises on divergence
    assert np.allclose(out, direct_conv2d(x, w, spec))


def test_channel_last_matches_reference(spec):
    x, w = random_conv_operands(spec, 42)
    BlockedChannelLastKernel(tile_m=16, tile_n=8).run(x, w, spec)


@pytest.mark.parametrize("stride", [1, 2])
def test_no_atomics_needed(stride, spec):
    """Fig 12's point: blocking the output first means every element is
    written by exactly one thread block."""
    s = spec.with_stride(stride)
    x, w = random_conv_operands(s, 43)
    kernel = BlockedChannelFirstKernel(tile_m=16, tile_n=8)
    kernel.run(x, w, s)
    kernel.stats.assert_no_atomics_needed()
    assert kernel.stats.output_writes == s.lowered_rows() * s.c_out


def test_reordering_cuts_loads_at_stride_2(spec):
    """The executable version of Fig 18b: at stride 2 the reuse order
    fetches substantially less from global memory than the naive order."""
    s = spec.with_stride(2)
    x, w = random_conv_operands(s, 44)
    reordered = BlockedChannelFirstKernel(tile_m=16, tile_n=8, reorder=True)
    reordered.run(x, w, s)
    naive = BlockedChannelFirstKernel(tile_m=16, tile_n=8, reorder=False)
    naive.run(x, w, s)
    assert reordered.stats.global_elements_loaded < 0.75 * naive.stats.global_elements_loaded


def test_channel_first_loads_less_than_channel_last_at_stride_2(spec):
    """The executable version of Fig 18a's mechanism."""
    s = spec.with_stride(2)
    x, w = random_conv_operands(s, 45)
    cf = BlockedChannelFirstKernel(tile_m=16, tile_n=8, reorder=True)
    cf.run(x, w, s)
    cl = BlockedChannelLastKernel(tile_m=16, tile_n=8)
    cl.run(x, w, s)
    assert cf.stats.global_elements_loaded < cl.stats.global_elements_loaded


def test_channel_last_stages_input_region(spec):
    """CL's shared-memory high water is input-geometry-sized (whole rows)."""
    x, w = random_conv_operands(spec, 46)
    cl = BlockedChannelLastKernel(tile_m=16, tile_n=8)
    cl.run(x, w, spec)
    width = spec.w_in + 2 * spec.padding
    assert cl.stats.shared_high_water_elements >= 3 * width * spec.c_in


def test_channel_first_shared_footprint_shrinks_with_stride(spec):
    x, w = random_conv_operands(spec, 47)
    at_1 = BlockedChannelFirstKernel(tile_m=32, tile_n=8)
    at_1.run(x, w, spec)
    s2 = spec.with_stride(2)
    x2, w2 = random_conv_operands(s2, 47)
    at_2 = BlockedChannelFirstKernel(tile_m=32, tile_n=8)
    at_2.run(x2, w2, s2)
    assert at_2.stats.shared_high_water_elements <= at_1.stats.shared_high_water_elements


def test_thread_block_count(spec):
    x, w = random_conv_operands(spec, 48)
    kernel = BlockedChannelFirstKernel(tile_m=32, tile_n=4)
    kernel.run(x, w, spec)
    import math
    expected = math.ceil(spec.lowered_rows() / 32) * math.ceil(spec.c_out / 4)
    assert kernel.stats.thread_blocks == expected


def test_dilated_functional():
    spec = ConvSpec(n=1, c_in=4, h_in=11, w_in=11, c_out=4,
                    h_filter=3, w_filter=3, stride=1, padding=2, dilation=2)
    x, w = random_conv_operands(spec, 49)
    BlockedChannelFirstKernel(tile_m=16, tile_n=4).run(x, w, spec)
    BlockedChannelLastKernel(tile_m=16, tile_n=4).run(x, w, spec)


def test_shape_validation(spec):
    x, w = random_conv_operands(spec)
    with pytest.raises(ValueError):
        BlockedChannelFirstKernel().run(x[:1], w, spec)
    with pytest.raises(ValueError):
        BlockedChannelFirstKernel(tile_m=0)
