"""GPU CONV variants: dilated and deformable."""

import dataclasses

import pytest

from repro.core import ConvSpec
from repro.gpu import (
    V100,
    deformable_conv_time_channel_first,
    deformable_conv_time_fallback,
    dilated_conv_times,
)


@pytest.fixture
def dilated():
    return ConvSpec(n=8, c_in=128, h_in=28, w_in=28, c_out=128,
                    h_filter=3, w_filter=3, stride=1, padding=2, dilation=2)


@pytest.fixture
def deformable_layer():
    return ConvSpec(n=8, c_in=128, h_in=28, w_in=28, c_out=128,
                    h_filter=3, w_filter=3, stride=1, padding=1)


class TestDilated:
    def test_both_paths_run(self, dilated):
        cl, cf = dilated_conv_times(dilated, V100)
        assert cl.seconds > 0 and cf.seconds > 0
        assert cf.kernel.macs == dilated.macs

    def test_channel_first_never_much_slower(self, dilated):
        cl, cf = dilated_conv_times(dilated, V100)
        assert cf.seconds <= cl.seconds * 1.1

    def test_rejects_dilation_1(self, deformable_layer):
        with pytest.raises(ValueError):
            dilated_conv_times(deformable_layer, V100)


class TestDeformable:
    def test_fused_beats_fallback(self, deformable_layer):
        """The Sec. II-C claim: the channel-last ecosystem's explicit gather
        + GEMM loses to the fused channel-first gather."""
        fallback = deformable_conv_time_fallback(deformable_layer, V100)
        fused = deformable_conv_time_channel_first(deformable_layer, V100)
        assert fused.seconds < fallback.seconds

    def test_fallback_includes_lowered_materialisation(self, deformable_layer):
        fallback = deformable_conv_time_fallback(deformable_layer, V100)
        assert fallback.traffic_bytes > deformable_layer.lowered_bytes(2)

    def test_both_report_algorithmic_macs(self, deformable_layer):
        fused = deformable_conv_time_channel_first(deformable_layer, V100)
        fallback = deformable_conv_time_fallback(deformable_layer, V100)
        assert fused.macs == fallback.macs == deformable_layer.macs

    def test_deformable_costs_more_than_plain(self, deformable_layer):
        """The 4x bilinear gather must cost something vs plain conv."""
        from repro.gpu import channel_first_conv_time

        plain = channel_first_conv_time(deformable_layer, V100)
        fused = deformable_conv_time_channel_first(deformable_layer, V100)
        assert fused.seconds >= plain.seconds

    def test_advantage_holds_across_spatial_sizes(self):
        """The fused gather wins at small and large IFMaps alike (both the
        materialised matrix and the gather scale with the output count)."""
        for size in (14, 56):
            spec = ConvSpec(n=8, c_in=64, h_in=size, w_in=size, c_out=64,
                            h_filter=3, w_filter=3, stride=1, padding=1)
            fallback = deformable_conv_time_fallback(spec, V100)
            fused = deformable_conv_time_channel_first(spec, V100)
            assert fallback.seconds / fused.seconds > 1.1
