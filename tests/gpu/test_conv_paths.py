"""The three GPU conv paths and the cuDNN stand-in: Fig 2a/4a/17/18 shapes."""

import pytest

from repro.core import ConvSpec
from repro.gpu import (
    V100,
    channel_first_conv_time,
    channel_last_conv_time,
    cudnn_conv_time,
    explicit_conv_time,
    gemm_kernel_time,
    im2col_transform_time,
    kernel_time,
)


@pytest.fixture
def layer():
    return ConvSpec(n=8, c_in=128, h_in=28, w_in=28, c_out=128,
                    h_filter=3, w_filter=3, stride=1, padding=1)


@pytest.fixture
def big_layer():
    return ConvSpec(n=64, c_in=64, h_in=56, w_in=56, c_out=64,
                    h_filter=3, w_filter=3, stride=1, padding=1)


class TestKernelTime:
    def test_overlap_bound(self):
        kt = kernel_time("k", 4096, 4096, 4096, traffic_bytes=10**6, config=V100)
        assert kt.seconds == pytest.approx(
            max(kt.compute_seconds, kt.memory_seconds) + V100.kernel_overhead_s
        )

    def test_staged_priced_slower(self):
        streamed = kernel_time("s", 1024, 64, 64, traffic_bytes=10**8, config=V100)
        staged = kernel_time("g", 1024, 64, 64, traffic_bytes=0, config=V100,
                             staged_bytes=10**8)
        assert staged.memory_seconds > streamed.memory_seconds

    def test_tflops_uses_logical_macs(self):
        kt = kernel_time("k", 100, 100, 100, traffic_bytes=1, config=V100, macs=10**6)
        assert kt.tflops == pytest.approx(2e6 / kt.seconds / 1e12)

    def test_scaled(self):
        kt = kernel_time("k", 128, 128, 128, traffic_bytes=1, config=V100)
        assert kt.scaled(2.0).seconds == pytest.approx(2 * kt.seconds)
        with pytest.raises(ValueError):
            kt.scaled(0)

    def test_negative_traffic_rejected(self):
        with pytest.raises(ValueError):
            kernel_time("k", 1, 1, 1, traffic_bytes=-1, config=V100)


class TestExplicitPath:
    def test_transform_is_pure_bandwidth(self, layer):
        t = im2col_transform_time(layer, V100)
        assert t.compute_seconds == 0.0
        assert t.macs == 0
        assert t.traffic_bytes == layer.ifmap_bytes(2) + layer.lowered_bytes(2)

    def test_explicit_total_is_sum(self, layer):
        result = explicit_conv_time(layer, V100)
        assert result.seconds == pytest.approx(result.transform.seconds + result.gemm.seconds)
        assert result.workspace_bytes == layer.lowered_bytes(2)
        assert 0 < result.transform_fraction < 1

    def test_explicit_slower_than_implicit(self, big_layer):
        """Fig 2a: the transform is pure overhead over the implicit path."""
        explicit = explicit_conv_time(big_layer, V100).seconds
        implicit = cudnn_conv_time(big_layer, V100).seconds
        assert explicit > implicit

    def test_explicit_gemm_tracks_implicit(self):
        """Fig 2a's second observation: on compute-bound layers the explicit
        path's GEMM component is close to the implicit method's total (on
        low-C_O layers the lowered A-panel makes the explicit GEMM itself
        memory-bound and slower — also visible in the paper's DenseNet bar)."""
        layer = ConvSpec(n=64, c_in=256, h_in=14, w_in=14, c_out=256,
                         h_filter=3, w_filter=3, stride=1, padding=1)
        explicit = explicit_conv_time(layer, V100)
        implicit = cudnn_conv_time(layer, V100)
        assert explicit.gemm.seconds == pytest.approx(implicit.seconds, rel=0.2)


class TestStrideBehaviour:
    def test_channel_last_degrades_with_stride(self, big_layer):
        """Fig 4a: TFLOPS drops hard at stride 2 and 4."""
        t = {s: channel_last_conv_time(big_layer.with_stride(s), V100).tflops
             for s in (1, 2, 4)}
        assert t[2] < 0.85 * t[1]
        assert t[4] < 0.5 * t[1]

    def test_gemm_reference_stays_high(self, big_layer):
        """Fig 4a: the equivalent GEMM does not collapse with stride."""
        t = {s: gemm_kernel_time(big_layer.with_stride(s).gemm_shape(), V100).tflops
             for s in (1, 2, 4)}
        assert t[4] > 0.5 * t[1]

    def test_channel_first_beats_channel_last_at_stride(self):
        """Fig 18a's mechanism."""
        layer = ConvSpec(n=8, c_in=128, h_in=56, w_in=56, c_out=128,
                         h_filter=3, w_filter=3, stride=2, padding=1)
        ours = channel_first_conv_time(layer, V100).seconds
        cudnn = cudnn_conv_time(layer, V100).seconds
        assert ours < cudnn

    def test_near_parity_at_stride_1(self, layer):
        """Fig 17: within a few percent of cuDNN at stride 1."""
        ours = channel_first_conv_time(layer, V100).seconds
        cudnn = cudnn_conv_time(layer, V100).seconds
        assert ours / cudnn == pytest.approx(1.0, abs=0.08)


class TestChannelFirstDetails:
    def test_reorder_reduces_time_when_memory_bound(self):
        layer = ConvSpec(n=8, c_in=384, h_in=13, w_in=13, c_out=384,
                         h_filter=3, w_filter=3, padding=1)
        reuse = channel_first_conv_time(layer, V100, reorder=True)
        naive = channel_first_conv_time(layer, V100, reorder=False)
        assert reuse.seconds < naive.seconds
        assert reuse.reuse_fraction > 0.5
        assert naive.reuse_fraction == 0.0

    def test_result_carries_flags(self, layer):
        result = channel_first_conv_time(layer, V100, reorder=True)
        assert result.reordered
        assert result.tflops > 0

    def test_addressing_overhead_bounds(self, layer):
        with pytest.raises(ValueError):
            channel_first_conv_time(layer, V100, addressing_overhead=1.0)
        with pytest.raises(ValueError):
            channel_last_conv_time(layer, V100, addressing_overhead=-0.1)


class TestCudnnModel:
    def test_deterministic(self, layer):
        a = cudnn_conv_time(layer, V100).seconds
        b = cudnn_conv_time(layer, V100).seconds
        assert a == b

    def test_noise_is_small(self, layer):
        noisy = cudnn_conv_time(layer, V100, noise_amplitude=0.015).seconds
        clean = cudnn_conv_time(layer, V100, noise_amplitude=0.0).seconds
        assert abs(noisy / clean - 1) < 0.02

    def test_seed_changes_noise(self, layer):
        a = cudnn_conv_time(layer, V100, seed=1).seconds
        b = cudnn_conv_time(layer, V100, seed=2).seconds
        assert a != b
