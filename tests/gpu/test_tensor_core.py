"""Tensor-core compute timing: padding, serial bound, adaptive tiles."""

import pytest

from repro.gpu import V100, padded_macs, tc_gemm_compute_seconds, wave_count


class TestPadding:
    def test_exact_multiple_no_padding(self):
        assert padded_macs(256, 64, 256, V100) == 256 * 64 * 256

    def test_padding_rounds_up(self):
        assert padded_macs(129, 33, 129, V100) == 256 * 64 * 256

    def test_wave_count(self):
        # 1024x1024 -> 64 tiles of 128x128; 160 concurrent slots -> 1 wave
        assert wave_count(1024, 1024, V100) == 1
        assert wave_count(8192, 8192, V100) == pytest.approx(4096 / 160, abs=1)


class TestThroughput:
    def test_big_gemm_near_sustained(self):
        t = tc_gemm_compute_seconds(8192, 8192, 8192, V100)
        ideal = 8192 ** 3 / V100.sustained_macs_per_s
        assert t.seconds == pytest.approx(ideal, rel=0.02)

    def test_small_gemm_slower_per_mac(self):
        small = tc_gemm_compute_seconds(128, 2048, 64, V100)
        big = tc_gemm_compute_seconds(8192, 2048, 8192, V100)
        small_rate = 128 * 2048 * 64 / small.seconds
        big_rate = 8192 * 2048 * 8192 / big.seconds
        assert small_rate < big_rate

    def test_adaptive_tiling_helps_small_grids(self):
        """A skinny GEMM must beat the naive 128x128 single-tile serial
        bound (real libraries pick smaller tiles)."""
        t = tc_gemm_compute_seconds(1024, 2304, 128, V100)
        serial_128 = (128 * 128 * 2304) / (V100.sustained_macs_per_s / V100.num_sms)
        assert t.seconds < serial_128

    def test_monotone_in_each_dim(self):
        base = tc_gemm_compute_seconds(1024, 1024, 1024, V100).seconds
        assert tc_gemm_compute_seconds(2048, 1024, 1024, V100).seconds > base
        assert tc_gemm_compute_seconds(1024, 2048, 1024, V100).seconds > base
        assert tc_gemm_compute_seconds(1024, 1024, 2048, V100).seconds > base

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            tc_gemm_compute_seconds(0, 1, 1, V100)

    def test_reports_executed_and_tiles(self):
        t = tc_gemm_compute_seconds(256, 64, 256, V100)
        assert t.executed_macs >= 256 * 64 * 256
        assert t.tiles >= 1
        assert t.waves >= 1
