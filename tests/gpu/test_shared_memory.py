"""Shared-memory staging traffic models for the three conv paths."""

import pytest

from repro.core import ConvSpec
from repro.gpu import (
    V100,
    channel_first_fill_bytes,
    channel_last_fill_bytes,
    gemm_a_traffic_bytes,
    gemm_b_traffic_bytes,
    gemm_c_traffic_bytes,
    shared_tile_fits,
)


@pytest.fixture
def spec():
    return ConvSpec(n=8, c_in=64, h_in=56, w_in=56, c_out=128,
                    h_filter=3, w_filter=3, stride=1, padding=1)


class TestGemmTraffic:
    def test_a_reloads_per_n_column(self):
        one_col = gemm_a_traffic_bytes(100_000, 512, 128, V100)
        two_col = gemm_a_traffic_bytes(100_000, 512, 256, V100)
        assert two_col == 2 * one_col

    def test_l2_caps_small_operands(self):
        """A B-matrix that fits L2 streams from DRAM once regardless of the
        number of M-tiles re-reading it."""
        small_b = gemm_b_traffic_bytes(100_000, 512, 128, V100)
        assert small_b == 512 * 128 * V100.elem_bytes

    def test_l2_miss_for_huge_operands(self):
        big_b = gemm_b_traffic_bytes(100_000, 8192, 8192, V100)
        assert big_b > 8192 * 8192 * V100.elem_bytes

    def test_c_written_once(self):
        assert gemm_c_traffic_bytes(1000, 128, V100) == 1000 * 128 * 2


class TestChannelLastFill:
    def test_footprint_does_not_shrink_like_compute(self, spec):
        """Fig 3's asymmetry: stride-2 compute is ~1/4, but the channel-last
        staged footprint shrinks much less."""
        base = channel_last_fill_bytes(spec, V100)
        strided = channel_last_fill_bytes(spec.with_stride(2), V100)
        assert strided > base / 3  # nowhere near the ~1/4 compute shrink

    def test_reloads_with_output_channels(self, spec):
        import dataclasses
        wide = dataclasses.replace(spec, c_out=256)
        assert channel_last_fill_bytes(wide, V100) == 2 * channel_last_fill_bytes(spec, V100)

    def test_includes_halo(self, spec):
        """Staged bytes exceed the raw IFMap (filter halo re-staging)."""
        assert channel_last_fill_bytes(spec, V100) > spec.ifmap_bytes(2)


class TestChannelFirstFill:
    def test_shrinks_quadratically_with_stride(self, spec):
        base = channel_first_fill_bytes(spec, V100)
        strided = channel_first_fill_bytes(spec.with_stride(2), V100)
        assert strided < base / 3

    def test_reuse_reduces_traffic(self, spec):
        none = channel_first_fill_bytes(spec, V100, reuse_fraction=0.0)
        high = channel_first_fill_bytes(spec, V100, reuse_fraction=0.8)
        assert high < 0.4 * none

    def test_full_reuse_leaves_one_fill(self, spec):
        limit = channel_first_fill_bytes(spec, V100, reuse_fraction=0.999)
        per_position = spec.lowered_rows() * spec.c_in * 2
        assert limit == pytest.approx(per_position, rel=0.05)

    def test_reuse_fraction_bounds(self, spec):
        with pytest.raises(ValueError):
            channel_first_fill_bytes(spec, V100, reuse_fraction=1.0)
        with pytest.raises(ValueError):
            channel_first_fill_bytes(spec, V100, reuse_fraction=-0.1)

    def test_pointwise_single_position(self):
        spec = ConvSpec(n=8, c_in=64, h_in=28, w_in=28, c_out=64,
                        h_filter=1, w_filter=1)
        bytes_ = channel_first_fill_bytes(spec, V100, reuse_fraction=0.0)
        assert bytes_ == spec.lowered_rows() * spec.c_in * 2


def test_default_tiles_fit_shared_memory(spec):
    assert shared_tile_fits(spec, V100)
