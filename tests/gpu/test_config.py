"""GPUConfig invariants and V100 derived numbers."""

import dataclasses

import pytest

from repro.gpu import GPUConfig, TileConfig, V100


def test_v100_peak_tflops():
    # 80 SMs x 512 MACs x 1.53 GHz x 2 = 125.4 TFLOPS
    assert V100.peak_tflops == pytest.approx(125.4, rel=0.01)


def test_sustained_rates_below_peak():
    assert V100.sustained_macs_per_s < V100.peak_macs_per_s
    assert V100.sustained_bandwidth_bps < V100.hbm_bandwidth_gbps * 1e9
    assert V100.staging_bandwidth_bps < V100.sustained_bandwidth_bps


def test_tile_defaults():
    assert (V100.tile.tile_m, V100.tile.tile_n, V100.tile.tile_k) == (128, 128, 32)


def test_tile_validation():
    with pytest.raises(ValueError):
        TileConfig(tile_m=0)


@pytest.mark.parametrize(
    "field,value",
    [
        ("num_sms", 0),
        ("clock_ghz", 0),
        ("compute_efficiency", 1.5),
        ("staging_efficiency", 0),
        ("hbm_bandwidth_gbps", -1),
        ("l2_bytes", -1),
    ],
)
def test_invalid_fields(field, value):
    with pytest.raises(ValueError):
        dataclasses.replace(V100, **{field: value})


def test_describe():
    text = V100.describe()
    assert "80 SMs" in text and "125" in text
