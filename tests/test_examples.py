"""Smoke tests: every example script runs to completion as a subprocess."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def _run(script, *args):
    return subprocess.run(
        [sys.executable, str(script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_examples_directory_populated():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "stride_sweep.py", "design_space.py",
            "end_to_end_network.py", "training_step.py"} <= names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = _run(script)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_end_to_end_accepts_network_argument():
    script = next(p for p in EXAMPLES if p.name == "end_to_end_network.py")
    result = _run(script, "AlexNet", "4")
    assert result.returncode == 0, result.stderr
    assert "AlexNet" in result.stdout
