"""Audit-suite fixtures: never leak an enabled auditor into other suites."""

import pytest

from repro.audit import auditor


@pytest.fixture(autouse=True)
def _audit_off_after():
    yield
    auditor.configure("off")
