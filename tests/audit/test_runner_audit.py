"""Runner integration: --audit plumbing, zero-overhead-off byte identity,
manifest/metrics exposure, and the failure path."""

import json

import pytest

from repro.audit import auditor
from repro.harness.runner import RunTelemetry, harness_metrics, main
from repro.obs import log as obs_log


@pytest.fixture(autouse=True)
def reset_log_state():
    obs_log.shutdown()
    yield
    obs_log.shutdown()


def test_audit_off_stdout_is_byte_identical(capsys):
    assert main(["table2", "--quick"]) == 0
    flagless = capsys.readouterr()
    assert main(["table2", "--quick", "--audit", "off"]) == 0
    explicit_off = capsys.readouterr()
    assert explicit_off.out == flagless.out
    assert "audit[" not in flagless.out


def test_audit_full_run_is_green_and_summarised(capsys):
    assert main(["fig13", "--quick", "--audit", "full"]) == 0
    out = capsys.readouterr().out
    assert "audit[full]:" in out
    assert "0 violation(s)" in out
    # Level must not leak into later unaudited runs in this process.
    assert not auditor.enabled()


def test_audit_cheap_reports_checks(capsys):
    assert main(["fig13", "--quick", "--audit", "cheap"]) == 0
    out = capsys.readouterr().out
    summary = [line for line in out.splitlines() if line.startswith("audit[cheap]")]
    assert summary, out
    checks = int(summary[0].split(":")[1].split()[0])
    assert checks > 0


def test_audit_block_lands_in_manifest_and_metrics(tmp_path, capsys):
    assert main([
        "fig13", "--quick", "--audit", "cheap",
        "--manifest", "--results-dir", str(tmp_path),
    ]) == 0
    capsys.readouterr()
    (run_dir,) = tmp_path.iterdir()
    manifest = json.loads((run_dir / "manifest.json").read_text())
    block = manifest["extra"]["audit"]
    assert block["level"] == "cheap"
    assert block["checks"] > 0
    assert block["violations"] == 0
    assert block["checks_by_invariant"]
    prom = (run_dir / "metrics.prom").read_text()
    assert "repro_audit_checks_total" in prom
    violations_lines = [
        line for line in prom.splitlines()
        if line.startswith("repro_audit_violations_total")
    ]
    assert violations_lines and violations_lines[0].endswith(" 0")


def test_unaudited_manifest_keeps_pre_audit_shape(tmp_path, capsys):
    assert main([
        "table2", "--quick", "--manifest", "--results-dir", str(tmp_path),
    ]) == 0
    capsys.readouterr()
    (run_dir,) = tmp_path.iterdir()
    manifest = json.loads((run_dir / "manifest.json").read_text())
    assert "audit" not in manifest["extra"]
    assert "audit" not in manifest["args"]
    assert "repro_audit" not in (run_dir / "metrics.prom").read_text()


def test_injected_break_fails_the_run(capsys):
    code = main([
        "fig13", "--quick", "--audit", "cheap",
        "--inject-faults", "audit-break=tpu.macs.conservation",
        "--max-retries", "0",
    ])
    assert code == 1
    err = capsys.readouterr().err
    assert "tpu.macs.conservation" in err


def test_telemetry_audit_fold():
    a = RunTelemetry(audit={"level": "cheap", "checks": 3,
                            "checks_by_invariant": {"x": 3}, "violations": 1})
    b = RunTelemetry(audit={"level": "cheap", "checks": 2,
                            "checks_by_invariant": {"x": 1, "y": 1},
                            "violations": 0})
    merged = RunTelemetry.merge([a, b])
    assert merged.audit["checks"] == 5
    assert merged.audit["violations"] == 1
    assert merged.audit["checks_by_invariant"] == {"x": 4, "y": 1}


def test_harness_metrics_audit_counters_only_when_audited():
    silent = harness_metrics(RunTelemetry(), 1.0)
    assert "repro_audit_checks_total" not in silent.counters
    audited = harness_metrics(
        RunTelemetry(audit={"level": "cheap", "checks": 9, "violations": 2}),
        1.0,
    )
    assert audited.counters["repro_audit_checks_total"] == 9
    assert audited.counters["repro_audit_violations_total"] == 2
