"""Replay every archived fuzz case under full audit.

``tests/audit/corpus/`` holds minimal reproducers: hostile-but-passing
seeds checked in by hand, plus any case the fuzzer ever shrank out of a
real violation.  Each entry must simulate cleanly — a case that fails here
is a regression of a previously-fixed (or never-fixed) model bug.
"""

import pathlib

import pytest

from repro.audit.fuzz import load_corpus, run_spec, spec_from_dict

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"

ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_is_seeded():
    assert len(ENTRIES) >= 6, "seed corpus went missing"


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[e["id"] for e in ENTRIES]
)
def test_corpus_case_replays_clean(entry):
    spec = spec_from_dict(entry["spec"])
    failure = run_spec(spec, entry.get("tpu_config") or "tpu_v2")
    assert failure is None, (
        f"corpus case {entry['id']} regressed: "
        f"{failure and failure.get('invariant')}: "
        f"{failure and failure.get('message')}"
    )
