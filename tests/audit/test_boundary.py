"""Float-drift guards at the simulator boundaries (always on, zero tolerance).

Cycle counts are legitimately fractional (bandwidth division), but MAC
totals are integral by construction: any fractional MAC count means an
upstream computation drifted into float arithmetic and would silently
round.  These guards fail loudly instead, and exact ``int`` arithmetic is
regression-tested at magnitudes where ``float64`` can no longer represent
every integer (>= 2**53).
"""

import pytest

from repro.errors import AuditFault
from repro.gpu.config import V100
from repro.gpu.tensor_core import padded_macs, tc_gemm_compute_seconds
from repro.systolic.scheduler import ScheduleResult
from repro.systolic.simulator import TPUSim, _boundary_macs


def test_boundary_macs_passes_ints_through_exactly():
    # 2**53 + 1 is the first integer float64 cannot represent; the boundary
    # must keep it exact (no roundtrip through float).
    huge = 2**53 + 1
    assert _boundary_macs(huge, "big-layer") == huge
    assert isinstance(_boundary_macs(huge, "big-layer"), int)
    assert _boundary_macs(7.0, "whole-float") == 7


def test_boundary_macs_rejects_fractional_totals():
    with pytest.raises(AuditFault) as excinfo:
        _boundary_macs(1000.5, "drifty-layer")
    assert excinfo.value.invariant == "tpu.macs.integral"
    assert excinfo.value.actual == 1000.5


def test_layer_result_keeps_huge_mac_totals_exact():
    # A synthetic outcome whose MAC total sits past 2**53: the published
    # LayerResult must carry the exact integer, not a float-rounded one.
    huge = 2**53 + 1
    outcome = ScheduleResult(
        total_cycles=1e9, compute_cycles=9e8, dma_cycles=3e8,
        exposed_dma_cycles=1e8, items=10, macs=huge,
    )
    result = TPUSim()._layer_result("near-2^53", huge, outcome, 1)
    assert result.macs == huge
    assert isinstance(result.macs, int)
    assert result.tflops > 0 and result.utilization > 0


def test_layer_result_rejects_non_finite_cycles():
    outcome = ScheduleResult(
        total_cycles=float("inf"), compute_cycles=1.0, dma_cycles=1.0,
        exposed_dma_cycles=0.0, items=1, macs=100,
    )
    with pytest.raises(AuditFault) as excinfo:
        TPUSim()._layer_result("inf-layer", 100, outcome, 1)
    assert excinfo.value.invariant == "tpu.cycles.finite"


def test_tensor_core_executed_macs_is_exact_int():
    compute = tc_gemm_compute_seconds(1000, 576, 128, V100)
    assert isinstance(compute.executed_macs, int)
    # Executed volume is tile-padded, never less than the best-tiling padded
    # volume can shrink below the logical problem.
    assert compute.executed_macs >= 1000 * 576 * 128
    assert compute.seconds > 0


def test_padded_macs_covers_logical_volume():
    assert padded_macs(100, 100, 100, V100) >= 100**3
