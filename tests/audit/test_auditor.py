"""Auditor state machine: levels, counters, payloads, the break hook."""

import pickle

import pytest

from repro.audit import auditor
from repro.audit.auditor import AuditLevel, Auditor
from repro.errors import AuditFault, classify_error
from repro.resilience import faults


def test_levels_parse_and_rank():
    assert AuditLevel.parse("off") is AuditLevel.OFF
    assert AuditLevel.parse("FULL") is AuditLevel.FULL
    assert AuditLevel.parse(AuditLevel.CHEAP) is AuditLevel.CHEAP
    assert AuditLevel.OFF.rank < AuditLevel.CHEAP.rank < AuditLevel.FULL.rank
    with pytest.raises(ValueError):
        AuditLevel.parse("paranoid")


def test_default_is_off_and_gates_are_false():
    a = Auditor()
    assert a.level is AuditLevel.OFF
    assert not a.enabled
    assert not a.full


def test_configure_mirrors_enabled_flag():
    a = Auditor()
    a.configure("cheap")
    assert a.enabled and not a.full
    a.configure("full")
    assert a.enabled and a.full
    a.configure("off")
    assert not a.enabled


def test_passing_check_counts_without_raising():
    a = Auditor(AuditLevel.CHEAP)
    a.check("x.y", True, expected=1, actual=1)
    a.check("x.y", True, expected=1, actual=1)
    a.check("x.z", True, expected=1, actual=1)
    snap = a.snapshot()
    assert snap["checks"] == 3
    assert snap["checks_by_invariant"] == {"x.y": 2, "x.z": 1}
    assert snap["violations"] == 0


def test_failing_check_raises_structured_fault():
    a = Auditor(AuditLevel.CHEAP)
    with pytest.raises(AuditFault) as excinfo:
        a.check(
            "tpu.macs.conservation", False,
            expected=10, actual=9, message="lost a MAC",
            context={"layer": "conv1"},
        )
    fault = excinfo.value
    assert fault.invariant == "tpu.macs.conservation"
    assert fault.expected == 10 and fault.actual == 9
    assert fault.context == {"layer": "conv1"}
    assert "tpu.macs.conservation" in str(fault)
    assert a.violations == 1
    assert a.violation_records[0]["invariant"] == "tpu.macs.conservation"


def test_audit_fault_payload_survives_pickling():
    # Supervised pool workers ship AuditFaults across process boundaries.
    try:
        auditor.configure("cheap")
        auditor.check("a.b", False, expected="e", actual="a")
    except AuditFault as fault:
        clone = pickle.loads(pickle.dumps(fault))
        assert clone.invariant == "a.b"
        assert clone.payload() == fault.payload()
    else:
        pytest.fail("check did not raise")


def test_classify_error_maps_audit_fault():
    fault = AuditFault("boom", invariant="x")
    assert classify_error(fault) is AuditFault


def test_reset_zeroes_counters_but_keeps_level():
    a = Auditor(AuditLevel.FULL)
    a.check("x", True, expected=1, actual=1)
    a.verified_keys.add(("k",))
    a.reset()
    assert a.checks == 0 and a.violations == 0
    assert not a.verified_keys
    assert a.level is AuditLevel.FULL


def test_module_level_helpers_share_global_state():
    auditor.configure("cheap")
    auditor.reset()
    assert auditor.enabled() and not auditor.full()
    auditor.check("m.n", True, expected=0, actual=0)
    assert auditor.snapshot()["checks"] == 1
    assert auditor.get_auditor().checks == 1


def test_audit_break_injection_flips_matching_check():
    auditor.configure("cheap")
    auditor.reset()
    plan = faults.FaultPlan.parse("audit-break=tpu.macs.conservation")
    faults.activate(plan)
    try:
        # Non-matching invariant passes untouched.
        auditor.check("tpu.utilization.range", True, expected=1, actual=1)
        with pytest.raises(AuditFault) as excinfo:
            auditor.check(
                "tpu.macs.conservation", True, expected=1, actual=1
            )
    finally:
        faults.deactivate()
    assert "deliberately broken" in str(excinfo.value)
    assert plan.counters.get("audit_break") == 1


def test_audit_break_any_matches_everything():
    auditor.configure("cheap")
    auditor.reset()
    faults.activate(faults.FaultPlan.parse("audit-break=any"))
    try:
        with pytest.raises(AuditFault):
            auditor.check("whatever.id", True, expected=1, actual=1)
    finally:
        faults.deactivate()


def test_empty_audit_break_spec_rejected():
    with pytest.raises(ValueError):
        faults.FaultPlan.parse("audit-break=")
