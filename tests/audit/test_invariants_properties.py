"""Property suite: every cheap invariant holds on random valid ConvSpecs.

The generators deliberately include the hostile corners the fuzzer is
biased toward (dilation, stride > kernel, non-divisible channels, 1x1 and
1xN kernels, batch 1); a single spec for which a conservation law fails is
a real model bug, so these tests simply run the models under audit and
assert no violation fired.
"""

from hypothesis import given, settings, strategies as st

from repro.audit import auditor
from repro.core.conv_spec import ConvSpec, output_extent
from repro.errors import ConfigError
from repro.gpu.channel_first import channel_first_conv_time
from repro.gpu.config import V100
from repro.systolic.config import TPU_V2
from repro.systolic.simulator import TPUSim

import pytest


@st.composite
def specs(draw):
    h_filter = draw(st.sampled_from((1, 1, 2, 3, 5)))
    w_filter = draw(st.sampled_from((1, 2, 3, 5, 7)))
    dilation = draw(st.sampled_from((1, 1, 2, 3)))
    padding = draw(st.integers(0, 2))
    stride = draw(st.sampled_from((1, 2, 3, 4)))
    # Keep the effective filter inside the padded input on both axes.
    h_min = max(1, dilation * (h_filter - 1) + 1 - 2 * padding)
    w_min = max(1, dilation * (w_filter - 1) + 1 - 2 * padding)
    return ConvSpec(
        n=draw(st.sampled_from((1, 1, 2, 4))),
        c_in=draw(st.sampled_from((1, 3, 16, 33, 64, 129))),
        h_in=draw(st.integers(h_min, h_min + 20)),
        w_in=draw(st.integers(w_min, w_min + 20)),
        c_out=draw(st.sampled_from((1, 5, 32, 64, 130))),
        h_filter=h_filter,
        w_filter=w_filter,
        stride=stride,
        padding=padding,
        dilation=dilation,
        name="prop",
    )


@settings(max_examples=25, deadline=None)
@given(spec=specs())
def test_tpu_path_passes_cheap_invariants(spec):
    auditor.configure("cheap")
    auditor.reset()
    TPUSim(TPU_V2).simulate_conv(spec)
    snap = auditor.snapshot()
    assert snap["violations"] == 0
    assert snap["checks_by_invariant"]["tpu.macs.conservation"] == 1
    assert snap["checks_by_invariant"]["tpu.dram.read-bounds"] == 1
    assert snap["checks_by_invariant"]["tpu.latency.roofline"] == 1


@settings(max_examples=25, deadline=None)
@given(spec=specs())
def test_gpu_path_passes_cheap_invariants(spec):
    auditor.configure("cheap")
    auditor.reset()
    channel_first_conv_time(spec, V100)
    snap = auditor.snapshot()
    assert snap["violations"] == 0
    assert snap["checks_by_invariant"]["gpu.flops.equivalence"] == 1
    assert snap["checks_by_invariant"]["gpu.kernel.roofline"] >= 1


@settings(max_examples=15, deadline=None)
@given(spec=specs())
def test_tpu_full_differential_agrees(spec):
    auditor.configure("full")
    auditor.reset()
    TPUSim(TPU_V2).simulate_conv(spec)
    snap = auditor.snapshot()
    assert snap["violations"] == 0
    assert snap["checks_by_invariant"]["diff.reference-vs-vectorized"] == 1
    assert snap["checks_by_invariant"]["diff.cache-coherence"] == 1


# ------------------------------------------------- output-size formula (sat 1)


def _brute_force_extent(in_extent, filt, stride, pad, dilation):
    """Count window start positions whose every tap lands in the padded input."""
    effective = dilation * (filt - 1) + 1
    count = 0
    start = -pad
    while start + effective <= in_extent + pad:
        count += 1
        start += stride
    return count


@settings(max_examples=200, deadline=None)
@given(
    in_extent=st.integers(1, 40),
    filt=st.integers(1, 7),
    stride=st.integers(1, 5),
    pad=st.integers(0, 4),
    dilation=st.integers(1, 4),
)
def test_output_extent_matches_brute_force(in_extent, filt, stride, pad, dilation):
    expected = _brute_force_extent(in_extent, filt, stride, pad, dilation)
    if expected <= 0:
        with pytest.raises(ConfigError):
            output_extent(in_extent, filt, stride, pad, dilation)
    else:
        assert output_extent(in_extent, filt, stride, pad, dilation) == expected


def test_nonfitting_spec_error_names_axis_and_derived_shape():
    # 3x3 at dilation 2 has effective extent 5 > input 4: h_out would be <= 0.
    with pytest.raises(ConfigError) as excinfo:
        ConvSpec(1, 1, 4, 9, 1, 3, 3, stride=1, padding=0, dilation=2)
    err = excinfo.value
    assert err.field == "h_out"
    assert err.value <= 0
    assert "OFMap" in str(err)


def test_nonfitting_width_names_w_out():
    with pytest.raises(ConfigError) as excinfo:
        ConvSpec(1, 1, 9, 2, 1, 1, 5, stride=1, padding=0)
    assert excinfo.value.field == "w_out"


def test_bad_stride_error_still_names_stride():
    with pytest.raises(ConfigError) as excinfo:
        ConvSpec(1, 1, 8, 8, 1, 3, 3, stride=0)
    assert excinfo.value.field == "stride"
