"""Fuzz harness: determinism, shrinking, corpus writes, the injected-break
end-to-end pipeline, and the CLI surface."""

import json
import random

import pytest

from repro.audit import fuzz
from repro.audit.fuzz import (
    SPEC_FIELDS,
    run_fuzz,
    run_spec,
    sample_spec,
    shrink_spec,
    spec_from_dict,
    spec_to_dict,
    write_corpus_entry,
)
from repro.core.conv_spec import ConvSpec
from repro.errors import ConfigError


def _sample_many(seed, count):
    rng = random.Random(seed)
    out = []
    while len(out) < count:
        try:
            out.append(sample_spec(rng))
        except ConfigError:
            continue
    return out


def test_sampling_is_deterministic_per_seed():
    assert _sample_many(7, 20) == _sample_many(7, 20)
    assert _sample_many(7, 20) != _sample_many(8, 20)


def test_sampler_hits_hostile_corners():
    specs = _sample_many(0, 300)
    assert any(s.h_filter == 1 and s.w_filter == 1 for s in specs)
    assert any(s.h_filter != s.w_filter for s in specs)
    assert any(s.stride > max(s.h_filter, s.w_filter) for s in specs)
    assert any(s.dilation > 1 for s in specs)
    assert any(s.n == 1 for s in specs)
    assert any(s.c_in % 128 for s in specs)


def test_clean_campaign_is_deterministic_and_green():
    first = run_fuzz(specs=25, seed=11, write_corpus=False, log=lambda _: None)
    second = run_fuzz(specs=25, seed=11, write_corpus=False, log=lambda _: None)
    assert first.violations == 0
    assert first.specs_run == second.specs_run == 25
    assert first.rejected == second.rejected


def test_run_spec_returns_none_on_healthy_spec():
    assert run_spec(ConvSpec(1, 3, 8, 8, 4, 3, 3, padding=1, name="ok")) is None


# ------------------------------------------------------------------ shrinking


def test_shrink_reaches_global_floor_when_everything_fails():
    failure = {"invariant": "fake.broken", "error_type": "AuditFault"}
    minimal = shrink_spec(
        ConvSpec(8, 96, 28, 28, 127, 5, 5, stride=2, padding=2, dilation=1),
        failure,
        reproduce=lambda s: dict(failure),
    )
    assert spec_to_dict(minimal) == {
        "n": 1, "c_in": 1, "h_in": 1, "w_in": 1, "c_out": 1,
        "h_filter": 1, "w_filter": 1, "stride": 1, "padding": 0, "dilation": 1,
    }


def test_shrink_preserves_the_failing_condition():
    failure = {"invariant": "fake.cin", "error_type": "AuditFault"}

    def reproduce(spec):
        return dict(failure) if spec.c_in >= 4 else None

    minimal = shrink_spec(
        ConvSpec(4, 96, 14, 14, 32, 3, 3, padding=1), failure,
        reproduce=reproduce,
    )
    assert minimal.c_in == 4  # cannot shrink past the trigger
    assert minimal.n == 1 and minimal.h_in == 1 and minimal.h_filter == 1


def test_shrink_is_deterministic():
    failure = {"invariant": "fake.odd", "error_type": "AuditFault"}

    def reproduce(spec):
        return dict(failure) if spec.w_in % 2 else None

    start = ConvSpec(2, 8, 21, 21, 8, 3, 3, padding=1)
    assert shrink_spec(start, failure, reproduce=reproduce) == shrink_spec(
        start, failure, reproduce=reproduce
    )


def test_shrink_does_not_chase_a_different_failure():
    original = {"invariant": "fake.a", "error_type": "AuditFault"}

    def reproduce(spec):
        # Shrunken candidates fail differently; those must not be adopted.
        if spec.c_in < 8:
            return {"invariant": "fake.b", "error_type": "AuditFault"}
        return dict(original)

    minimal = shrink_spec(
        ConvSpec(1, 16, 4, 4, 4, 1, 1), original, reproduce=reproduce
    )
    assert minimal.c_in >= 8


# ------------------------------------------------------------------- corpus


def test_corpus_write_is_idempotent_and_round_trips(tmp_path):
    spec = ConvSpec(1, 3, 8, 8, 4, 3, 3, padding=1, name="case")
    first = write_corpus_entry(tmp_path, spec, "tpu_v2",
                               failure={"invariant": "x.y"})
    second = write_corpus_entry(tmp_path, spec, "tpu_v2",
                                failure={"invariant": "x.y"})
    assert first == second
    assert len(list(tmp_path.glob("case-*.json"))) == 1
    entry = json.loads(first.read_text())
    assert entry["invariant"] == "x.y"
    restored = spec_from_dict(entry["spec"])
    assert spec_to_dict(restored) == spec_to_dict(spec)


def test_corpus_entries_sorted_and_tagged(tmp_path):
    for c_in in (3, 5, 7):
        write_corpus_entry(
            tmp_path, ConvSpec(1, c_in, 8, 8, 4, 3, 3, padding=1), "tpu_v2"
        )
    entries = fuzz.load_corpus(tmp_path)
    assert len(entries) == 3
    assert [e["_path"] for e in entries] == sorted(e["_path"] for e in entries)
    assert all(e["schema"] == fuzz.CORPUS_SCHEMA for e in entries)


# ----------------------------------------------------- injected-break e2e


def test_injected_break_is_caught_shrunk_and_archived(tmp_path):
    report = run_fuzz(
        specs=2, seed=0, corpus_dir=tmp_path,
        inject_faults="audit-break=tpu.macs.conservation",
        log=lambda _: None,
    )
    assert report.violations == 2
    assert report.corpus_paths
    with open(report.corpus_paths[0]) as handle:
        entry = json.load(handle)
    assert entry["invariant"] == "tpu.macs.conservation"
    assert entry["injected"] == "audit-break=tpu.macs.conservation"
    # The shrinker reaches the global minimum (the injection breaks every
    # spec, so nothing stops the reduction).
    assert entry["spec"] == {
        "n": 1, "c_in": 1, "h_in": 1, "w_in": 1, "c_out": 1,
        "h_filter": 1, "w_filter": 1, "stride": 1, "padding": 0, "dilation": 1,
    }
    assert entry["shrunk_from"] is not None


def test_injection_deactivated_after_campaign(tmp_path):
    from repro.resilience import faults

    run_fuzz(specs=1, seed=0, corpus_dir=tmp_path,
             inject_faults="audit-break=any", log=lambda _: None)
    assert faults.get_active() is None


# ----------------------------------------------------------------- CLI


def test_cli_fuzz_green_campaign(capsys):
    from repro.__main__ import main

    assert main(["fuzz", "--specs", "5", "--seed", "1", "--no-corpus"]) == 0
    out = capsys.readouterr().out
    assert "5 specs" in out and "0 violation(s)" in out


def test_cli_fuzz_exit_one_on_violation(tmp_path, capsys):
    from repro.__main__ import main

    assert main([
        "fuzz", "--specs", "1", "--seed", "0",
        "--corpus", str(tmp_path),
        "--inject-faults", "audit-break=any",
    ]) == 1
    assert list(tmp_path.glob("case-*.json"))
