"""Runner plumbing: CLI args, run_all, error paths."""

import pytest

from repro.harness.runner import EXPERIMENTS, main, run_all, run_experiment


def test_main_selected_experiment(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out


def test_main_quick_flag(capsys):
    assert main(["fig7", "--quick"]) == 0
    assert "fig7" in capsys.readouterr().out


def test_main_unknown_experiment():
    with pytest.raises(KeyError):
        main(["fig99"])


def test_run_experiment_returns_result():
    result = run_experiment("table1")
    assert result.experiment_id == "table1"
    assert result.tables


def test_run_all_quick_covers_registry():
    results = run_all(quick=True)
    assert {r.experiment_id for r in results} == set(EXPERIMENTS)


def test_every_experiment_renders_nonempty():
    for eid in ("table1", "table2", "fig7"):
        text = run_experiment(eid).render()
        assert eid in text
        assert len(text) > 100
