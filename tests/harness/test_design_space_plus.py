"""Extended-DSE experiment shapes."""

import pytest

from repro.harness.experiments import design_space_plus


@pytest.fixture(scope="module")
def result():
    return design_space_plus.run()


def test_bandwidth_monotone_and_saturating(result):
    table = result.table("HBM bandwidth sweep (VGG16, batch 8)")
    tflops = table.column("TFLOPS")
    assert all(b >= a - 1e-9 for a, b in zip(tflops, tflops[1:]))
    by_bw = dict(zip(table.column("GB/s"), tflops))
    assert by_bw[1400] < 1.05 * by_bw[700]  # saturated


def test_port_budget_table(result):
    table = result.table("Port budget: arrays feedable per word size")
    by_word = dict(zip(table.column("word (elems)"), table.column("max arrays")))
    assert by_word[8] == 4 and by_word[2] == 1


def test_dual_mxu_scaling_shape(result):
    table = result.table("Dual-MXU core (word 8, shared vector memories)")
    for row in table.rows:
        scaling, starved = row[4], row[5]
        assert scaling > 1.7
        assert starved < scaling


def test_registered():
    from repro.harness.runner import EXPERIMENTS

    assert "design_space_plus" in EXPERIMENTS
