"""Integration tests: every reproduced table/figure must exhibit the paper's
shape.  These run the actual experiment code (full workloads — the whole
suite takes a few seconds) and assert the headline relations the paper
reports: who wins, by roughly what factor, where the crossovers are.
"""

import pytest

from repro.harness.runner import EXPERIMENTS, run_all, run_experiment


@pytest.fixture(scope="module")
def results():
    """Run every experiment once; individual tests assert on the outputs."""
    return {eid: run_experiment(eid) for eid in EXPERIMENTS}


def test_registry_covers_design_md():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "fig2", "fig4", "fig7", "fig13", "fig14",
        "fig15", "fig16", "fig17", "fig18", "ablations", "extensions",
        "batch_sweep", "sparsity", "design_space_plus",
    }


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        run_experiment("fig99")


class TestTable1:
    def test_expansion_band(self, results):
        table = results["table1"].table("Table I (batch 1, FP16)")
        expansions = table.column("AlexNet") + table.column("VGG16")
        ifmaps, lowered, expansion = (table.rows[0], table.rows[1], table.rows[2])
        for i in range(1, len(ifmaps)):
            assert lowered[i] > ifmaps[i]
            assert 1.5 <= expansion[i] <= 12.0


class TestFig2:
    def test_gpu_explicit_slower_everywhere(self, results):
        table = results["fig2"].table("Fig 2a: V100 GPU (normalized to implicit)")
        for total in table.column("explicit total"):
            assert total > 1.0

    def test_gpu_explicit_gemm_tracks_implicit(self, results):
        """The explicit path's GEMM component sits near the implicit total
        (DenseNet runs high: its lowered A-panels make even the GEMM
        memory-bound, as the paper's Table I sizes foreshadow)."""
        table = results["fig2"].table("Fig 2a: V100 GPU (normalized to implicit)")
        ratios = table.column("explicit GEMM")
        for gemm in ratios:
            assert 0.5 <= gemm <= 1.8
        assert sum(ratios) / len(ratios) == pytest.approx(1.2, abs=0.25)

    def test_tpu_explicit_slower(self, results):
        table = results["fig2"].table(
            "Fig 2b: TPU-v2 (normalized to implicit; transform est. from GPU)"
        )
        totals = table.column("explicit total")
        assert all(t > 1.0 for t in totals)
        average = sum(totals) / len(totals)
        assert 1.05 <= average <= 1.45  # paper: 1.23


class TestFig4:
    def test_gpu_degrades_with_stride(self, results):
        table = results["fig4"].table("Fig 4a: V100 tensor cores (TFLOPS)")
        for row in table.rows:
            s1, s2, s4 = row[1], row[2], row[3]
            assert s2 < 0.85 * s1
            assert s4 < 0.5 * s1

    def test_gpu_gemm_reference_above_conv_at_stride(self, results):
        table = results["fig4"].table("Fig 4a: V100 tensor cores (TFLOPS)")
        for row in table.rows:
            conv_s4, gemm_s4 = row[3], row[6]
            assert gemm_s4 >= conv_s4 * 0.95

    def test_tpu_insensitive(self, results):
        table = results["fig4"].table("Fig 4b: TPU (TFLOPS)")
        for row in table.rows:
            s1, s2, s4 = row[1], row[2], row[3]
            assert s2 > 0.85 * s1
            assert s4 > 0.8 * s1


class TestFig7:
    def test_hwc_never_slower(self, results):
        table = results["fig7"].table("Fig 7: tile-fill cost by DRAM layout")
        by_stride = {}
        for stride, layout, runs, mean_run, cycles, bw in table.rows:
            by_stride.setdefault(stride, {})[layout] = cycles
        for stride, cycles in by_stride.items():
            assert cycles["NHWC"] <= cycles["NCHW"] * 1.01

    def test_hwc_advantage_grows_with_stride(self, results):
        table = results["fig7"].table("Fig 7: tile-fill cost by DRAM layout")
        by_stride = {}
        for stride, layout, *_rest, cycles, bw in [
            (r[0], r[1], r[4], r[5]) for r in table.rows
        ]:
            pass  # structure handled below
        grouped = {}
        for row in table.rows:
            grouped.setdefault(row[0], {})[row[1]] = row[4]
        ratio_s1 = grouped[1]["NCHW"] / grouped[1]["NHWC"]
        ratio_s4 = grouped[4]["NCHW"] / grouped[4]["NHWC"]
        assert ratio_s4 > ratio_s1


class TestValidationErrors:
    """The headline validation numbers must land in the paper's band."""

    def test_fig13a_gemm(self, results):
        note = [n for n in results["fig13"].notes if n.startswith("GEMM")][0]
        error = float(note.split(":")[1].split("%")[0])
        assert error < 8.0  # paper: 4.42%

    def test_fig13b_conv(self, results):
        note = [n for n in results["fig13"].notes if n.startswith("CONV")][0]
        error = float(note.split(":")[1].split("%")[0])
        assert error < 8.0  # paper: 4.87%

    def test_fig14b_policy(self, results):
        note = [n for n in results["fig14"].notes if "Policy" in n][0]
        error = float(note.split(":")[1].split("%")[0])
        assert error < 9.0  # paper: 5.3%

    def test_fig15b_layerwise(self, results):
        table = results["fig15"].table("Fig 15b: layer-wise error distribution")
        mae = table.rows[0][1]
        assert mae < 10.0  # paper: 5.8%


class TestFig14Shape:
    def test_workspace_linear_performance_plateau(self, results):
        table = results["fig14"].table("Fig 14a: tiles vs performance and workspace")
        tiles = table.column("tiles")
        speedups = table.column("speedup vs 1")
        workspaces = table.column("workspace (MB)")
        # workspace linear while merging is possible (row-aligned merging
        # caps at W_F = 3; see the experiment note / EXPERIMENTS.md)
        w_f = 3
        for t, w in zip(tiles, workspaces):
            assert w == pytest.approx(min(t, w_f) * workspaces[0], rel=0.01)
        # speedup rises to W_F=3 then plateaus
        assert speedups[1] > 1.2
        assert speedups[2] > speedups[1]
        for later in speedups[3:]:
            assert later == pytest.approx(speedups[2], rel=0.05)


class TestFig16Shape:
    def test_array_size_tradeoff(self, results):
        table = results["fig16"].table("Fig 16a: array size sweep (VGG16)")
        tflops = table.column("TFLOPS")
        util = table.column("utilization")
        assert tflops == sorted(tflops)  # performance rises
        assert util == sorted(util, reverse=True)  # utilization falls
        by_size = dict(zip(table.column("array"), util))
        assert by_size[256] < 0.65 * by_size[128]  # roughly halves

    def test_word_size_area_knee(self, results):
        table = results["fig16"].table("Fig 16b: vector-memory word size (256 KB macro)")
        areas = table.column("area (mm^2)")
        idles = table.column("port idle ratio")
        assert areas == sorted(areas, reverse=True)
        assert idles == sorted(idles)
        by_word = dict(zip(table.column("word (elems)"), idles))
        assert by_word[8] == pytest.approx(0.75)


class TestFig17Shape:
    def test_near_parity(self, results):
        table = results["fig17"].table("Fig 17")
        ratios = table.column("ours (normalized)")
        average = sum(ratios) / len(ratios)
        assert average == pytest.approx(1.0, abs=0.05)  # paper: ~1.01
        assert all(0.85 <= r <= 1.15 for r in ratios)


class TestFig18Shape:
    def test_strided_wins(self, results):
        table = results["fig18"].table("Fig 18a: strided layers, ours vs cuDNN")
        speedups = table.column("speedup")
        mean = sum(speedups) / len(speedups)
        assert mean > 1.1  # paper: 1.2 average
        assert max(speedups) > 1.3  # paper: up to 1.4
        assert min(speedups) > 0.9  # never catastrophically worse

    def test_reuse_improvement_band(self, results):
        table = results["fig18"].table("Fig 18b: inter-tile reuse impact")
        gains = table.column("improvement %")
        mean = sum(gains) / len(gains)
        assert 8.0 <= mean <= 45.0  # paper: 16.7%
        assert all(g >= 0 for g in gains)


def test_quick_mode_runs_everything():
    for result in run_all(quick=True):
        assert result.tables
        assert result.render()
