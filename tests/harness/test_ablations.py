"""The ablation/extension experiment's shape assertions."""

import pytest

from repro.harness.experiments import ablations


@pytest.fixture(scope="module")
def result():
    return ablations.run()


def test_channel_last_counterfactual(result):
    table = result.table("Counterfactual: channel-last schedule on the TPU (TFLOPS)")
    advantage = dict(zip(table.column("stride"), table.column("CF advantage")))
    assert advantage[1] == pytest.approx(1.0, abs=0.15)
    assert advantage[2] > 1.3
    assert advantage[4] > 3.0


def test_weight_fifo_helps(result):
    table = result.table("Weight-FIFO double buffering")
    cycles = dict(zip(table.column("config"), table.column("cycles")))
    assert cycles["with FIFO"] < cycles["serial weight loads"]


def test_dram_layout_penalty_grows_with_stride(result):
    table = result.table("DRAM layout for IFMap fills (TPU conv)")
    ratios = dict(zip(table.column("stride"), table.column("CHW/HWC")))
    assert ratios[1] >= 0.99
    assert ratios[4] > ratios[1]


def test_reordering_recovers_stride2_reuse(result):
    table = result.table("Decomposed-filter visit order (reuse fraction)")
    rows = {r[0]: (r[1], r[2]) for r in table.rows}
    naive_s2, greedy_s2 = rows[2]
    assert naive_s2 == 0.0
    assert greedy_s2 > 0.4


def test_deformable_speedup(result):
    table = result.table("CONV variants on V100 (ms)")
    rows = {r[0]: r[3] for r in table.rows}
    assert rows["deformable"] > 1.1
    assert rows["dilated (d=2)"] > 0.85  # near parity or better


def test_multicore_efficiency(result):
    table = result.table("Data-parallel TPU cores (batch 64)")
    efficiencies = table.column("efficiency")
    assert all(e > 0.9 for e in efficiencies)


def test_energy_word_knee(result):
    table = result.table("Energy per MAC vs vector-memory word (pJ)")
    pj = dict(zip(table.column("word (elems)"), table.column("pJ/MAC")))
    assert pj[2] > pj[8] > pj[32]


def test_registered_in_runner():
    from repro.harness.runner import EXPERIMENTS

    assert "ablations" in EXPERIMENTS
