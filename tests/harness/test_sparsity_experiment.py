"""Sparsity extension experiment shapes."""

import pytest

from repro.harness.experiments import sparsity


@pytest.fixture(scope="module")
def result():
    return sparsity.run()


def test_speedup_near_ideal(result):
    table = result.table("Kept-position sweep (3x3 layer)")
    for row in table.rows:
        keep, density, cycles, speedup, ideal = row
        assert 0.7 * ideal <= speedup <= ideal * 1.02


def test_vgg_end_to_end_speedup(result):
    table = result.table("VGG16 at 5/9 positions per layer (batch 8)")
    speedup = table.rows[1][2]
    assert 1.4 <= speedup <= 1.8  # 5/9 density -> ~1.7x


def test_registered():
    from repro.harness.runner import EXPERIMENTS

    assert "sparsity" in EXPERIMENTS
