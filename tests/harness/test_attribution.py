"""``repro report``: Fig 2a attribution arithmetic, rendering, CLI."""

import json

import pytest

from repro.harness.attribution import (
    attribute_entries,
    load_golden,
    render_html,
    render_markdown,
    report_main,
    summarize,
)
from repro.systolic.config import TPU_V2
from repro.trace.goldens import compute_golden

GOLDENS_DIR = "tests/trace/goldens"


@pytest.fixture(scope="module")
def fig13_payload():
    return load_golden(f"{GOLDENS_DIR}/fig13.json")


@pytest.fixture(scope="module")
def fig13_rows(fig13_payload):
    return attribute_entries(fig13_payload)


# ----------------------------------------------------------- decomposition


def test_every_tpu_entry_yields_a_row(fig13_payload, fig13_rows):
    tpu = [e for e in fig13_payload["entries"]
           if e["kind"] in ("tpu-conv", "tpu-gemm")]
    assert len(fig13_rows) == len(tpu) > 0


def test_split_reconstructs_the_golden_cycle_identity(fig13_rows):
    """ideal + lowering == compute_cycles, and the three parts cover the
    total (cycles = compute + exposed DMA for single-array runs)."""
    for row in fig13_rows:
        compute = row["ideal_cycles"] + row["lowering_cycles"]
        assert compute + row["dram_cycles"] == pytest.approx(row["cycles"])
        assert 0.0 < row["ideal_frac"] <= 1.0
        assert row["lowering_frac"] >= 0.0 and row["dram_frac"] >= 0.0


def test_ideal_is_the_mac_roofline(fig13_payload, fig13_rows):
    by_name = {e["workload"]: e for e in fig13_payload["entries"]}
    for row in fig13_rows:
        macs = by_name[row["workload"]]["macs"]
        assert row["ideal_cycles"] == pytest.approx(
            macs / TPU_V2.peak_macs_per_cycle
        )


def test_every_fig13_workload_gets_a_roofline_placement(fig13_rows):
    for row in fig13_rows:
        assert row["roofline"] is not None, row["workload"]
        assert row["roofline"]["bound"] in ("compute", "memory")
        assert row["roofline"]["intensity"] > 0


def test_fig16_array_variant_configs_are_resolved():
    rows = attribute_entries(compute_golden("fig16"))
    configs = {row["config"] for row in rows}
    assert configs == {"tpu_v2.array64", "tpu_v2.array128", "tpu_v2.array256"}
    # A bigger array means more ideal cycles lost to lowering on VGG16.
    frac = {
        tag: summarize([r for r in rows if r["config"] == tag])["lowering_frac"]
        for tag in sorted(configs)
    }
    assert frac["tpu_v2.array256"] > frac["tpu_v2.array64"]


def test_non_cycle_kinds_are_skipped():
    rows = attribute_entries(compute_golden("fig7"))  # ifmap-fill entries only
    assert rows == []


def test_unknown_experiment_still_attributes_without_roofline():
    payload = {
        "experiment": "mystery",
        "entries": [{
            "kind": "tpu-gemm", "config": "tpu_v2", "workload": "g",
            "cycles": 1000.0, "compute_cycles": 900.0, "dma_cycles": 400.0,
            "exposed_dma_cycles": 100.0, "macs": 8_000_000, "group_size": 1,
        }],
    }
    (row,) = attribute_entries(payload)
    assert row["roofline"] is None
    assert row["ideal_cycles"] == pytest.approx(8_000_000 / 16384)


# ---------------------------------------------------------------- rendering


def test_markdown_has_summary_table_and_truncation(fig13_rows):
    text = render_markdown("fig13", fig13_rows, top=5)
    assert "## Bottleneck attribution · fig13" in text
    assert "compute " in text and "lowering overhead " in text
    assert text.count("\n| ") - 1 == 5  # header row + 5 workload rows
    assert "more workloads (summary covers all)" in text


def test_markdown_handles_empty_rows():
    assert "No TPU cycle entries" in render_markdown("fig7", [])


def test_html_wraps_sections():
    html = render_html(["## a", "## b"])
    assert html.startswith("<!doctype html>") and "## a" in html and "## b" in html


# ---------------------------------------------------------------------- CLI


def test_report_main_defaults_to_fig13(capsys):
    assert report_main([]) == 0
    out = capsys.readouterr().out
    assert "Bottleneck attribution · fig13" in out


def test_report_main_writes_output_file(tmp_path, capsys):
    out_path = tmp_path / "report.md"
    assert report_main(["fig13", "fig16", "-o", str(out_path)]) == 0
    text = out_path.read_text()
    assert "fig13" in text and "fig16" in text


def test_report_main_html(tmp_path):
    out_path = tmp_path / "report.html"
    assert report_main(["fig13", "--html", "-o", str(out_path)]) == 0
    assert out_path.read_text().startswith("<!doctype html>")


def test_report_main_missing_golden_exits_nonzero(capsys):
    assert report_main(["nonesuch"]) == 1
    assert "no golden payload" in capsys.readouterr().err


def test_report_main_malformed_golden_exits_nonzero(tmp_path, capsys):
    (tmp_path / "fig13.json").write_text(json.dumps({"nope": 1}))
    assert report_main(["fig13", "--goldens", str(tmp_path)]) == 1
    assert "not a golden payload" in capsys.readouterr().err
