"""Batch-sweep extension experiment."""

import pytest

from repro.harness.experiments import batch_sweep


@pytest.fixture(scope="module")
def result():
    return batch_sweep.run()


def test_tpu_monotone_in_batch(result):
    table = result.table("TFLOPS vs batch (28x28, 128->128, 3x3)")
    tpu = table.column("TPU implicit")
    assert all(b >= a - 1e-9 for a, b in zip(tpu, tpu[1:]))


def test_explicit_always_trails(result):
    table = result.table("TFLOPS vs batch (28x28, 128->128, 3x3)")
    for row in table.rows:
        assert row[2] < row[1]


def test_gpu_scales_then_saturates(result):
    table = result.table("TFLOPS vs batch (28x28, 128->128, 3x3)")
    gpu = dict(zip(table.column("batch"), table.column("V100 channel-first")))
    assert gpu[8] > 1.5 * gpu[1]
    assert gpu[64] < 1.2 * gpu[32]


def test_registered():
    from repro.harness.runner import EXPERIMENTS

    assert "batch_sweep" in EXPERIMENTS
