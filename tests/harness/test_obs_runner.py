"""Runner observability: exit codes, --quiet, manifests and metrics files."""

import json

import pytest

from repro.harness import runner
from repro.harness.runner import EXPERIMENTS, RunTelemetry, harness_metrics, main
from repro.obs import log as obs_log


@pytest.fixture(autouse=True)
def reset_log_state():
    obs_log.shutdown()
    yield
    obs_log.shutdown()


# ------------------------------------------------------------- exit codes


def test_failing_experiment_exits_nonzero(monkeypatch, capsys):
    def explode(quick=False):
        raise RuntimeError("injected failure")

    monkeypatch.setitem(EXPERIMENTS, "table2", explode)
    assert main(["table2"]) == 1
    captured = capsys.readouterr()
    assert "experiment run failed" in captured.err
    assert "injected failure" in captured.err


def test_audit_failure_exits_nonzero(monkeypatch, tmp_path, capsys):
    from repro.trace.metrics import LayerCycleRecord

    # exposed_dma_cycles breaks the exposure identity (should be 20).
    corrupt = LayerCycleRecord(
        source="test", name="bad", cycles=100.0, compute_cycles=80.0,
        dma_cycles=60.0, exposed_dma_cycles=55.0, macs=1000, utilization=0.5,
    )

    def fake_run_many_telemetry(
        ids, quick=False, jobs=1, tracing=False, profiling=False,
        audit_level="off",
    ):
        return [], RunTelemetry(layers=[corrupt])

    monkeypatch.setattr(runner, "run_many_telemetry", fake_run_many_telemetry)
    assert main(["table2", "--trace", str(tmp_path / "trace.json")]) == 1
    assert "cycle-accounting audit failed" in capsys.readouterr().err


def test_failure_is_stamped_into_manifest(monkeypatch, tmp_path, capsys):
    def explode(quick=False):
        raise RuntimeError("injected failure")

    monkeypatch.setitem(EXPERIMENTS, "table2", explode)
    assert main(
        ["table2", "--manifest", "--results-dir", str(tmp_path)]
    ) == 1
    capsys.readouterr()
    (run_dir,) = tmp_path.iterdir()
    manifest = json.loads((run_dir / "manifest.json").read_text())
    assert manifest["exit_code"] == 1
    prom = (run_dir / "metrics.prom").read_text()
    assert "repro_experiment_failures_total" in prom


# ----------------------------------------------------------------- quiet


def test_quiet_suppresses_stdout_but_still_exports(tmp_path, capsys):
    export_dir = tmp_path / "results"
    assert main(["table2", "--quiet", "--export-dir", str(export_dir)]) == 0
    assert capsys.readouterr().out == ""
    assert (export_dir / "table2.json").exists()


def test_quiet_export_is_byte_identical_to_loud(tmp_path, capsys):
    loud_dir, quiet_dir = tmp_path / "loud", tmp_path / "quiet"
    assert main(["table2", "--export-dir", str(loud_dir)]) == 0
    assert main(["table2", "--quiet", "--export-dir", str(quiet_dir)]) == 0
    capsys.readouterr()
    loud = (loud_dir / "table2.json").read_bytes()
    assert loud == (quiet_dir / "table2.json").read_bytes()


# ------------------------------------------------------------- artifacts


def test_obs_run_writes_manifest_metrics_and_log(tmp_path, capsys):
    log_path = tmp_path / "run.jsonl"
    results_dir = tmp_path / "results"
    assert main(
        [
            "table2", "--profile",
            "--log-file", str(log_path),
            "--results-dir", str(results_dir),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "== phase profile ==" in out

    (run_dir,) = results_dir.iterdir()
    manifest = json.loads((run_dir / "manifest.json").read_text())
    assert manifest["run_id"] == run_dir.name
    assert manifest["tool"] == "repro.harness.runner"
    assert manifest["exit_code"] == 0
    assert manifest["args"]["experiments"] == ["table2"]
    assert manifest["wall_seconds"] > 0
    assert str(log_path) in manifest["outputs"]
    assert {"git", "python", "numpy", "config_fingerprints"} <= set(
        manifest["provenance"]
    )

    prom = (run_dir / "metrics.prom").read_text()
    assert f'repro_experiments_total{{run_id="{run_dir.name}"}} 1' in prom
    assert "repro_experiment_seconds_bucket" in prom

    events = [json.loads(line) for line in log_path.read_text().splitlines()]
    names = [event["event"] for event in events]
    assert "run.start" in names
    assert "experiment.done" in names
    assert "run.complete" in names
    assert all(event["run_id"] == run_dir.name for event in events)


def test_default_run_writes_no_observability_artifacts(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["table2"]) == 0
    capsys.readouterr()
    assert not (tmp_path / "results").exists()


# --------------------------------------------------------------- metrics


def test_harness_metrics_snapshot():
    from repro.perf.cache import CacheStats

    telemetry = RunTelemetry(
        cache=CacheStats(hits=30, misses=10, entries=10),
        timings=[("table2", 0.5), ("fig7", 1.5)],
    )
    registry = harness_metrics(telemetry, wall_seconds=2.0, failures=1)
    assert registry.counters["repro_experiments_total"] == 2
    assert registry.counters["repro_experiment_failures_total"] == 1
    assert registry.counters["repro_layers_simulated_total"] == 40
    assert registry.gauges["repro_sim_cache_hit_rate"] == 0.75
    assert registry.gauges["repro_layers_per_second"] == 20.0
    assert registry.histograms["repro_experiment_seconds"].count == 2
