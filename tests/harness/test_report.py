"""Text report rendering."""

import pytest

from repro.harness.report import ExperimentResult, Table, fmt


class TestFmt:
    def test_floats(self):
        assert fmt(0.123456) == "0.123"
        assert fmt(3.14159) == "3.14"
        assert fmt(12345.6) == "12346"
        assert fmt(0.0) == "0"

    def test_non_floats(self):
        assert fmt(42) == "42"
        assert fmt("x") == "x"
        assert fmt(True) == "True"


class TestTable:
    def test_add_and_render(self):
        table = Table("T", ("a", "b"))
        table.add_row(1, 2.5)
        text = table.render()
        assert "T" in text and "a" in text and "2.50" in text

    def test_row_width_checked(self):
        table = Table("T", ("a", "b"))
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_extraction(self):
        table = Table("T", ("name", "value"))
        table.add_row("x", 1)
        table.add_row("y", 2)
        assert table.column("value") == [1, 2]
        with pytest.raises(KeyError):
            table.column("missing")

    def test_render_empty(self):
        assert "T" in Table("T", ("a",)).render()


class TestExperimentResult:
    def test_tables_and_notes(self):
        result = ExperimentResult("exp", "Title")
        table = result.add_table(Table("inner", ("x",)))
        table.add_row(1)
        result.note("observation")
        text = result.render()
        assert "exp" in text and "inner" in text and "observation" in text

    def test_table_lookup(self):
        result = ExperimentResult("exp", "Title")
        result.add_table(Table("inner", ("x",)))
        assert result.table("inner").title == "inner"
        with pytest.raises(KeyError):
            result.table("nope")
