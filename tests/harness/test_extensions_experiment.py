"""The extensions experiment's shape assertions."""

import pytest

from repro.harness.experiments import extensions


@pytest.fixture(scope="module")
def result():
    return extensions.run()


def test_grouped_utilization_collapses(result):
    table = result.table("Grouped conv on the TPU (C=256, 28x28, 3x3, batch 8)")
    util = dict(zip(table.column("groups"), table.column("utilization")))
    assert util[1] > 0.9
    assert util[16] < 0.2
    assert util[256] < 0.01
    # utilization is monotone non-increasing in group count
    values = [util[g] for g in sorted(util)]
    assert values == sorted(values, reverse=True)


def test_multi_tile_engages_for_small_groups(result):
    table = result.table("Grouped conv on the TPU (C=256, 28x28, 3x3, batch 8)")
    tiles = dict(zip(table.column("groups"), table.column("multi-tile")))
    assert tiles[1] == 1
    assert tiles[256] == 3  # W_F bound


def test_depthwise_rows_present(result):
    table = result.table("Depthwise layers (MobileNet-style)")
    assert len(table.rows) == 3
    assert all(row[2] < 0.01 for row in table.rows)


def test_skew_overhead_band(result):
    table = result.table("Skewed-data-layout alternative (VGG16, batch 8)")
    fraction = table.rows[1][2]
    assert 0.05 < fraction < 0.4


def test_training_ratio_about_2x(result):
    table = result.table("Training-step GEMM volumes (batch 8)")
    for row in table.rows:
        assert row[4] == pytest.approx(2.0, abs=0.3)


def test_registered():
    from repro.harness.runner import EXPERIMENTS

    assert "extensions" in EXPERIMENTS
