"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_list_networks(capsys):
    assert main(["list-networks"]) == 0
    out = capsys.readouterr().out
    assert "VGG16" in out and "ResNet" in out


def test_simulate_conv_defaults(capsys):
    assert main(["simulate-conv"]) == 0
    out = capsys.readouterr().out
    assert "TPU-v2" in out and "V100" in out and "TFLOPS" in out


def test_simulate_conv_custom_shape(capsys):
    assert main(["simulate-conv", "--c-in", "64", "--size", "14", "--stride", "2"]) == 0
    out = capsys.readouterr().out
    assert "s2" in out


def test_simulate_network_tpu(capsys):
    assert main(["simulate-network", "AlexNet", "--batch", "4"]) == 0
    assert "AlexNet" in capsys.readouterr().out


def test_simulate_network_gpu(capsys):
    assert main(["simulate-network", "ZFNet", "--platform", "gpu"]) == 0
    assert "V100" in capsys.readouterr().out


def test_sweep_stride(capsys):
    assert main(["sweep-stride", "--batch", "8"]) == 0
    out = capsys.readouterr().out
    assert "TPU CF" in out and "GEMM" in out


def test_experiments_subcommand(capsys):
    assert main(["experiments", "table2"]) == 0
    assert "Table II" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bogus"])


def test_unknown_network_errors():
    with pytest.raises(KeyError):
        main(["simulate-network", "LeNet"])
