"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_list_networks(capsys):
    assert main(["list-networks"]) == 0
    out = capsys.readouterr().out
    assert "VGG16" in out and "ResNet" in out


def test_simulate_conv_defaults(capsys):
    assert main(["simulate-conv"]) == 0
    out = capsys.readouterr().out
    assert "TPU-v2" in out and "V100" in out and "TFLOPS" in out


def test_simulate_conv_custom_shape(capsys):
    assert main(["simulate-conv", "--c-in", "64", "--size", "14", "--stride", "2"]) == 0
    out = capsys.readouterr().out
    assert "s2" in out


def test_simulate_network_tpu(capsys):
    assert main(["simulate-network", "AlexNet", "--batch", "4"]) == 0
    assert "AlexNet" in capsys.readouterr().out


def test_simulate_network_gpu(capsys):
    assert main(["simulate-network", "ZFNet", "--platform", "gpu"]) == 0
    assert "V100" in capsys.readouterr().out


def test_sweep_stride(capsys):
    assert main(["sweep-stride", "--batch", "8"]) == 0
    out = capsys.readouterr().out
    assert "TPU CF" in out and "GEMM" in out


def test_experiments_subcommand(capsys):
    assert main(["experiments", "table2"]) == 0
    assert "Table II" in capsys.readouterr().out


def test_run_subcommand(capsys):
    assert main(["run", "table2"]) == 0
    assert "Table II" in capsys.readouterr().out


def test_run_all_flag_parses():
    args = build_parser().parse_args(["run", "--all", "--quick"])
    assert args.run_all and args.quick and args.ids == []


def test_cli_quiet_suppresses_output(capsys):
    assert main(["simulate-conv", "--quiet"]) == 0
    assert capsys.readouterr().out == ""


def test_cli_log_file_records_events(tmp_path, capsys):
    import json

    log_path = tmp_path / "cli.jsonl"
    assert main(["list-networks", "--log-file", str(log_path)]) == 0
    capsys.readouterr()
    events = [json.loads(line) for line in log_path.read_text().splitlines()]
    assert any(e["event"] == "console" for e in events)


def test_cli_manifest_written(tmp_path, monkeypatch, capsys):
    import json

    monkeypatch.chdir(tmp_path)
    assert main(["simulate-conv", "--manifest"]) == 0
    capsys.readouterr()
    (run_dir,) = (tmp_path / "results").iterdir()
    manifest = json.loads((run_dir / "manifest.json").read_text())
    assert manifest["tool"] == "repro.simulate-conv"
    assert manifest["exit_code"] == 0


def test_sentinel_subcommand(tmp_path, capsys):
    import json

    current = tmp_path / "BENCH_perf.json"
    current.write_text(json.dumps({"harness_wall_seconds": 1.0}))
    history = tmp_path / "hist.jsonl"
    history.write_text(
        json.dumps({"schema": 1, "metrics": {"harness_wall_seconds": 1.0}}) + "\n"
    )
    assert main(
        [
            "sentinel", "--current", str(current),
            "--history", str(history), "--skip-goldens",
        ]
    ) == 0
    assert "sentinel: OK" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bogus"])


def test_unknown_network_errors():
    with pytest.raises(KeyError):
        main(["simulate-network", "LeNet"])
