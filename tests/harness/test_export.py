"""JSON/CSV export of experiment results."""

import csv
import json

import pytest

from repro.harness.export import result_to_dict, slugify, table_to_rows, write_results
from repro.harness.report import ExperimentResult, Table


@pytest.fixture
def result():
    r = ExperimentResult("demo", "Demo experiment")
    table = r.add_table(Table("A table: title!", ("name", "value")))
    table.add_row("x", 1.5)
    table.add_row("y", 2)
    r.note("a note")
    return r


def test_slugify():
    assert slugify("Fig 2a: V100 GPU (normalized)") == "fig-2a-v100-gpu-normalized"
    assert slugify("!!!") == "table"


def test_table_to_rows(result):
    rows = table_to_rows(result.tables[0])
    assert rows == [{"name": "x", "value": 1.5}, {"name": "y", "value": 2}]


def test_result_to_dict_round_trips_json(result):
    payload = json.dumps(result_to_dict(result))
    parsed = json.loads(payload)
    assert parsed["experiment_id"] == "demo"
    assert parsed["tables"][0]["rows"] == [["x", 1.5], ["y", 2]]
    assert parsed["notes"] == ["a note"]


def test_write_results(result, tmp_path):
    paths = write_results([result], tmp_path)
    names = {p.name for p in paths}
    assert "demo.json" in names
    csv_files = [p for p in paths if p.suffix == ".csv"]
    assert len(csv_files) == 1
    with csv_files[0].open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["name", "value"]
    assert rows[1] == ["x", "1.5"]


def test_runner_export_flag(tmp_path, capsys):
    from repro.harness.runner import main

    assert main(["table2", "--export-dir", str(tmp_path)]) == 0
    assert (tmp_path / "table2.json").exists()
    exported = json.loads((tmp_path / "table2.json").read_text())
    assert exported["experiment_id"] == "table2"


def test_real_experiment_exports_cleanly(tmp_path):
    from repro.harness.experiments import table1

    paths = write_results([table1.run()], tmp_path)
    assert any(p.suffix == ".json" for p in paths)
    assert any(p.suffix == ".csv" for p in paths)
