"""JSON/CSV export of experiment results."""

import csv
import json
import re

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.harness.export import result_to_dict, slugify, table_to_rows, write_results
from repro.harness.report import ExperimentResult, Table


@pytest.fixture
def result():
    r = ExperimentResult("demo", "Demo experiment")
    table = r.add_table(Table("A table: title!", ("name", "value")))
    table.add_row("x", 1.5)
    table.add_row("y", 2)
    r.note("a note")
    return r


def test_slugify():
    assert slugify("Fig 2a: V100 GPU (normalized)") == "fig-2a-v100-gpu-normalized"
    assert slugify("!!!") == "table"


def test_table_to_rows(result):
    rows = table_to_rows(result.tables[0])
    assert rows == [{"name": "x", "value": 1.5}, {"name": "y", "value": 2}]


def test_result_to_dict_round_trips_json(result):
    payload = json.dumps(result_to_dict(result))
    parsed = json.loads(payload)
    assert parsed["experiment_id"] == "demo"
    assert parsed["tables"][0]["rows"] == [["x", 1.5], ["y", 2]]
    assert parsed["notes"] == ["a note"]


def test_write_results(result, tmp_path):
    paths = write_results([result], tmp_path)
    names = {p.name for p in paths}
    assert "demo.json" in names
    csv_files = [p for p in paths if p.suffix == ".csv"]
    assert len(csv_files) == 1
    with csv_files[0].open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["name", "value"]
    assert rows[1] == ["x", "1.5"]


def test_runner_export_flag(tmp_path, capsys):
    from repro.harness.runner import main

    assert main(["table2", "--export-dir", str(tmp_path)]) == 0
    assert (tmp_path / "table2.json").exists()
    exported = json.loads((tmp_path / "table2.json").read_text())
    assert exported["experiment_id"] == "table2"


def test_real_experiment_exports_cleanly(tmp_path):
    from repro.harness.experiments import table1

    paths = write_results([table1.run()], tmp_path)
    assert any(p.suffix == ".json" for p in paths)
    assert any(p.suffix == ".csv" for p in paths)


def test_write_results_json_round_trips(result, tmp_path):
    write_results([result], tmp_path)
    loaded = json.loads((tmp_path / "demo.json").read_text())
    assert loaded == json.loads(json.dumps(result_to_dict(result), default=str))


@given(st.text(max_size=80))
def test_slugify_always_filesystem_safe(title):
    slug = slugify(title)
    assert re.fullmatch(r"[a-z0-9]+(-[a-z0-9]+)*", slug)


@given(st.lists(st.text(max_size=30), min_size=2, max_size=6))
def test_colliding_slugs_never_share_a_csv(titles):
    """However the titles collide, every table lands in its own CSV."""
    import tempfile

    result = ExperimentResult("demo", "Demo")
    for index, title in enumerate(titles):
        result.add_table(Table(title, ("k",))).add_row(f"row-{index}")
    with tempfile.TemporaryDirectory() as tmp:
        paths = write_results([result], tmp)
        csv_paths = [p for p in paths if p.suffix == ".csv"]
        assert len(csv_paths) == len(titles)
        assert len(set(csv_paths)) == len(titles)
        for index, path in enumerate(csv_paths):
            assert f"row-{index}" in path.read_text()


def test_duplicate_titles_write_both_csvs(tmp_path):
    result = ExperimentResult("demo", "Demo")
    first = result.add_table(Table("Same: title", ("k",)))
    first.add_row("from-first")
    second = result.add_table(Table("same TITLE?!", ("k",)))  # same slug
    second.add_row("from-second")
    paths = write_results([result], tmp_path)
    csv_paths = sorted(p for p in paths if p.suffix == ".csv")
    assert [p.name for p in csv_paths] == [
        "demo.same-title-2.csv",
        "demo.same-title.csv",
    ]
    assert "from-first" in (tmp_path / "demo.same-title.csv").read_text()
    assert "from-second" in (tmp_path / "demo.same-title-2.csv").read_text()


def test_unique_titles_keep_unsuffixed_names(tmp_path):
    result = ExperimentResult("demo", "Demo")
    result.add_table(Table("Alpha", ("k",))).add_row(1)
    result.add_table(Table("Beta", ("k",))).add_row(2)
    names = {p.name for p in write_results([result], tmp_path)}
    assert {"demo.alpha.csv", "demo.beta.csv"} <= names
