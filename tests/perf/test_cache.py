"""Invalidation + accounting rules of the simulation memo.

The cache is only sound if *every* field of a config or spec — nested
sub-configs included — reaches the key, and the one deliberate exception
(``ConvSpec.name``) is handled by re-labelling on hit.
"""

import dataclasses

import pytest

from repro.core.conv_spec import ConvSpec
from repro.perf.cache import (
    SIM_CACHE,
    CacheStats,
    SimulationCache,
    config_key,
    fingerprint,
    reset_cache_stats,
    set_cache_enabled,
    spec_key,
)
from repro.systolic.config import TPU_V2
from repro.systolic.simulator import TPUSim

SPEC = ConvSpec(n=1, c_in=64, h_in=14, w_in=14, c_out=64, h_filter=3, w_filter=3, padding=1)


def perturbed(value):
    """A different value of the same broad type (recursing into dataclasses)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        field = dataclasses.fields(value)[0]
        return dataclasses.replace(
            value, **{field.name: perturbed(getattr(value, field.name))}
        )
    if isinstance(value, bool):
        return not value
    if isinstance(value, (int, float)):
        return value * 2 + 1
    if isinstance(value, str):
        return value + "-x"
    raise TypeError(f"no perturbation for {value!r}")


@pytest.mark.parametrize(
    "field", [f.name for f in dataclasses.fields(TPU_V2)]
)
def test_every_config_field_reaches_the_key(field):
    changes = {field: perturbed(getattr(TPU_V2, field))}
    # The config ties one vector memory to one PE row — keep it satisfiable.
    if field == "array_rows":
        changes["num_vector_memories"] = changes["array_rows"]
    if field == "num_vector_memories":
        changes["array_rows"] = changes["num_vector_memories"]
    assert config_key(dataclasses.replace(TPU_V2, **changes)) != config_key(TPU_V2)


@pytest.mark.parametrize(
    "field", [f.name for f in dataclasses.fields(SPEC) if f.name != "name"]
)
def test_every_spec_field_reaches_the_key(field):
    value = getattr(SPEC, field)
    if field in ("stride", "dilation"):
        changed = dataclasses.replace(SPEC, **{field: value + 1})
    else:
        changed = dataclasses.replace(SPEC, **{field: perturbed(value)})
    assert spec_key(changed) != spec_key(SPEC)


def test_spec_name_is_excluded_but_fingerprint_keeps_it():
    renamed = dataclasses.replace(SPEC, name="conv4_x")
    assert spec_key(renamed) == spec_key(SPEC)
    # The GPU models' generic fingerprint must NOT share entries across
    # names — their deterministic noise hashes spec.describe().
    assert fingerprint(renamed) != fingerprint(SPEC)


def test_nested_hbm_field_reaches_the_key():
    hbm = dataclasses.replace(TPU_V2.hbm, row_miss_penalty_cycles=21.0)
    assert config_key(dataclasses.replace(TPU_V2, hbm=hbm)) != config_key(TPU_V2)


def test_hit_miss_accounting():
    cache = SimulationCache()
    calls = []
    compute = lambda: calls.append(1) or "value"
    assert cache.get_or_compute(("k",), compute) == "value"
    assert cache.get_or_compute(("k",), compute) == "value"
    assert len(calls) == 1
    assert (cache.stats.hits, cache.stats.misses, cache.stats.entries) == (1, 1, 1)
    assert cache.stats.hit_rate == 0.5
    cache.clear()
    assert (cache.stats.hits, cache.stats.misses, cache.stats.entries) == (0, 0, 0)


def test_disabled_cache_recomputes():
    cache = SimulationCache(enabled=False)
    calls = []
    cache.get_or_compute(("k",), lambda: calls.append(1))
    cache.get_or_compute(("k",), lambda: calls.append(1))
    assert len(calls) == 2
    assert len(cache) == 0


def test_global_toggle_restores():
    set_cache_enabled(False)
    try:
        assert SIM_CACHE.enabled is False
    finally:
        set_cache_enabled(True)
    assert SIM_CACHE.enabled is True


def test_renamed_layer_shares_entry_and_keeps_its_name():
    sim = TPUSim()
    first = sim.simulate_conv(dataclasses.replace(SPEC, name="alpha"))
    before = SIM_CACHE.stats.hits
    second = sim.simulate_conv(dataclasses.replace(SPEC, name="beta"))
    assert SIM_CACHE.stats.hits == before + 1
    assert first.name.startswith("alpha[")
    assert second.name.startswith("beta[")
    assert second.cycles == first.cycles
    assert dataclasses.replace(second, name=first.name) == first


def test_reset_stats_keeps_entries():
    """Per-run accounting: counters zero, the warm store stays warm."""
    cache = SimulationCache()
    cache.get_or_compute(("k",), lambda: "v")
    cache.get_or_compute(("k",), lambda: "v")
    cache.reset_stats()
    assert (cache.stats.hits, cache.stats.misses) == (0, 0)
    assert len(cache) == 1
    calls = []
    cache.get_or_compute(("k",), lambda: calls.append(1))
    assert calls == []  # still served from the kept entry
    assert cache.stats.hits == 1


def test_reset_cache_stats_global():
    SIM_CACHE.get_or_compute(("stats-probe",), lambda: 1)
    reset_cache_stats()
    assert (SIM_CACHE.stats.hits, SIM_CACHE.stats.misses) == (0, 0)


def test_cache_stats_addition_aggregates_workers():
    total = CacheStats(hits=3, misses=1, entries=4) + CacheStats(
        hits=1, misses=3, entries=2
    )
    assert (total.hits, total.misses, total.entries) == (4, 4, 6)
    assert total.hit_rate == 0.5
    assert sum(
        [CacheStats(1, 0, 1), CacheStats(0, 1, 1)],
        CacheStats(0, 0, 0),
    ) == CacheStats(1, 1, 2)


def test_per_run_cache_stats_under_jobs():
    """--cache-stats must report the run's own lookups, serial or pooled.

    table1 is pure geometry (no simulation) — fig13 is the series that
    actually exercises the memo.  Under --jobs the parent's cache is never
    touched, so non-zero numbers prove the workers' stats made it home.
    """
    from repro.harness.runner import run_many_telemetry

    _, serial = run_many_telemetry(["fig13"], quick=True, jobs=1)
    assert serial.cache.hits + serial.cache.misses > 0
    _, pooled = run_many_telemetry(["table1", "fig13"], quick=True, jobs=2)
    assert pooled.cache.hits + pooled.cache.misses > 0
