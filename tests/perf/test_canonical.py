"""Property suite for symmetry canonicalization (hypothesis).

``canonical_spec`` folds timing-equivalent ConvSpecs onto one
representative, and the folded result is *shared* through the simulation
cache — so every fold must be bit-exact under the reference scheduler, not
merely close.  These tests generate rectangular/dilated/strided specs well
outside the harness's own workloads and check:

- idempotence (a canonical spec is its own canonical form);
- timing invariance: the reference per-item scheduler prices the spec and
  its canonical form bit-identically in every cost field, across configs;
- ``relabel`` restores the caller-visible layer name;
- layout folding maps exactly the channel-position pairs and nothing else.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.conv_spec import ConvSpec
from repro.core.layouts import Layout
from repro.perf.cache import canonical_layout, canonical_spec, spec_key
from repro.systolic.config import TPU_V2
from repro.systolic.scheduler import channel_first_schedule, execute_schedule

from .test_executor_equivalence import CONFIGS


@st.composite
def conv_specs(draw):
    """Valid ConvSpecs biased toward the canonicalization gates:
    rectangular inputs, square and non-square filters, 1x1 kernels with
    dilation, strided and unit-stride paths."""
    h_filter = draw(st.sampled_from([1, 1, 3, 5, 7]))
    square = draw(st.booleans())
    w_filter = h_filter if square else draw(st.sampled_from([1, 3, 5]))
    stride = draw(st.sampled_from([1, 1, 2, 3]))
    dilation = draw(st.sampled_from([1, 1, 2, 3]))
    h_in = draw(st.sampled_from([7, 9, 14, 21, 28, 56]))
    w_in = draw(st.sampled_from([7, 9, 14, 21, 28, 56]))
    padding = draw(st.sampled_from([0, 1, 2, 3]))
    eff_h = dilation * (h_filter - 1) + 1
    eff_w = dilation * (w_filter - 1) + 1
    if h_in + 2 * padding < eff_h or w_in + 2 * padding < eff_w:
        # Re-anchor invalid geometry instead of rejecting the draw.
        h_in = max(h_in, eff_h)
        w_in = max(w_in, eff_w)
    return ConvSpec(
        n=draw(st.sampled_from([1, 2, 8])),
        c_in=draw(st.sampled_from([3, 16, 64, 128])),
        h_in=h_in,
        w_in=w_in,
        c_out=draw(st.sampled_from([16, 64, 128])),
        h_filter=h_filter,
        w_filter=w_filter,
        stride=stride,
        padding=padding,
        dilation=dilation,
        name=draw(st.sampled_from(["", "layer", "conv3.2"])),
    )


@settings(max_examples=200, deadline=None)
@given(spec=conv_specs())
def test_canonical_spec_idempotent(spec):
    canon, _ = canonical_spec(spec)
    again, _ = canonical_spec(canon)
    assert again == canon
    assert spec_key(again) == spec_key(canon)


@settings(max_examples=120, deadline=None)
@given(spec=conv_specs())
def test_canonical_spec_preserves_workload_identity(spec):
    """The folds may permute geometry but never change the work itself."""
    canon, _ = canonical_spec(spec)
    assert canon.macs == spec.macs
    assert canon.n == spec.n
    assert canon.c_in == spec.c_in
    assert canon.c_out == spec.c_out
    assert canon.h_out * canon.w_out == spec.h_out * spec.w_out


@settings(max_examples=60, deadline=None)
@given(spec=conv_specs())
def test_canonical_fold_is_bit_identical_under_reference_scheduler(spec):
    """The hard contract: a folded spec prices identically to the original
    through the *per-item reference* scheduler, to the last float bit."""
    canon, _ = canonical_spec(spec)
    if spec_key(canon) == spec_key(spec):
        return  # no fold fired — nothing to prove
    for config in CONFIGS:
        ours = execute_schedule(channel_first_schedule(spec, config))
        folded = execute_schedule(channel_first_schedule(canon, config))
        assert ours.total_cycles == folded.total_cycles
        assert ours.compute_cycles == folded.compute_cycles
        assert ours.dma_cycles == folded.dma_cycles
        assert ours.exposed_dma_cycles == folded.exposed_dma_cycles
        assert ours.macs == folded.macs


@settings(max_examples=60, deadline=None)
@given(spec=conv_specs())
def test_relabel_restores_layer_name(spec):
    from repro.systolic.simulator import LayerResult

    _, relabel = canonical_spec(spec)
    cached = LayerResult(
        name="someone-elses-label", cycles=10.0, tflops=1.0, utilization=0.5,
        compute_cycles=8.0, dma_cycles=4.0, exposed_dma_cycles=2.0, macs=100,
    )
    served = relabel(cached)
    assert served.name == (spec.describe() or "conv")
    assert dataclasses.replace(served, name=cached.name) == cached
    # Serving an already-correctly-named result is the identity.
    assert relabel(served) is served


def test_transpose_fold_requires_square_filter_and_noncontiguous_path():
    base = dict(n=1, c_in=16, h_in=28, w_in=14, c_out=16, padding=1)
    folds = ConvSpec(h_filter=3, w_filter=3, stride=2, **base)
    assert canonical_spec(folds)[0].h_in == 14
    rect_filter = ConvSpec(h_filter=3, w_filter=1, stride=2, **base)
    assert canonical_spec(rect_filter)[0].h_in == 28
    contiguous = ConvSpec(h_filter=3, w_filter=3, stride=1, **base)
    assert canonical_spec(contiguous)[0].h_in == 28


def test_pointwise_dilation_fold_requires_stride_above_one():
    base = dict(n=1, c_in=16, h_in=28, w_in=28, c_out=16,
                h_filter=1, w_filter=1, padding=0)
    folds = ConvSpec(stride=2, dilation=2, **base)
    assert canonical_spec(folds)[0].dilation == 1
    # stride == 1 flips the fill-contiguity flag, so the fold must not fire.
    unit_stride = ConvSpec(stride=1, dilation=2, **base)
    assert canonical_spec(unit_stride)[0].dilation == 2


@pytest.mark.parametrize(
    "layout,expected",
    [
        (Layout.NHWC, "NHWC"),
        (Layout.HWCN, "NHWC"),
        (Layout.NCHW, "NCHW"),
        (Layout.CHWN, "NCHW"),
    ],
)
def test_canonical_layout_folds_priced_pairs(layout, expected):
    assert canonical_layout(layout) == expected


def test_canonical_layout_passes_unknown_values_through():
    assert canonical_layout("blocked-z") == "blocked-z"


@pytest.mark.parametrize("config", CONFIGS, ids=["v2", "no-dbuf", "64x64"])
def test_canonical_hit_serves_bit_identical_layer_result(config):
    """End-to-end through TPUSim: a transposed twin must be served from the
    canonical entry with only the name differing."""
    from repro.perf.cache import clear_cache
    from repro.systolic.simulator import TPUSim

    spec = ConvSpec(n=2, c_in=64, h_in=14, w_in=28, c_out=64,
                    h_filter=3, w_filter=3, stride=2, padding=1, name="orig")
    twin = dataclasses.replace(spec, h_in=28, w_in=14, name="twin")
    clear_cache()
    try:
        sim = TPUSim(config)
        first = sim.simulate_conv(spec)
        served = sim.simulate_conv(twin)
        assert served.name == twin.describe()
        assert dataclasses.replace(served, name=first.name) == first
    finally:
        clear_cache()
