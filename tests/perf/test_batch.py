"""Bit-exactness gate for the cross-layer batched schedule engine.

The batched builders/executor (:mod:`repro.perf.batch`) must reproduce the
per-layer :mod:`repro.perf.schedule_arrays` path — and hence the per-item
reference scheduler — to the last float bit, over the same fuzz surfaces
the executor-equivalence suite uses plus the audit corpus.  The cache
accounting (hits / canonical hits / misses / entries) must also be
indistinguishable from running the layers one at a time.
"""

import dataclasses
import pathlib

import numpy as np
import pytest

from repro.core.conv_spec import ConvSpec
from repro.perf import batch as perf_batch
from repro.perf import schedule_arrays as perf_schedules
from repro.perf.cache import SIM_CACHE, clear_cache, set_cache_enabled
from repro.systolic.config import TPU_V2
from repro.systolic.simulator import TPUSim

from .test_executor_equivalence import (
    CONFIGS,
    assert_results_equal,
    random_conv_specs,
    random_gemm_shapes,
)

CORPUS_DIR = pathlib.Path(__file__).resolve().parent.parent / "audit" / "corpus"


def corpus_specs():
    from repro.audit.fuzz import load_corpus, spec_from_dict

    return [spec_from_dict(entry["spec"]) for entry in load_corpus(CORPUS_DIR)]


@pytest.fixture
def pristine_cache():
    clear_cache()
    yield
    set_cache_enabled(True)
    clear_cache()


# --------------------------------------------------------------- schedules
@pytest.mark.parametrize("config", CONFIGS, ids=["v2", "no-dbuf", "64x64"])
def test_conv_batch_builder_bit_identical(config):
    from repro.core.tiling import tpu_multi_tile_policy

    specs = random_conv_specs(20)
    jobs = [
        (spec, tpu_multi_tile_policy(spec, config.array_rows)) for spec in specs
    ]
    batched = perf_batch.conv_schedule_batch(jobs, config)
    for (spec, group), schedule in zip(jobs, batched):
        reference = perf_schedules.channel_first_schedule_arrays(
            spec, config, group_size=group
        )
        assert np.array_equal(schedule.gemm_cycles, reference.gemm_cycles)
        assert np.array_equal(schedule.fill_cycles, reference.fill_cycles)
        assert np.array_equal(schedule.drain_cycles, reference.drain_cycles)
        assert np.array_equal(schedule.macs, reference.macs)


@pytest.mark.parametrize("config", CONFIGS, ids=["v2", "no-dbuf", "64x64"])
def test_gemm_batch_builder_bit_identical(config):
    shapes = random_gemm_shapes(20)
    batched = perf_batch.gemm_schedule_batch(shapes, config)
    for shape, schedule in zip(shapes, batched):
        reference = perf_schedules.gemm_schedule_arrays(shape, config)
        assert np.array_equal(schedule.gemm_cycles, reference.gemm_cycles)
        assert np.array_equal(schedule.fill_cycles, reference.fill_cycles)
        assert np.array_equal(schedule.drain_cycles, reference.drain_cycles)
        assert np.array_equal(schedule.macs, reference.macs)


@pytest.mark.parametrize("config", CONFIGS, ids=["v2", "no-dbuf", "64x64"])
def test_batched_executor_bit_identical(config):
    schedules = [
        perf_schedules.channel_first_schedule_arrays(spec, config)
        for spec in random_conv_specs(15, seed=77)
    ]
    batched = perf_batch.execute_schedule_batch(schedules)
    for schedule, result in zip(schedules, batched):
        assert_results_equal(result, perf_schedules.execute_schedule_arrays(schedule))


def test_batched_executor_handles_empty_and_single_schedules():
    spec = random_conv_specs(1, seed=5)[0]
    one = perf_schedules.channel_first_schedule_arrays(spec, TPU_V2)
    empty = dataclasses.replace(
        one,
        gemm_cycles=one.gemm_cycles[:0],
        fill_cycles=one.fill_cycles[:0],
        drain_cycles=one.drain_cycles[:0],
        macs=one.macs[:0],
    )
    results = perf_batch.execute_schedule_batch([empty, one, empty])
    assert results[0].total_cycles == 0.0
    assert results[0].items == 0
    assert_results_equal(results[1], perf_schedules.execute_schedule_arrays(one))
    assert perf_batch.execute_schedule_batch([]) == []


def test_batched_executor_raggedness_fallback_is_bit_identical(monkeypatch):
    """Past the padded-size guard the executor degrades to per-job execution
    — results must not change."""
    schedules = [
        perf_schedules.channel_first_schedule_arrays(spec, TPU_V2)
        for spec in random_conv_specs(6, seed=13)
    ]
    dense = perf_batch.execute_schedule_batch(schedules)
    monkeypatch.setattr(perf_batch, "_MAX_PADDED_ELEMENTS", 1)
    assert perf_batch.execute_schedule_batch(schedules) == dense


def test_segmented_recurrence_matches_per_job_recurrence():
    rng = np.random.default_rng(11)
    for _ in range(40):
        jobs = int(rng.integers(1, 8))
        lengths = [int(rng.integers(1, 120)) for _ in range(jobs)]
        starts = np.cumsum([0] + lengths[:-1])
        s_parts, a_parts = [], []
        for n in lengths:
            s_parts.append(np.cumsum(rng.exponential(10.0, size=n)) * rng.choice([0.5, 1.0, 2.0]))
            a_parts.append(rng.exponential(15.0, size=n))
        s = np.concatenate(s_parts)
        a = np.concatenate(a_parts)
        out = perf_schedules.pipeline_free_times_segmented(s, a, starts)
        expected = np.concatenate(
            [perf_schedules.pipeline_free_times(sp, ap) for sp, ap in zip(s_parts, a_parts)]
        )
        assert np.array_equal(out, expected)


# ----------------------------------------------------------- simulator path
def _per_layer(specs, config=TPU_V2):
    sim = TPUSim(config)
    return [sim.simulate_conv(spec) for spec in specs]


def _batched(specs, config=TPU_V2):
    return TPUSim(config).simulate_conv_batch(specs)


@pytest.mark.parametrize("config", CONFIGS, ids=["v2", "no-dbuf", "64x64"])
def test_simulate_conv_batch_bit_identical_over_fuzz_specs(pristine_cache, config):
    specs = random_conv_specs(15, seed=2026)
    per_layer = _per_layer(specs, config)
    clear_cache()
    assert _batched(specs, config) == per_layer


def test_simulate_conv_batch_bit_identical_over_audit_corpus(pristine_cache):
    specs = corpus_specs()
    assert specs, "audit corpus is empty — replay gate lost its inputs"
    per_layer = _per_layer(specs)
    clear_cache()
    assert _batched(specs) == per_layer


def test_simulate_conv_batch_under_full_audit(pristine_cache):
    """--audit full must hold (no violations) and not perturb results."""
    from repro.audit import auditor as audit_mod

    specs = random_conv_specs(8, seed=31)
    per_layer = _per_layer(specs)
    clear_cache()
    audit_mod.configure("full")
    audit_mod.reset()
    try:
        batched = _batched(specs)
        snapshot = audit_mod.snapshot()
    finally:
        audit_mod.configure("off")
    assert batched == per_layer
    assert snapshot["violations"] == 0
    assert snapshot["checks"] > 0


def test_simulate_gemm_batch_bit_identical(pristine_cache):
    shapes = random_gemm_shapes(15, seed=8)
    sim = TPUSim()
    per_call = [sim.simulate_gemm(shape) for shape in shapes]
    clear_cache()
    assert TPUSim().simulate_gemm_batch(shapes) == per_call


def test_simulate_network_fast_path_matches_per_layer(pristine_cache):
    from repro.workloads.networks import resnet50

    layers = resnet50(batch=8)
    per_layer = _per_layer(layers)
    clear_cache()
    network = TPUSim().simulate_network("resnet50", layers)
    assert list(network.layers) == per_layer


# ------------------------------------------------------------- accounting
def test_batch_cache_accounting_matches_per_layer(pristine_cache):
    """Duplicates, canonical twins and warm re-probes must land in the same
    hit/miss/entry buckets as the one-at-a-time path."""
    base = ConvSpec(n=8, c_in=64, h_in=14, w_in=28, c_out=64,
                    h_filter=3, w_filter=3, stride=2, padding=1, name="x")
    transposed = dataclasses.replace(base, h_in=28, w_in=14, name="xt")
    dup = dataclasses.replace(base, name="xdup")
    batch = [base, transposed, dup, base]

    per_layer = _per_layer(batch)
    per_stats = SIM_CACHE.stats
    clear_cache()
    batched = _batched(batch)
    batch_stats = SIM_CACHE.stats

    assert batched == per_layer
    assert batch_stats == per_stats
    assert batch_stats.canonical_hits > 0

    # Warm re-probes behave identically after either fill pattern.
    assert TPUSim().simulate_conv(transposed) == per_layer[1]
    after = SIM_CACHE.stats
    assert after.hits == batch_stats.hits + 1
    assert after.canonical_hits == batch_stats.canonical_hits


def test_batch_with_cache_disabled_matches(pristine_cache):
    specs = random_conv_specs(6, seed=55)
    per_layer = _per_layer(specs)
    clear_cache()
    set_cache_enabled(False)
    try:
        assert _batched(specs) == per_layer
    finally:
        set_cache_enabled(True)


def test_cross_namespace_canonical_sharing(pristine_cache):
    """simulate_conv and the residency scheduler's no-residency arm publish
    the same canonical key, so the second namespace probes into a hit."""
    from repro.systolic.network_scheduler import simulate_network_resident

    spec = ConvSpec(n=8, c_in=256, h_in=7, w_in=7, c_out=256,
                    h_filter=3, w_filter=3, stride=1, padding=1, name="tail")
    sim = TPUSim()
    conv = sim.simulate_conv(spec)
    before = SIM_CACHE.stats
    # A one-layer chain has no resident edges: both flags false.
    network = simulate_network_resident("one", [spec])
    after = SIM_CACHE.stats
    assert after.canonical_hits == before.canonical_hits + 1
    assert after.misses == before.misses
    resident = network.layers[0]
    assert resident.cycles == conv.cycles
    assert resident.compute_cycles == conv.compute_cycles
    assert resident.dma_cycles == conv.dma_cycles
    assert resident.exposed_dma_cycles == conv.exposed_dma_cycles
