"""Bit-exactness gate: vectorized schedules == per-item reference.

The contract (DESIGN.md, "Performance architecture") is equality to the
last float bit — the exported results are compared textually at full
precision, so `pytest.approx` would not be good enough.  Every comparison
here is `==` / `np.array_equal`.
"""

import random

import numpy as np
import pytest

from repro.core.conv_spec import ConvSpec, GemmShape
from repro.core.layouts import Layout
from repro.perf.schedule_arrays import (
    ScheduleArrays,
    channel_first_schedule_arrays,
    execute_multi_array_schedule,
    execute_schedule_arrays,
    gemm_schedule_arrays,
    pipeline_free_times,
)
from repro.systolic.config import TPU_V2, TPUConfig
from repro.systolic.dual_mxu import _execute_multi_array
from repro.systolic.scheduler import (
    channel_first_schedule,
    execute_schedule,
    gemm_schedule,
)

import dataclasses

CONFIGS = [
    TPU_V2,
    dataclasses.replace(TPU_V2, weight_double_buffer=False),
    dataclasses.replace(TPU_V2, array_rows=64, array_cols=64, num_vector_memories=64),
]


def random_conv_specs(count: int, seed: int = 1234):
    """Valid random ConvSpecs spanning the shapes the paper sweeps."""
    rng = random.Random(seed)
    specs = []
    while len(specs) < count:
        h_in = rng.choice([7, 14, 27, 28, 56])
        h_filter = rng.choice([1, 3, 5, 7])
        stride = rng.choice([1, 1, 2])
        dilation = rng.choice([1, 1, 2])
        padding = rng.choice([0, 1, h_filter // 2])
        effective = dilation * (h_filter - 1) + 1
        if h_in + 2 * padding < effective:
            continue
        specs.append(
            ConvSpec(
                n=rng.choice([1, 2, 4]),
                c_in=rng.choice([3, 16, 64, 128, 256]),
                h_in=h_in,
                w_in=h_in,
                c_out=rng.choice([16, 64, 128, 256]),
                h_filter=h_filter,
                w_filter=h_filter,
                stride=stride,
                padding=padding,
                dilation=dilation,
            )
        )
    return specs


def random_gemm_shapes(count: int, seed: int = 99):
    rng = random.Random(seed)
    return [
        GemmShape(
            m=rng.randrange(1, 4000),
            n=rng.randrange(1, 600),
            k=rng.randrange(1, 600),
        )
        for _ in range(count)
    ]


def assert_arrays_equal(vectorized: ScheduleArrays, reference: ScheduleArrays):
    assert np.array_equal(vectorized.gemm_cycles, reference.gemm_cycles)
    assert np.array_equal(vectorized.fill_cycles, reference.fill_cycles)
    assert np.array_equal(vectorized.drain_cycles, reference.drain_cycles)
    assert np.array_equal(vectorized.macs, reference.macs)


def assert_results_equal(vectorized, reference):
    assert vectorized.total_cycles == reference.total_cycles
    assert vectorized.compute_cycles == reference.compute_cycles
    assert vectorized.dma_cycles == reference.dma_cycles
    assert vectorized.exposed_dma_cycles == reference.exposed_dma_cycles
    assert vectorized.items == reference.items
    assert vectorized.macs == reference.macs


@pytest.mark.parametrize("config", CONFIGS, ids=["v2", "no-dbuf", "64x64"])
def test_conv_schedules_bit_identical(config):
    for spec in random_conv_specs(25):
        for layout in (Layout.NHWC, Layout.NCHW):
            items = channel_first_schedule(spec, config, layout=layout)
            schedule = channel_first_schedule_arrays(spec, config, layout=layout)
            assert_arrays_equal(schedule, ScheduleArrays.from_work_items(items))
            assert_results_equal(
                execute_schedule_arrays(schedule), execute_schedule(items)
            )


@pytest.mark.parametrize("config", CONFIGS, ids=["v2", "no-dbuf", "64x64"])
def test_gemm_schedules_bit_identical(config):
    for shape in random_gemm_shapes(25):
        items = gemm_schedule(shape, config)
        schedule = gemm_schedule_arrays(shape, config)
        assert_arrays_equal(schedule, ScheduleArrays.from_work_items(items))
        assert_results_equal(execute_schedule_arrays(schedule), execute_schedule(items))


@pytest.mark.parametrize("arrays", [2, 4])
def test_multi_array_executor_bit_identical(arrays):
    for spec in random_conv_specs(8, seed=7):
        items = channel_first_schedule(spec, TPU_V2)
        schedule = channel_first_schedule_arrays(spec, TPU_V2)
        assert execute_multi_array_schedule(schedule, arrays) == _execute_multi_array(
            items, arrays
        )


def test_pipeline_free_times_matches_fold():
    rng = np.random.default_rng(5)
    for _ in range(30):
        n = int(rng.integers(1, 400))
        # Mix of idle gaps (restarts) and back-to-back items.
        s = np.cumsum(rng.exponential(10.0, size=n)) * rng.choice([0.5, 1.0, 2.0])
        a = rng.exponential(15.0, size=n)
        out = pipeline_free_times(s, a)
        prev = 0.0
        for i in range(n):
            prev = max(prev, float(s[i])) + float(a[i])
            assert out[i] == prev


def test_without_drains_matches_zeroed_reference():
    spec = random_conv_specs(1, seed=3)[0]
    items = channel_first_schedule(spec, TPU_V2)
    zeroed = [dataclasses.replace(i, drain_cycles=0.0) for i in items]
    schedule = channel_first_schedule_arrays(spec, TPU_V2).without_drains()
    assert_results_equal(execute_schedule_arrays(schedule), execute_schedule(zeroed))


# ---------------------------------------------------------------------------
# Differential tests: every path into TPUSim — cold cache, cache hit (via a
# renamed twin spec), memoization disabled, tracing enabled, and the per-item
# reference executor — must produce identical LayerResult numbers.
# ---------------------------------------------------------------------------


def assert_layer_matches_reference(layer, reference):
    assert layer.cycles == reference.total_cycles
    assert layer.compute_cycles == reference.compute_cycles
    assert layer.dma_cycles == reference.dma_cycles
    assert layer.exposed_dma_cycles == reference.exposed_dma_cycles


@pytest.fixture
def pristine_cache():
    from repro.perf.cache import clear_cache, set_cache_enabled

    clear_cache()
    yield
    set_cache_enabled(True)
    clear_cache()


def test_conv_simulator_paths_identical_over_fuzz_corpus(pristine_cache):
    from repro.perf.cache import clear_cache, set_cache_enabled
    from repro.systolic.simulator import TPUSim
    from repro.trace import tracer as trace

    sim = TPUSim()
    for spec in random_conv_specs(12, seed=2025):
        clear_cache()
        cold = sim.simulate_conv(spec)
        # A renamed twin shares the memo entry (spec_key drops the name) and
        # exercises the hit/relabel path with a distinct result object.
        twin_spec = dataclasses.replace(spec, name="twin")
        twin = sim.simulate_conv(twin_spec)
        assert twin.name == twin_spec.describe()  # re-labelled on the hit
        assert dataclasses.replace(twin, name=cold.name) == cold

        set_cache_enabled(False)
        uncached = sim.simulate_conv(spec)
        set_cache_enabled(True)
        assert uncached == cold

        trace.enable()
        try:
            set_cache_enabled(False)
            traced = sim.simulate_conv(spec)
            set_cache_enabled(True)
        finally:
            trace.disable()
            trace.get_tracer().clear()
        assert traced == cold

        reference = execute_schedule(channel_first_schedule(spec, sim.config))
        assert_layer_matches_reference(cold, reference)


def test_gemm_simulator_paths_identical_over_fuzz_corpus(pristine_cache):
    from repro.perf.cache import clear_cache, set_cache_enabled
    from repro.systolic.simulator import TPUSim

    sim = TPUSim()
    for shape in random_gemm_shapes(12, seed=41):
        clear_cache()
        cold = sim.simulate_gemm(shape)
        hit = sim.simulate_gemm(shape)
        assert hit == cold
        set_cache_enabled(False)
        uncached = sim.simulate_gemm(shape)
        set_cache_enabled(True)
        assert uncached == cold
        reference = execute_schedule(gemm_schedule(shape, sim.config))
        assert_layer_matches_reference(cold, reference)
