"""Tier-1 smoke: the accelerated harness end-to-end.

- the quick harness completes through ``main()``;
- a cached re-simulation constructs no second schedule;
- ``--jobs`` produces byte-identical output to the serial run.
"""

import contextlib
import io

import pytest

from repro.harness import runner
from repro.perf.cache import clear_cache
from repro.perf.schedule_arrays import schedule_construction_count
from repro.systolic.simulator import TPUSim
from repro.workloads.networks import resnet50


def run_main(argv):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = runner.main(argv)
    return code, out.getvalue()


def test_quick_harness_completes():
    code, output = run_main(["table1", "fig4", "--quick", "--cache-stats"])
    assert code == 0
    assert "simulation cache:" in output


def test_cached_resimulation_builds_no_schedule():
    sim = TPUSim()
    layers = resnet50(batch=1)
    first = [sim.simulate_conv(layer) for layer in layers]
    built = schedule_construction_count()
    second = [sim.simulate_conv(layer) for layer in layers]
    assert schedule_construction_count() == built  # pure cache hits
    assert second == first


def test_jobs_output_identical_to_serial():
    # Workers start with a cold cache; the report must not care.
    clear_cache()
    _, parallel = run_main(["table1", "fig13", "--quick", "--jobs", "2"])
    clear_cache()
    _, serial = run_main(["table1", "fig13", "--quick"])
    assert parallel == serial


def test_unknown_experiment_fails_before_spawning():
    with pytest.raises(KeyError):
        runner.main(["nonesuch", "--jobs", "4"])
