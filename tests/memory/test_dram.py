"""HBM model: run-length stats, trace vs summary pricing, bandwidth."""

import pytest

from repro.memory import HBMConfig, HBMModel, TransferStats, run_length_stats


@pytest.fixture
def hbm():
    return HBMModel()


class TestRunLengthStats:
    def test_contiguous(self):
        stats = run_length_stats([0, 2, 4, 6], access_bytes=2)
        assert stats == TransferStats(bytes=8, runs=1)

    def test_fragmented(self):
        stats = run_length_stats([0, 2, 100, 102, 200], access_bytes=2)
        assert stats.runs == 3
        assert stats.bytes == 10

    def test_empty(self):
        assert run_length_stats([], 2) == TransferStats(bytes=0, runs=0)

    def test_order_sensitive(self):
        # 0,4,2 is not coalescible in issue order
        assert run_length_stats([0, 4, 2], access_bytes=2).runs == 3

    def test_invalid_access_bytes(self):
        with pytest.raises(ValueError):
            run_length_stats([0], 0)


class TestTransferStats:
    def test_mean_run(self):
        assert TransferStats(bytes=100, runs=4).mean_run_bytes == 25

    def test_span_validation(self):
        with pytest.raises(ValueError):
            TransferStats(bytes=100, runs=1, span_bytes=50)

    def test_zero_consistency(self):
        with pytest.raises(ValueError):
            TransferStats(bytes=0, runs=3)
        with pytest.raises(ValueError):
            TransferStats(bytes=3, runs=0)


class TestSummaryPricing:
    def test_zero_transfer_free(self, hbm):
        assert hbm.transfer_cycles(TransferStats(bytes=0, runs=0)) == 0.0

    def test_contiguous_near_peak(self, hbm):
        """A long stream must achieve >85% of peak bandwidth."""
        nbytes = 64 * 1024 * 1024
        cycles = hbm.contiguous_cycles(nbytes)
        ideal = nbytes / hbm.config.bytes_per_cycle
        assert cycles < ideal / 0.85

    def test_fragmented_slower_per_byte(self, hbm):
        nbytes = 1 << 20
        contiguous = hbm.contiguous_cycles(nbytes)
        scattered = hbm.strided_cycles(nbytes, run_bytes=64)
        assert scattered > 2 * contiguous

    def test_monotone_in_run_length(self, hbm):
        nbytes = 1 << 20
        costs = [hbm.strided_cycles(nbytes, run_bytes=r) for r in (32, 128, 1024, 8192)]
        assert costs == sorted(costs, reverse=True)

    def test_span_caps_row_misses(self, hbm):
        """Many short runs packed in a small span cost less than the same
        runs scattered across the whole address space."""
        dense = hbm.transfer_cycles(TransferStats(bytes=1 << 20, runs=16384, span_bytes=2 << 20))
        sparse = hbm.transfer_cycles(TransferStats(bytes=1 << 20, runs=16384))
        assert dense < sparse

    def test_sub_burst_runs_pay_burst_waste(self, hbm):
        """8-byte runs still move 64-byte bursts."""
        tiny = hbm.transfer_cycles(TransferStats(bytes=8 * 1000, runs=1000))
        # payload alone would be 8000/1000 = 8 cycles; burst waste forces >= 64x1000 bytes
        assert tiny >= 64 * 1000 / hbm.config.bytes_per_cycle

    def test_effective_bandwidth(self, hbm):
        stats = TransferStats(bytes=64 << 20, runs=1, span_bytes=64 << 20)
        bw = hbm.effective_bandwidth_gbps(stats)
        assert 0.8 * hbm.config.peak_bandwidth_gbps <= bw <= hbm.config.peak_bandwidth_gbps

    def test_negative_rejected(self, hbm):
        with pytest.raises(ValueError):
            hbm.contiguous_cycles(-1)
        with pytest.raises(ValueError):
            hbm.strided_cycles(100, 0)


class TestTracePricing:
    def test_empty_trace(self, hbm):
        assert hbm.trace_cycles([], 2) == 0.0

    def test_trace_contiguous_matches_summary(self, hbm):
        addresses = list(range(0, 1 << 16, 2))
        trace = hbm.trace_cycles(addresses, 2)
        summary = hbm.contiguous_cycles(1 << 16)
        assert trace == pytest.approx(summary, rel=0.5)

    def test_trace_scattered_matches_summary_order(self, hbm):
        """Scattered pattern: both paths agree a 4KB-strided read is several
        times more expensive per byte than a stream."""
        addresses = [i * 4096 for i in range(4096)]
        trace = hbm.trace_cycles(addresses, 64)
        stream = hbm.trace_cycles(list(range(0, 4096 * 64, 64)), 64)
        assert trace > 2 * stream

    def test_trace_dedups_bursts(self, hbm):
        """Two accesses inside one burst fetch it once."""
        single = hbm.trace_cycles([0], 8)
        double = hbm.trace_cycles([0, 8], 8)
        assert double == single


class TestConfig:
    def test_bytes_per_cycle(self):
        cfg = HBMConfig(peak_bandwidth_gbps=700.0, clock_ghz=0.7)
        assert cfg.bytes_per_cycle == pytest.approx(1000.0)

    def test_row_burst_divisibility(self):
        with pytest.raises(ValueError):
            HBMConfig(row_bytes=100, burst_bytes=64)

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            HBMConfig(peak_bandwidth_gbps=0)
        with pytest.raises(ValueError):
            HBMConfig(channels=0)
