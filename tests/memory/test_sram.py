"""Analytic SRAM macro model: calibration, monotonicity, validity."""

import pytest

from repro.memory import SRAMConfig, SRAMModel

CAP = 256 * 1024


@pytest.fixture
def model():
    return SRAMModel()


class TestCalibration:
    def test_paper_ratio_4B_vs_32B(self, model):
        """Sec. IV-C: 4-byte word ~3.2x the area of a 32-byte word at 256 KB."""
        assert model.area_ratio(CAP, 4, 32) == pytest.approx(3.2, rel=0.15)

    def test_paper_ratio_word1_vs_minimum(self, model):
        """Sec. VII: word of 1 element ~5x the large-word minimum."""
        assert 3.5 <= model.area_ratio(CAP, 4, 128) <= 5.5

    def test_word8_near_knee(self, model):
        """The TPU's 32-byte (8-element) word sits past the steep region:
        going 32B -> 128B saves far less than 4B -> 32B did."""
        steep = model.area_um2(CAP, 4) - model.area_um2(CAP, 32)
        flat = model.area_um2(CAP, 32) - model.area_um2(CAP, 128)
        assert steep > 5 * flat


class TestMonotonicity:
    def test_area_decreases_with_word(self, model):
        areas = [model.area_um2(CAP, w) for w in (1, 2, 4, 8, 16, 32, 64, 128)]
        assert areas == sorted(areas, reverse=True)

    def test_area_increases_with_capacity(self, model):
        assert model.area_um2(2 * CAP, 32) > model.area_um2(CAP, 32)

    def test_latency_increases_with_capacity(self, model):
        assert model.access_latency_ns(2 * CAP) > model.access_latency_ns(CAP)

    def test_energy_increases_with_word(self, model):
        assert model.access_energy_pj(32) > model.access_energy_pj(4)


class TestValidation:
    def test_capacity_word_divisibility(self, model):
        with pytest.raises(ValueError):
            model.area_um2(100, 3)

    def test_positive_args(self, model):
        with pytest.raises(ValueError):
            model.area_um2(0, 4)
        with pytest.raises(ValueError):
            model.access_latency_ns(0)
        with pytest.raises(ValueError):
            model.access_latency_cycles(CAP, 0)
        with pytest.raises(ValueError):
            model.access_energy_pj(0)

    def test_config_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SRAMConfig(cell_area_um2=0)


class TestUnits:
    def test_mm2_conversion(self, model):
        assert model.area_mm2(CAP, 32) == pytest.approx(model.area_um2(CAP, 32) / 1e6)

    def test_latency_cycles_scales_with_clock(self, model):
        ns = model.access_latency_ns(CAP)
        assert model.access_latency_cycles(CAP, 0.7) == pytest.approx(0.7 * ns)

    def test_reasonable_magnitudes(self, model):
        """A 256 KB macro should be O(1) mm^2 and sub-ns-to-ns latency."""
        assert 0.3 < model.area_mm2(CAP, 32) < 5.0
        assert 0.1 < model.access_latency_ns(CAP) < 5.0
