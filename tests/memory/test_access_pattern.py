"""Tile-fill address traces: HWC-vs-CHW structure (Fig 7 machinery)."""

import pytest

from repro.core import ConvSpec, decompose
from repro.core.layouts import Layout, flatten_index
from repro.memory import (
    HBMModel,
    analytic_fill_stats,
    compare_layout_fill,
    fill_stats,
    tile_fill_addresses,
)


@pytest.fixture
def spec():
    return ConvSpec(n=1, c_in=8, h_in=16, w_in=16, c_out=4,
                    h_filter=3, w_filter=3, stride=1, padding=0)


@pytest.fixture
def tile(spec):
    return decompose(spec)[0]


class TestTraces:
    def test_trace_length_counts_taps(self, spec, tile):
        addresses = tile_fill_addresses(spec, tile, Layout.NHWC)
        assert len(addresses) == spec.h_out * spec.w_out * spec.c_in

    def test_padding_taps_skip_dram(self):
        spec = ConvSpec(n=1, c_in=2, h_in=5, w_in=5, c_out=2,
                        h_filter=3, w_filter=3, stride=1, padding=1)
        corner = decompose(spec)[0]  # reads the top-left halo
        addresses = tile_fill_addresses(spec, corner, Layout.NHWC)
        assert len(addresses) < spec.h_out * spec.w_out * spec.c_in

    def test_addresses_unique_within_tile(self, spec, tile):
        addresses = tile_fill_addresses(spec, tile, Layout.NCHW)
        assert len(set(addresses)) == len(addresses)

    def test_max_rows_truncates(self, spec, tile):
        full = tile_fill_addresses(spec, tile, Layout.NHWC)
        partial = tile_fill_addresses(spec, tile, Layout.NHWC, max_rows=2)
        assert len(partial) == 2 * spec.w_out * spec.c_in < len(full)


class TestVectorizedTraceEquivalence:
    """The array-arithmetic trace must equal the scalar loop nest exactly —
    same addresses, same order."""

    @pytest.mark.parametrize("layout", [Layout.NHWC, Layout.NCHW])
    @pytest.mark.parametrize("stride,padding,dilation", [(1, 0, 1), (2, 1, 1), (1, 1, 2)])
    def test_matches_reference_loop(self, layout, stride, padding, dilation):
        spec = ConvSpec(n=2, c_in=3, h_in=9, w_in=9, c_out=2,
                        h_filter=3, w_filter=3, stride=stride,
                        padding=padding, dilation=dilation)
        for tile in decompose(spec):
            expected = []
            for n in range(spec.n):
                for oy in range(spec.h_out):
                    for ox in range(spec.w_out):
                        y, x = spec.tap_coordinate(oy, ox, tile.r, tile.s)
                        if not (0 <= y < spec.h_in and 0 <= x < spec.w_in):
                            continue
                        for c in range(spec.c_in):
                            expected.append(
                                2 * flatten_index(layout, spec.ifmap_shape, n, c, y, x)
                            )
            assert tile_fill_addresses(spec, tile, layout).tolist() == expected


class TestRunStructure:
    def test_hwc_coalesces_better_than_chw(self, spec, tile):
        hwc = fill_stats(spec, tile, Layout.NHWC)
        chw = fill_stats(spec, tile, Layout.NCHW)
        assert hwc.bytes == chw.bytes
        assert hwc.runs < chw.runs

    def test_hwc_stride1_row_runs(self, spec, tile):
        """At stride 1 a whole tile row coalesces into one run per IFMap row."""
        stats = fill_stats(spec, tile, Layout.NHWC)
        assert stats.runs == spec.h_out  # one run per tile row

    def test_chw_runs_per_channel(self, spec, tile):
        stats = fill_stats(spec, tile, Layout.NCHW)
        assert stats.runs == spec.h_out * spec.c_in

    def test_stride_fragments_both(self, spec):
        strided = spec.with_stride(2)
        tile = decompose(strided)[0]
        hwc = fill_stats(strided, tile, Layout.NHWC)
        # each tap is its own run at stride 2
        assert hwc.runs == strided.h_out * strided.w_out


class TestAnalyticStats:
    @pytest.mark.parametrize("stride", [1, 2])
    @pytest.mark.parametrize("layout", [Layout.NHWC, Layout.NCHW])
    def test_analytic_matches_trace_for_interior_tile(self, stride, layout):
        """The closed form agrees with the exact trace when no padding halo
        intervenes."""
        spec = ConvSpec(n=1, c_in=4, h_in=11, w_in=11, c_out=2,
                        h_filter=3, w_filter=3, stride=stride, padding=0)
        tile = decompose(spec)[4]
        exact = fill_stats(spec, tile, layout)
        analytic = analytic_fill_stats(spec, layout)
        assert analytic.bytes == exact.bytes
        assert analytic.runs == pytest.approx(exact.runs, rel=0.25)

    def test_analytic_rejects_bad_layout(self, spec):
        with pytest.raises(ValueError):
            analytic_fill_stats(spec, "bogus")


class TestComparePricing:
    def test_hwc_cheaper_cycles(self, spec, tile):
        outcome = compare_layout_fill(spec, tile, HBMModel())
        assert outcome[Layout.NHWC].cycles <= outcome[Layout.NCHW].cycles
        assert outcome[Layout.NHWC].effective_bandwidth_gbps >= (
            outcome[Layout.NCHW].effective_bandwidth_gbps
        )

    def test_mean_run_bytes_reported(self, spec, tile):
        outcome = compare_layout_fill(spec, tile, HBMModel())
        hwc = outcome[Layout.NHWC]
        assert hwc.mean_run_bytes == pytest.approx(hwc.stats.mean_run_bytes)
