"""Config (de)serialisation round trips."""

import dataclasses

import pytest

from repro.configs import (
    gpu_config_from_dict,
    gpu_config_to_dict,
    load_gpu_config,
    load_tpu_config,
    save_config,
    tpu_config_from_dict,
    tpu_config_to_dict,
)
from repro.gpu.config import V100
from repro.systolic.config import TPU_V2


def test_tpu_round_trip():
    assert tpu_config_from_dict(tpu_config_to_dict(TPU_V2)) == TPU_V2


def test_gpu_round_trip():
    assert gpu_config_from_dict(gpu_config_to_dict(V100)) == V100


def test_modified_config_round_trips():
    config = TPU_V2.with_array(256)
    assert tpu_config_from_dict(tpu_config_to_dict(config)) == config


def test_file_round_trip(tmp_path):
    tpu_path = save_config(TPU_V2, tmp_path / "tpu.json")
    gpu_path = save_config(V100, tmp_path / "gpu.json")
    assert load_tpu_config(tpu_path) == TPU_V2
    assert load_gpu_config(gpu_path) == V100


def test_unknown_fields_rejected():
    payload = tpu_config_to_dict(TPU_V2)
    payload["flux_capacitor"] = 1
    with pytest.raises(ValueError, match="flux_capacitor"):
        tpu_config_from_dict(payload)


def test_loaded_config_is_validated():
    payload = tpu_config_to_dict(TPU_V2)
    payload["array_rows"] = 0
    with pytest.raises(ValueError):
        tpu_config_from_dict(payload)


def test_nested_configs_rebuilt():
    payload = tpu_config_to_dict(TPU_V2)
    payload["hbm"]["peak_bandwidth_gbps"] = 1200.0
    rebuilt = tpu_config_from_dict(payload)
    assert rebuilt.hbm.peak_bandwidth_gbps == 1200.0


def test_unsupported_type_rejected(tmp_path):
    with pytest.raises(TypeError):
        save_config(object(), tmp_path / "x.json")


def test_configs_usable_after_load(tmp_path):
    from repro.core import ConvSpec
    from repro.systolic import TPUSim

    path = save_config(TPU_V2.with_array(64), tmp_path / "small.json")
    config = load_tpu_config(path)
    layer = ConvSpec(n=2, c_in=32, h_in=14, w_in=14, c_out=32,
                     h_filter=3, w_filter=3, padding=1)
    result = TPUSim(config).simulate_conv(layer)
    assert result.cycles > 0
