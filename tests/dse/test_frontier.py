"""Pareto frontier, aggregation, journal and the canonical artifact."""

import json

from repro.dse.frontier import (
    FrontierJournal,
    FrontierPoint,
    aggregate_point,
    pareto_frontier,
    render_artifact,
)
from repro.dse.space import PRESETS, DesignPoint

SMOKE = PRESETS["smoke"]


def _fp(array, cost, perf):
    """A frontier point with an explicit (cost, perf) and a distinct id."""
    point = DesignPoint(
        array=array, sram_mb=32, word_elems=8, hbm_gbps=700, mxu=1
    )
    return FrontierPoint(
        point=point, perf_tflops=perf, cost_mm2=cost,
        utilization=0.5, cycles=1.0, macs=1, cost_parts={"cost_mm2": cost},
    )


# --------------------------------------------------------------- dominance
def test_dominates_requires_strict_improvement():
    cheap_fast = _fp(64, cost=1.0, perf=2.0)
    dear_slow = _fp(128, cost=2.0, perf=1.0)
    twin = _fp(256, cost=1.0, perf=2.0)
    assert cheap_fast.dominates(dear_slow)
    assert not dear_slow.dominates(cheap_fast)
    assert not cheap_fast.dominates(twin)  # equal on both axes: no winner


def test_pareto_frontier_drops_dominated_and_sorts_by_cost():
    points = [
        _fp(64, cost=3.0, perf=3.0),
        _fp(128, cost=1.0, perf=1.0),
        _fp(256, cost=2.0, perf=0.5),  # dominated by the cost-1 point
        _fp(512, cost=2.0, perf=2.0),
    ]
    frontier = pareto_frontier(points)
    assert [fp.cost_mm2 for fp in frontier] == [1.0, 2.0, 3.0]
    assert all(fp.point.array != 256 for fp in frontier)


def test_pareto_frontier_keeps_one_of_equal_twins():
    # Neither twin dominates the other; the cost-ascending scan keeps the
    # first (point_id tie-break) so the frontier is still a pure function
    # of the input set.
    twins = [_fp(64, cost=1.0, perf=1.0), _fp(128, cost=1.0, perf=1.0)]
    frontier = pareto_frontier(twins)
    assert len(frontier) == 1
    assert frontier == pareto_frontier(list(reversed(twins)))


def test_pareto_frontier_is_order_independent():
    points = [
        _fp(64, cost=3.0, perf=3.0),
        _fp(128, cost=1.0, perf=1.0),
        _fp(512, cost=2.0, perf=2.0),
    ]
    assert pareto_frontier(points) == pareto_frontier(points[::-1])


# ------------------------------------------------------------- aggregation
def test_aggregate_point_is_order_independent():
    point = SMOKE.seed_points()[0]
    payloads = [
        {"cycles": 100.0, "macs": 1000},
        {"cycles": 300.0, "macs": 5000},
        {"cycles": 50.0, "macs": 250},
    ]
    forward = aggregate_point(point, payloads)
    backward = aggregate_point(point, payloads[::-1])
    assert forward == backward
    assert forward.cycles == 450.0 and forward.macs == 6250


# ----------------------------------------------------------------- journal
def test_journal_roundtrip_and_corrupt_line_skip(tmp_path):
    journal = FrontierJournal(tmp_path / "frontier.jsonl")
    journal.append_round(0, [_fp(64, 1.0, 1.0)])
    journal.append_round(1, [_fp(64, 1.0, 1.0), _fp(128, 2.0, 2.0)])
    # A torn tail, as a crash mid-append leaves it.
    with open(journal.path, "a") as handle:
        handle.write('{"schema": 1, "round": 2, "fron')
    rounds = journal.load()
    assert [rec["round"] for rec in rounds] == [0, 1]
    assert rounds[1]["size"] == 2


def test_journal_load_missing_file(tmp_path):
    assert FrontierJournal(tmp_path / "absent.jsonl").load() == []


# ---------------------------------------------------------------- artifact
def test_artifact_bytes_are_input_order_independent():
    evaluated = [_fp(64, 1.0, 1.0), _fp(128, 2.0, 2.0), _fp(256, 3.0, 3.0)]
    frontier = pareto_frontier(evaluated)
    first = render_artifact(
        SMOKE, ["B@4", "A@8"], True, 2, evaluated, frontier, ["z/t", "a/t"]
    )
    second = render_artifact(
        SMOKE, ["A@8", "B@4"], True, 2, evaluated[::-1], frontier, ["a/t", "z/t"]
    )
    assert first == second


def test_artifact_carries_no_execution_history():
    evaluated = [_fp(64, 1.0, 1.0)]
    doc = json.loads(
        render_artifact(SMOKE, ["A@8"], False, 1, evaluated, evaluated, [])
    )
    assert doc["kind"] == "repro-dse-frontier"
    assert doc["frontier"] == [evaluated[0].point_id]
    flat = json.dumps(doc)
    for forbidden in ("time", "worker", "attempt", "host", "pid"):
        assert forbidden not in flat
