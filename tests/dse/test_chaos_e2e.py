"""The acceptance e2e: sharded chaos sweep + kill -9 + resume, byte-compare.

Drives ``python -m repro dse sweep`` as a real subprocess (its own session,
real worker pool, real signals): a fault-free serial reference, then a
``--jobs`` sweep under the full chaos campaign that gets SIGKILLed
mid-flight and resumed — the resumed frontier must be byte-identical to
the reference.  ``tools/dse_smoke.py`` runs the same scenario at --jobs 4
as a make target; this pytest variant keeps CI's failure reporting.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

REPO = pathlib.Path(__file__).resolve().parents[2]

SWEEP_ARGS = [
    "--preset", "smoke",
    "--workloads", "AlexNet@4",
    "--quick",
    "--rounds", "2",
]
CHAOS = "crash,hang,flaky,corrupt-store,rate=0.5,seed=7"


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _dse(argv, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", "dse", *argv],
        cwd=REPO, env=_env(), capture_output=True, text=True,
        timeout=600, **kwargs,
    )


def _result_count(out: pathlib.Path) -> int:
    count = 0
    for shard in (out / "results").glob("shard-*.jsonl"):
        count += sum(1 for line in shard.read_text().splitlines() if line)
    return count


def test_chaos_kill9_resume_is_byte_identical(tmp_path):
    serial_out = tmp_path / "serial"
    chaos_out = tmp_path / "chaos"

    reference = _dse(["sweep", "--out", str(serial_out), *SWEEP_ARGS])
    assert reference.returncode == 0, reference.stderr[-800:]
    reference_bytes = (serial_out / "frontier.json").read_bytes()

    # Sharded chaos sweep in its own session; SIGKILL the whole process
    # group (coordinator + workers) once durable results exist.
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "dse", "sweep",
         "--out", str(chaos_out), *SWEEP_ARGS,
         "--jobs", "2", "--lease-s", "2", "--inject-faults", CHAOS],
        cwd=REPO, env=_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        start_new_session=True,
    )
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if _result_count(chaos_out) >= 2 or proc.poll() is not None:
                break
            time.sleep(0.1)
        else:
            raise AssertionError("chaos sweep produced no results in 120s")
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)

    resumed = _dse(
        ["sweep", "--out", str(chaos_out), *SWEEP_ARGS,
         "--jobs", "2", "--lease-s", "2", "--inject-faults", CHAOS,
         "--resume"]
    )
    assert resumed.returncode == 0, resumed.stderr[-800:]
    assert (chaos_out / "frontier.json").read_bytes() == reference_bytes

    # The campaign must have engaged: injected failures were recorded and
    # healed, and the status CLI reads the directory clean.
    failures_path = chaos_out / "failures.jsonl"
    assert failures_path.exists() and failures_path.read_text().strip()
    status = _dse(["status", "--out", str(chaos_out), "--json"])
    assert status.returncode == 0, status.stderr[-400:]
    doc = json.loads(status.stdout)
    assert doc["pending"] == 0 and doc["quarantined"] == []
