"""Chaos-plan unit tests: parsing, determinism, once-only firing."""

import os
import time

import pytest

from repro.dse.chaos import KINDS, ChaosPlan
from repro.dse.queue import WorkQueue
from repro.errors import ConfigError, PermanentFault, TransientFault

TID = "a64-s16-w8-h400-x1/AlexNet@4"


def _queue(tmp_path):
    queue = WorkQueue(tmp_path / "sweep")
    queue.ensure_dirs()
    return queue


# ----------------------------------------------------------------- parsing
def test_parse_full_spec():
    plan = ChaosPlan.parse("crash,hang,flaky,corrupt-store,rate=0.4,seed=7")
    assert plan.kinds == KINDS
    assert plan.rate == 0.4 and plan.seed == 7 and plan.poison is None


def test_parse_poison_only_spec():
    plan = ChaosPlan.parse("poison=a64-s16")
    assert plan.kinds == () and plan.poison == "a64-s16"


@pytest.mark.parametrize(
    "spec",
    [
        "explode",            # unknown kind
        "crash,jitter=3",     # unknown option
        "crash,rate=lots",    # non-float rate
        "crash,rate=1.5",     # rate out of range
        "crash,seed=pi",      # non-integer seed
        "rate=0.5",           # no kinds and no poison
        "",                   # empty spec
    ],
)
def test_parse_rejects_bad_specs(spec):
    with pytest.raises(ConfigError):
        ChaosPlan.parse(spec)


def test_doc_roundtrip():
    plan = ChaosPlan.parse("crash,flaky,rate=0.2,seed=3,poison=x")
    import dataclasses

    plan = dataclasses.replace(plan, hang_s=2.5, coordinator_pid=1234)
    assert ChaosPlan.from_doc(plan.to_doc()) == plan


# -------------------------------------------------------------- determinism
def test_fault_for_is_pure_and_rate_bounded():
    plan = ChaosPlan.parse("crash,hang,flaky,rate=0.5,seed=11")
    draws = {tid: plan.fault_for(tid) for tid in (f"p{i}/w" for i in range(64))}
    again = {tid: plan.fault_for(tid) for tid in draws}
    assert draws == again
    fired = [kind for kind in draws.values() if kind is not None]
    assert fired and all(kind in plan.kinds for kind in fired)
    assert len(fired) < len(draws)  # rate 0.5 must not fault everything


def test_rate_zero_never_faults():
    plan = ChaosPlan.parse("crash,hang,flaky,corrupt-store,rate=0.0")
    assert all(plan.fault_for(f"p{i}/w") is None for i in range(32))


# ------------------------------------------------------------------ firing
def test_poison_fires_on_every_attempt(tmp_path):
    plan = ChaosPlan.parse("poison=a64-s16")
    queue = _queue(tmp_path)
    for attempt in (1, 2, 5):
        with pytest.raises(PermanentFault):
            plan.apply(queue, TID, attempt=attempt, generation=1)
    # Tasks not matching the substring sail through.
    plan.apply(queue, "a128-s32-w8-h700-x1/AlexNet@4", attempt=1, generation=1)


def test_flaky_fires_only_on_first_recorded_attempt(tmp_path):
    plan = ChaosPlan.parse("flaky,rate=1.0")
    queue = _queue(tmp_path)
    with pytest.raises(TransientFault):
        plan.apply(queue, TID, attempt=1, generation=1)
    plan.apply(queue, TID, attempt=2, generation=1)  # retry sails through


def test_corrupt_store_tears_the_shard_then_heals(tmp_path):
    plan = ChaosPlan.parse("corrupt-store,rate=1.0")
    queue = _queue(tmp_path)
    with pytest.raises(TransientFault):
        plan.apply(queue, TID, attempt=1, generation=1)
    shard = queue.shard_path(TID)
    assert shard.exists() and TID in shard.read_text()
    assert queue.load_results() == {}  # the torn line is skipped, not served
    queue.complete(TID, {"cycles": 1.0})  # the retry appends the clean record
    assert queue.load_results()[TID] == {"cycles": 1.0}
    plan.apply(queue, TID, attempt=2, generation=1)  # once only


def test_process_killing_kinds_disabled_in_coordinator(tmp_path):
    import dataclasses

    plan = dataclasses.replace(
        ChaosPlan.parse("crash,rate=1.0"), coordinator_pid=os.getpid()
    )
    assert plan.fault_for(TID) == "crash"
    # If the guard failed this would os._exit(137) the test process.
    plan.apply(_queue(tmp_path), TID, attempt=1, generation=1)


def test_hang_is_fenced_past_generation_one(tmp_path):
    import dataclasses

    plan = dataclasses.replace(ChaosPlan.parse("hang,rate=1.0"), hang_s=60.0)
    started = time.monotonic()
    # Generation 2 means the lease was already stolen once: the hang fired
    # for the dead owner and must not fire again for the survivor.
    plan.apply(_queue(tmp_path), TID, attempt=1, generation=2)
    assert time.monotonic() - started < 5.0
