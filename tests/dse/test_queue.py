"""Work-queue unit tests: tasks, results, failures, heartbeats, stop."""

import json

from repro.dse.queue import Task, WorkQueue, task_shard


def _task(task_id="a64-s16-w8-h400-x1/AlexNet@4", cycles=1.0):
    return Task(
        task_id=task_id,
        payload={"point": {"array": 64}, "workload": "AlexNet@4",
                 "quick": True, "cycles": cycles},
    )


def _queue(tmp_path):
    queue = WorkQueue(tmp_path / "sweep")
    queue.ensure_dirs()
    return queue


# -------------------------------------------------------------------- tasks
def test_add_task_is_idempotent_on_load(tmp_path):
    queue = _queue(tmp_path)
    queue.add_task(_task())
    queue.add_task(_task())  # resume re-enqueue: same id appended again
    tasks = queue.load_tasks()
    assert list(tasks) == ["a64-s16-w8-h400-x1/AlexNet@4"]


def test_task_shard_is_stable_and_lease_name_safe(tmp_path):
    queue = _queue(tmp_path)
    tid = "a64-s16-w8-h400-x1/AlexNet@4"
    assert task_shard(tid) == task_shard(tid)
    assert queue.shard_path(tid).name == f"shard-{task_shard(tid)}.jsonl"
    assert "/" not in queue.lease_path(tid).name


# ------------------------------------------------------------------ results
def test_load_results_last_write_wins(tmp_path):
    queue = _queue(tmp_path)
    tid = _task().task_id
    queue.complete(tid, {"cycles": 1.0})
    queue.complete(tid, {"cycles": 2.0})
    assert queue.load_results()[tid] == {"cycles": 2.0}


def test_load_results_skips_torn_and_alien_lines(tmp_path):
    queue = _queue(tmp_path)
    tid = _task().task_id
    shard = queue.shard_path(tid)
    shard.parent.mkdir(parents=True, exist_ok=True)
    with open(shard, "a") as handle:
        handle.write('{"schema": 1, "task_id": "' + tid + '", "resu\n')
        handle.write(json.dumps({"schema": 99, "task_id": tid}) + "\n")
    queue.complete(tid, {"cycles": 3.0})
    assert queue.load_results() == {tid: {"cycles": 3.0}}


# ------------------------------------------------------------------- leases
def test_claim_renew_release_cycle(tmp_path):
    queue = _queue(tmp_path)
    tid = _task().task_id
    lease = queue.claim(tid, "w0", ttl_s=30.0)
    assert lease is not None and lease.generation == 1
    assert queue.claim(tid, "w1", ttl_s=30.0) is None  # held elsewhere
    assert queue.renew(tid, "w0", ttl_s=30.0) is not None
    assert queue.release(tid, "w0")
    assert queue.lease_of(tid) is None
    fresh = queue.claim(tid, "w1", ttl_s=30.0)
    assert fresh is not None and fresh.generation == 1


def test_claim_steals_expired_lease_with_generation_bump(tmp_path):
    queue = _queue(tmp_path)
    tid = _task().task_id
    assert queue.claim(tid, "dead", ttl_s=0.0) is not None  # expires now
    stolen = queue.claim(tid, "survivor", ttl_s=30.0)
    assert stolen is not None
    assert stolen.owner == "survivor" and stolen.generation == 2
    # The fenced former owner can no longer renew.
    assert queue.renew(tid, "dead", ttl_s=30.0) is None


# ----------------------------------------------------------------- failures
def test_failures_group_by_task(tmp_path):
    queue = _queue(tmp_path)
    queue.record_failure("t/a", "w0", 1, kind="TransientFault", error="x")
    queue.record_failure("t/a", "w1", 2, kind="PermanentFault", error="y")
    queue.record_failure("t/b", "w0", 1, kind="TransientFault", error="z")
    failures = queue.load_failures()
    assert [f["attempt"] for f in failures["t/a"]] == [1, 2]
    assert len(failures["t/b"]) == 1


# --------------------------------------------------------------- heartbeats
def test_heartbeats_are_atomic_and_readable(tmp_path):
    queue = _queue(tmp_path)
    queue.heartbeat("w0.1", state="running", task="t/a", done=3)
    queue.heartbeat("w0.1", state="idle", done=4)  # replaces, not appends
    beats = queue.load_heartbeats()
    assert beats["w0.1"]["state"] == "idle" and beats["w0.1"]["done"] == 4
    assert "pid" in beats["w0.1"] and "time" in beats["w0.1"]


# --------------------------------------------------------------------- stop
def test_stop_sentinel_roundtrip(tmp_path):
    queue = _queue(tmp_path)
    assert not queue.stop_requested()
    queue.request_stop()
    assert queue.stop_requested()
    queue.clear_stop()
    assert not queue.stop_requested()
    queue.clear_stop()  # idempotent on a missing sentinel
