"""Coordinator tests: validation, serial sweeps, resume, chaos, quarantine.

Everything here runs the engine in-process (serial mode, or with the
coordinator draining the queue itself); the subprocess chaos e2e with a
real ``kill -9`` lives in ``test_chaos_e2e.py``.
"""

import dataclasses
import json

import pytest

from repro.dse.engine import (
    SweepConfig,
    replay_quarantine,
    run_sweep,
    sweep_status,
)
from repro.dse.frontier import FrontierJournal
from repro.errors import ConfigError

WORKLOADS = ("AlexNet@4",)


def _config(out, **overrides):
    base = dict(
        out=str(out), preset="smoke", workloads=WORKLOADS, quick=True,
        rounds=2, lease_ttl_s=30.0,
    )
    base.update(overrides)
    return SweepConfig(**base)


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One fault-free serial sweep, shared by the read-only tests."""
    out = tmp_path_factory.mktemp("dse-ref") / "sweep"
    summary = run_sweep(_config(out))
    return out, summary


# --------------------------------------------------------------- validation
@pytest.mark.parametrize(
    "overrides",
    [
        {"preset": "galactic"},
        {"rounds": 0},
        {"jobs": 0},
        {"lease_ttl_s": 0.0},
        {"max_task_failures": 1},  # one crash must never quarantine
        {"workloads": ("NoSuchNet@8",)},
        {"workloads": ("AlexNet@-1",)},
        {"inject_faults": "explode"},
    ],
)
def test_validate_rejects_bad_configs(tmp_path, overrides):
    with pytest.raises(ConfigError):
        _config(tmp_path / "s", **overrides).validate()


# ------------------------------------------------------------ serial sweeps
def test_serial_sweep_produces_artifact_journal_metrics(reference):
    out, summary = reference
    assert summary["frontier"], "smoke sweep found an empty frontier"
    assert summary["points_evaluated"] >= len(summary["frontier"])
    assert summary["quarantined"] == [] and not summary["degraded"]

    artifact = json.loads((out / "frontier.json").read_text())
    assert artifact["frontier"] == summary["frontier"]
    assert artifact["rounds"] == 2

    rounds = FrontierJournal(out / "frontier.jsonl").load()
    assert [rec["round"] for rec in rounds] == [0, 1]

    prom = (out / "metrics.prom").read_text()
    assert "repro_dse_tasks_total" in prom
    assert "repro_dse_frontier_size" in prom


def test_status_reads_a_finished_sweep_from_disk(reference):
    out, summary = reference
    status = sweep_status(str(out))
    assert status["pending"] == 0
    assert status["results"] == status["tasks"] > 0
    assert status["last_frontier"] == summary["frontier"]
    assert status["artifact"] is not None


def test_sweeps_are_deterministic_across_directories(reference, tmp_path):
    out, _ = reference
    again = tmp_path / "again"
    run_sweep(_config(again))
    assert (again / "frontier.json").read_bytes() == (
        out / "frontier.json"
    ).read_bytes()


def test_resume_is_idempotent_on_a_finished_sweep(reference):
    out, _ = reference
    before_artifact = (out / "frontier.json").read_bytes()
    before_journal = (out / "frontier.jsonl").read_text()
    run_sweep(_config(out, resume=True))
    assert (out / "frontier.json").read_bytes() == before_artifact
    # Already-journaled rounds must not be appended again.
    assert (out / "frontier.jsonl").read_text() == before_journal


# ----------------------------------------------------------- sweep identity
def test_existing_sweep_dir_requires_resume(reference):
    out, _ = reference
    with pytest.raises(ConfigError, match="--resume"):
        run_sweep(_config(out))


def test_resume_rejects_identity_mismatch(reference):
    out, _ = reference
    with pytest.raises(ConfigError, match="identity mismatch"):
        run_sweep(_config(out, rounds=3, resume=True))


# ------------------------------------------------------------------- chaos
def test_serial_chaos_converges_to_the_fault_free_bytes(reference, tmp_path):
    out, _ = reference
    chaotic = tmp_path / "chaotic"
    summary = run_sweep(
        _config(
            chaotic,
            inject_faults="crash,hang,flaky,corrupt-store,rate=1.0,seed=7",
        )
    )
    assert summary["quarantined"] == []
    assert (chaotic / "frontier.json").read_bytes() == (
        out / "frontier.json"
    ).read_bytes()
    # rate=1.0 guarantees the transient kinds actually fired and healed.
    failures = (chaotic / "failures.jsonl").read_text().splitlines()
    assert failures


# -------------------------------------------------------------- quarantine
def test_poison_tasks_quarantine_and_replay(tmp_path):
    out = tmp_path / "poisoned"
    summary = run_sweep(_config(out, inject_faults="poison=a64-s16"))
    assert summary["quarantined"], "poison campaign parked nothing"
    assert all("a64-s16" in tid for tid in summary["quarantined"])
    assert summary["points_excluded"], "poisoned points still on the frontier"

    artifact = json.loads((out / "frontier.json").read_text())
    assert artifact["quarantined"] == summary["quarantined"]
    for point_id in summary["points_excluded"]:
        assert point_id not in artifact["frontier"]

    # Replay re-runs the parked configs clean (no chaos): every one passes
    # and its result is journaled for the next --resume to fold back in.
    report = replay_quarantine(str(out))
    assert {entry["task_id"] for entry in report} == set(summary["quarantined"])
    assert all(entry["status"] == "pass" for entry in report)
