"""Design-space unit tests: identity, feasibility, deterministic planning.

Determinism here is load-bearing for the whole sweep engine: the chaos
e2e's byte-identical frontier only holds if ``seed_points`` and ``refine``
are pure sorted functions of their inputs.
"""

import pytest

from repro.dse.space import AXES, PRESETS, DesignPoint, DesignSpace
from repro.errors import ConfigError

SPACE = DesignSpace(
    array=(64, 128, 256),
    sram_mb=(16, 32, 64),
    word_elems=(4, 8, 16),
    hbm_gbps=(200, 700, 1400),
    mxu=(1, 2),
)


def _point(**overrides):
    base = dict(array=128, sram_mb=32, word_elems=8, hbm_gbps=700, mxu=1)
    base.update(overrides)
    return DesignPoint(**base)


# ---------------------------------------------------------------- identity
def test_point_id_is_stable_and_filesystem_safe():
    assert _point().point_id == "a128-s32-w8-h700-x1"
    assert "/" not in _point().point_id


def test_point_doc_roundtrip():
    point = _point(mxu=2, word_elems=16)
    assert DesignPoint.from_doc(point.to_doc()) == point


def test_space_doc_roundtrip():
    assert DesignSpace.from_doc(SPACE.to_doc()) == SPACE


# ------------------------------------------------------------- feasibility
def test_port_budget_rejects_overcommitted_arrays():
    # 2 arrays at word 2 demand 2x the vector-memory port: infeasible.
    assert not _point(mxu=2, word_elems=2).feasible()
    # 2 arrays at word 4 exactly fill the port: feasible.
    assert _point(mxu=2, word_elems=4).feasible()
    assert _point(mxu=2, word_elems=8).feasible()


def test_zero_arrays_is_infeasible():
    assert not _point(mxu=0).feasible()


def test_vector_memory_must_hold_one_word():
    # 1 MiB spread over 2^20 rows leaves 1 byte per memory — under any word.
    assert not _point(array=1 << 20, sram_mb=1).feasible()


# ------------------------------------------------------------- validation
@pytest.mark.parametrize(
    "values", [(), (64, 32), (64, 64, 128), (0, 64), (-1, 64)]
)
def test_space_rejects_bad_axis_values(values):
    with pytest.raises(ConfigError):
        DesignSpace(
            array=values, sram_mb=(32,), word_elems=(8,),
            hbm_gbps=(700,), mxu=(1,),
        )


def test_presets_exist_and_validate():
    assert set(PRESETS) >= {"paper", "quick", "smoke"}
    for space in PRESETS.values():
        assert space.seed_points()  # every preset plans a non-empty round 0


# ---------------------------------------------------------------- planning
def test_seed_points_deterministic_sorted_feasible():
    first = SPACE.seed_points()
    second = SPACE.seed_points()
    assert first == second
    assert [p.point_id for p in first] == sorted(p.point_id for p in first)
    assert all(p.feasible() for p in first)
    assert all(SPACE.indices_of(p) is not None for p in first)


def test_refine_is_deterministic_and_excludes_seen():
    frontier = SPACE.seed_points()[:3]
    seen = SPACE.seed_points()
    first = SPACE.refine(frontier, seen)
    second = SPACE.refine(frontier, seen)
    assert first == second
    assert not set(first) & set(seen)
    assert all(p.feasible() for p in first)
    assert [p.point_id for p in first] == sorted(p.point_id for p in first)


def test_refine_proposes_axis_neighbours():
    # A single mid-grid frontier point has no pair midpoints; candidates
    # are exactly its +-1 axis moves (minus infeasible ones).
    centre = SPACE.point_at((1, 1, 1, 1, 0))
    candidates = SPACE.refine([centre], [centre])
    indices = {SPACE.indices_of(p) for p in candidates}
    centre_idx = SPACE.indices_of(centre)
    for found in indices:
        distance = sum(abs(a - b) for a, b in zip(found, centre_idx))
        assert distance == 1


def test_refine_proposes_midpoints_between_frontier_pairs():
    low = SPACE.point_at((0, 0, 1, 0, 0))
    high = SPACE.point_at((2, 2, 1, 2, 0))
    mid = SPACE.point_at((1, 1, 1, 1, 0))
    candidates = SPACE.refine([low, high], [low, high])
    assert mid in candidates


def test_refine_ignores_off_grid_frontier_points():
    off_grid = _point(array=96)  # 96 is not an allowed array value
    assert SPACE.indices_of(off_grid) is None
    assert SPACE.refine([off_grid], []) == []
