"""Hostile-protocol tests: every malformed exchange gets a clean answer.

The invariant under test (DESIGN.md §4l): slowloris headers, truncated or
oversized bodies and garbage JSON each receive a definitive 4xx/408
within the configured protocol timeouts — never a hung connection, never
a dead server.  Each scenario finishes by serving a normal query on the
same daemon to prove it is still healthy.
"""

import asyncio
import json

import pytest

from repro.perf.cache import clear_cache
from repro.store import detach
from repro.store.serve import (
    ReproServer,
    ServeConfig,
    SimulationService,
    http_request,
)

SPEC = {"n": 1, "c_in": 8, "h_in": 7, "w_in": 7, "c_out": 8,
        "h_filter": 3, "w_filter": 3, "stride": 1, "padding": 1,
        "name": "malformed-probe"}


@pytest.fixture(autouse=True)
def clean_state():
    detach()
    clear_cache()
    yield
    detach()
    clear_cache()


async def _boot(**overrides):
    overrides.setdefault("header_timeout_s", 0.3)
    overrides.setdefault("body_timeout_s", 0.3)
    overrides.setdefault("watchdog", False)
    config = ServeConfig(host="127.0.0.1", port=0, **overrides)
    service = SimulationService(config)
    server = ReproServer(service, run_id="malformed-test")
    host, port = await server.start()
    return service, server, host, port


async def _raw_exchange(host, port, chunks, *, pause_s=0.0, half_close=False,
                        read_timeout_s=5.0):
    """Send raw byte chunks (with optional pauses) and read the response."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        try:
            for chunk in chunks:
                writer.write(chunk)
                await writer.drain()
                if pause_s:
                    await asyncio.sleep(pause_s)
            if half_close:
                writer.write_eof()
        except (ConnectionError, OSError):
            pass  # the server already answered and hung up mid-drip
        raw = await asyncio.wait_for(reader.read(), timeout=read_timeout_s)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return raw


def _status_of(raw: bytes) -> int:
    assert raw, "server hung up without answering"
    return int(raw.split(b" ", 2)[1])


def _body_of(raw: bytes) -> dict:
    return json.loads(raw.partition(b"\r\n\r\n")[2].decode("utf-8"))


async def _assert_still_serving(host, port):
    status, body = await http_request(host, port, "POST", "/v1/conv",
                                      {"spec": SPEC})
    assert status == 200 and body["cycles"] > 0


def test_slowloris_headers_answered_408():
    async def scenario():
        service, server, host, port = await _boot()
        try:
            # One header byte per pause, then stall: the 0.3s header
            # timeout fires long before the request line would complete.
            raw = await _raw_exchange(
                host, port, [b"G", b"E", b"T"], pause_s=0.08
            )
            assert _status_of(raw) == 408
            body = _body_of(raw)
            assert "headers" in body["error"]
            assert body["run_id"] == "malformed-test"
            await _assert_still_serving(host, port)
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_truncated_body_half_close_answered_400():
    async def scenario():
        service, server, host, port = await _boot()
        try:
            head = (b"POST /v1/conv HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: 500\r\n\r\n")
            raw = await _raw_exchange(
                host, port, [head, b'{"spec":'], half_close=True
            )
            assert _status_of(raw) == 400
            assert "truncated" in _body_of(raw)["error"]
            await _assert_still_serving(host, port)
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_stalled_body_answered_408():
    async def scenario():
        service, server, host, port = await _boot()
        try:
            head = (b"POST /v1/conv HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: 500\r\n\r\n")
            # Send a sliver of the promised body, then stall: the body
            # timeout must answer instead of waiting forever.
            raw = await _raw_exchange(host, port, [head, b'{"spec"'])
            assert _status_of(raw) == 408
            assert "body" in _body_of(raw)["error"]
            await _assert_still_serving(host, port)
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_oversized_body_refused_413_without_reading():
    async def scenario():
        service, server, host, port = await _boot(max_body_bytes=1024)
        try:
            head = (b"POST /v1/conv HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: 1048576\r\n\r\n")
            raw = await _raw_exchange(host, port, [head])
            assert _status_of(raw) == 413
            assert "1024-byte limit" in _body_of(raw)["error"]
            await _assert_still_serving(host, port)
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_header_flood_refused_431():
    async def scenario():
        service, server, host, port = await _boot(header_timeout_s=5.0)
        try:
            # 1 MiB of header bytes with no terminator overruns the stream
            # limit long before the header timeout would fire.
            flood = b"GET / HTTP/1.1\r\n" + b"X-Junk: " + b"a" * (1 << 20)
            raw = await _raw_exchange(host, port, [flood])
            assert _status_of(raw) == 431
            await _assert_still_serving(host, port)
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_garbage_json_and_malformed_requests_answered_400():
    async def scenario():
        service, server, host, port = await _boot()
        try:
            garbage = b'{"spec": {' + b"\xff\xfe nonsense"
            head = (f"POST /v1/conv HTTP/1.1\r\nHost: x\r\n"
                    f"Content-Length: {len(garbage)}\r\n\r\n").encode()
            raw = await _raw_exchange(host, port, [head + garbage])
            assert _status_of(raw) == 400
            assert "bad JSON" in _body_of(raw)["error"]

            raw = await _raw_exchange(host, port, [b"NONSENSE\r\n\r\n"])
            assert _status_of(raw) == 400
            assert "request line" in _body_of(raw)["error"]

            head = (b"POST /v1/conv HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: banana\r\n\r\n")
            raw = await _raw_exchange(host, port, [head])
            assert _status_of(raw) == 400
            assert "Content-Length" in _body_of(raw)["error"]
            await _assert_still_serving(host, port)
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_connect_then_close_is_not_an_error():
    async def scenario():
        service, server, host, port = await _boot()
        try:
            reader, writer = await asyncio.open_connection(host, port)
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.05)
            await _assert_still_serving(host, port)
            # A clean connect-and-leave produced no error sample.
            assert service.budget.failed == 0
        finally:
            await server.shutdown()

    asyncio.run(scenario())
