"""Supervised multi-worker serving: fork, kill -9, respawn, drain.

Boots the real ``repro serve --workers 2`` CLI in a subprocess, murders a
worker with SIGKILL, and watches the supervising parent restore the
fleet (via the supervisor status file), then drains the whole tree with
SIGTERM and expects exit 0.
"""

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="requires os.fork"
)

REPO = Path(__file__).resolve().parents[2]
LISTEN_RE = re.compile(r"listening on http://[0-9.]+:(\d+)")


def _launch(tmp_path, extra_args=()):
    status_file = tmp_path / "beacon.json"
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"), PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--workers", "2", "--port", "0", "--no-watchdog",
         "--status-file", str(status_file), *extra_args],
        cwd=tmp_path, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    line = proc.stdout.readline()
    match = LISTEN_RE.search(line)
    assert match, f"no listening line, got: {line!r}"
    return proc, int(match.group(1)), status_file


def _read_status(status_file, deadline_s=20.0, want=None):
    """Poll the supervisor beacon until ``want(extra)`` holds.

    Returns the ``extra`` section (workers_alive/worker_pids/...), with
    the beacon's first-class ``supervisor.respawns`` counter merged in.
    """
    deadline = time.monotonic() + deadline_s
    last = None
    while time.monotonic() < deadline:
        try:
            doc = json.loads(status_file.read_text())
        except (OSError, json.JSONDecodeError):
            time.sleep(0.1)
            continue
        last = dict(doc.get("extra", {}))
        last["respawns"] = doc.get("supervisor", {}).get("respawns", 0)
        if want is None or want(last):
            return last
        time.sleep(0.1)
    raise AssertionError(f"supervisor status never converged; last: {last}")


def _ask(port, path="/healthz", method="GET", payload=None, deadline_s=30.0):
    from repro.store.serve import http_request_retry

    return asyncio.run(
        http_request_retry(
            "127.0.0.1", port, method, path, payload, deadline_s=deadline_s
        )
    )


def _shutdown(proc):
    proc.send_signal(signal.SIGTERM)
    try:
        out, _ = proc.communicate(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        out, _ = proc.communicate()
        raise AssertionError(f"supervisor did not drain; output:\n{out}")
    return proc.returncode, out


def test_worker_killed_with_sigkill_is_respawned(tmp_path):
    proc, port, status_file = _launch(tmp_path)
    try:
        extra = _read_status(
            status_file, want=lambda e: e.get("workers_alive") == 2
        )
        first_pids = set(extra["worker_pids"])
        assert len(first_pids) == 2
        status, body, _ = _ask(port)
        assert status == 200

        victim = sorted(first_pids)[0]
        os.kill(victim, signal.SIGKILL)
        extra = _read_status(
            status_file,
            want=lambda e: (
                e.get("workers_alive") == 2
                and victim not in e.get("worker_pids", [])
            ),
        )
        assert extra["respawns"] >= 1
        assert extra["workers_target"] == 2
        # The fleet still answers after the murder + respawn.
        spec = {"n": 1, "c_in": 8, "h_in": 7, "w_in": 7, "c_out": 8,
                "h_filter": 3, "w_filter": 3, "stride": 1, "padding": 1,
                "name": "workers-spec"}
        status, body, _ = _ask(port, "/v1/conv", "POST", {"spec": spec})
        assert status == 200 and body["cycles"] > 0
    finally:
        rc, out = _shutdown(proc)
    assert rc == 0, f"supervisor exited {rc}:\n{out}"
    assert "supervisor drained" in out


def test_supervised_fleet_drains_cleanly_on_sigterm(tmp_path):
    proc, port, status_file = _launch(tmp_path)
    try:
        _read_status(status_file, want=lambda e: e.get("workers_alive") == 2)
        status, _, _ = _ask(port, "/readyz")
        assert status == 200
    finally:
        rc, out = _shutdown(proc)
    assert rc == 0, f"supervisor exited {rc}:\n{out}"
    assert "supervisor drained" in out
    assert "respawns=0" in out
