"""Unit contract of the persistent result store: codec, digests, records.

Everything the warm-start tier relies on: bit-exact round-trips of every
cached result type, cross-process-stable digests, exact + canonical
lookup with promotion, LRU compaction, and graceful refusal of values
the codec cannot persist.
"""

import dataclasses
import math

import pytest

from repro.core.conv_spec import ConvSpec
from repro.core.layouts import Layout
from repro.gpu.channel_first import channel_first_conv_time
from repro.gpu.config import V100
from repro.store import (
    CodecError,
    ResultStore,
    decode_value,
    encode_value,
    key_digest,
)
from repro.store.store import SHARD_PREFIX_CHARS
from repro.systolic.simulator import LayerResult

SPEC = ConvSpec(
    n=2, c_in=32, h_in=14, w_in=14, c_out=64, h_filter=3, w_filter=3,
    stride=1, padding=1, name="unit",
)

RESULT = LayerResult(
    name="conv3x3",
    cycles=12345.678901234567,  # a float that exposes rounding bugs
    tflops=1.2345678901234567,
    utilization=0.87654321,
    compute_cycles=10000.0,
    dma_cycles=4000.25,
    exposed_dma_cycles=2345.678901234567,
    macs=123456789,
    group_size=3,
)


# ------------------------------------------------------------------- codec
def test_layer_result_round_trips_bit_exactly():
    decoded = decode_value(encode_value(RESULT))
    assert decoded == RESULT
    assert isinstance(decoded, LayerResult)
    for field in dataclasses.fields(LayerResult):
        original = getattr(RESULT, field.name)
        restored = getattr(decoded, field.name)
        assert type(restored) is type(original)
        if isinstance(original, float):
            # Bit-exact, not approximately equal: served results feed the
            # same renderers as fresh ones.
            assert math.isclose(restored, original, rel_tol=0, abs_tol=0)


def test_gpu_result_round_trips():
    """Nested dataclasses (GPU result wrapping a KernelTime) survive."""
    result = channel_first_conv_time(SPEC, V100)
    decoded = decode_value(encode_value(result))
    assert decoded == result
    assert type(decoded) is type(result)
    assert decoded.kernel == result.kernel


def test_codec_handles_tuples_enums_and_scalars():
    value = (Layout.HWCN, 3, 2.5, "x", None, True, (1, 2))
    decoded = decode_value(encode_value(value))
    assert decoded == value
    assert isinstance(decoded, tuple)
    assert decoded[0] is Layout.HWCN
    assert isinstance(decoded[6], tuple)


def test_codec_rejects_unknown_module():
    class Rogue:
        pass

    with pytest.raises(CodecError):
        encode_value(Rogue())
    # A forged record naming a non-whitelisted module must not import it.
    with pytest.raises(CodecError):
        decode_value({"__dc__": ["os.path", "join"], "fields": {}})
    with pytest.raises(CodecError):
        decode_value({"__dc__": ["repro.systolic.simulator", "Nope"], "fields": {}})


def test_codec_rejects_unknown_dataclass_fields():
    encoded = encode_value(RESULT)
    encoded["fields"]["bogus"] = 1
    with pytest.raises(CodecError):
        decode_value(encoded)


# ----------------------------------------------------------------- digests
def test_key_digest_is_stable_across_processes():
    """repr-of-tuple digests must not depend on hash randomization."""
    import subprocess
    import sys

    key = ("tpu-conv", ("TPUConfig", 128, 0.7), 3, "NHWC")
    child = subprocess.run(
        [sys.executable, "-c",
         "import sys; sys.path.insert(0, 'src');"
         "from repro.store import key_digest;"
         f"print(key_digest({key!r}))"],
        capture_output=True, text=True, check=True,
        env={"PYTHONHASHSEED": "12345", "PATH": "/usr/bin:/bin"},
    )
    assert child.stdout.strip() == key_digest(key)


# ------------------------------------------------------------ record store
def test_save_load_exact(tmp_path):
    store = ResultStore(tmp_path / "store")
    key = ("k", 1, 2.5)
    assert store.save(key, RESULT)
    found, value, via_canonical = store.load(key)
    assert found and value == RESULT and not via_canonical
    assert store.stats.hits == 1 and store.stats.misses == 0
    found, _, _ = store.load(("other", 9))
    assert not found
    assert store.stats.misses == 1


def test_canonical_lookup_promotes_exact_record(tmp_path):
    store = ResultStore(tmp_path / "store")
    exact = ("k", "variant-a")
    canonical = ("k@c", "folded")
    # A different process stored the value under its own exact key plus the
    # shared canonical key.
    store.save(("k", "variant-b"), RESULT, canonical_key=canonical)
    found, value, via_canonical = store.load(exact, canonical_key=canonical)
    assert found and value == RESULT and via_canonical
    assert store.stats.canonical_hits == 1
    # Promotion: the exact digest now answers directly.
    assert store.record_path(key_digest(exact)).exists()
    store2 = ResultStore(tmp_path / "store")
    found, _, via_canonical = store2.load(exact, canonical_key=canonical)
    assert found and not via_canonical


def test_shard_layout(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.save(("a",), RESULT)
    digest = key_digest(("a",))
    path = store.record_path(digest)
    assert path.exists()
    assert path.parent.name == digest[:SHARD_PREFIX_CHARS]
    assert path.parent.parent == store.shard_root


def test_unsupported_value_is_skipped_not_fatal(tmp_path):
    import numpy as np

    store = ResultStore(tmp_path / "store")
    assert not store.save(("k",), np.arange(3))  # arrays are not persistable
    assert store.stats.unsupported == 1
    assert len(store) == 0
    found, _, _ = store.load(("k",))
    assert not found


def test_compact_lru_keeps_newest(tmp_path):
    import os

    store = ResultStore(tmp_path / "store")
    for i in range(6):
        store.save(("k", i), RESULT)
        # Distinct mtimes without sleeping: stamp them explicitly.
        path = store.record_path(key_digest(("k", i)))
        os.utime(path, (1000 + i, 1000 + i))
    report = store.compact(max_entries=2)
    assert report.scanned == 6 and report.removed == 4 and report.kept == 2
    kept = {i for i in range(6) if store.record_path(key_digest(("k", i))).exists()}
    assert kept == {4, 5}  # newest two survive
    assert store.verify().clean


def test_compact_byte_cap(tmp_path):
    store = ResultStore(tmp_path / "store")
    for i in range(4):
        store.save(("k", i), RESULT)
    size = store.total_bytes() // 4
    report = store.compact(max_bytes=2 * size + 4)
    assert report.kept == 2 and report.removed == 2
    assert store.total_bytes() <= 2 * size + 4


def test_verify_clean_and_describe(tmp_path):
    store = ResultStore(tmp_path / "store")
    for i in range(3):
        store.save(("k", i), RESULT)
    report = store.verify()
    assert report.clean and report.scanned == 3 and report.ok == 3
    info = store.describe()
    assert info["entries"] == 3 and info["bytes"] > 0 and info["schema"] == 1
