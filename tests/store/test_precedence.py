"""``--store`` vs ``REPRO_STORE_DIR`` precedence: explicit, never silent.

One of the two set: it wins.  Both set to the same directory: fine.  Both
set to *different* directories: a ConfigError (CLI exit 2) — the engine
refuses to guess which store the operator meant.
"""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.errors import ConfigError
from repro.store import ENV_VAR, resolve_store_dir

REPO = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def no_env_store(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)


def test_flag_only_wins(tmp_path):
    assert resolve_store_dir(str(tmp_path)) == str(tmp_path.resolve())


def test_env_only_wins(tmp_path, monkeypatch):
    monkeypatch.setenv(ENV_VAR, str(tmp_path))
    assert resolve_store_dir(None) == str(tmp_path.resolve())


def test_neither_is_none():
    assert resolve_store_dir(None) is None


def test_agreement_is_fine_even_with_relative_spelling(tmp_path, monkeypatch):
    monkeypatch.setenv(ENV_VAR, str(tmp_path))
    monkeypatch.chdir(tmp_path.parent)
    assert resolve_store_dir(tmp_path.name) == str(tmp_path.resolve())


def test_conflict_raises_config_error(tmp_path, monkeypatch):
    monkeypatch.setenv(ENV_VAR, str(tmp_path / "env-store"))
    with pytest.raises(ConfigError, match=ENV_VAR):
        resolve_store_dir(str(tmp_path / "flag-store"))


def _run(argv, env_store, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    if env_store:
        env[ENV_VAR] = env_store
    else:
        env.pop(ENV_VAR, None)
    return subprocess.run(
        [sys.executable, *argv],
        cwd=REPO, env=env, capture_output=True, text=True, timeout=600,
    )


def test_runner_cli_conflict_exits_2(tmp_path):
    result = _run(
        ["-m", "repro.harness.runner", "fig2", "--quick",
         "--store", str(tmp_path / "flag-store"),
         "--results-dir", str(tmp_path)],
        env_store=str(tmp_path / "env-store"), tmp_path=tmp_path,
    )
    assert result.returncode == 2, result.stderr[-400:]
    assert ENV_VAR in result.stderr


def test_dse_cli_conflict_exits_2(tmp_path):
    result = _run(
        ["-m", "repro", "dse", "sweep", "--out", str(tmp_path / "sweep"),
         "--preset", "smoke", "--workloads", "AlexNet@4", "--quick",
         "--rounds", "1", "--store", str(tmp_path / "flag-store")],
        env_store=str(tmp_path / "env-store"), tmp_path=tmp_path,
    )
    assert result.returncode == 2, result.stderr[-400:]
    assert ENV_VAR in result.stdout + result.stderr
