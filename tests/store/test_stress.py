"""Multi-process stress battery: many writers, one store, no torn records.

Workers are real subprocesses sharing one store directory.  They race on
the same digests on purpose — the store's atomic-replace writes make that
benign (identical bytes, last rename wins).  A ``kill -9`` mid-run must
never leave a record that fails verification: readers see old-complete or
new-complete, never a prefix.
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.core.conv_spec import ConvSpec
from repro.core.layouts import Layout
from repro.core.tiling import tpu_multi_tile_policy
from repro.perf.cache import clear_cache, config_key, spec_key
from repro.store import ResultStore, detach
from repro.systolic.config import TPU_V2
from repro.systolic.simulator import TPUSim

REPO = pathlib.Path(__file__).resolve().parents[2]

WORKER = """\
import sys
sys.path.insert(0, "src")
from repro.core.conv_spec import ConvSpec
from repro.perf.cache import clear_cache
from repro.store import attach
from repro.systolic.simulator import TPUSim

store_dir, rounds = sys.argv[1], int(sys.argv[2])
attach(store_dir)
sim = TPUSim()
for _ in range(rounds):
    for i in range(6):
        spec = ConvSpec(n=1, c_in=8, h_in=8 + i, w_in=8 + i, c_out=8,
                        h_filter=3, w_filter=3, stride=1, padding=1,
                        name=f"stress-{i}")
        sim.simulate_conv(spec)
    clear_cache()  # next round re-reads from the shared store
print("worker done")
"""


def _specs():
    return [
        ConvSpec(n=1, c_in=8, h_in=8 + i, w_in=8 + i, c_out=8,
                 h_filter=3, w_filter=3, stride=1, padding=1,
                 name=f"stress-{i}")
        for i in range(6)
    ]


def _exact_key(spec):
    group = tpu_multi_tile_policy(spec, TPU_V2.array_rows)
    return ("tpu-conv", config_key(TPU_V2), spec_key(spec), group,
            Layout.NHWC.value)


def _env():
    return {"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"}


@pytest.fixture(autouse=True)
def clean_state():
    detach()
    clear_cache()
    yield
    detach()
    clear_cache()


def test_concurrent_workers_no_lost_or_torn_records(tmp_path):
    store_dir = str(tmp_path / "store")
    workers = [
        subprocess.Popen(
            [sys.executable, "-c", WORKER, store_dir, "3"],
            cwd=REPO, env=_env(),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        for _ in range(4)
    ]
    for proc in workers:
        out, err = proc.communicate(timeout=600)
        assert proc.returncode == 0, err
        assert "worker done" in out

    store = ResultStore(store_dir)
    report = store.verify()
    assert report.clean, report.problems
    assert report.scanned >= 6  # nothing lost: every spec has a record

    # Served results are bit-identical to a cold in-process simulation.
    sim = TPUSim()
    for spec in _specs():
        detach()
        clear_cache()
        cold = sim.simulate_conv(spec)
        found, value, _ = store.load(_exact_key(spec))
        assert found, spec.name
        assert value == cold  # dataclass equality: every float bit-exact


def test_kill9_mid_run_leaves_verifiable_store(tmp_path):
    store_dir = str(tmp_path / "store")
    proc = subprocess.Popen(
        [sys.executable, "-c", WORKER, store_dir, "100000"],
        cwd=REPO, env=_env(), start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    store = ResultStore(store_dir, touch_on_hit=False)
    deadline = time.monotonic() + 60
    try:
        while len(store) < 3 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert len(store) >= 3, "worker produced no records before timeout"
    finally:
        os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
        proc.wait(timeout=60)

    report = store.verify()
    assert report.clean, report.problems
    # A fresh run over the surviving store completes and stays clean.
    rerun = subprocess.run(
        [sys.executable, "-c", WORKER, store_dir, "1"],
        cwd=REPO, env=_env(), capture_output=True, text=True, timeout=600,
    )
    assert rerun.returncode == 0, rerun.stderr
    assert ResultStore(store_dir).verify().clean
