"""Crash-only serving behaviors: deadlines, breakers, the ladder, readiness.

Integration tests over real sockets (the existing ``test_serve.py``
harness) covering DESIGN.md §4l: every refusal carries ``Retry-After``
and correlatable detail, blown deadlines cooperatively cancel abandoned
work, a poison spec trips its circuit breaker into a fast 422 verdict and
half-opens after cooldown, and the degradation ladder trades fidelity for
survival one rung at a time.
"""

import asyncio

import pytest

from repro.perf.cache import SIM_CACHE, clear_cache
from repro.resilience import faults as fault_injection
from repro.store import attach, detach
from repro.store.serve import (
    LADDER_RUNGS,
    RUNG_DRAIN,
    RUNG_FULL,
    RUNG_SERIAL,
    RUNG_STORE_ONLY,
    Query,
    ReproServer,
    ServeConfig,
    SimulationService,
    http_request,
    http_request_retry,
    slo_decision,
)

SPEC = {"n": 1, "c_in": 16, "h_in": 7, "w_in": 7, "c_out": 16,
        "h_filter": 3, "w_filter": 3, "stride": 1, "padding": 1,
        "name": "robust-spec"}


@pytest.fixture(autouse=True)
def clean_state():
    detach()
    clear_cache()
    fault_injection.deactivate()
    yield
    detach()
    clear_cache()
    fault_injection.deactivate()


async def _boot(**overrides):
    overrides.setdefault("watchdog", False)
    config = ServeConfig(host="127.0.0.1", port=0, **overrides)
    service = SimulationService(config)
    server = ReproServer(service, run_id="robust-test")
    host, port = await server.start()
    return service, server, host, port


# --------------------------------------------------------------- Retry-After


def test_load_shed_carries_retry_after_and_run_id():
    async def scenario():
        service, server, host, port = await _boot(max_pending=0)
        try:
            status, body, headers = await http_request(
                host, port, "POST", "/v1/conv", {"spec": SPEC},
                return_headers=True,
            )
            assert status == 429
            assert int(headers["retry-after"]) >= 1
            assert body["run_id"] == "robust-test"
            assert body["retry_after_ms"] > 0
            assert headers["x-repro-run-id"] == "robust-test"
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_draining_refusal_carries_retry_after():
    async def scenario():
        service, server, host, port = await _boot()
        try:
            service.draining = True
            status, body, headers = await http_request(
                host, port, "POST", "/v1/conv", {"spec": SPEC},
                return_headers=True,
            )
            assert status == 503
            assert "draining" in body["error"]
            assert int(headers["retry-after"]) >= 1
            assert body["run_id"] == "robust-test"
        finally:
            service.draining = False
            await server.shutdown()

    asyncio.run(scenario())


def test_retrying_client_rides_out_a_shed():
    async def scenario():
        service, server, host, port = await _boot(max_pending=0)
        try:
            task = asyncio.ensure_future(
                http_request_retry(
                    host, port, "POST", "/v1/conv", {"spec": SPEC},
                    deadline_s=20.0,
                )
            )
            await asyncio.sleep(0.3)  # at least one 429 + Retry-After cycle
            service.config.max_pending = 64
            status, body, _ = await task
            assert status == 200 and body["cycles"] > 0
        finally:
            await server.shutdown()

    asyncio.run(scenario())


# ------------------------------------------------------------------ deadlines


def test_blown_deadline_answers_504_and_cancels_the_work():
    async def scenario():
        # A batch window far beyond the deadline: pricing cannot start
        # before the client gives up.
        service, server, host, port = await _boot(batch_window_s=5.0)
        try:
            status, body, headers = await http_request(
                host, port, "POST", "/v1/conv", {"spec": SPEC},
                headers={"X-Repro-Deadline-Ms": "60"},
                return_headers=True,
            )
            assert status == 504
            assert "deadline" in body["error"]
            assert int(headers["retry-after"]) >= 1
            # Cooperative cancellation: the abandoned query left the queue
            # and the in-flight table — no engine time will be spent on it.
            assert service._queue == []
            assert service._inflight == {}
            assert service._waiters == {}
            assert service.budget.faults_by_class.get("DeadlineExceeded") == 1
            assert (
                service.registry.counters["repro_serve_deadline_timeouts_total"]
                == 1
            )
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_deadline_only_cancels_when_last_waiter_leaves():
    async def scenario():
        service, server, host, port = await _boot(batch_window_s=0.4)
        try:
            patient = asyncio.ensure_future(
                http_request(host, port, "POST", "/v1/conv", {"spec": SPEC})
            )
            await asyncio.sleep(0.05)
            status, _ = await http_request(
                host, port, "POST", "/v1/conv", {"spec": SPEC},
                headers={"X-Repro-Deadline-Ms": "50"},
            )
            assert status == 504  # the impatient waiter timed out...
            status, body = await patient
            assert status == 200 and body["cycles"] > 0  # ...the patient one won
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_bad_deadline_header_is_a_400():
    async def scenario():
        service, server, host, port = await _boot()
        try:
            status, body = await http_request(
                host, port, "POST", "/v1/conv", {"spec": SPEC},
                headers={"X-Repro-Deadline-Ms": "soon"},
            )
            assert status == 400 and "X-Repro-Deadline-Ms" in body["error"]
        finally:
            await server.shutdown()

    asyncio.run(scenario())


# ------------------------------------------------------------ circuit breaker


def _poison_spec(name="hostile-conv"):
    # A different *shape* from SPEC: breakers key on canonical shape
    # fingerprints (names folded away), so an innocent spec is only
    # innocent if its shape differs.
    return dict(SPEC, h_in=14, w_in=14, name=name)


def test_poison_spec_trips_breaker_and_half_opens(tmp_path):
    async def scenario():
        store = attach(tmp_path / "store")
        fault_injection.activate(
            fault_injection.FaultPlan.parse("poison=hostile,seed=3")
        )
        service, server, host, port = await _boot(
            breaker_threshold=2, breaker_cooldown_s=0.4
        )
        try:
            # Two failures trip the breaker...
            for _ in range(2):
                status, body = await http_request(
                    host, port, "POST", "/v1/conv", {"spec": _poison_spec()}
                )
                assert status == 500 and "poison" in body["error"]
            # ...now refusal is fast and documented: 422 + verdict.
            status, body, headers = await http_request(
                host, port, "POST", "/v1/conv", {"spec": _poison_spec()},
                return_headers=True,
            )
            assert status == 422
            verdict = body["verdict"]
            assert verdict["state"] == "open"
            assert verdict["trip_reason"] == "AuditFault"
            assert "retry-after" in headers
            assert service.breakers.fast_fails == 1
            assert (
                service.registry.counters["repro_serve_breaker_fastfail_total"]
                == 1
            )
            # A renamed copy of the same hostile shape meets the SAME
            # breaker (canonical fingerprints).
            status, body = await http_request(
                host, port, "POST", "/v1/conv",
                {"spec": _poison_spec("hostile-renamed")},
            )
            assert status == 422
            # An innocent spec is untouched.
            status, _ = await http_request(
                host, port, "POST", "/v1/conv", {"spec": SPEC}
            )
            assert status == 200
            # The tripped spec was parked for forensics in the store.
            quarantine = store.root / "serve-quarantine.jsonl"
            assert quarantine.exists()
            assert "hostile" in quarantine.read_text()
            # After the cooldown the half-open probe is admitted; with the
            # poison gone it succeeds and the breaker closes for good.
            await asyncio.sleep(0.5)
            fault_injection.deactivate()
            status, body = await http_request(
                host, port, "POST", "/v1/conv", {"spec": _poison_spec()}
            )
            assert status == 200 and body["cycles"] > 0
            assert service.breakers.open_keys() == []
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_half_open_probe_failure_reopens():
    async def scenario():
        fault_injection.activate(
            fault_injection.FaultPlan.parse("poison=hostile,seed=3")
        )
        service, server, host, port = await _boot(
            breaker_threshold=1, breaker_cooldown_s=0.3
        )
        try:
            status, _ = await http_request(
                host, port, "POST", "/v1/conv", {"spec": _poison_spec()}
            )
            assert status == 500
            await asyncio.sleep(0.4)
            # Still poisoned: the probe fails, the breaker re-opens.
            status, _ = await http_request(
                host, port, "POST", "/v1/conv", {"spec": _poison_spec()}
            )
            assert status == 500
            status, body = await http_request(
                host, port, "POST", "/v1/conv", {"spec": _poison_spec()}
            )
            assert status == 422
            assert body["verdict"]["trips"] == 2
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_batch_failure_attributed_serially_not_collectively():
    """A poison spec co-batched with innocents must not poison them."""

    async def scenario():
        fault_injection.activate(
            fault_injection.FaultPlan.parse("poison=hostile,seed=3")
        )
        service, server, host, port = await _boot(
            batch_window_s=0.1, breaker_threshold=1
        )
        try:
            good = asyncio.ensure_future(
                http_request(host, port, "POST", "/v1/conv", {"spec": SPEC})
            )
            bad = asyncio.ensure_future(
                http_request(
                    host, port, "POST", "/v1/conv", {"spec": _poison_spec()}
                )
            )
            (good_status, good_body), (bad_status, bad_body) = (
                await asyncio.gather(good, bad)
            )
            assert good_status == 200 and good_body["cycles"] > 0
            assert bad_status == 500 and "poison" in bad_body["error"]
            # Only the hostile fingerprint has breaker history.
            assert service.breakers.open_keys() != []
            innocent = Query.parse({"spec": SPEC})
            assert innocent.fingerprint not in service.breakers.open_keys()
        finally:
            await server.shutdown()

    asyncio.run(scenario())


# -------------------------------------------------------- degradation ladder


def test_serial_rung_still_answers():
    async def scenario():
        service, server, host, port = await _boot()
        try:
            service.set_rung(RUNG_SERIAL, "test")
            status, body = await http_request(
                host, port, "POST", "/v1/conv", {"spec": SPEC}
            )
            assert status == 200 and body["cycles"] > 0
            assert service.simulations == 1
            status, doc = await http_request(host, port, "GET", "/statusz")
            assert doc["serve"]["rung"] == "serial"
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_store_only_rung_serves_warm_refuses_cold():
    async def scenario():
        service, server, host, port = await _boot()
        try:
            status, warm = await http_request(
                host, port, "POST", "/v1/conv", {"spec": SPEC}
            )
            assert status == 200
            service.set_rung(RUNG_STORE_ONLY, "test")
            # Warm hit: answered from the memo, no engine involved.
            status, body = await http_request(
                host, port, "POST", "/v1/conv", {"spec": SPEC}
            )
            assert status == 200 and body["cycles"] == warm["cycles"]
            assert service.simulations == 1  # unchanged
            # Cold spec: honest 503 with the rung named, not a hang.
            cold = dict(SPEC, c_out=32, name="cold-spec")
            status, body, headers = await http_request(
                host, port, "POST", "/v1/conv", {"spec": cold},
                return_headers=True,
            )
            assert status == 503
            assert body["rung"] == "store-only"
            assert "retry-after" in headers
            service.set_rung(RUNG_DRAIN, "test")
            status, body = await http_request(
                host, port, "POST", "/v1/conv", {"spec": SPEC}
            )
            assert status == 503 and "drain" in body["error"]
            service.set_rung(RUNG_FULL, "test")
            status, _ = await http_request(
                host, port, "POST", "/v1/conv", {"spec": cold}
            )
            assert status == 200
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_rung_changes_are_counted_and_reported():
    async def scenario():
        service, server, host, port = await _boot()
        try:
            service.set_rung(RUNG_SERIAL, "test escalate")
            service.set_rung(RUNG_SERIAL, "no-op")  # same rung: not a change
            service.set_rung(RUNG_FULL, "test recover")
            assert service.registry.counters["repro_serve_rung_changes_total"] == 2
            status, text = await http_request(host, port, "GET", "/metrics")
            assert status == 200
            assert "repro_serve_degraded 0" in text
            assert "repro_serve_rung_changes_total 2" in text
            assert "repro_serve_breaker_open 0" in text
        finally:
            await server.shutdown()

    asyncio.run(scenario())


# ------------------------------------------------------------- SLO watchdog


def _cfg(**kw):
    kw.setdefault("slo_min_samples", 4)
    kw.setdefault("slo_p99_ms", 100.0)
    kw.setdefault("slo_error_ratio", 0.5)
    kw.setdefault("slo_recovery_s", 5.0)
    return ServeConfig(**kw)


def test_slo_decision_escalates_on_error_ratio():
    samples = [(0.0, 10.0, False)] * 3 + [(0.0, 10.0, True)]
    assert slo_decision(samples, RUNG_FULL, _cfg(), 10.0, 0.0) == "escalate"


def test_slo_decision_escalates_on_p99():
    samples = [(0.0, 500.0, True)] * 8
    assert slo_decision(samples, RUNG_SERIAL, _cfg(), 10.0, 0.0) == "escalate"


def test_slo_decision_needs_evidence():
    samples = [(0.0, 500.0, False)] * 3  # below slo_min_samples
    assert slo_decision(samples, RUNG_FULL, _cfg(), 10.0, 0.0) is None


def test_slo_decision_never_escalates_past_store_only():
    samples = [(0.0, 500.0, False)] * 8
    assert slo_decision(samples, RUNG_STORE_ONLY, _cfg(), 10.0, 0.0) is None
    assert slo_decision(samples, RUNG_DRAIN, _cfg(), 10.0, 0.0) is None


def test_slo_decision_recovers_after_clean_quiet_window():
    clean = [(0.0, 10.0, True)] * 8
    # Too soon after the last rung change: hold.
    assert slo_decision(clean, RUNG_SERIAL, _cfg(), 3.0, 0.0) is None
    # Quiet long enough and clean: step back down.
    assert slo_decision(clean, RUNG_SERIAL, _cfg(), 10.0, 0.0) == "recover"
    # An error in the window blocks recovery.
    dirty = clean + [(0.0, 10.0, False)]
    assert slo_decision(dirty, RUNG_SERIAL, _cfg(), 10.0, 0.0) is None
    # A healthy daemon at full fidelity needs no decision at all.
    assert slo_decision(clean, RUNG_FULL, _cfg(), 10.0, 0.0) is None


# ---------------------------------------------------------------- readiness


def test_readyz_tracks_rung_and_drain():
    async def scenario():
        service, server, host, port = await _boot()
        try:
            status, body = await http_request(host, port, "GET", "/readyz")
            assert status == 200 and body["ready"] is True
            service.set_rung(RUNG_SERIAL, "test")
            status, body = await http_request(host, port, "GET", "/readyz")
            assert status == 200  # degraded but still serving simulations
            service.set_rung(RUNG_STORE_ONLY, "test")
            status, body, headers = await http_request(
                host, port, "GET", "/readyz", return_headers=True
            )
            assert status == 503 and body["ready"] is False
            assert body["rung"] == "store-only"
            assert "retry-after" in headers
            # Liveness is a different question: the process IS alive.
            status, _ = await http_request(host, port, "GET", "/healthz")
            assert status == 200
            service.set_rung(RUNG_FULL, "test")
            service.draining = True
            status, body = await http_request(host, port, "GET", "/readyz")
            assert status == 503 and body["draining"] is True
            service.draining = False
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_statusz_reports_breakers_and_rung():
    async def scenario():
        service, server, host, port = await _boot()
        try:
            service.breakers.record_failure("deadbeef", "AuditFault", "x")
            status, doc = await http_request(host, port, "GET", "/statusz")
            assert status == 200
            assert doc["serve"]["rung"] == "full"
            assert doc["serve"]["breakers"]["keys"] == 1
            assert doc["run_id"] == "robust-test"
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_ladder_names_are_stable():
    # The rung indices are wire format (repro_serve_degraded gauge) and
    # runbook vocabulary — renaming them is a breaking change.
    assert LADDER_RUNGS == ("full", "serial", "store-only", "drain")
