"""``repro store verify --quarantine``: heal the store, keep the evidence.

Plain ``verify`` reports corruption and exits 1; ``--quarantine`` moves
every corrupt record out of the serving tree into ``<store>/quarantine/``
(shard prefix flattened into the name) and exits 0 once the store reads
clean — the operator's one-command heal for a damaged cache.
"""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.core.conv_spec import ConvSpec
from repro.perf.cache import clear_cache
from repro.store import ResultStore, attach, detach
from repro.systolic.simulator import TPUSim

REPO = pathlib.Path(__file__).resolve().parents[2]

SPECS = [
    ConvSpec(n=1, c_in=8, h_in=7, w_in=7, c_out=8 + 4 * i, h_filter=3,
             w_filter=3, stride=1, padding=1, name=f"vq{i}")
    for i in range(3)
]


@pytest.fixture(autouse=True)
def clean_state():
    detach()
    clear_cache()
    yield
    detach()
    clear_cache()


def _populated_store(tmp_path):
    store = ResultStore(tmp_path / "store")
    attach(store)
    sim = TPUSim()
    for spec in SPECS:
        sim.simulate_conv(spec)
    detach()
    assert store.describe()["entries"] >= len(SPECS)
    return store


def _damage_one(store):
    path = next(iter(store.record_paths()))
    path.write_bytes(b"\x00garbage\x00" + path.read_bytes()[:10])
    return path


def test_quarantine_moves_corrupt_records_and_heals(tmp_path):
    store = _populated_store(tmp_path)
    damaged = _damage_one(store)

    report = store.verify(quarantine=True)
    assert not report.clean and report.healed
    assert len(report.quarantined) == len(report.problems) == 1

    # The record left the serving tree, evidence intact in quarantine/.
    assert not damaged.exists()
    moved = pathlib.Path(report.quarantined[0])
    assert moved.parent == store.root / "quarantine"
    assert moved.name == f"{damaged.parent.name}-{damaged.name}"
    assert moved.exists()

    # The store reads clean now; quarantine/ is outside the scan.
    after = store.verify()
    assert after.clean and after.scanned == report.scanned - 1


def test_without_quarantine_nothing_moves(tmp_path):
    store = _populated_store(tmp_path)
    damaged = _damage_one(store)
    report = store.verify()
    assert not report.clean and not report.healed
    assert report.quarantined == [] and damaged.exists()


def _cli(argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "store", *argv],
        cwd=REPO, env=env, capture_output=True, text=True, timeout=120,
    )


def test_cli_exit_codes_and_heal(tmp_path):
    store = _populated_store(tmp_path)
    _damage_one(store)

    plain = _cli(["verify", str(store.root)])
    assert plain.returncode == 1
    assert "CORRUPT" in plain.stdout

    healed = _cli(["verify", str(store.root), "--quarantine"])
    assert healed.returncode == 0, healed.stderr[-400:]
    assert "QUARANTINED" in healed.stdout

    # Healed: a second plain verify exits 0.
    assert _cli(["verify", str(store.root)]).returncode == 0
