"""The persistent tier under the memo cache: accounting + bit-identity.

Covers the acceptance criterion: a second run against a warm persistent
store performs zero new simulations while its rendered report stays
byte-identical to a store-less run.
"""

import pathlib
import subprocess
import sys

import pytest

from repro.core.conv_spec import ConvSpec
from repro.perf.cache import SIM_CACHE, CacheStats, clear_cache
from repro.store import attach, attached, detach
from repro.systolic.simulator import TPUSim

REPO = pathlib.Path(__file__).resolve().parents[2]

SPEC = ConvSpec(
    n=2, c_in=32, h_in=14, w_in=14, c_out=64, h_filter=3, w_filter=3,
    stride=1, padding=1, name="tier",
)


@pytest.fixture(autouse=True)
def clean_tier():
    """Every test starts and ends with no store attached and a cold memo."""
    detach()
    clear_cache()
    yield
    detach()
    clear_cache()


def test_cache_stats_gained_persistent_field():
    # Positional construction predates the field; it must stay valid.
    legacy = CacheStats(1, 0, 1)
    assert legacy.persistent_hits == 0 and legacy.exact_hits == 1
    stats = CacheStats(hits=5, misses=1, entries=4, canonical_hits=2,
                      persistent_hits=1)
    assert stats.exact_hits == 2
    total = stats + stats
    assert total.persistent_hits == 2 and total.exact_hits == 4


def test_probe_falls_through_to_store_and_installs(tmp_path):
    store = attach(tmp_path / "store")
    sim = TPUSim()
    cold = sim.simulate_conv(SPEC)
    assert SIM_CACHE.stats.misses == 1 and store.stats.writes >= 1
    clear_cache()
    warm = sim.simulate_conv(SPEC)
    assert warm == cold
    stats = SIM_CACHE.stats
    assert stats.misses == 0 and stats.persistent_hits == 1
    assert stats.exact_hits == 0 and stats.hits == 1
    # Installed in memory: the next lookup never touches disk again.
    before = store.stats.hits
    again = sim.simulate_conv(SPEC)
    assert again == cold
    assert store.stats.hits == before
    assert SIM_CACHE.stats.exact_hits == 1


def test_canonical_key_shared_through_store(tmp_path):
    """A timing-equivalent spec stored by one process warm-starts another."""
    attach(tmp_path / "store")
    sim = TPUSim()
    tall = ConvSpec(n=1, c_in=8, h_in=24, w_in=12, c_out=8,
                    h_filter=3, w_filter=3, stride=2, padding=1, name="tall")
    wide = ConvSpec(n=1, c_in=8, h_in=12, w_in=24, c_out=8,
                    h_filter=3, w_filter=3, stride=2, padding=1, name="wide")
    first = sim.simulate_conv(tall)
    clear_cache()  # simulate a fresh process: only the store survives
    second = sim.simulate_conv(wide)
    stats = SIM_CACHE.stats
    assert stats.persistent_hits == 1 and stats.misses == 0
    assert second.cycles == first.cycles
    assert second.name != first.name  # relabelled for the caller


def test_detach_restores_plain_behaviour(tmp_path):
    attach(tmp_path / "store")
    assert attached() is not None
    store = detach()
    assert attached() is None and store is not None
    sim = TPUSim()
    sim.simulate_conv(SPEC)
    assert SIM_CACHE.stats.misses == 1
    assert len(store) == 0  # nothing written after detach


def test_attach_from_env_is_idempotent(tmp_path, monkeypatch):
    from repro.store import ENV_VAR, attach_from_env

    monkeypatch.delenv(ENV_VAR, raising=False)
    assert attach_from_env() is None
    monkeypatch.setenv(ENV_VAR, str(tmp_path / "store"))
    first = attach_from_env()
    assert first is not None and attached() is first
    assert attach_from_env() is first  # same dir -> same handle (stats kept)


def _run(argv, env_extra=None):
    env = {"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"}
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-m", "repro.harness.runner", *argv],
        cwd=REPO, env=env, capture_output=True, text=True, timeout=600,
    )


def test_warm_run_is_byte_identical_and_simulation_free(tmp_path):
    """The PR's acceptance criterion, end to end over real processes."""
    store_dir = str(tmp_path / "store")
    plain = _run(["fig13", "--quick"])
    assert plain.returncode == 0, plain.stderr
    cold = _run(["fig13", "--quick", "--store", store_dir, "--cache-stats"])
    assert cold.returncode == 0, cold.stderr
    warm = _run(["fig13", "--quick", "--store", store_dir, "--cache-stats"])
    assert warm.returncode == 0, warm.stderr

    def split(out):
        lines = out.splitlines()
        body = [l for l in lines if not l.startswith(("simulation cache:",
                                                      "persistent store:"))]
        stats = [l for l in lines if l.startswith(("simulation cache:",
                                                   "persistent store:"))]
        return "\n".join(body), stats

    plain_body, plain_stats = split(plain.stdout)
    cold_body, _ = split(cold.stdout)
    warm_body, warm_stats = split(warm.stdout)
    assert cold_body == plain_body  # store-backed cold run: same report
    assert warm_body == plain_body  # warm run: byte-identical report
    assert plain_stats == []
    [cache_line, store_line] = warm_stats
    assert " 0 misses" in cache_line and "(100% hit rate" in cache_line
    assert store_line.startswith("persistent store: ")
    assert store_line.split()[2] != "0"  # served hits, not a cold store
