"""Serve observability: trace headers, /statusz, per-route histograms,
and the connected request span tree under tracing."""

import asyncio

import pytest

from repro.obs.flight import beacon as beacon_mod
from repro.perf.cache import clear_cache
from repro.store import detach
from repro.store.serve import (
    ReproServer,
    ServeConfig,
    SimulationService,
    http_request,
)
from repro.trace import context as tc
from repro.trace import tracer as trace
from repro.trace.export import span_forest

SPEC = {"n": 2, "c_in": 32, "h_in": 14, "w_in": 14, "c_out": 64,
        "h_filter": 3, "w_filter": 3, "stride": 1, "padding": 1,
        "name": "serve-spec"}


@pytest.fixture(autouse=True)
def clean_state():
    detach()
    clear_cache()
    beacon_mod.reset_beacon()
    trace.set_tracer(trace.Tracer())
    yield
    detach()
    clear_cache()
    beacon_mod.reset_beacon()
    trace.set_tracer(trace.Tracer())


async def _boot(run_id=None, **overrides):
    config = ServeConfig(host="127.0.0.1", port=0, **overrides)
    service = SimulationService(config)
    server = ReproServer(service, run_id=run_id)
    host, port = await server.start()
    return service, server, host, port


# ------------------------------------------------------------------ headers


def test_responses_carry_run_and_trace_ids():
    async def scenario():
        service, server, host, port = await _boot(run_id="run-abc")
        try:
            status, _, headers = await http_request(
                host, port, "GET", "/healthz", return_headers=True
            )
            assert status == 200
            assert headers["x-repro-run-id"] == "run-abc"
            assert len(headers["x-repro-trace-id"]) == 32
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_incoming_traceparent_is_honored_and_echoed():
    async def scenario():
        service, server, host, port = await _boot()
        try:
            ctx = tc.TraceContext.new()
            status, _, headers = await http_request(
                host, port, "POST", "/v1/conv", {"spec": SPEC},
                headers={"traceparent": ctx.to_traceparent()},
                return_headers=True,
            )
            assert status == 200
            assert headers["x-repro-trace-id"] == ctx.trace_id
        finally:
            await server.shutdown()

    asyncio.run(scenario())


# ------------------------------------------------------------------ statusz


def test_statusz_reflects_served_load():
    async def scenario():
        service, server, host, port = await _boot(run_id="run-z")
        try:
            for _ in range(2):
                status, _ = await http_request(
                    host, port, "POST", "/v1/conv", {"spec": SPEC}
                )
                assert status == 200
            status, doc = await http_request(host, port, "GET", "/statusz")
            assert status == 200
            assert doc["kind"] == "repro-status" and doc["role"] == "serve"
            assert doc["run_id"] == "run-z"
            assert doc["serve"]["requests"] == 2
            assert doc["serve"]["simulations"] == 1  # repeat was memoized
            assert doc["serve"]["in_flight"] == 0
            assert doc["serve"]["draining"] is False
            assert doc["budget"]["succeeded"] == 2
            # The repeat probe hit a warm tier; the first was a miss.
            assert doc["cache"]["miss"] >= 1
            assert doc["cache"]["exact"] + doc["cache"]["canonical"] >= 1
        finally:
            await server.shutdown()

    asyncio.run(scenario())


# ------------------------------------------------------- per-route histogram


def test_metrics_expose_per_route_latency_histograms():
    async def scenario():
        service, server, host, port = await _boot()
        try:
            await http_request(host, port, "POST", "/v1/conv", {"spec": SPEC})
            await http_request(host, port, "GET", "/healthz")
            await http_request(host, port, "GET", "/unknown-path")
            status, metrics = await http_request(host, port, "GET", "/metrics")
            assert status == 200
            assert "# TYPE repro_serve_request_seconds histogram" in metrics
            assert metrics.count("TYPE repro_serve_request_seconds") == 1
            for route in ("/v1/conv", "/healthz", "other"):
                assert (
                    f'repro_serve_request_seconds_count{{route="{route}"}} 1'
                    in metrics
                ), route
            # Bucket samples keep the route label alongside `le`.
            assert 'repro_serve_request_seconds_bucket{le="+Inf",route="/v1/conv"} 1' in metrics
        finally:
            await server.shutdown()

    asyncio.run(scenario())


# -------------------------------------------------------- request span tree


def test_traced_request_forms_one_connected_tree():
    async def scenario():
        trace.enable()
        service, server, host, port = await _boot()
        try:
            ctx = tc.TraceContext.new()
            status, _ = await http_request(
                host, port, "POST", "/v1/conv", {"spec": SPEC},
                headers={"traceparent": ctx.to_traceparent()},
            )
            assert status == 200
        finally:
            await server.shutdown()
            trace.disable()
        events = trace.drain_events()

        forest = span_forest(events)
        assert ctx.trace_id in forest
        tree = forest[ctx.trace_id]
        assert tree["roots"] == [ctx.span_id]
        assert tree["orphans"] == []
        names = {e.name for e in tree["spans"].values()}
        # HTTP handler -> batch group -> engine simulation, one lineage.
        assert {"serve.request", "serve.batch", "tpu.conv.batch"} <= names

    asyncio.run(scenario())


def test_untraced_requests_record_no_spans():
    async def scenario():
        service, server, host, port = await _boot()
        try:
            status, _ = await http_request(
                host, port, "POST", "/v1/conv", {"spec": SPEC}
            )
            assert status == 200
        finally:
            await server.shutdown()
        assert trace.drain_events() == []

    asyncio.run(scenario())
