"""Integration tests of ``repro serve``: real sockets, real asyncio loop.

Each test boots a :class:`ReproServer` on an ephemeral port inside its
own event loop and talks to it with the stdlib client from
:mod:`repro.store.serve` — no web framework on either side.
"""

import asyncio

import pytest

from repro.perf.cache import clear_cache
from repro.store import attach, detach
from repro.store.serve import (
    ReproServer,
    ServeConfig,
    SimulationService,
    http_request,
)

SPEC = {"n": 2, "c_in": 32, "h_in": 14, "w_in": 14, "c_out": 64,
        "h_filter": 3, "w_filter": 3, "stride": 1, "padding": 1,
        "name": "serve-spec"}

RESULT_FIELDS = {"name", "cycles", "seconds", "tflops", "utilization",
                 "compute_cycles", "dma_cycles", "exposed_dma_cycles",
                 "macs", "group_size", "layout"}


@pytest.fixture(autouse=True)
def clean_state():
    detach()
    clear_cache()
    yield
    detach()
    clear_cache()


async def _boot(**overrides):
    config = ServeConfig(host="127.0.0.1", port=0, **overrides)
    service = SimulationService(config)
    server = ReproServer(service)
    host, port = await server.start()
    return service, server, host, port


def test_single_query_round_trip():
    async def scenario():
        service, server, host, port = await _boot()
        try:
            status, body = await http_request(
                host, port, "POST", "/v1/conv", {"spec": SPEC}
            )
            assert status == 200
            assert set(body) == RESULT_FIELDS
            assert body["name"].startswith("serve-spec")  # spec.describe()
            assert body["cycles"] > 0 and body["seconds"] > 0
            assert body["layout"] == "NHWC"
            assert service.simulations == 1

            status, health = await http_request(host, port, "GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
            assert health["budget"]["succeeded"] == 1

            status, _ = await http_request(host, port, "GET", "/nope")
            assert status == 404
            status, err = await http_request(
                host, port, "POST", "/v1/conv", {"spec": {"bogus": 1}}
            )
            assert status == 400 and "bogus" in err["error"]
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_duplicate_queries_collapse_to_one_simulation():
    async def scenario():
        service, server, host, port = await _boot(batch_window_s=0.05)
        try:
            answers = await asyncio.gather(*[
                http_request(host, port, "POST", "/v1/conv", {"spec": SPEC})
                for _ in range(8)
            ])
            assert all(status == 200 for status, _ in answers)
            bodies = [body for _, body in answers]
            assert all(body == bodies[0] for body in bodies)
            # 8 clients, one fresh engine simulation.
            assert service.simulations == 1
            counters = service.registry.counters
            assert counters["repro_serve_requests_total"] == 8
            assert counters["repro_serve_deduped_total"] >= 1
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_batch_endpoint_preserves_order():
    async def scenario():
        service, server, host, port = await _boot()
        try:
            queries = [
                {"spec": dict(SPEC, c_in=c, name=f"layer-{c}")}
                for c in (16, 32, 64)
            ]
            status, body = await http_request(
                host, port, "POST", "/v1/conv/batch", {"queries": queries}
            )
            assert status == 200
            names = [r["name"].split("[")[0] for r in body["results"]]
            assert names == ["layer-16", "layer-32", "layer-64"]

            status, err = await http_request(
                host, port, "POST", "/v1/conv/batch", {"nope": []}
            )
            assert status == 400 and "queries" in err["error"]
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_config_override_changes_the_answer():
    async def scenario():
        service, server, host, port = await _boot()
        try:
            _, base = await http_request(
                host, port, "POST", "/v1/conv", {"spec": SPEC}
            )
            _, narrow = await http_request(
                host, port, "POST", "/v1/conv",
                {"spec": SPEC, "config": {"array_rows": 32}},
            )
            assert narrow["cycles"] != base["cycles"]
            status, err = await http_request(
                host, port, "POST", "/v1/conv",
                {"spec": SPEC, "config": {"warp_size": 32}},
            )
            assert status == 400 and "warp_size" in err["error"]
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_load_shedding_returns_429_and_counts_fault():
    async def scenario():
        # A one-query budget and a long window: the first query sits in
        # the batcher's coalescing window while the second is refused.
        service, server, host, port = await _boot(
            max_pending=1, batch_window_s=0.3
        )
        try:
            first = asyncio.create_task(
                http_request(host, port, "POST", "/v1/conv", {"spec": SPEC})
            )
            await asyncio.sleep(0.05)  # admitted, still pending
            assert service.pending == 1
            status, err = await http_request(
                host, port, "POST", "/v1/conv",
                {"spec": dict(SPEC, c_in=16, name="shed-me")},
            )
            assert status == 429 and "budget" in err["error"]
            assert service.budget.faults_by_class.get("LoadShed") == 1
            assert service.registry.counters["repro_serve_shed_total"] == 1
            status, body = await first  # the admitted query still answers
            assert status == 200 and body["cycles"] > 0
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_graceful_drain_answers_inflight_then_refuses():
    async def scenario():
        service, server, host, port = await _boot(batch_window_s=0.2)
        inflight = asyncio.create_task(
            http_request(host, port, "POST", "/v1/conv", {"spec": SPEC})
        )
        await asyncio.sleep(0.05)  # admitted, inside the batch window
        assert service.pending == 1
        shutdown = asyncio.create_task(server.shutdown())
        status, body = await inflight
        assert status == 200 and body["cycles"] > 0  # drained, not dropped
        await shutdown
        assert service.pending == 0 and service.draining

    asyncio.run(scenario())


def test_draining_server_refuses_with_503():
    async def scenario():
        service, server, host, port = await _boot()
        try:
            service.draining = True
            status, err = await http_request(
                host, port, "POST", "/v1/conv", {"spec": SPEC}
            )
            assert status == 503 and "draining" in err["error"]
        finally:
            service.draining = False
            await server.shutdown()

    asyncio.run(scenario())


def test_metrics_exposition_includes_serve_and_store_series(tmp_path):
    async def scenario():
        attach(tmp_path / "store")
        service, server, host, port = await _boot()
        try:
            await http_request(host, port, "POST", "/v1/conv", {"spec": SPEC})
            status, text = await http_request(host, port, "GET", "/metrics")
            assert status == 200
            for series in ("repro_serve_requests_total",
                           "repro_serve_batches_total",
                           "repro_serve_simulations_total",
                           "repro_serve_pending",
                           "repro_store_hit_rate"):
                assert series in text, series
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_serve_warm_starts_from_persistent_store(tmp_path):
    async def cold():
        attach(tmp_path / "store")
        service, server, host, port = await _boot()
        try:
            await http_request(host, port, "POST", "/v1/conv", {"spec": SPEC})
            assert service.simulations == 1
        finally:
            await server.shutdown()

    async def warm():
        store = attach(tmp_path / "store")
        service, server, host, port = await _boot()
        try:
            status, body = await http_request(
                host, port, "POST", "/v1/conv", {"spec": SPEC}
            )
            assert status == 200 and body["cycles"] > 0
            assert service.simulations == 0  # served from the store
            assert store.stats.hits >= 1
        finally:
            await server.shutdown()

    asyncio.run(cold())
    detach()
    clear_cache()  # a "new process": only the store survives
    asyncio.run(warm())
