"""Corruption-injection matrix: every damage mode is detected, skipped,
warned about, and healed by recomputation — never served.

Damage is injected two ways: directly via ``_corrupt_bytes`` (unit-level)
and through ``--inject-faults corrupt-store`` (the seeded fault plan the
runner exposes), then audited with ``repro store verify``.
"""

import pathlib
import subprocess
import sys

import pytest

from repro.core.conv_spec import ConvSpec
from repro.perf.cache import SIM_CACHE, clear_cache
from repro.resilience import faults
from repro.resilience.faults import STORE_CORRUPTION_MODES, FaultPlan
from repro.store import ResultStore, attach, detach, key_digest
from repro.store.store import _corrupt_bytes
from repro.systolic.simulator import TPUSim

REPO = pathlib.Path(__file__).resolve().parents[2]

SPEC = ConvSpec(
    n=2, c_in=32, h_in=14, w_in=14, c_out=64, h_filter=3, w_filter=3,
    stride=1, padding=1, name="corrupt",
)


@pytest.fixture(autouse=True)
def clean_state():
    faults.deactivate()
    detach()
    clear_cache()
    yield
    faults.deactivate()
    detach()
    clear_cache()


def _damage(store, key, mode):
    path = store.record_path(key_digest(key))
    path.write_bytes(_corrupt_bytes(path.read_bytes(), mode))
    return path


# ------------------------------------------------------- unit-level matrix
@pytest.mark.parametrize("mode", STORE_CORRUPTION_MODES)
def test_damaged_record_is_skipped_and_reported(tmp_path, mode):
    store = ResultStore(tmp_path / "store")
    sim = TPUSim()
    result = sim.simulate_conv(SPEC)
    attach(store)  # write-through
    clear_cache()
    sim.simulate_conv(SPEC)
    detach()
    # Damage every record (the exact entry AND its canonical alias), so
    # nothing healthy is left to serve from.
    for path in list(store.record_paths()):
        path.write_bytes(_corrupt_bytes(path.read_bytes(), mode))

    report = store.verify()
    assert not report.clean and report.scanned >= 1
    assert all(p.reason for p in report.problems)

    # The read path skips (miss, not crash, not garbage served).
    before = store.stats.corrupt_skipped
    found, value, _ = store.load(_only_key_obj())
    assert not found and value is None
    assert store.stats.corrupt_skipped == before + 1

    # Recomputation heals: the write-through replaces the bad record.
    attach(store)
    clear_cache()
    healed = sim.simulate_conv(SPEC)
    assert healed == result
    assert SIM_CACHE.stats.misses == 1  # recomputed, not served corrupt
    # The exact record was rewritten healthy; the canonical alias keeps
    # overwrite=False semantics, so compaction (corrupt-first) finishes
    # the heal.
    store.compact()
    assert store.verify().clean
    assert len(store) >= 1


def _only_key_obj():
    """The exact memo key TPUSim.simulate_conv builds for SPEC's defaults."""
    from repro.core.layouts import Layout
    from repro.core.tiling import tpu_multi_tile_policy
    from repro.perf.cache import config_key, spec_key
    from repro.systolic.config import TPU_V2

    group = tpu_multi_tile_policy(SPEC, TPU_V2.array_rows)
    return ("tpu-conv", config_key(TPU_V2), spec_key(SPEC), group,
            Layout.NHWC.value)


def _only_key(store):
    return _only_key_obj()


@pytest.mark.parametrize("mode", STORE_CORRUPTION_MODES)
def test_fault_plan_corrupts_at_write_time(tmp_path, mode):
    store = ResultStore(tmp_path / "store")
    faults.activate(FaultPlan.parse(f"corrupt-store={mode}"))
    assert store.save(("k",), _result())
    faults.deactivate()
    report = store.verify()
    assert report.scanned == 1 and not report.clean
    found, _, _ = store.load(("k",))
    assert not found and store.stats.corrupt_skipped == 1


def test_fault_plan_any_mode_is_deterministic():
    plan_a = FaultPlan.parse("corrupt-store,seed=7")
    plan_b = FaultPlan.parse("corrupt-store,seed=7")
    digests = [key_digest(("k", i)) for i in range(16)]
    modes_a = [plan_a.store_corruption(d) for d in digests]
    modes_b = [plan_b.store_corruption(d) for d in digests]
    assert modes_a == modes_b
    assert set(modes_a) <= set(STORE_CORRUPTION_MODES)
    assert len(set(modes_a)) > 1  # "any" actually varies across records
    assert plan_a.counters["store_corrupted"] == 16


def test_fault_plan_rejects_unknown_mode():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        FaultPlan.parse("corrupt-store=gamma-rays")


def test_compact_evicts_corrupt_records_first(tmp_path):
    store = ResultStore(tmp_path / "store")
    for i in range(4):
        store.save(("k", i), _result())
    _damage(store, ("k", 0), "checksum")
    report = store.compact(max_entries=3)
    assert report.removed == 1
    assert not store.record_path(key_digest(("k", 0))).exists()
    assert store.verify().clean


def _result():
    sim = TPUSim()
    return sim.simulate_conv(SPEC)


# --------------------------------------------------------- CLI / end-to-end
def _run(argv, timeout=600):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=REPO, capture_output=True, text=True, timeout=timeout,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )


def test_store_verify_cli_exit_codes(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.save(("k", 1), _result())
    clean = _run(["store", "verify", str(tmp_path / "store")])
    assert clean.returncode == 0, clean.stderr
    assert "1/1 records ok" in clean.stdout

    _damage(store, ("k", 1), "truncate")
    dirty = _run(["store", "verify", str(tmp_path / "store")])
    assert dirty.returncode == 1
    assert "CORRUPT" in dirty.stdout


def test_runner_injected_corruption_heals_end_to_end(tmp_path):
    """--inject-faults corrupt-store poisons every write; the next clean
    run recomputes everything, stays byte-identical, and heals the store."""
    store_dir = str(tmp_path / "store")
    poisoned = _run(["run", "fig13", "--quick", "--store", store_dir,
                     "--inject-faults", "corrupt-store,seed=3",
                     "--cache-stats"])
    assert poisoned.returncode == 0, poisoned.stderr

    verify = _run(["store", "verify", store_dir])
    assert verify.returncode == 1
    assert "CORRUPT" in verify.stdout

    plain = _run(["run", "fig13", "--quick"])
    clean = _run(["run", "fig13", "--quick", "--store", store_dir,
                  "--cache-stats"])
    assert clean.returncode == 0, clean.stderr
    strip = lambda out: [l for l in out.splitlines()
                         if not l.startswith(("simulation cache:",
                                              "persistent store:"))]
    assert strip(clean.stdout) == strip(plain.stdout)
    cache_line = next(l for l in clean.stdout.splitlines()
                      if l.startswith("simulation cache:"))
    assert " 0 misses" not in cache_line  # corrupt records forced recompute

    # Exact records were rewritten healthy; canonical aliases written with
    # overwrite=False may still be poisoned, so compact (which evicts
    # corrupt records first) must leave a clean store.
    compact = _run(["store", "compact", store_dir])
    assert compact.returncode == 0, compact.stderr
    final = _run(["store", "verify", store_dir])
    assert final.returncode == 0, final.stdout
