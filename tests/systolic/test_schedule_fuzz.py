"""Hypothesis fuzzing of the conv/GEMM schedules: structural invariants
that must hold for every geometry the scheduler can be handed."""

import math

from hypothesis import given, settings, strategies as st

from repro.core import ConvSpec, GemmShape, tpu_multi_tile_policy
from repro.systolic import (
    TPU_V2,
    channel_first_schedule,
    execute_schedule,
    gemm_schedule,
)
from repro.systolic.scheduler import ifmap_rows_per_block


@st.composite
def specs(draw):
    f = draw(st.integers(1, 5))
    stride = draw(st.integers(1, 3))
    padding = draw(st.integers(0, 2))
    size = draw(st.integers(max(1, f - 2 * padding), 40))
    size = max(size, f - 2 * padding)
    return ConvSpec(
        n=draw(st.integers(1, 16)),
        c_in=draw(st.integers(1, 300)),
        h_in=size,
        w_in=size,
        c_out=draw(st.integers(1, 300)),
        h_filter=f,
        w_filter=f,
        stride=stride,
        padding=padding,
    )


@settings(max_examples=80, deadline=None)
@given(spec=specs())
def test_conv_schedule_covers_macs(spec):
    """Scheduled MAC volume covers the layer (>= because partial K tiles)."""
    items = channel_first_schedule(spec, TPU_V2)
    scheduled = sum(item.macs for item in items)
    assert scheduled >= spec.macs


@settings(max_examples=80, deadline=None)
@given(spec=specs())
def test_conv_schedule_item_count_structure(spec):
    """Item count equals blocks x sum over groups of (k-chunks x n-chunks)."""
    group = tpu_multi_tile_policy(spec, TPU_V2.array_rows)
    rows_per_block = ifmap_rows_per_block(spec, TPU_V2, group)
    blocks = math.ceil(spec.lowered_rows() / rows_per_block)
    per_row_groups = math.ceil(spec.w_filter / group)
    n_chunks = math.ceil(spec.c_out / TPU_V2.array_cols)
    expected = 0
    for _ in range(spec.h_filter):
        full, rem = divmod(spec.w_filter, group)
        sizes = [group] * full + ([rem] if rem else [])
        for size in sizes:
            expected += math.ceil(size * spec.c_in / TPU_V2.array_rows) * n_chunks
    items = channel_first_schedule(spec, TPU_V2)
    assert len(items) == blocks * expected


@settings(max_examples=80, deadline=None)
@given(spec=specs())
def test_conv_schedule_executes_positively(spec):
    result = execute_schedule(channel_first_schedule(spec, TPU_V2))
    assert result.total_cycles > 0
    assert result.compute_cycles > 0
    # utilization can never exceed 1
    assert result.macs <= TPU_V2.peak_macs_per_cycle * result.total_cycles * (1 + 1e-9)


@settings(max_examples=80, deadline=None)
@given(
    m=st.integers(1, 5000),
    n=st.integers(1, 600),
    k=st.integers(1, 600),
)
def test_gemm_schedule_macs_exact(m, n, k):
    shape = GemmShape(m=m, n=n, k=k)
    items = gemm_schedule(shape, TPU_V2)
    assert sum(item.macs for item in items) == shape.macs


@settings(max_examples=80, deadline=None)
@given(spec=specs())
def test_blocks_respect_capacity(spec):
    group = tpu_multi_tile_policy(spec, TPU_V2.array_rows)
    rows = ifmap_rows_per_block(spec, TPU_V2, group)
    slab = rows * spec.c_in * group * TPU_V2.compute_elem_bytes
    assert slab <= TPU_V2.unified_sram_bytes // 4 or rows == 1
