"""TPUConfig invariants and derived quantities (Tbl. II)."""

import dataclasses

import pytest

from repro.systolic import TPU_V2, TPUConfig


def test_table2_defaults():
    assert TPU_V2.array_rows == 128 and TPU_V2.array_cols == 128
    assert TPU_V2.clock_ghz == 0.7
    assert TPU_V2.unified_sram_bytes == 32 * 1024 * 1024
    assert TPU_V2.num_vector_memories == 128
    assert TPU_V2.sram_word_elems == 8 and TPU_V2.sram_elem_bytes == 4
    assert TPU_V2.hbm.peak_bandwidth_gbps == 700.0
    assert TPU_V2.vector_alus == 256


def test_peak_numbers():
    assert TPU_V2.peak_macs_per_cycle == 128 * 128
    # 2 * 128^2 * 0.7e9 = 22.9 TFLOPS
    assert TPU_V2.peak_tflops == pytest.approx(22.94, rel=0.01)


def test_word_bytes():
    assert TPU_V2.sram_word_bytes == 32


def test_per_memory_capacity():
    assert TPU_V2.per_memory_bytes == 256 * 1024


def test_with_array_keeps_memory_row_coupling():
    small = TPU_V2.with_array(32)
    assert small.array_rows == small.array_cols == small.num_vector_memories == 32


def test_with_word_elems():
    assert TPU_V2.with_word_elems(4).sram_word_elems == 4


def test_memory_row_coupling_enforced():
    with pytest.raises(ValueError):
        TPUConfig(array_rows=128, num_vector_memories=64)


@pytest.mark.parametrize(
    "field,value",
    [
        ("array_rows", 0),
        ("clock_ghz", 0),
        ("sram_word_elems", 0),
        ("unified_sram_bytes", 0),
        ("compute_elem_bytes", 0),
    ],
)
def test_invalid_fields(field, value):
    with pytest.raises(ValueError):
        dataclasses.replace(TPU_V2, **{field: value})


def test_describe_mentions_key_facts():
    text = TPU_V2.describe()
    assert "128x128" in text and "700" in text
