"""TPUSim extensions: energy model, channel-last counterfactual, multicore."""

import dataclasses

import pytest

from repro.core import ConvSpec
from repro.systolic import (
    EnergyModel,
    TPU_V2,
    TPUSim,
    scaling_efficiency,
    simulate_conv_channel_last,
    simulate_conv_multicore,
)


@pytest.fixture(scope="module")
def layer():
    return ConvSpec(n=64, c_in=128, h_in=28, w_in=28, c_out=128,
                    h_filter=3, w_filter=3, stride=1, padding=1)


@pytest.fixture(scope="module")
def sim():
    return TPUSim()


class TestChannelLastCounterfactual:
    def test_parity_at_stride_1(self, layer, sim):
        cf = sim.simulate_conv(layer).tflops
        cl = simulate_conv_channel_last(layer, TPU_V2).tflops
        assert cl == pytest.approx(cf, rel=0.15)

    def test_collapse_at_stride(self, layer, sim):
        """The paper's core inference: a channel-last TPU would show the
        GPU's stride cliff; channel-first does not."""
        for stride, min_advantage in ((2, 1.3), (4, 3.0)):
            spec = layer.with_stride(stride)
            cf = sim.simulate_conv(spec).tflops
            cl = simulate_conv_channel_last(spec, TPU_V2).tflops
            assert cf / cl > min_advantage

    def test_macs_conserved(self, layer):
        result = simulate_conv_channel_last(layer, TPU_V2)
        assert result.macs == layer.macs
        assert result.cycles > 0


class TestEnergyModel:
    def test_components_positive(self, layer, sim):
        result = sim.simulate_conv(layer)
        energy = EnergyModel().layer_energy(layer, result)
        for component in ("compute", "sram", "dram", "static"):
            assert energy.fraction(component) > 0
        assert energy.total_j > 0

    def test_fractions_sum_to_one(self, layer, sim):
        result = sim.simulate_conv(layer)
        energy = EnergyModel().layer_energy(layer, result)
        total = sum(energy.fraction(c) for c in ("compute", "sram", "dram", "static"))
        assert total == pytest.approx(1.0)

    def test_energy_per_mac_plausible(self, layer, sim):
        """System-level pJ/MAC in the 0.5-5 range for a busy bf16 core."""
        result = sim.simulate_conv(layer)
        pj = EnergyModel().energy_per_mac_pj(layer, result)
        assert 0.3 < pj < 5.0

    def test_narrow_words_cost_more(self, layer):
        """Per-access overhead dominates narrow words (the energy knee)."""
        values = {}
        for word in (2, 8, 32):
            config = TPU_V2.with_word_elems(word)
            result = TPUSim(config).simulate_conv(layer)
            values[word] = EnergyModel(config=config).energy_per_mac_pj(layer, result)
        assert values[2] > values[8] > values[32]
        # ... with diminishing savings past the knee
        assert values[2] - values[8] > values[8] - values[32]

    def test_idle_layer_rejected(self, layer, sim):
        result = sim.simulate_conv(layer)
        bogus = dataclasses.replace(result, macs=0)
        with pytest.raises(ValueError):
            EnergyModel().energy_per_mac_pj(layer, bogus)


class TestMulticore:
    def test_two_cores_near_2x(self, layer):
        one = simulate_conv_multicore(layer, 1)
        two = simulate_conv_multicore(layer, 2)
        speedup = one.cycles / two.cycles
        assert 1.7 < speedup <= 2.0

    def test_efficiency_monotonically_decays(self, layer):
        table = scaling_efficiency(layer, core_counts=(1, 2, 4, 8))
        efficiencies = [table[c][1] for c in sorted(table)]
        assert all(e2 <= e1 + 1e-9 for e1, e2 in zip(efficiencies, efficiencies[1:]))
        assert efficiencies[0] == pytest.approx(1.0)

    def test_never_superlinear(self, layer):
        for cores, (speedup, efficiency) in scaling_efficiency(layer).items():
            assert speedup <= cores * (1 + 1e-9)

    def test_total_macs_preserved(self, layer):
        result = simulate_conv_multicore(layer, 4)
        assert result.total_macs == pytest.approx(layer.macs, rel=0.01)
        assert result.tflops(0.7) > 0

    def test_batch_smaller_than_cores_rejected(self):
        tiny = ConvSpec(n=2, c_in=8, h_in=8, w_in=8, c_out=8, h_filter=3, w_filter=3, padding=1)
        with pytest.raises(ValueError):
            simulate_conv_multicore(tiny, 4)

    def test_invalid_cores(self, layer):
        with pytest.raises(ValueError):
            simulate_conv_multicore(layer, 0)
