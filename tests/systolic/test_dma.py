"""The DMA fill engine: pricing structure of IFMap/weight/OFMap movement."""

import pytest

from repro.core import ConvSpec
from repro.core.layouts import Layout
from repro.systolic import FillEngine, TPU_V2


@pytest.fixture
def engine():
    return FillEngine(TPU_V2)


@pytest.fixture
def spec():
    return ConvSpec(n=8, c_in=64, h_in=28, w_in=28, c_out=64,
                    h_filter=3, w_filter=3, stride=1, padding=1)


class TestIFMapFill:
    def test_scales_with_rows(self, engine, spec):
        small = engine.ifmap_tile_fill_cycles(spec, rows=1000, group_size=1)
        large = engine.ifmap_tile_fill_cycles(spec, rows=4000, group_size=1)
        assert large > 3 * small

    def test_duplication_costs(self, engine, spec):
        g1 = engine.ifmap_tile_fill_cycles(spec, rows=4000, group_size=1)
        g3 = engine.ifmap_tile_fill_cycles(spec, rows=4000, group_size=3)
        assert g3 > 2.5 * g1

    def test_hwc_cheaper_than_chw(self, engine, spec):
        hwc = engine.ifmap_tile_fill_cycles(spec, 4000, 1, layout=Layout.NHWC)
        chw = engine.ifmap_tile_fill_cycles(spec, 4000, 1, layout=Layout.NCHW)
        assert hwc <= chw

    def test_stride_shrinks_fill(self, engine, spec):
        """Channel-first's key property: fewer output rows -> smaller fill.
        Per-tile payload is proportional to output size, so at stride 2 the
        per-output-byte cost stays in the same ballpark."""
        s1_rows = spec.lowered_rows()
        strided = spec.with_stride(2)
        s2_rows = strided.lowered_rows()
        s1 = engine.ifmap_tile_fill_cycles(spec, s1_rows, 1)
        s2 = engine.ifmap_tile_fill_cycles(strided, s2_rows, 1)
        assert s2 < s1
        # per-row cost within 3x (fragmentation at stride, but batch packing
        # keeps runs coarse)
        assert s2 / s2_rows < 3 * (s1 / s1_rows)

    def test_bad_layout_rejected(self, engine, spec):
        with pytest.raises(ValueError):
            engine.ifmap_tile_fill_cycles(spec, 100, 1, layout="bogus")

    def test_positive_args(self, engine, spec):
        with pytest.raises(ValueError):
            engine.ifmap_tile_fill_cycles(spec, 0, 1)
        with pytest.raises(ValueError):
            engine.ifmap_tile_fill_cycles(spec, 10, 0)


class TestSlidingWindowFill:
    def test_does_not_shrink_with_stride(self, engine, spec):
        """The channel-last asymmetry (Fig 3): staging the window footprint
        for the same number of output rows costs MORE per output at higher
        stride (the footprint is input-sized)."""
        rows = 2 * spec.w_out
        s1 = engine.sliding_window_fill_cycles(spec, rows)
        strided = spec.with_stride(2)
        s2 = engine.sliding_window_fill_cycles(strided, 2 * strided.w_out)
        # same number of output rows staged; strided footprint is larger
        assert s2 >= s1 * 0.9

    def test_positive_rows(self, engine, spec):
        with pytest.raises(ValueError):
            engine.sliding_window_fill_cycles(spec, 0)


class TestWeightsAndOFMap:
    def test_weight_fill_linear(self, engine):
        small = engine.weight_fill_cycles(64, 64)
        large = engine.weight_fill_cycles(128, 128)
        assert large > small

    def test_ofmap_drain_linear(self, engine):
        assert engine.ofmap_drain_cycles(2000, 128) > engine.ofmap_drain_cycles(1000, 128)

    def test_gemm_a_panel(self, engine):
        cycles = engine.gemm_a_fill_cycles(1000, 128)
        payload = 1000 * 128 * TPU_V2.compute_elem_bytes
        ideal = payload / TPU_V2.hbm.bytes_per_cycle
        assert ideal <= cycles < 2 * ideal  # near-streaming

    def test_validation(self, engine):
        for method in (engine.weight_fill_cycles, engine.ofmap_drain_cycles,
                       engine.gemm_a_fill_cycles):
            with pytest.raises(ValueError):
                method(0, 10)
