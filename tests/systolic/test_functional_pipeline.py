"""Register-level end-to-end dataflow (the Fig 10/11 integration)."""

import numpy as np
import pytest

from repro.core import ConvSpec, random_conv_operands
from repro.systolic import FunctionalPipeline, run_fig10_example


class TestFig10:
    def test_example_runs_clean(self):
        ofmap, stats = run_fig10_example()
        assert ofmap.shape == (2, 4, 3, 3)
        assert stats.port_conflicts == 0
        assert stats.serializer_underflows == 0
        assert stats.port_reads > 0 and stats.port_writes > 0


class TestCorrectness:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_matches_reference(self, stride, padding):
        spec = ConvSpec(n=2, c_in=4, h_in=7, w_in=7, c_out=4,
                        h_filter=3, w_filter=3, stride=stride, padding=padding)
        ifmap, weights = random_conv_operands(spec, seed=21)
        pipeline = FunctionalPipeline(array_size=4, word_elems=2)
        pipeline.run_conv(spec, ifmap, weights)  # verify=True raises on divergence

    def test_word_size_8_with_batch_8(self):
        """Tbl. II cadence: word 8, batch filling the lanes (Sec. IV-A)."""
        spec = ConvSpec(n=8, c_in=4, h_in=5, w_in=5, c_out=4,
                        h_filter=3, w_filter=3, stride=1, padding=0)
        ifmap, weights = random_conv_operands(spec, seed=22)
        pipeline = FunctionalPipeline(array_size=4, word_elems=8)
        pipeline.run_conv(spec, ifmap, weights)

    def test_pointwise(self):
        spec = ConvSpec(n=2, c_in=4, h_in=4, w_in=4, c_out=3,
                        h_filter=1, w_filter=1)
        ifmap, weights = random_conv_operands(spec, seed=23)
        FunctionalPipeline(array_size=4, word_elems=2).run_conv(spec, ifmap, weights)


class TestInvariants:
    def test_port_reads_once_per_word(self):
        """The crossbar-free claim at register level: per tile, each memory
        is read exactly ceil(taps/lanes) times regardless of reuse."""
        spec = ConvSpec(n=2, c_in=4, h_in=5, w_in=5, c_out=4,
                        h_filter=3, w_filter=3, stride=1, padding=0)
        ifmap, weights = random_conv_operands(spec, seed=24)
        pipeline = FunctionalPipeline(array_size=4, word_elems=2)
        pipeline.run_conv(spec, ifmap, weights)
        taps = spec.h_out * spec.w_out
        lanes = 2 // spec.n if 2 >= spec.n else 1
        # 9 tiles x 4 memories x ceil(taps/lanes) reads
        expected_reads = spec.positions * spec.c_in * -(-taps // max(1, 2 // spec.n))
        assert pipeline.stats.port_reads == expected_reads


class TestValidation:
    def test_channels_exceeding_array_rejected(self):
        spec = ConvSpec(n=2, c_in=8, h_in=5, w_in=5, c_out=4,
                        h_filter=3, w_filter=3)
        ifmap, weights = random_conv_operands(spec)
        with pytest.raises(ValueError):
            FunctionalPipeline(array_size=4, word_elems=2).run_conv(spec, ifmap, weights)

    def test_batch_word_mismatch_rejected(self):
        spec = ConvSpec(n=3, c_in=4, h_in=5, w_in=5, c_out=4,
                        h_filter=3, w_filter=3)
        ifmap, weights = random_conv_operands(spec)
        with pytest.raises(ValueError):
            FunctionalPipeline(array_size=4, word_elems=2).run_conv(spec, ifmap, weights)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            FunctionalPipeline(array_size=0, word_elems=2)
