"""Skewed address generation: the crossbar-free property."""

import pytest

from repro.core import ConvSpec
from repro.systolic import AddressGenerator, skewed_schedule, tile_word_offsets


@pytest.fixture
def spec():
    return ConvSpec(n=8, c_in=4, h_in=6, w_in=6, c_out=4,
                    h_filter=3, w_filter=3, stride=1, padding=0)


class TestWordOffsets:
    def test_batch_packed_one_word_per_tap(self, spec):
        offsets = tile_word_offsets(spec, word_elems=8, batch_in_word=True)
        assert offsets == list(range(spec.h_out * spec.w_out))

    def test_unpacked_advances_per_word(self, spec):
        offsets = tile_word_offsets(spec, word_elems=4, batch_in_word=False)
        assert offsets[:5] == [0, 0, 0, 0, 1]

    def test_offsets_independent_of_stride_shape(self):
        """The array-facing stream only depends on the output size — all the
        stride complexity lives in the DMA fill (Sec. III-B)."""
        base = ConvSpec(n=1, c_in=2, h_in=9, w_in=9, c_out=2,
                        h_filter=3, w_filter=3, stride=1, padding=1)
        strided = base.with_stride(2)
        assert tile_word_offsets(strided, 8) == list(range(strided.h_out * strided.w_out))

    def test_invalid_word(self, spec):
        with pytest.raises(ValueError):
            tile_word_offsets(spec, 0)


class TestSkewedSchedule:
    def test_identical_streams_modulo_delay(self, spec):
        """The crossbar-free property: every memory's access sequence is the
        same, just delayed by its row index."""
        offsets = tile_word_offsets(spec, 8)
        schedule = skewed_schedule(offsets, rows=4, word_elems=8)
        by_row = {}
        for access in schedule:
            by_row.setdefault(access.row, []).append((access.cycle, access.word_offset))
        base = [(c - 0, o) for c, o in by_row[0]]
        for row in range(1, 4):
            shifted = [(c - row, o) for c, o in by_row[row]]
            assert shifted == base

    def test_one_access_per_memory_per_cycle(self, spec):
        offsets = tile_word_offsets(spec, 8)
        schedule = skewed_schedule(offsets, rows=4, word_elems=8)
        seen = set()
        for access in schedule:
            key = (access.cycle, access.row)
            assert key not in seen
            seen.add(key)

    def test_serializer_cadence(self, spec):
        offsets = tile_word_offsets(spec, 8)
        schedule = skewed_schedule(offsets, rows=2, word_elems=8)
        row0 = sorted(a.cycle for a in schedule if a.row == 0)
        gaps = {b - a for a, b in zip(row0, row0[1:])}
        assert gaps == {8}

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            skewed_schedule([0], rows=0, word_elems=8)


class TestAddressGenerator:
    def test_skew_delays_start(self):
        gen = AddressGenerator([10, 11, 12], row=3, word_elems=4)
        assert gen.next_access(0) is None
        assert gen.next_access(3) == 10
        assert gen.next_access(7) == 11

    def test_cadence_gaps_return_none(self):
        gen = AddressGenerator([10, 11], row=0, word_elems=4)
        assert gen.next_access(0) == 10
        assert gen.next_access(1) is None
        assert gen.next_access(4) == 11

    def test_exhaustion(self):
        gen = AddressGenerator([5], row=0, word_elems=2)
        assert gen.next_access(0) == 5
        assert gen.next_access(2) is None
        assert gen.finish_cycle() == 0
        assert gen.total_port_reads() == 1

    def test_finish_cycle_with_skew(self):
        gen = AddressGenerator([1, 2, 3], row=5, word_elems=4)
        assert gen.finish_cycle() == 2 * 4 + 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            AddressGenerator([1], row=-1, word_elems=4)
