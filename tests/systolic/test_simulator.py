"""TPUSim: functional correctness on the scheduled tile sequence, timing
shapes, and the paper's headline TPU behaviours."""

import numpy as np
import pytest

from repro.core import ConvSpec, GemmShape, random_conv_operands
from repro.systolic import TPU_V2, TPUSim


@pytest.fixture(scope="module")
def sim():
    return TPUSim()


class TestFunctional:
    def test_small_array_conv(self, small_spec):
        small_sim = TPUSim(TPU_V2.with_array(8))
        ifmap, weights = random_conv_operands(small_spec, seed=1)
        # verify=True raises on divergence
        small_sim.run_functional_conv(small_spec, ifmap, weights)

    def test_strided_conv(self, strided_spec):
        small_sim = TPUSim(TPU_V2.with_array(4))
        ifmap, weights = random_conv_operands(strided_spec, seed=2)
        small_sim.run_functional_conv(strided_spec, ifmap, weights)

    def test_multi_tile_groups(self):
        """Channels smaller than the array trigger multi-tile merging; the
        merged K chunks must still accumulate correctly."""
        spec = ConvSpec(n=2, c_in=2, h_in=5, w_in=5, c_out=3,
                        h_filter=3, w_filter=3, stride=1, padding=1)
        small_sim = TPUSim(TPU_V2.with_array(4))
        ifmap, weights = random_conv_operands(spec, seed=3)
        out = small_sim.run_functional_conv(spec, ifmap, weights, group_size=2)
        assert out.shape == spec.ofmap_shape

    def test_k_chunking_over_array(self):
        """C_I larger than the array forces K chunking across passes."""
        spec = ConvSpec(n=1, c_in=10, h_in=4, w_in=4, c_out=3,
                        h_filter=1, w_filter=1)
        small_sim = TPUSim(TPU_V2.with_array(4))
        ifmap, weights = random_conv_operands(spec, seed=4)
        small_sim.run_functional_conv(spec, ifmap, weights)


class TestTimingShapes:
    def test_big_gemm_near_peak(self, sim):
        result = sim.simulate_gemm(GemmShape(8192, 8192, 8192))
        assert result.utilization > 0.9
        assert result.tflops > 0.9 * sim.config.peak_tflops

    def test_small_gemm_lower_utilization(self, sim):
        small = sim.simulate_gemm(GemmShape(256, 256, 256))
        big = sim.simulate_gemm(GemmShape(4096, 4096, 4096))
        assert small.utilization < big.utilization

    def test_stride_insensitivity(self, sim):
        """Fig 4b: channel-first TFLOPS barely moves with stride."""
        layer = ConvSpec(n=64, c_in=128, h_in=28, w_in=28, c_out=128,
                         h_filter=3, w_filter=3, stride=1, padding=1)
        results = sim.stride_sweep(layer, [1, 2, 4])
        base = results[1].tflops
        for stride in (2, 4):
            assert results[stride].tflops > 0.8 * base

    def test_multi_tile_speedup_and_plateau(self, sim):
        """Fig 14a: speedup up to W_F tiles, then a plateau."""
        layer = ConvSpec(n=8, c_in=8, h_in=128, w_in=128, c_out=128,
                         h_filter=3, w_filter=3, stride=1, padding=1)
        tflops = {g: sim.simulate_conv(layer, group_size=g).tflops for g in (1, 2, 3, 4)}
        assert tflops[2] > 1.3 * tflops[1]
        assert tflops[3] > 1.5 * tflops[2]
        assert tflops[4] == pytest.approx(tflops[3], rel=0.02)

    def test_policy_applied_by_default(self, sim):
        layer = ConvSpec(n=8, c_in=8, h_in=64, w_in=64, c_out=128,
                         h_filter=3, w_filter=3, padding=1)
        result = sim.simulate_conv(layer)
        assert result.group_size == 3

    def test_array_size_tradeoff(self):
        """Fig 16a: bigger arrays raise TFLOPS but lower utilization."""
        layer = ConvSpec(n=8, c_in=64, h_in=56, w_in=56, c_out=64,
                         h_filter=3, w_filter=3, padding=1)
        small = TPUSim(TPU_V2.with_array(64)).simulate_conv(layer)
        big = TPUSim(TPU_V2.with_array(256)).simulate_conv(layer)
        assert big.tflops > small.tflops
        assert big.utilization < small.utilization

    def test_cycles_positive_and_consistent(self, sim, small_spec):
        result = sim.simulate_conv(small_spec.with_batch(8))
        assert result.cycles > 0
        assert result.macs == small_spec.with_batch(8).macs
        assert result.latency_s(0.7) == pytest.approx(result.cycles / 0.7e9)


class TestNetworkAggregation:
    def test_network_result_sums_layers(self, sim):
        layers = [
            ConvSpec(n=8, c_in=128, h_in=14, w_in=14, c_out=128,
                     h_filter=3, w_filter=3, padding=1, name="a"),
            ConvSpec(n=8, c_in=128, h_in=14, w_in=14, c_out=256,
                     h_filter=1, w_filter=1, name="b"),
        ]
        net = sim.simulate_network("tiny", layers)
        assert net.total_cycles == pytest.approx(sum(r.cycles for r in net.layers))
        assert net.total_macs == sum(l.macs for l in layers)
        assert net.tflops(0.7) > 0
        assert net.latency_s(0.7) > 0
