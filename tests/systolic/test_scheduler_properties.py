"""Property-based tests for the scheduler's overlap model and the DRAM
summary pricing — invariants the experiments implicitly rely on."""

from hypothesis import given, settings, strategies as st

from repro.memory import HBMModel, TransferStats
from repro.systolic import execute_schedule
from repro.systolic.scheduler import WorkItem


@st.composite
def work_items(draw):
    count = draw(st.integers(1, 20))
    items = []
    for i in range(count):
        items.append(
            WorkItem(
                label=f"item{i}",
                gemm_cycles=draw(st.floats(0, 1e6, allow_nan=False)),
                fill_cycles=draw(st.floats(0, 1e6, allow_nan=False)),
                drain_cycles=draw(st.floats(0, 1e5, allow_nan=False)),
                macs=draw(st.integers(0, 10**9)),
            )
        )
    return items


@settings(max_examples=200, deadline=None)
@given(items=work_items())
def test_schedule_bounds(items):
    """Total time is at least each resource's busy time and at most their
    sum (no negative overlap, no time creation)."""
    result = execute_schedule(items)
    total_gemm = sum(i.gemm_cycles for i in items)
    total_fill = sum(i.fill_cycles for i in items)
    total_drain = sum(i.drain_cycles for i in items)
    assert result.total_cycles >= total_gemm - 1e-6
    assert result.total_cycles >= total_fill - 1e-6
    assert result.total_cycles <= total_gemm + total_fill + total_drain + 1e-6
    assert result.compute_cycles == sum(i.gemm_cycles for i in items)
    assert result.macs == sum(i.macs for i in items)
    assert result.exposed_dma_cycles >= -1e-9


@settings(max_examples=200, deadline=None)
@given(items=work_items())
def test_schedule_monotone_in_fills(items):
    """Growing any fill can never shrink the total."""
    base = execute_schedule(items).total_cycles
    import dataclasses

    bumped = [dataclasses.replace(items[0], fill_cycles=items[0].fill_cycles + 1000.0)]
    bumped.extend(items[1:])
    assert execute_schedule(bumped).total_cycles >= base - 1e-6


@st.composite
def transfers(draw):
    runs = draw(st.integers(1, 10_000))
    bytes_ = draw(st.integers(runs, 10**8))
    span = draw(st.integers(bytes_, 2 * 10**8)) if draw(st.booleans()) else 0
    return TransferStats(bytes=bytes_, runs=runs, span_bytes=span)


@settings(max_examples=200, deadline=None)
@given(stats=transfers())
def test_transfer_cycles_positive_and_bounded_below(stats):
    """Cost is positive and never below the pure-payload time."""
    hbm = HBMModel()
    cycles = hbm.transfer_cycles(stats)
    assert cycles > 0
    assert cycles >= stats.bytes / hbm.config.bytes_per_cycle


@settings(max_examples=200, deadline=None)
@given(stats=transfers())
def test_more_fragmentation_never_cheaper(stats):
    """Doubling the run count (same payload) cannot reduce the cost."""
    hbm = HBMModel()
    base = hbm.transfer_cycles(stats)
    if stats.runs * 2 <= stats.bytes:
        worse = TransferStats(
            bytes=stats.bytes, runs=stats.runs * 2, span_bytes=stats.span_bytes
        )
        assert hbm.transfer_cycles(worse) >= base - 1e-6


@settings(max_examples=200, deadline=None)
@given(stats=transfers(), scale=st.integers(2, 8))
def test_transfer_scales_subadditively(stats, scale):
    """One transfer of k x bytes costs at most k transfers of bytes (the
    per-request overhead amortises)."""
    hbm = HBMModel()
    big = TransferStats(
        bytes=stats.bytes * scale,
        runs=stats.runs * scale,
        span_bytes=stats.span_bytes * scale if stats.span_bytes else 0,
    )
    assert hbm.transfer_cycles(big) <= scale * hbm.transfer_cycles(stats) + 1e-6
