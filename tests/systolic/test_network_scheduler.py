"""Inter-layer activation residency."""

import pytest

from repro.core import ConvSpec
from repro.systolic import (
    TPU_V2,
    TPUSim,
    plan_residency,
    residency_traffic_saved_bytes,
    simulate_network_resident,
)
from repro.workloads import network, vgg16


@pytest.fixture(scope="module")
def chain():
    """A clean chain of small layers whose activations all fit on chip."""
    return [
        ConvSpec(n=8, c_in=128, h_in=14, w_in=14, c_out=128,
                 h_filter=3, w_filter=3, padding=1, name=f"chain{i}")
        for i in range(4)
    ]


class TestPlanning:
    def test_chain_edges_resident(self, chain):
        decisions = plan_residency(chain)
        assert len(decisions) == 3
        assert all(d.resident for d in decisions)

    def test_geometry_break_blocks_residency(self, chain):
        broken = list(chain)
        broken[2] = ConvSpec(n=8, c_in=64, h_in=14, w_in=14, c_out=128,
                             h_filter=3, w_filter=3, padding=1)
        decisions = plan_residency(broken)
        assert not decisions[1].resident
        assert decisions[1].reason == "not a chain edge"

    def test_budget_blocks_large_activations(self):
        big = [
            ConvSpec(n=64, c_in=64, h_in=224, w_in=224, c_out=64,
                     h_filter=3, w_filter=3, padding=1),
            ConvSpec(n=64, c_in=64, h_in=224, w_in=224, c_out=64,
                     h_filter=3, w_filter=3, padding=1),
        ]
        decisions = plan_residency(big)
        assert not decisions[0].resident
        assert decisions[0].reason == "exceeds activation budget"

    def test_vgg_early_layers_spill(self):
        decisions = plan_residency(vgg16(batch=8))
        assert not decisions[0].resident  # 224x224x64 activations are too big
        assert any(d.resident for d in decisions[-4:])  # deep layers fit

    def test_validation(self, chain):
        with pytest.raises(ValueError):
            plan_residency([])
        with pytest.raises(ValueError):
            plan_residency(chain, activation_budget_fraction=1.5)


class TestSimulation:
    def test_resident_never_slower(self, chain):
        sim = TPUSim()
        base = sum(sim.simulate_conv(layer).cycles for layer in chain)
        resident = simulate_network_resident("chain", chain).total_cycles
        assert resident <= base * 1.001

    def test_resident_layers_cut_dma(self, chain):
        sim = TPUSim()
        base_dma = sum(sim.simulate_conv(layer).dma_cycles for layer in chain)
        resident_dma = sum(
            layer.dma_cycles
            for layer in simulate_network_resident("chain", chain).layers
        )
        assert resident_dma < 0.7 * base_dma

    def test_macs_preserved(self, chain):
        result = simulate_network_resident("chain", chain)
        assert result.total_macs == sum(layer.macs for layer in chain)


class TestTrafficAccounting:
    def test_saved_bytes_formula(self, chain):
        decisions = plan_residency(chain)
        expected = sum(2 * d.activation_bytes for d in decisions if d.resident)
        assert residency_traffic_saved_bytes(chain) == expected

    def test_resnet_saves_substantially(self):
        layers = network("ResNet", 8)
        saved = residency_traffic_saved_bytes(layers)
        assert saved > 100e6  # hundreds of MB per batch
