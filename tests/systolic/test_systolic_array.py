"""Cycle-accurate weight-stationary array and closed-form cycle counts."""

import numpy as np
import pytest

from repro.systolic import CycleAccurateArray, TPU_V2, gemm_cycles, gemm_tile_cycles


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestNumerics:
    @pytest.mark.parametrize("m,k,n", [(1, 1, 1), (5, 4, 4), (7, 3, 2), (9, 8, 6), (4, 2, 7)])
    def test_matches_matmul(self, rng, m, k, n):
        a = rng.integers(-3, 4, (m, k)).astype(float)
        b = rng.integers(-3, 4, (k, n)).astype(float)
        array = CycleAccurateArray(max(k, 2), max(n, 2))
        array.load_weights(b)
        out, _ = array.run(a)
        assert np.array_equal(out, a @ b)

    def test_partial_occupancy(self, rng):
        """A tile smaller than the array computes correctly in the corner."""
        a = rng.integers(-2, 3, (6, 3)).astype(float)
        b = rng.integers(-2, 3, (3, 2)).astype(float)
        array = CycleAccurateArray(8, 8)
        array.load_weights(b)
        out, _ = array.run(a)
        assert np.array_equal(out, a @ b)

    def test_sequential_tiles_reuse_array(self, rng):
        array = CycleAccurateArray(4, 4)
        for _ in range(3):
            a = rng.integers(-2, 3, (5, 4)).astype(float)
            b = rng.integers(-2, 3, (4, 4)).astype(float)
            array.load_weights(b)
            out, _ = array.run(a)
            assert np.array_equal(out, a @ b)


class TestCycleCounts:
    @pytest.mark.parametrize("m,k,n", [(5, 4, 4), (7, 3, 2), (1, 1, 1), (9, 8, 6)])
    def test_exact_pipeline_cycles(self, rng, m, k, n):
        """run() reports exactly m + k + n - 1 cycles (skew fill + drain)."""
        array = CycleAccurateArray(8, 8)
        load = array.load_weights(rng.standard_normal((k, n)))
        _, cycles = array.run(rng.standard_normal((m, k)))
        assert load == k
        assert cycles == m + k + n - 1

    def test_closed_form_matches_cycle_accurate(self, rng):
        """The licence for the event-driven layer model: the closed form
        equals the register-level simulation for single tiles."""
        for m, k, n in [(5, 4, 4), (12, 7, 3), (3, 8, 8)]:
            array = CycleAccurateArray(8, 8)
            load = array.load_weights(rng.standard_normal((k, n)))
            _, stream = array.run(rng.standard_normal((m, k)))
            tile = gemm_tile_cycles(m, k, n, TPU_V2)
            assert tile.weight_load == load
            assert tile.stream + tile.pipeline == stream


class TestValidation:
    def test_run_before_load(self):
        with pytest.raises(RuntimeError):
            CycleAccurateArray(4, 4).run(np.ones((2, 4)))

    def test_oversized_tile(self):
        with pytest.raises(ValueError):
            CycleAccurateArray(2, 2).load_weights(np.ones((3, 2)))

    def test_mismatched_k(self):
        array = CycleAccurateArray(4, 4)
        array.load_weights(np.ones((3, 2)))
        with pytest.raises(ValueError):
            array.run(np.ones((2, 4)))

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            CycleAccurateArray(0, 4)
        with pytest.raises(ValueError):
            gemm_tile_cycles(0, 1, 1, TPU_V2)
        with pytest.raises(ValueError):
            gemm_tile_cycles(1, 300, 1, TPU_V2)  # exceeds array


class TestFullGemmCycles:
    def test_tiles_over_k_and_n(self):
        cycles_small = gemm_cycles(100, 128, 128, TPU_V2)
        cycles_2k = gemm_cycles(100, 256, 128, TPU_V2)
        cycles_2n = gemm_cycles(100, 128, 256, TPU_V2)
        assert cycles_2k == pytest.approx(2 * cycles_small, rel=0.1)
        assert cycles_2n == pytest.approx(2 * cycles_small, rel=0.1)

    def test_positive_dims(self):
        with pytest.raises(ValueError):
            gemm_cycles(0, 1, 1, TPU_V2)
