"""Explicit im2col on the TPU (the SCALE-Sim assumption)."""

import pytest

from repro.core import ConvSpec
from repro.systolic import TPU_V2, TPUSim, simulate_conv_explicit_tpu


@pytest.fixture
def layer():
    return ConvSpec(n=8, c_in=128, h_in=28, w_in=28, c_out=128,
                    h_filter=3, w_filter=3, stride=1, padding=1)


def test_explicit_slower_than_implicit(layer):
    """The naive method always loses: transform + lowered-matrix streaming."""
    implicit = TPUSim().simulate_conv(layer).cycles
    explicit = simulate_conv_explicit_tpu(layer)
    assert explicit.cycles > implicit


def test_transform_is_substantial(layer):
    explicit = simulate_conv_explicit_tpu(layer)
    assert explicit.transform_cycles > 0.05 * explicit.gemm.cycles


def test_workspace_is_lowered_matrix(layer):
    explicit = simulate_conv_explicit_tpu(layer)
    assert explicit.workspace_bytes == layer.lowered_bytes(TPU_V2.compute_elem_bytes)
    # ~9x the IFMap for a padded 3x3
    assert explicit.workspace_bytes > 6 * layer.ifmap_bytes(TPU_V2.compute_elem_bytes)


def test_tflops_accounting(layer):
    explicit = simulate_conv_explicit_tpu(layer)
    tflops = explicit.tflops(TPU_V2.clock_ghz, layer.macs)
    assert 0 < tflops < TPU_V2.peak_tflops


def test_gap_widens_with_filter_size():
    """Bigger filters blow up the lowered matrix; the explicit path pays."""
    ratios = []
    for f in (3, 5):
        layer = ConvSpec(n=8, c_in=64, h_in=28, w_in=28, c_out=64,
                         h_filter=f, w_filter=f, padding=f // 2)
        implicit = TPUSim().simulate_conv(layer).cycles
        explicit = simulate_conv_explicit_tpu(layer).cycles
        ratios.append(explicit / implicit)
    assert ratios[1] > ratios[0]
