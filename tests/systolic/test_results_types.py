"""LayerResult / NetworkResult semantics and edge cases."""

import dataclasses

import pytest

from repro.core import ConvSpec
from repro.systolic import LayerResult, NetworkResult, TPUSim


@pytest.fixture(scope="module")
def result():
    layer = ConvSpec(n=4, c_in=64, h_in=14, w_in=14, c_out=64,
                     h_filter=3, w_filter=3, padding=1)
    return TPUSim().simulate_conv(layer)


def test_no_seconds_attribute(result):
    """cycles are the unit of record; seconds exist only via latency_s()."""
    assert not hasattr(result, "seconds")
    with pytest.raises(AttributeError):
        _ = result.seconds


def test_latency_conversion(result):
    assert result.latency_s(0.7) == pytest.approx(result.cycles / 0.7e9)


def test_result_is_frozen(result):
    with pytest.raises(dataclasses.FrozenInstanceError):
        result.cycles = 0


def test_replace_supported(result):
    clone = dataclasses.replace(result, name="renamed")
    assert clone.name == "renamed"
    assert clone.cycles == result.cycles


def test_breakdown_consistency(result):
    """Compute + exposed DMA == total (by definition of exposure)."""
    assert result.compute_cycles + result.exposed_dma_cycles == pytest.approx(
        result.cycles
    )
    assert result.dma_cycles > 0


def test_network_empty_layers():
    net = NetworkResult(name="empty", layers=[])
    assert net.total_cycles == 0
    assert net.tflops(0.7) == 0.0


def test_network_aggregates(result):
    net = NetworkResult(name="two", layers=[result, result])
    assert net.total_cycles == pytest.approx(2 * result.cycles)
    assert net.total_macs == 2 * result.macs
    assert net.tflops(0.7) == pytest.approx(result.tflops, rel=0.01)


def test_aggregate_accessors_are_properties(result):
    """Regression: derived quantities on result/plan types must be attribute
    access, never bound methods — ``net.total_cycles`` evaluating to a method
    object is always truthy and silently poisons comparisons."""
    from repro.core.channel_first import ChannelFirstPlan

    net = NetworkResult(name="one", layers=[result])
    for obj, names in (
        (net, ("total_cycles", "total_macs")),
        (result, ("cycles", "macs", "compute_cycles", "exposed_dma_cycles")),
        (
            ChannelFirstPlan.build(
                ConvSpec(n=1, c_in=4, h_in=6, w_in=6, c_out=8,
                         h_filter=3, w_filter=3, padding=1)
            ),
            ("gemm_m", "gemm_k", "gemm_n",
             "tile_input_elements", "tile_macs", "total_macs"),
        ),
    ):
        for name in names:
            value = getattr(obj, name)
            assert not callable(value), f"{type(obj).__name__}.{name} is a method"
            assert isinstance(value, (int, float))
