"""Position-sparse scheduling on the TPU."""

import pytest

from repro.core import ConvSpec, PositionMask, prune_positions, random_conv_operands
from repro.systolic import TPUSim, simulate_conv_sparse, sparse_channel_first_schedule
from repro.systolic.config import TPU_V2


@pytest.fixture(scope="module")
def layer():
    return ConvSpec(n=8, c_in=128, h_in=28, w_in=28, c_out=128,
                    h_filter=3, w_filter=3, stride=1, padding=1)


@pytest.fixture(scope="module")
def dense_cycles(layer):
    return TPUSim().simulate_conv(layer).cycles


def _mask(layer, keep):
    _, weights = random_conv_operands(layer, seed=keep)
    _, mask = prune_positions(weights, layer, keep=keep)
    return mask


def test_full_mask_matches_dense(layer, dense_cycles):
    sparse = simulate_conv_sparse(layer, _mask(layer, 9))
    assert sparse.cycles == pytest.approx(dense_cycles, rel=0.01)


@pytest.mark.parametrize("keep", [1, 3, 5])
def test_speedup_tracks_density(layer, dense_cycles, keep):
    mask = _mask(layer, keep)
    sparse = simulate_conv_sparse(layer, mask)
    speedup = dense_cycles / sparse.cycles
    ideal = 1.0 / mask.density
    assert 0.75 * ideal <= speedup <= ideal * 1.02


def test_schedule_only_visits_kept_positions(layer):
    mask = _mask(layer, 3)
    items = sparse_channel_first_schedule(layer, mask, TPU_V2)
    dense_items = sparse_channel_first_schedule(layer, _mask(layer, 9), TPU_V2)
    assert len(items) < len(dense_items)
    scheduled = sum(i.macs for i in items)
    assert scheduled == pytest.approx(layer.macs * mask.density, rel=0.01)


def test_sparse_result_accounting(layer):
    mask = _mask(layer, 5)
    result = simulate_conv_sparse(layer, mask)
    assert result.macs == int(layer.macs * mask.density)
    assert 0 < result.utilization <= 1
    assert "sparse" in result.name


def test_mask_spec_mismatch_rejected(layer):
    other = ConvSpec(n=8, c_in=64, h_in=14, w_in=14, c_out=64,
                     h_filter=3, w_filter=3, padding=1)
    mask = _mask(other, 3)
    with pytest.raises(ValueError):
        sparse_channel_first_schedule(layer, mask, TPU_V2)
