"""Vector-unit timing and the skew-layout overhead argument."""

import pytest

from repro.core import ConvSpec
from repro.systolic import (
    TPU_V2,
    batchnorm_cycles,
    pooling_cycles,
    skew_restore_cycles,
    skewed_layout_overhead,
)
from repro.workloads import vgg16


@pytest.fixture
def layer():
    return ConvSpec(n=8, c_in=64, h_in=56, w_in=56, c_out=64,
                    h_filter=3, w_filter=3, padding=1)


class TestVectorOps:
    def test_pooling_cycles_formula(self, layer):
        cycles = pooling_cycles(layer, window=2, stride=2)
        outputs = layer.n * layer.c_out * 28 * 28
        assert cycles == pytest.approx(outputs * 4 / TPU_V2.vector_alus)

    def test_batchnorm_cycles_formula(self, layer):
        assert batchnorm_cycles(layer) == pytest.approx(
            layer.ofmap_elements() * 2 / TPU_V2.vector_alus
        )

    def test_bigger_windows_cost_more(self, layer):
        assert pooling_cycles(layer, window=3, stride=2) > pooling_cycles(layer, 2, 2)

    def test_validation(self, layer):
        with pytest.raises(ValueError):
            pooling_cycles(layer, window=0)


class TestSkewLayout:
    def test_skew_restore_scales_with_ofmap(self, layer):
        small = skew_restore_cycles(layer)
        big = skew_restore_cycles(layer.with_batch(16))
        assert big == pytest.approx(2 * small)

    def test_network_overhead_meaningful_but_minor(self):
        """The rejected design's overhead is a real (>5%) but not dominant
        (<40%) fraction of VGG16's conv time — big enough to justify skewed
        addressing, small enough that the argument needed making."""
        from repro.systolic import TPUSim

        layers = vgg16(batch=8)
        sim = TPUSim()
        conv = sum(sim.simulate_conv(l).cycles for l in layers)
        skew = skewed_layout_overhead(layers)
        assert 0.05 < skew / conv < 0.4

    def test_single_pass_halves(self):
        layers = vgg16(batch=8)[:3]
        both = skewed_layout_overhead(layers, non_gemm_after_every_conv=True)
        one = skewed_layout_overhead(layers, non_gemm_after_every_conv=False)
        assert both == pytest.approx(2 * one)

    def test_empty_layers_rejected(self):
        with pytest.raises(ValueError):
            skewed_layout_overhead([])
