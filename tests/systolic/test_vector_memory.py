"""Vector memories: port accounting, serializer, contention freedom."""

import numpy as np
import pytest

from repro.systolic import (
    FunctionalVectorMemory,
    PortAccounting,
    TPU_V2,
    VectorMemoryModel,
)


class TestPortAccounting:
    def test_word8_idle_ratio(self):
        """Tbl. II word of 8 -> port busy 2/8 of cycles, idle 75% (Fig 16b)."""
        model = VectorMemoryModel(TPU_V2)
        assert model.idle_ratio() == pytest.approx(0.75)

    @pytest.mark.parametrize("word,expected_busy", [(2, 1.0), (4, 0.5), (8, 0.25), (16, 0.125)])
    def test_busy_fraction_scales(self, word, expected_busy):
        model = VectorMemoryModel(TPU_V2.with_word_elems(word))
        accounting = model.steady_state_accounting(800.0)
        assert accounting.busy_fraction == pytest.approx(expected_busy)

    def test_contention_free_needs_word_ge_2(self):
        assert VectorMemoryModel(TPU_V2).contention_free()
        assert not VectorMemoryModel(TPU_V2.with_word_elems(1)).contention_free()

    def test_reads_and_writes_interleave(self):
        """Sec. IV-A: one read + one write per word_elems cycles each."""
        model = VectorMemoryModel(TPU_V2)
        accounting = model.steady_state_accounting(80.0)
        assert accounting.read_accesses == pytest.approx(10.0)
        assert accounting.write_accesses == pytest.approx(10.0)

    def test_zero_cycles(self):
        accounting = PortAccounting(cycles=0, read_accesses=0, write_accesses=0)
        assert accounting.busy_fraction == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            VectorMemoryModel(TPU_V2).steady_state_accounting(-1)

    def test_capacity_per_memory(self):
        assert VectorMemoryModel(TPU_V2).capacity_per_memory() == 32 * 1024 * 1024 // 128


class TestFunctionalMemory:
    def test_serializer_drains_one_per_cycle(self):
        mem = FunctionalVectorMemory(word_elems=4, num_words=8)
        mem.write_word(0, np.array([1.0, 2.0, 3.0, 4.0]))
        mem.load_into_serializer(0)
        assert [mem.pop_element() for _ in range(4)] == [1.0, 2.0, 3.0, 4.0]

    def test_port_access_counting(self):
        """The key hardware property: one port touch per word, not per
        element."""
        mem = FunctionalVectorMemory(word_elems=8, num_words=4)
        mem.write_word(0, np.arange(8.0))
        mem.load_into_serializer(0)
        for _ in range(8):
            mem.pop_element()
        assert mem.port_accesses == 2  # one write + one read

    def test_empty_serializer_raises(self):
        mem = FunctionalVectorMemory(word_elems=2, num_words=2)
        with pytest.raises(RuntimeError):
            mem.pop_element()

    def test_word_bounds(self):
        mem = FunctionalVectorMemory(word_elems=2, num_words=2)
        with pytest.raises(IndexError):
            mem.read_word(2)
        with pytest.raises(IndexError):
            mem.write_word(-1, np.zeros(2))

    def test_word_shape_checked(self):
        mem = FunctionalVectorMemory(word_elems=2, num_words=2)
        with pytest.raises(ValueError):
            mem.write_word(0, np.zeros(3))

    def test_occupancy_tracks(self):
        mem = FunctionalVectorMemory(word_elems=3, num_words=1)
        mem.write_word(0, np.ones(3))
        mem.load_into_serializer(0)
        assert mem.serializer_occupancy == 3
        mem.pop_element()
        assert mem.serializer_occupancy == 2
