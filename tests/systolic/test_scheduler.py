"""Work-item schedules and the two-resource overlap model."""

import pytest

from repro.core import ConvSpec, GemmShape
from repro.systolic import (
    FillEngine,
    TPU_V2,
    WorkItem,
    channel_first_schedule,
    execute_schedule,
    gemm_schedule,
    ifmap_rows_per_block,
)
from repro.systolic.scheduler import MIN_PIPELINE_BLOCKS, tile_occupancy_cycles


@pytest.fixture
def conv():
    return ConvSpec(n=8, c_in=64, h_in=28, w_in=28, c_out=128,
                    h_filter=3, w_filter=3, stride=1, padding=1)


class TestExecute:
    def test_perfect_overlap(self):
        """Fills smaller than compute hide completely behind double
        buffering (modulo the first fill)."""
        items = [WorkItem("t", gemm_cycles=100, fill_cycles=10) for _ in range(10)]
        result = execute_schedule(items)
        assert result.total_cycles == 10 + 10 * 100

    def test_memory_bound(self):
        items = [WorkItem("t", gemm_cycles=10, fill_cycles=100) for _ in range(10)]
        result = execute_schedule(items)
        assert result.total_cycles == 10 * 100 + 10

    def test_paper_max_rule_per_tile(self):
        """The Fig 3/8b picture: steady-state per-tile cost is
        max(gemm, fill)."""
        items = [WorkItem("t", gemm_cycles=40, fill_cycles=70) for _ in range(100)]
        result = execute_schedule(items)
        assert result.total_cycles == pytest.approx(100 * 70 + 40, rel=0.01)

    def test_drain_uses_write_channel(self):
        """An OFMap drain must not delay subsequent fills (separate HBM
        direction)."""
        items = [
            WorkItem("a", gemm_cycles=100, fill_cycles=10, drain_cycles=500),
            WorkItem("b", gemm_cycles=100, fill_cycles=10),
        ]
        result = execute_schedule(items)
        # compute path: 10 + 100 + 100 = 210; write path: 110 + 500 = 610
        assert result.total_cycles == 610
        # and the second compute was NOT pushed past the drain:
        assert result.compute_cycles == 200

    def test_macs_accumulate(self):
        items = [WorkItem("t", gemm_cycles=1, fill_cycles=0, macs=7) for _ in range(3)]
        assert execute_schedule(items).macs == 21

    def test_exposed_dma_nonnegative(self, conv):
        result = execute_schedule(channel_first_schedule(conv, TPU_V2))
        assert result.exposed_dma_cycles >= 0

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            WorkItem("t", gemm_cycles=-1, fill_cycles=0)


class TestTileOccupancy:
    def test_weight_fifo_overlap(self):
        """With the weight FIFO, occupancy is max(stream, load) + setup."""
        occ = tile_occupancy_cycles(1000, 128, 128, TPU_V2, first=False)
        assert occ == pytest.approx(1000 + TPU_V2.tile_setup_cycles)

    def test_first_tile_pays_pipeline(self):
        first = tile_occupancy_cycles(1000, 128, 128, TPU_V2, first=True)
        later = tile_occupancy_cycles(1000, 128, 128, TPU_V2, first=False)
        assert first - later == pytest.approx(128 + 128 - 1)

    def test_serial_mode(self):
        import dataclasses
        serial_cfg = dataclasses.replace(TPU_V2, weight_double_buffer=False)
        occ = tile_occupancy_cycles(1000, 128, 64, serial_cfg, first=False)
        assert occ == pytest.approx(128 + 1000 + (128 + 64 - 1) + serial_cfg.tile_setup_cycles)


class TestBlocking:
    def test_capacity_bound(self):
        """Huge channel counts shrink the block to what fits on chip."""
        spec = ConvSpec(n=64, c_in=4096, h_in=32, w_in=32, c_out=64,
                        h_filter=3, w_filter=3, padding=1)
        rows = ifmap_rows_per_block(spec, TPU_V2, group_size=1)
        per_row = spec.c_in * TPU_V2.compute_elem_bytes
        assert rows * per_row <= TPU_V2.unified_sram_bytes // 4

    def test_pipeline_bound(self, conv):
        """Even when everything fits, the layer splits into multiple blocks
        so DMA pipelines with compute."""
        rows = ifmap_rows_per_block(conv, TPU_V2, group_size=1)
        blocks = -(-conv.lowered_rows() // rows)
        assert blocks >= min(MIN_PIPELINE_BLOCKS, conv.lowered_rows() // 1024) or blocks >= 1

    def test_group_size_scales_footprint(self, conv):
        r1 = ifmap_rows_per_block(conv.with_batch(64), TPU_V2.with_array(8), 1)
        assert r1 >= 1


class TestConvSchedule:
    def test_macs_cover_layer_with_duplication(self, conv):
        """Scheduled MACs >= algorithmic MACs (partial K tiles may pad)."""
        items = channel_first_schedule(conv, TPU_V2)
        scheduled = sum(item.macs for item in items)
        assert scheduled >= conv.macs * 0.99

    def test_group_size_reduces_items(self):
        spec = ConvSpec(n=8, c_in=8, h_in=64, w_in=64, c_out=128,
                        h_filter=3, w_filter=3, padding=1)
        n1 = len(channel_first_schedule(spec, TPU_V2, group_size=1))
        n3 = len(channel_first_schedule(spec, TPU_V2, group_size=3))
        assert n3 == pytest.approx(n1 / 3, rel=0.1)

    def test_every_block_fills_input_once_per_group(self, conv):
        items = channel_first_schedule(conv, TPU_V2, group_size=1)
        weight_only = FillEngine(TPU_V2).weight_fill_cycles(64, 128)
        input_fills = [i for i in items if i.fill_cycles > weight_only + 1e-9]
        blocks = -(-conv.lowered_rows() // ifmap_rows_per_block(conv, TPU_V2, 1))
        assert len(input_fills) == blocks * conv.positions

    def test_drains_on_last_group_only(self, conv):
        items = channel_first_schedule(conv, TPU_V2, group_size=1)
        drains = [i for i in items if i.drain_cycles > 0]
        blocks = -(-conv.lowered_rows() // ifmap_rows_per_block(conv, TPU_V2, 1))
        assert len(drains) == blocks  # one OFMap drain per block (single n-chunk)


class TestGemmSchedule:
    def test_tile_grid(self):
        items = gemm_schedule(GemmShape(1024, 256, 256), TPU_V2, debug_labels=True)
        # K and N each split into 2 chunks
        labels = {i.label.split(":", 1)[1] for i in items}
        assert labels == {"k0:n0", "k0:n128", "k128:n0", "k128:n128"}

    def test_macs_match(self):
        shape = GemmShape(m=500, n=300, k=200)
        items = gemm_schedule(shape, TPU_V2)
        assert sum(i.macs for i in items) == shape.macs

    def test_drain_on_last_k_chunk(self):
        items = gemm_schedule(GemmShape(m=1000, n=128, k=256), TPU_V2, debug_labels=True)
        for item in items:
            if "k128" in item.label:
                assert item.drain_cycles > 0
            else:
                assert item.drain_cycles == 0
