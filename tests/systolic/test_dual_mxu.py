"""The second-systolic-array (TPU-v3) model."""

import dataclasses

import pytest

from repro.core import ConvSpec
from repro.systolic import TPU_V2, TPUSim, port_budget_allows, simulate_conv_dual_mxu


@pytest.fixture(scope="module")
def layer():
    return ConvSpec(n=8, c_in=256, h_in=14, w_in=14, c_out=256,
                    h_filter=3, w_filter=3, padding=1)


class TestPortBudget:
    def test_word8_feeds_up_to_4(self):
        for arrays, feasible in ((1, True), (2, True), (4, True), (5, False)):
            assert port_budget_allows(arrays, TPU_V2) == feasible

    def test_word2_feeds_exactly_one(self):
        config = TPU_V2.with_word_elems(2)
        assert port_budget_allows(1, config)
        assert not port_budget_allows(2, config)

    def test_invalid(self):
        with pytest.raises(ValueError):
            port_budget_allows(0)


class TestDualMXU:
    def test_near_2x_on_compute_bound(self, layer):
        one = TPUSim().simulate_conv(layer).cycles
        two = simulate_conv_dual_mxu(layer, arrays=2).cycles
        assert 1.7 < one / two <= 2.0

    def test_single_array_matches_simulator(self, layer):
        base = TPUSim().simulate_conv(layer).cycles
        one = simulate_conv_dual_mxu(layer, arrays=1).cycles
        assert one == pytest.approx(base, rel=0.01)

    def test_starved_bandwidth_kills_scaling(self, layer):
        starved = dataclasses.replace(
            TPU_V2, hbm=dataclasses.replace(TPU_V2.hbm, peak_bandwidth_gbps=100.0)
        )
        full = simulate_conv_dual_mxu(layer, arrays=2).cycles
        slow = simulate_conv_dual_mxu(layer, arrays=2, config=starved).cycles
        assert slow > 1.5 * full

    def test_infeasible_config_rejected(self, layer):
        with pytest.raises(ValueError, match="cannot feed"):
            simulate_conv_dual_mxu(layer, arrays=2, config=TPU_V2.with_word_elems(2))

    def test_utilization_counts_all_arrays(self, layer):
        result = simulate_conv_dual_mxu(layer, arrays=2)
        assert 0 < result.utilization <= 1
        assert result.macs == layer.macs
