"""Shared fixtures: small convolution problems exercised across suites."""

import numpy as np
import pytest

from repro.core import ConvSpec, random_conv_operands


@pytest.fixture
def small_spec():
    """A 3x3 conv with padding — the workhorse shape."""
    return ConvSpec(
        n=2, c_in=4, h_in=6, w_in=6, c_out=5, h_filter=3, w_filter=3,
        stride=1, padding=1,
    )


@pytest.fixture
def strided_spec():
    """Stride-2 variant with asymmetric channel counts."""
    return ConvSpec(
        n=2, c_in=3, h_in=9, w_in=9, c_out=4, h_filter=3, w_filter=3,
        stride=2, padding=1,
    )


@pytest.fixture
def dilated_spec():
    return ConvSpec(
        n=1, c_in=2, h_in=11, w_in=11, c_out=3, h_filter=3, w_filter=3,
        stride=1, padding=2, dilation=2,
    )


@pytest.fixture
def pointwise_spec():
    return ConvSpec(
        n=2, c_in=6, h_in=5, w_in=5, c_out=7, h_filter=1, w_filter=1,
        stride=1, padding=0,
    )


ALL_SPEC_NAMES = ["small_spec", "strided_spec", "dilated_spec", "pointwise_spec"]


@pytest.fixture(params=ALL_SPEC_NAMES)
def any_spec(request):
    """Parametrised over all the representative conv shapes."""
    return request.getfixturevalue(request.param)


@pytest.fixture
def operands(any_spec):
    ifmap, weights = random_conv_operands(any_spec, seed=7)
    return any_spec, ifmap, weights
