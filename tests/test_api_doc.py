"""The generated API reference must stay in sync with the public surface."""

import pathlib
import sys


def test_api_doc_in_sync():
    root = pathlib.Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(root / "tools"))
    try:
        import gen_api_doc
    finally:
        sys.path.pop(0)
    current = (root / "docs" / "API.md").read_text()
    assert current == gen_api_doc.generate(), (
        "docs/API.md is stale — regenerate with `python tools/gen_api_doc.py`"
    )


def test_api_doc_covers_key_names():
    text = (pathlib.Path(__file__).resolve().parent.parent / "docs" / "API.md").read_text()
    for name in ("ConvSpec", "TPUSim", "channel_first_conv_time", "TPUv2Oracle",
                 "conv2d_channel_first", "PositionMask", "FunctionalPipeline"):
        assert name in text, f"{name} missing from the API reference"
