"""Flight recorder ring/dumps, status beacon, and the ``repro top`` console."""

import json
import os
import signal

import pytest

from repro.obs import log as obs_log
from repro.obs.flight import beacon as beacon_mod
from repro.obs.flight import recorder as recorder_mod
from repro.obs.flight.beacon import Beacon
from repro.obs.flight.recorder import FlightRecorder
from repro.obs.flight.top import read_status, render_status, top_main
from repro.trace import tracer as trace


@pytest.fixture(autouse=True)
def _clean_globals():
    yield
    recorder_mod.reset_recorder()
    beacon_mod.reset_beacon()
    obs_log.shutdown()
    trace.set_tracer(trace.Tracer())


# ------------------------------------------------------------ flight recorder


def test_ring_is_bounded_and_counts_drops(tmp_path):
    rec = FlightRecorder(run_dir=str(tmp_path), capacity=4)
    for index in range(10):
        rec.record_log({"event": f"e{index}"})
    doc = rec.payload("test")
    assert [r["event"] for r in doc["logs"]] == ["e6", "e7", "e8", "e9"]
    assert doc["dropped"] == {"spans": 0, "logs": 6}


def test_dump_writes_wellformed_json_with_reason_and_extra(tmp_path):
    rec = FlightRecorder(run_dir=str(tmp_path), capacity=8)
    rec.record_log({"event": "boom", "level": "error"})
    path = rec.dump("audit-fault", {"experiment": "fig13"})
    assert path is not None and os.path.exists(path)
    assert "flightrec-audit-fault-" in os.path.basename(path)
    doc = json.loads(open(path).read())
    assert doc["kind"] == "flight-recorder" and doc["reason"] == "audit-fault"
    assert doc["extra"] == {"experiment": "fig13"}
    assert doc["logs"][-1]["event"] == "boom"
    # A second dump gets its own sequence number, never overwrites.
    assert rec.dump("sigusr1") != path
    assert len(rec.dumps) == 2


def test_dump_without_run_dir_is_a_noop():
    rec = FlightRecorder(run_dir=None)
    assert rec.dump("exception") is None


def test_configure_hooks_logs_and_tracer(tmp_path):
    obs_log.configure(level="debug")
    recorder_mod.configure_recorder(run_dir=str(tmp_path), install_signal=False)
    trace.enable()
    obs_log.info("hooked.event", answer=42)
    with trace.span("hooked.span", cat="test"):
        pass
    path = recorder_mod.maybe_dump("exception", {"error": "ValueError"})
    assert path is not None
    doc = json.loads(open(path).read())
    assert any(r.get("event") == "hooked.event" for r in doc["logs"])
    assert any(s.get("name") == "hooked.span" for s in doc["spans"])


def test_maybe_dump_unconfigured_is_safe():
    recorder_mod.reset_recorder()
    assert recorder_mod.maybe_dump("exception") is None


def test_sigusr1_triggers_a_dump(tmp_path):
    recorder_mod.configure_recorder(run_dir=str(tmp_path))
    rec = recorder_mod.get_recorder()
    rec.record_log({"event": "pre-signal"})
    os.kill(os.getpid(), signal.SIGUSR1)
    assert rec.dumps, "SIGUSR1 must leave a flightrec dump"
    doc = json.loads(open(rec.dumps[0]).read())
    assert doc["reason"] == "sigusr1"


def test_recorder_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


# ------------------------------------------------------------------- beacon


def test_beacon_tracks_sweep_progress_and_cache_tiers():
    b = Beacon(role="runner", run_id="r1")
    b.tasks_total = 3
    b.task_started("fig2")
    b.task_started("fig13")
    b.task_done("fig2", ok=True)
    b.task_done("fig13", ok=False)
    b.note_cache("exact")
    b.note_cache("miss")
    doc = b.snapshot()
    assert doc["kind"] == "repro-status" and doc["role"] == "runner"
    assert doc["tasks"]["done"] == 2 and doc["tasks"]["failed"] == 1
    assert doc["tasks"]["active"] == {}
    assert doc["cache"]["exact"] == 1 and doc["cache"]["miss"] == 1


def test_beacon_update_routes_unknown_fields_to_extra():
    b = Beacon()
    b.update(queue_depth=5, drain_phase="flush")
    assert b.queue_depth == 5
    assert b.snapshot()["extra"] == {"drain_phase": "flush"}


def test_eta_from_rolling_throughput(monkeypatch):
    b = Beacon()
    b.tasks_total = 10
    clock = iter([100.0, 101.0, 102.0, 103.0, 104.0])
    monkeypatch.setattr(beacon_mod.time, "time", lambda: next(clock))
    for name in ("a", "b", "c"):
        b.task_done(name)
    # 3 completions over the 100.0->102.0 samples: 1/s, 7 remaining.
    assert b.throughput() == pytest.approx(1.0)
    assert b.eta_seconds() == pytest.approx(7.0)


def test_eta_is_zero_when_done_and_none_when_cold():
    b = Beacon()
    b.tasks_total = 0
    assert b.eta_seconds() == 0.0
    b.tasks_total = 5
    assert b.eta_seconds() is None  # no samples yet: unknown, not infinite


def test_status_file_roundtrip_and_rate_limit(tmp_path):
    path = tmp_path / "status.json"
    b = Beacon(role="serve", run_id="r9", status_path=str(path))
    b.requests = 7
    assert b.write() == str(path)
    doc = read_status(status_file=str(path))
    assert doc["role"] == "serve" and doc["serve"]["requests"] == 7
    # Immediately after a write, maybe_write is rate-limited out.
    assert b.maybe_write() is None
    assert b.maybe_write(min_interval=0.0) == str(path)


def test_unconfigured_beacon_never_writes(tmp_path):
    b = Beacon()
    b.task_done("x")
    assert b.write() is None and b.maybe_write() is None


# ------------------------------------------------------------------ repro top


def _sample_doc():
    return {
        "schema": 1, "kind": "repro-status", "role": "runner", "run_id": "r1",
        "pid": 123, "ts": 1000.0, "uptime_s": 12.0,
        "tasks": {"total": 4, "done": 2, "failed": 1, "active": {"fig13": 3.2}},
        "throughput_per_s": 0.5, "eta_s": 4.0,
        "supervisor": {"queue_depth": 1, "workers": 2, "retries": 1,
                       "timeouts": 0, "respawns": 0},
        "serve": {"requests": 0, "in_flight": 0, "dedup_joins": 0, "shed": 0},
        "cache": {"exact": 3, "canonical": 0, "persistent": 1, "miss": 4},
    }


def test_render_status_shows_progress_pool_and_cache():
    frame = render_status(_sample_doc(), now=1001.0)
    assert "role=runner run=r1" in frame
    assert "2/4 (50%)" in frame and "failed=1" in frame and "eta=4s" in frame
    assert "active  1: fig13(3s)" in frame
    assert "queue=1 workers=2 retries=1" in frame
    assert "cache   exact=3 canonical=0 persistent=1 miss=4  hit-rate=50.0%" in frame
    assert "serve" not in frame  # all-zero sections are elided


def test_render_status_flags_stale_documents():
    assert "[STALE]" in render_status(_sample_doc(), now=1100.0)
    assert "[STALE]" not in render_status(_sample_doc(), now=1001.0)


def test_read_status_errors_are_runtime_errors(tmp_path):
    with pytest.raises(RuntimeError, match="cannot read"):
        read_status(status_file=str(tmp_path / "missing.json"))
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(RuntimeError, match="malformed"):
        read_status(status_file=str(bad))
    array = tmp_path / "array.json"
    array.write_text("[1, 2]")
    with pytest.raises(RuntimeError, match="not a JSON object"):
        read_status(status_file=str(array))


def test_top_once_prints_one_frame(tmp_path, capsys):
    path = tmp_path / "status.json"
    path.write_text(json.dumps(_sample_doc()))
    assert top_main(["--status-file", str(path), "--once"]) == 0
    out = capsys.readouterr().out
    assert "repro top" in out and "2/4" in out


def test_top_once_missing_source_exits_nonzero(tmp_path, capsys):
    code = top_main(["--status-file", str(tmp_path / "nope.json"), "--once"])
    assert code == 1
    assert "repro top:" in capsys.readouterr().err
