"""Prometheus text exposition: formatting, ordering, derived series."""

from repro.obs.prom import render_prometheus, write_prometheus
from repro.trace.metrics import Histogram, LayerCycleRecord, MetricsRegistry


def make_registry():
    registry = MetricsRegistry()
    registry.inc_counter("repro_experiments_total", 3)
    registry.set_gauge("repro_sim_cache_hit_rate", 0.75)
    registry.observe("repro_experiment_seconds", 0.2, buckets=(0.1, 1.0))
    registry.observe("repro_experiment_seconds", 5.0, buckets=(0.1, 1.0))
    return registry


def test_counter_and_gauge_samples_with_labels():
    text = render_prometheus(make_registry(), labels={"run_id": "run-1"})
    assert "# TYPE repro_experiments_total counter" in text
    assert '# HELP repro_experiments_total' in text
    assert 'repro_experiments_total{run_id="run-1"} 3' in text
    assert "# TYPE repro_sim_cache_hit_rate gauge" in text
    assert 'repro_sim_cache_hit_rate{run_id="run-1"} 0.75' in text


def test_integer_values_render_without_decimal_point():
    text = render_prometheus(make_registry())
    assert "repro_experiments_total 3\n" in text
    assert "repro_experiments_total 3.0" not in text


def test_histogram_buckets_are_cumulative_with_inf():
    text = render_prometheus(make_registry())
    lines = text.splitlines()
    assert "# TYPE repro_experiment_seconds histogram" in lines
    assert 'repro_experiment_seconds_bucket{le="0.1"} 0' in lines
    assert 'repro_experiment_seconds_bucket{le="1"} 1' in lines
    assert 'repro_experiment_seconds_bucket{le="+Inf"} 2' in lines
    assert "repro_experiment_seconds_sum 5.2" in lines
    assert "repro_experiment_seconds_count 2" in lines


def test_output_is_deterministically_sorted():
    first = render_prometheus(make_registry(), labels={"run_id": "x"})
    second = render_prometheus(make_registry(), labels={"run_id": "x"})
    assert first == second
    sample_names = [
        line.split("{")[0].split(" ")[0]
        for line in first.splitlines()
        if not line.startswith("#")
    ]
    assert sample_names == sorted(sample_names, key=sample_names.index)  # stable


def test_derived_layer_series_by_source():
    registry = MetricsRegistry()
    registry.merge(
        [
            LayerCycleRecord(
                source="tpu",
                name="conv1",
                cycles=100.0,
                compute_cycles=80.0,
                dma_cycles=60.0,
                exposed_dma_cycles=20.0,
                macs=1000,
                utilization=0.5,
            )
        ],
        [],
    )
    text = render_prometheus(registry)
    assert 'repro_layer_records_total{source="tpu"} 1' in text
    assert 'repro_layer_cycles_total{source="tpu"} 100' in text
    assert 'repro_layer_exposed_dma_cycles_total{source="tpu"} 20' in text


def test_write_prometheus_creates_parents(tmp_path):
    path = write_prometheus(tmp_path / "deep" / "metrics.prom", make_registry())
    assert path.exists()
    assert path.read_text().endswith("\n")


def test_empty_registry_renders_empty_document():
    assert render_prometheus(MetricsRegistry()) == "\n"
