"""Structured logging: channel routing, level gating, quiet mode."""

import json

import pytest

from repro.obs import log as obs_log


@pytest.fixture(autouse=True)
def reset_log_state():
    """Every test starts and ends on the zero-cost default state."""
    obs_log.shutdown()
    yield
    obs_log.shutdown()


def test_default_state_is_silent(capsys):
    obs_log.debug("quiet.debug", detail=1)
    obs_log.info("quiet.info", detail=2)
    captured = capsys.readouterr()
    assert captured.out == ""
    assert captured.err == ""


def test_warning_and_error_reach_stderr_by_default(capsys):
    obs_log.warning("loud.warning", code=7)
    obs_log.error("loud.error")
    err = capsys.readouterr().err
    assert "loud.warning" in err and "code=7" in err
    assert "loud.error" in err


def test_log_level_opens_info_channel(capsys):
    obs_log.configure(level="info")
    obs_log.info("now.visible")
    obs_log.debug("still.hidden")
    err = capsys.readouterr().err
    assert "now.visible" in err
    assert "still.hidden" not in err


def test_level_value_rejects_unknown_names():
    with pytest.raises(KeyError):
        obs_log.level_value("chatty")


def test_sink_records_every_level_as_jsonl(tmp_path):
    log_path = tmp_path / "run.jsonl"
    obs_log.configure(log_file=str(log_path), run_id="run-test")
    obs_log.debug("sink.debug", a=1)
    obs_log.info("sink.info", nested={"k": [1, 2]})
    obs_log.shutdown()
    records = [json.loads(line) for line in log_path.read_text().splitlines()]
    assert [r["event"] for r in records] == ["sink.debug", "sink.info"]
    for record in records:
        assert record["run_id"] == "run-test"
        assert isinstance(record["ts"], float) and "pid" in record
    assert records[0]["a"] == 1
    assert records[1]["nested"] == {"k": [1, 2]}


def test_sink_coerces_unserialisable_fields(tmp_path):
    log_path = tmp_path / "run.jsonl"
    obs_log.configure(log_file=str(log_path))
    obs_log.info("sink.coerce", path=log_path)  # pathlib.Path -> str
    obs_log.shutdown()
    record = json.loads(log_path.read_text())
    assert record["path"] == str(log_path)


def test_console_prints_verbatim_by_default(capsys):
    obs_log.console("Table II: results")
    assert capsys.readouterr().out == "Table II: results\n"


def test_quiet_drops_console_but_sink_still_records(tmp_path, capsys):
    log_path = tmp_path / "run.jsonl"
    obs_log.configure(log_file=str(log_path), quiet=True)
    obs_log.console("a very long report", kind="report")
    obs_log.shutdown()
    assert capsys.readouterr().out == ""
    record = json.loads(log_path.read_text())
    assert record["event"] == "console"
    assert record["kind"] == "report"
    assert record["chars"] == len("a very long report")


def test_capture_state_collects_events_without_filesystem():
    state = obs_log.get_state()
    state.capture = []
    obs_log.debug("captured.event", x=3)
    assert state.capture[0]["event"] == "captured.event"
    assert state.capture[0]["x"] == 3


def test_shutdown_resets_to_default():
    obs_log.configure(level="debug", quiet=True)
    obs_log.shutdown()
    state = obs_log.get_state()
    assert state.console_level == obs_log.LEVELS[obs_log.DEFAULT_LEVEL]
    assert not state.quiet and state.sink is None
