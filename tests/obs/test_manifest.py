"""Run manifests: provenance capture, RunContext lifecycle, exit codes."""

import json
import re

import pytest

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunContext,
    RunManifest,
    collect_provenance,
    config_fingerprints,
    git_revision,
    new_run_id,
    peak_rss_kb,
    write_manifest,
)


def test_new_run_id_shape():
    rid = new_run_id()
    assert re.fullmatch(r"run-\d{8}T\d{6}-\d+", rid)
    assert new_run_id(prefix="bench").startswith("bench-")


def test_config_fingerprints_are_stable_hex():
    first = config_fingerprints()
    assert set(first) == {"tpu_v2", "v100"}
    for digest in first.values():
        assert re.fullmatch(r"[0-9a-f]{16}", digest)
    assert config_fingerprints() == first  # structural, not per-process


def test_collect_provenance_keys():
    prov = collect_provenance()
    assert {"git", "python", "numpy", "platform", "argv", "config_fingerprints"} <= set(prov)
    assert isinstance(prov["argv"], list)


def test_git_revision_in_repo():
    rev = git_revision()
    assert rev["sha"] == "unknown" or re.fullmatch(r"[0-9a-f]{40}", rev["sha"])


def test_peak_rss_is_positive():
    rss = peak_rss_kb()
    assert rss is None or rss > 0


def test_manifest_round_trip():
    manifest = RunManifest(
        run_id="run-x", tool="t", started_at=1.0, seed=42, outputs=["a.json"]
    )
    payload = manifest.to_dict()
    assert payload["schema"] == MANIFEST_SCHEMA
    restored = RunManifest.from_dict(payload)  # ignores the schema key
    assert restored == manifest


def test_write_manifest_sorted_json(tmp_path):
    manifest = RunManifest(run_id="run-x", tool="t", started_at=1.0)
    path = write_manifest(manifest, tmp_path / "run-x")
    assert path.name == "manifest.json"
    text = path.read_text()
    assert json.loads(text)["run_id"] == "run-x"
    keys = list(json.loads(text))
    assert keys == sorted(keys)


def test_run_context_writes_manifest(tmp_path):
    with RunContext(
        tool="test", results_dir=str(tmp_path), args={"quick": True}, seed=7
    ) as run:
        run.add_output("out.json")
    payload = json.loads(run.manifest_path.read_text())
    assert payload["tool"] == "test"
    assert payload["args"] == {"quick": True}
    assert payload["seed"] == 7
    assert payload["outputs"] == ["out.json"]
    assert payload["exit_code"] == 0
    assert payload["wall_seconds"] >= 0
    assert payload["cpu_seconds"] >= 0
    assert run.manifest_path.parent == tmp_path / run.run_id


def test_run_context_measure_only():
    with RunContext(tool="test", results_dir=None) as run:
        pass
    assert run.run_dir is None and run.manifest_path is None
    assert run.manifest.wall_seconds is not None


def test_run_context_exception_marks_failure(tmp_path):
    with pytest.raises(RuntimeError):
        with RunContext(tool="test", results_dir=str(tmp_path)) as run:
            raise RuntimeError("boom")
    assert json.loads(run.manifest_path.read_text())["exit_code"] == 1


def test_run_context_caller_exit_code_wins(tmp_path):
    with RunContext(tool="test", results_dir=str(tmp_path)) as run:
        run.manifest.exit_code = 3
    assert json.loads(run.manifest_path.read_text())["exit_code"] == 3
