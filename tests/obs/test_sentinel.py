"""Regression sentinel: flattening, baselines, drift gates, CLI wrapper."""

import json
import pathlib
import subprocess
import sys

import pytest

from repro.obs.sentinel import (
    append_history,
    check_perf,
    flatten_metrics,
    history_entry,
    load_history,
    metric_direction,
    rolling_baseline,
    run_sentinel,
)

REPO = pathlib.Path(__file__).resolve().parents[2]


def report(wall=1.0, warm=20000.0, hit_rate=0.3):
    return {
        "harness_wall_seconds": wall,
        "simulate_conv_layers_per_second": {"resnet50_batch8_warm": warm},
        "cache": {"hits": 100, "hit_rate": hit_rate},
    }


# ------------------------------------------------------------ flattening


def test_flatten_metrics_dots_nested_numbers():
    flat = flatten_metrics({"a": 1, "b": {"c": 2.5, "d": {"e": 3}}, "s": "x"})
    assert flat == {"a": 1.0, "b.c": 2.5, "b.d.e": 3.0}


def test_flatten_metrics_skips_bools():
    assert flatten_metrics({"flag": True, "n": 1}) == {"n": 1.0}


def test_metric_directions():
    assert metric_direction("harness_wall_seconds") == "up"
    assert (
        metric_direction("simulate_conv_layers_per_second.vgg16_batch8_cold")
        == "down"
    )
    assert metric_direction("cache.hit_rate") == "down"
    assert metric_direction("cache.hits") is None  # shape-dependent, ungated


# ------------------------------------------------------------ baselines


def test_rolling_baseline_is_windowed_median():
    history = [
        {"metrics": {"harness_wall_seconds": w}} for w in (9.0, 1.0, 2.0, 3.0)
    ]
    assert rolling_baseline(history, window=3) == {"harness_wall_seconds": 2.0}
    assert rolling_baseline(history, window=2) == {"harness_wall_seconds": 2.5}


def test_check_perf_directions_and_threshold():
    baseline = flatten_metrics(report())
    assert check_perf(flatten_metrics(report(wall=1.2)), baseline) == []
    slowed = check_perf(flatten_metrics(report(wall=1.5)), baseline)
    assert len(slowed) == 1 and "harness_wall_seconds" in slowed[0]
    # Faster wall / higher throughput never violates.
    assert check_perf(flatten_metrics(report(wall=0.1, warm=90000.0)), baseline) == []
    dropped = check_perf(flatten_metrics(report(warm=10000.0)), baseline)
    assert len(dropped) == 1 and "layers_per_second" in dropped[0]
    # Ungated metrics never violate however far they move.
    wild = dict(flatten_metrics(report()), **{"cache.hits": 999999.0})
    assert check_perf(wild, baseline) == []


# ------------------------------------------------------------ history io


def test_history_round_trip(tmp_path):
    path = tmp_path / "hist.jsonl"
    entry = history_entry(report(), provenance={"note": "t"}, run_id="r1", ts=5.0)
    append_history(path, entry)
    append_history(path, history_entry(report(wall=1.1), ts=6.0))
    loaded = load_history(path)
    assert len(loaded) == 2
    assert loaded[0]["run_id"] == "r1"
    assert loaded[0]["provenance"] == {"note": "t"}
    assert loaded[1]["metrics"]["harness_wall_seconds"] == 1.1


def test_load_history_missing_is_empty(tmp_path):
    assert load_history(tmp_path / "nope.jsonl") == []


def test_load_history_fails_loudly_on_corrupt_line(tmp_path):
    path = tmp_path / "hist.jsonl"
    path.write_text('{"metrics": {}}\nnot json\n')
    with pytest.raises(ValueError, match="corrupt history line"):
        load_history(path)


# ------------------------------------------------------------ CLI engine


def write_artifacts(tmp_path, current, history_entries):
    current_path = tmp_path / "BENCH_perf.json"
    current_path.write_text(json.dumps(current))
    history_path = tmp_path / "BENCH_history.jsonl"
    for entry in history_entries:
        append_history(history_path, history_entry(entry, ts=1.0))
    return current_path, history_path


def test_run_sentinel_ok(tmp_path, capsys):
    current, history = write_artifacts(tmp_path, report(), [report()])
    code = run_sentinel(
        ["--current", str(current), "--history", str(history), "--skip-goldens"]
    )
    assert code == 0
    assert "sentinel: OK" in capsys.readouterr().out


def test_run_sentinel_flags_slowed_run(tmp_path, capsys):
    current, history = write_artifacts(tmp_path, report(wall=2.0), [report()])
    code = run_sentinel(
        ["--current", str(current), "--history", str(history), "--skip-goldens"]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "REGRESSION: harness_wall_seconds" in out
    assert "FAIL" in out


def test_run_sentinel_missing_current(tmp_path):
    code = run_sentinel(
        ["--current", str(tmp_path / "gone.json"), "--skip-goldens"]
    )
    assert code == 2


def test_run_sentinel_append_records_after_check(tmp_path):
    current, history = write_artifacts(tmp_path, report(), [report()])
    code = run_sentinel(
        [
            "--current", str(current), "--history", str(history),
            "--skip-goldens", "--append",
        ]
    )
    assert code == 0
    assert len(load_history(history)) == 2


def test_run_sentinel_gates_audit_violations(tmp_path, capsys):
    current, history = write_artifacts(
        tmp_path,
        {**report(), "audit": {"overhead_ratio": 1.6, "violations": 3}},
        [report()],
    )
    code = run_sentinel(
        ["--current", str(current), "--history", str(history), "--skip-goldens"]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "audit gate: 3 violation(s)" in out
    assert "REGRESSION: audit" in out


def test_run_sentinel_audit_block_clean_passes(tmp_path, capsys):
    current, history = write_artifacts(
        tmp_path,
        {**report(), "audit": {"overhead_ratio": 1.6, "violations": 0}},
        [report()],
    )
    code = run_sentinel(
        ["--current", str(current), "--history", str(history), "--skip-goldens"]
    )
    assert code == 0
    assert "audit gate: 0 violation(s)" in capsys.readouterr().out


def test_run_sentinel_report_without_audit_block_prints_no_gate(tmp_path, capsys):
    current, history = write_artifacts(tmp_path, report(), [report()])
    assert run_sentinel(
        ["--current", str(current), "--history", str(history), "--skip-goldens"]
    ) == 0
    assert "audit gate" not in capsys.readouterr().out


def test_run_sentinel_no_history_skips_perf_gate(tmp_path, capsys):
    current = tmp_path / "BENCH_perf.json"
    current.write_text(json.dumps(report()))
    code = run_sentinel(
        [
            "--current", str(current),
            "--history", str(tmp_path / "empty.jsonl"),
            "--skip-goldens",
        ]
    )
    assert code == 0
    assert "perf gate skipped" in capsys.readouterr().out


# ---------------------------------------------- tools/check_regression.py


def run_check_regression(*argv):
    return subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_regression.py"), *argv],
        cwd=REPO,
        capture_output=True,
        text=True,
    )


def test_check_regression_passes_on_committed_artifacts():
    proc = run_check_regression("--skip-goldens")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "sentinel: OK" in proc.stdout


def test_check_regression_fails_on_synthetically_slowed_run(tmp_path):
    committed = json.loads((REPO / "BENCH_perf.json").read_text())
    committed["harness_wall_seconds"] *= 2  # the synthetic regression
    slowed = tmp_path / "BENCH_perf.json"
    slowed.write_text(json.dumps(committed))
    proc = run_check_regression("--current", str(slowed), "--skip-goldens")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "REGRESSION: harness_wall_seconds" in proc.stdout
