"""Phase profiler: sample capture, nesting, tracemalloc hygiene, rendering."""

import tracemalloc

from repro.obs.profiler import PhaseProfiler, PhaseSample, render_hotspots


def test_phase_records_cost_triple():
    profiler = PhaseProfiler()
    with profiler.phase("work"):
        _ = [0] * 50_000  # force some traced allocation
    (sample,) = profiler.samples
    assert sample.name == "work"
    assert sample.wall_s > 0
    assert sample.cpu_s >= 0
    assert sample.alloc_peak_kb > 0


def test_profiler_stops_tracemalloc_it_started():
    assert not tracemalloc.is_tracing()
    profiler = PhaseProfiler()
    with profiler.phase("outer"):
        assert tracemalloc.is_tracing()
    assert not tracemalloc.is_tracing()


def test_nested_phases_record_independently():
    profiler = PhaseProfiler()
    with profiler.phase("outer"):
        with profiler.phase("inner"):
            _ = [0] * 10_000
    names = [sample.name for sample in profiler.samples]
    assert names == ["inner", "outer"]  # inner window closes first
    assert not tracemalloc.is_tracing()


def test_merge_and_total_wall():
    profiler = PhaseProfiler()
    profiler.merge(
        [
            PhaseSample("a", wall_s=1.0, cpu_s=0.5, alloc_peak_kb=10.0),
            PhaseSample("b", wall_s=2.0, cpu_s=1.0, alloc_peak_kb=20.0),
        ]
    )
    assert profiler.total_wall_s() == 3.0


def test_cpu_fraction_guards_zero_wall():
    assert PhaseSample("z", wall_s=0.0, cpu_s=1.0, alloc_peak_kb=0.0).cpu_fraction == 0.0


def test_render_hotspots_orders_by_wall():
    samples = [
        PhaseSample("fast", wall_s=0.1, cpu_s=0.1, alloc_peak_kb=1.0),
        PhaseSample("slow", wall_s=0.9, cpu_s=0.8, alloc_peak_kb=2.0),
    ]
    text = render_hotspots(samples)
    assert text.startswith("== phase profile ==")
    assert text.index("slow") < text.index("fast")
    assert "total" in text.splitlines()[-1]


def test_render_hotspots_top_and_empty():
    samples = [
        PhaseSample(f"p{i}", wall_s=float(i + 1), cpu_s=0.0, alloc_peak_kb=0.0)
        for i in range(5)
    ]
    top = render_hotspots(samples, top=2)
    assert "p4" in top and "p3" in top and "p0" not in top
    assert "(no phases recorded)" in render_hotspots([])
