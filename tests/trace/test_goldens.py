"""Golden-snapshot regression suite for per-layer cycle accounting.

Every figure/table with a golden set is recomputed from scratch and compared
**bit-exactly** against the frozen JSON under ``tests/trace/goldens/`` — cold
cache, warm cache, and across a 4-worker process pool.  Any timing-model
change that moves a single representable float fails here and must be signed
off by regenerating (``make goldens``).

The sweep is marked ``goldens`` so ``pytest -m "not goldens"`` skips it.
"""

import json
import pathlib
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.perf.cache import clear_cache
from repro.trace.goldens import (
    GOLDEN_EXPERIMENTS,
    GOLDEN_SCHEMA,
    compute_golden,
    diff_payloads,
    golden_filename,
)

pytestmark = pytest.mark.goldens

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


def stored_payload(experiment_id):
    path = GOLDEN_DIR / golden_filename(experiment_id)
    assert path.exists(), (
        f"missing golden snapshot {path}; generate it with: make goldens"
    )
    return json.loads(path.read_text())


def assert_matches_stored(experiment_id, actual):
    diffs = diff_payloads(stored_payload(experiment_id), actual)
    assert not diffs, (
        f"{experiment_id}: cycle accounting drifted from the golden snapshot "
        f"({len(diffs)} field(s)):\n  " + "\n  ".join(diffs[:20])
    )


def test_every_experiment_has_a_snapshot():
    stored = sorted(p.stem for p in GOLDEN_DIR.glob("*.json"))
    assert stored == sorted(GOLDEN_EXPERIMENTS)


@pytest.mark.parametrize("experiment_id", GOLDEN_EXPERIMENTS)
def test_golden_cold_cache(experiment_id):
    clear_cache()
    payload = compute_golden(experiment_id)
    assert payload["schema"] == GOLDEN_SCHEMA
    assert_matches_stored(experiment_id, payload)


@pytest.mark.parametrize("experiment_id", GOLDEN_EXPERIMENTS)
def test_golden_warm_cache(experiment_id):
    # First pass seeds the memo cache; the second must serve identical
    # numbers from it (the cache-coherence side of the golden contract).
    compute_golden(experiment_id)
    assert_matches_stored(experiment_id, compute_golden(experiment_id))


def test_goldens_bit_identical_across_process_pool():
    # --jobs N semantics: workers recompute independently (their own cache,
    # their own tracer) and must land on exactly the stored floats.
    clear_cache()
    serial = {eid: compute_golden(eid) for eid in GOLDEN_EXPERIMENTS}
    with ProcessPoolExecutor(max_workers=4) as pool:
        parallel = dict(
            zip(GOLDEN_EXPERIMENTS, pool.map(compute_golden, GOLDEN_EXPERIMENTS))
        )
    for eid in GOLDEN_EXPERIMENTS:
        assert not diff_payloads(serial[eid], parallel[eid]), eid
        assert_matches_stored(eid, parallel[eid])
