"""Chrome trace export and the runner's --trace flag, end to end."""

import contextlib
import io
import json

import pytest

from repro.harness import runner
from repro.perf.cache import clear_cache
from repro.trace.export import chrome_trace_payload, render_summary, write_chrome_trace
from repro.trace.metrics import MetricsRegistry
from repro.trace.tracer import Tracer


def traced_events():
    tracer = Tracer(enabled=True)
    with tracer.span("outer", layer="L"):
        tracer.counter("bytes", 128)
        with tracer.span("inner"):
            tracer.instant("mark", cycles=7.0)
    return tracer.drain()


def test_chrome_payload_shape():
    payload = chrome_trace_payload(traced_events(), metadata={"experiment": "t"})
    assert payload["displayTimeUnit"] == "ms"
    assert payload["otherData"] == {"experiment": "t"}
    events = payload["traceEvents"]
    assert {e["ph"] for e in events} == {"X", "C", "i"}
    for event in events:
        assert set(event) >= {"name", "cat", "ph", "ts", "pid", "tid", "args"}
        if event["ph"] == "X":
            assert event["dur"] >= 0
        if event["ph"] == "i":
            assert event["s"] == "t"
    # Valid JSON end-to-end.
    json.loads(json.dumps(payload))


def test_write_chrome_trace_round_trips(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(str(path), traced_events(), metadata={"jobs": 1})
    loaded = json.loads(path.read_text())
    assert loaded["otherData"] == {"jobs": 1}
    assert len(loaded["traceEvents"]) == 4  # outer, inner, counter, instant


def test_render_summary_sections():
    events = traced_events()
    text = render_summary(events, MetricsRegistry())
    assert "== trace summary ==" in text
    assert "outer" in text and "inner" in text
    assert "bytes" in text


def test_counter_rollup_sums_across_tracks():
    import dataclasses

    events = traced_events()
    # The same window re-tagged as another pid and another tid must add.
    clones = [dataclasses.replace(e, pid=e.pid + 1) for e in events]
    clones += [dataclasses.replace(e, tid=e.tid + 1) for e in events]
    text = render_summary(events + clones, None)
    assert "384" in text  # 3 x 128


def run_main(argv):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = runner.main(argv)
    return code, out.getvalue()


@pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "pool"])
def test_runner_trace_flag_end_to_end(tmp_path, jobs):
    clear_cache()
    trace_path = tmp_path / f"trace_{jobs}.json"
    code, output = run_main(
        ["table1", "fig13", "--quick", "--jobs", str(jobs),
         "--trace", str(trace_path), "--cache-stats"]
    )
    assert code == 0
    assert "== trace summary ==" in output
    assert "cycle-accounting audit" in output
    assert "all invariants hold" in output
    assert "simulation cache:" in output
    payload = json.loads(trace_path.read_text())
    events = payload["traceEvents"]
    assert events, "traced run produced no events"
    assert payload["otherData"]["experiments"] == ["table1", "fig13"]
    assert payload["otherData"]["jobs"] == jobs
    # One tid track per experiment; under --jobs the pids may differ too.
    assert {e["tid"] for e in events} == {1, 2}
    spans = [e for e in events if e["ph"] == "X"]
    # Network/driver convs route through the batched engine; anything priced
    # one-at-a-time still spans as tpu.conv.simulate.
    assert any(e["name"] in ("tpu.conv.simulate", "tpu.conv.batch") for e in spans)


def test_runner_without_trace_emits_no_summary():
    clear_cache()
    code, output = run_main(["table2", "--quick"])
    assert code == 0
    assert "trace summary" not in output


def test_tracing_disabled_after_traced_run(tmp_path):
    from repro.trace import tracer as trace

    clear_cache()
    run_main(["table2", "--quick", "--trace", str(tmp_path / "t.json")])
    assert not trace.enabled()
