"""W3C-style trace-context propagation: ids, headers, env, adopt-root."""

import os

import pytest

from repro.trace import context as tc


@pytest.fixture(autouse=True)
def _clean_context():
    yield
    # Tests that attach without detaching must not leak into the next test.
    tc.attach(None)


# ------------------------------------------------------------------- ids


def test_new_mints_wellformed_ids():
    ctx = tc.TraceContext.new()
    assert len(ctx.trace_id) == 32 and int(ctx.trace_id, 16) != 0
    assert len(ctx.span_id) == 16 and int(ctx.span_id, 16) != 0
    assert ctx.parent_span_id == ""


def test_child_shares_trace_and_links_parent():
    parent = tc.TraceContext.new()
    child = parent.child()
    assert child.trace_id == parent.trace_id
    assert child.parent_span_id == parent.span_id
    assert child.span_id != parent.span_id


def test_ids_dict_drops_empty_parent():
    root = tc.TraceContext.new()
    assert set(root.ids()) == {"trace_id", "span_id"}
    assert set(root.child().ids()) == {"trace_id", "span_id", "parent_span_id"}


# ------------------------------------------------------- traceparent header


def test_traceparent_round_trip():
    ctx = tc.TraceContext.new()
    parsed = tc.TraceContext.from_traceparent(ctx.to_traceparent())
    assert parsed is not None
    assert (parsed.trace_id, parsed.span_id) == (ctx.trace_id, ctx.span_id)


@pytest.mark.parametrize(
    "header",
    [
        None,
        "",
        "garbage",
        "00-xyz-123-01",
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace id
        "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
        "00-" + "a" * 31 + "-" + "b" * 16 + "-01",  # short trace id
    ],
)
def test_malformed_traceparent_rejected(header):
    assert tc.TraceContext.from_traceparent(header) is None


def test_env_round_trip():
    ctx = tc.TraceContext.new()
    env = tc.to_env(ctx, {})
    assert tc.TRACEPARENT_ENV in env
    restored = tc.from_env(env)
    assert restored is not None and restored.trace_id == ctx.trace_id
    assert tc.from_env({}) is None


def test_from_env_defaults_to_os_environ(monkeypatch):
    ctx = tc.TraceContext.new()
    monkeypatch.setitem(os.environ, tc.TRACEPARENT_ENV, ctx.to_traceparent())
    restored = tc.from_env()
    assert restored is not None and restored.span_id == ctx.span_id


# ---------------------------------------------------------- contextvar flow


def test_activate_restores_previous_context():
    outer = tc.TraceContext.new()
    inner = tc.TraceContext.new()
    with tc.activate(outer):
        assert tc.current() is outer
        with tc.activate(inner):
            assert tc.current() is inner
        assert tc.current() is outer
    assert tc.current() is None


def test_adopt_root_consumed_exactly_once():
    ctx = tc.TraceContext.new()
    with tc.activate_root(ctx):
        assert tc.current() is ctx
        assert tc.consume_adopt() is True
        assert tc.consume_adopt() is False  # second opener must mint a child
    assert tc.consume_adopt() is False


def test_adopted_root_span_keeps_the_propagated_ids():
    """The first span after activate_root IS the propagated context — that is
    what stitches a worker's subtree under the supervisor's task node."""
    from repro.trace import tracer as trace

    trace.set_tracer(trace.Tracer())
    trace.enable()
    try:
        ctx = tc.TraceContext.new()
        with tc.activate_root(ctx):
            with trace.span("task", cat="test"):
                with trace.span("step", cat="test"):
                    pass
        events = trace.drain_events()
    finally:
        trace.set_tracer(trace.Tracer())
    spans = {e.name: dict(e.args) for e in events if e.ph == "X"}
    assert spans["task"]["span_id"] == ctx.span_id
    assert spans["task"]["trace_id"] == ctx.trace_id
    assert "parent_span_id" not in spans["task"]  # adopted root stays a root
    assert spans["step"]["parent_span_id"] == ctx.span_id
