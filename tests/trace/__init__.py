"""Trace/observability test suite."""
