"""Cross-process trace reassembly: ``--jobs 2`` yields connected span trees.

The supervisor mints one :class:`TraceContext` per task and threads its
``traceparent`` through the worker payload; the worker adopts it as the
root of its subtree.  If any hop drops the context, spans either start a
fresh trace (extra roots) or point at a parent nobody exported (orphans) —
both of which :func:`repro.trace.export.span_forest` makes assertable.
"""

import json

import pytest

from repro.harness.runner import main
from repro.obs import log as obs_log
from repro.trace.export import span_forest
from repro.trace.tracer import TraceEvent


@pytest.fixture(autouse=True)
def _reset_obs():
    obs_log.shutdown()
    yield
    obs_log.shutdown()


def _load_events(trace_path):
    payload = json.loads(trace_path.read_text())
    return [
        TraceEvent(
            name=e["name"], cat=e["cat"], ph=e["ph"], ts=e["ts"],
            dur=e.get("dur", 0.0), pid=e["pid"], tid=e["tid"],
            args=tuple(sorted(e.get("args", {}).items())),
        )
        for e in payload["traceEvents"]
    ]


def test_jobs2_trace_is_one_connected_tree_per_task(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    code = main(
        ["table2", "fig2", "--quick", "--jobs", "2",
         "--results-dir", str(tmp_path / "results"),
         "--trace", str(trace_path)],
    )
    capsys.readouterr()
    assert code == 0
    events = _load_events(trace_path)

    forest = span_forest(events)
    # One trace per supervised task, each a single connected tree.
    assert len(forest) == 2
    by_experiment = {}
    for trace_id, tree in forest.items():
        assert len(tree["roots"]) == 1, f"trace {trace_id}: {tree['roots']}"
        assert tree["orphans"] == [], f"trace {trace_id} has orphans"
        root = tree["spans"][tree["roots"][0]]
        assert root.name == "experiment"
        by_experiment[dict(root.args)["experiment"]] = tree

    # Every context-stamped span belongs to some task's tree — nothing
    # leaks into an anonymous trace.
    assert set(by_experiment) == {"table2", "fig2"}
    # fig2 simulates layers, so its worker recorded real engine spans
    # nested under the adopted root (table2 is a config table: root only).
    fig2_names = {e.name for e in by_experiment["fig2"]["spans"].values()}
    assert "tpu.conv.simulate" in fig2_names
    assert len(by_experiment["fig2"]["spans"]) > 1


def test_serial_trace_also_yields_connected_trees(tmp_path, capsys):
    """Serial runs mint a fresh root per experiment — the forest invariant
    (one root, zero orphans per task) holds without a supervisor too."""
    trace_path = tmp_path / "trace.json"
    code = main(
        ["fig2", "--quick", "--results-dir", str(tmp_path / "results"),
         "--trace", str(trace_path)],
    )
    capsys.readouterr()
    assert code == 0
    forest = span_forest(_load_events(trace_path))
    assert len(forest) == 1
    (tree,) = forest.values()
    assert len(tree["roots"]) == 1 and tree["orphans"] == []
    assert len(tree["spans"]) > 1
