"""Property tests for the tracer's structural invariants.

- spans nest: every complete event lies inside (or equal to) its enclosing
  span's interval, and depth returns to zero when every ``with`` exits;
- counters are monotone non-decreasing running totals and reject negative
  increments;
- the disabled tracer adds no events and allocates nothing per call: the
  module-level ``span()`` returns the shared :data:`NULL_SPAN` singleton.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.tracer import NULL_SPAN, Tracer


# ---------------------------------------------------------------- nesting


@st.composite
def span_programs(draw):
    """Random well-nested open/close programs as action strings."""
    depth = 0
    actions = []
    for _ in range(draw(st.integers(min_value=0, max_value=40))):
        if depth == 0 or draw(st.booleans()):
            actions.append("open")
            depth += 1
        else:
            actions.append("close")
            depth -= 1
    actions.extend(["close"] * depth)
    return actions


@given(span_programs())
@settings(max_examples=100, deadline=None)
def test_spans_nest(actions):
    tracer = Tracer(enabled=True)
    stack = []
    for i, action in enumerate(actions):
        if action == "open":
            span = tracer.span(f"s{i}")
            span.__enter__()
            stack.append(span)
        else:
            stack.pop().__exit__(None, None, None)
    assert tracer.open_spans == 0
    events = tracer.events
    # Chronological close order means an enclosing span closes after (and
    # opened before) everything it contains: intervals must nest, never
    # partially overlap.
    for a in events:
        for b in events:
            a0, a1 = a.ts, a.ts + a.dur
            b0, b1 = b.ts, b.ts + b.dur
            assert (a1 <= b0) or (b1 <= a0) or (a0 <= b0 and b1 <= a1) or (
                b0 <= a0 and a1 <= b1
            ), f"{a.name} and {b.name} partially overlap"


@given(st.lists(st.floats(min_value=0, max_value=1e12), max_size=50))
@settings(max_examples=100, deadline=None)
def test_counters_are_monotone_running_totals(increments):
    tracer = Tracer(enabled=True)
    for value in increments:
        tracer.counter("bytes", value)
    totals = [dict(e.args)["bytes"] for e in tracer.events if e.ph == "C"]
    assert totals == sorted(totals)  # non-decreasing
    assert all(t >= 0 for t in totals)
    if increments:
        assert totals[-1] == tracer.counters["bytes"]


@given(st.floats(max_value=0, exclude_max=True, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_negative_counter_increment_raises(value):
    tracer = Tracer(enabled=True)
    try:
        tracer.counter("bytes", value)
        raised = False
    except ValueError:
        raised = True
    assert raised
    assert tracer.events == []  # the rejected increment left no event behind


# ------------------------------------------------------------ disabled path


def test_disabled_tracer_adds_no_events():
    tracer = Tracer(enabled=False)
    with tracer.span("outer", layer="x"):
        tracer.counter("bytes", 10)
        tracer.instant("marker")
    assert tracer.events == []
    assert tracer.counters == {}


def test_disabled_span_is_the_shared_singleton():
    """Zero allocation when off: every disabled span() IS one object."""
    tracer = Tracer(enabled=False)
    spans = {id(tracer.span(f"s{i}", arg=i)) for i in range(100)}
    assert spans == {id(NULL_SPAN)}


def test_module_level_helpers_respect_disabled(monkeypatch):
    from repro.trace import tracer as mod

    fresh = Tracer(enabled=False)
    previous = mod.set_tracer(fresh)
    try:
        assert mod.span("a", x=1) is NULL_SPAN
        mod.counter("c", 5)
        mod.instant("i")
        assert not mod.enabled()
        assert fresh.events == []
    finally:
        mod.set_tracer(previous)


def test_enable_disable_round_trip():
    from repro.trace import tracer as mod

    fresh = Tracer(enabled=False)
    previous = mod.set_tracer(fresh)
    try:
        mod.enable()
        with mod.span("timed", tag="t"):
            mod.counter("n", 1)
        mod.disable()
        with mod.span("untimed"):
            mod.counter("n", 1)
        events = mod.drain_events()
    finally:
        mod.set_tracer(previous)
    names = [e.name for e in events]
    assert names == ["n", "timed"]  # counter lands before the span closes


def test_span_note_attaches_args():
    tracer = Tracer(enabled=True)
    with tracer.span("work") as span:
        span.note(cycles=123.0)
    (event,) = tracer.events
    assert dict(event.args)["cycles"] == 123.0


def test_events_survive_pickle_round_trip():
    """Events cross process boundaries under --jobs N."""
    import pickle

    tracer = Tracer(enabled=True)
    with tracer.span("w", layer="a"):
        tracer.counter("bytes", 7)
    events = tracer.drain()
    assert pickle.loads(pickle.dumps(events)) == events
