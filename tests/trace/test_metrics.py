"""Cycle-accounting audits: the invariants, and their wiring into TPUSim."""

import dataclasses

import pytest

from repro.core.conv_spec import ConvSpec
from repro.perf.cache import clear_cache
from repro.systolic.simulator import TPUSim
from repro.trace import tracer as trace
from repro.trace.metrics import (
    CycleAccountingError,
    LayerCycleRecord,
    MetricsRegistry,
    audit_record,
    get_registry,
    set_registry,
)


def make_record(**overrides):
    base = dict(
        source="test",
        name="layer",
        cycles=100.0,
        compute_cycles=80.0,
        dma_cycles=60.0,
        exposed_dma_cycles=20.0,
        macs=1000,
        utilization=0.5,
    )
    base.update(overrides)
    return LayerCycleRecord(**base)


@pytest.fixture
def traced_registry():
    """Enable tracing against a private tracer/registry; restore after."""
    previous_tracer = trace.set_tracer(trace.Tracer(enabled=True))
    registry = MetricsRegistry()
    previous_registry = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous_registry)
        trace.set_tracer(previous_tracer)


# ----------------------------------------------------------------- audits


def test_valid_record_passes():
    audit_record(make_record())


def test_exposure_identity_is_bit_exact():
    with pytest.raises(CycleAccountingError, match="exposure identity"):
        # Off by one ulp-scale amount: still rejected.
        audit_record(make_record(exposed_dma_cycles=20.0000000001))


def test_exposure_identity_clamps_at_zero():
    audit_record(
        make_record(compute_cycles=100.0, exposed_dma_cycles=0.0, dma_cycles=5.0)
    )


def test_exposure_identity_respects_arrays():
    # Two arrays: exposed = cycles - compute/2.
    audit_record(
        make_record(compute_cycles=160.0, exposed_dma_cycles=20.0, arrays=2)
    )
    with pytest.raises(CycleAccountingError):
        audit_record(
            make_record(compute_cycles=160.0, exposed_dma_cycles=20.0, arrays=1)
        )


def test_negative_component_rejected():
    with pytest.raises(CycleAccountingError, match="negative"):
        audit_record(make_record(dma_cycles=-1.0, exposed_dma_cycles=20.0))


def test_non_finite_rejected():
    with pytest.raises(CycleAccountingError, match="not finite"):
        audit_record(make_record(cycles=float("nan")))


def test_work_must_cost_time():
    with pytest.raises(CycleAccountingError, match="work must cost time"):
        audit_record(
            make_record(cycles=0.0, compute_cycles=0.0, exposed_dma_cycles=0.0,
                        dma_cycles=0.0, macs=5, utilization=0.0)
        )


def test_compute_cannot_exceed_capacity():
    with pytest.raises(CycleAccountingError, match="exceeds"):
        audit_record(make_record(compute_cycles=150.0, exposed_dma_cycles=0.0))


def test_utilization_bounds():
    with pytest.raises(CycleAccountingError, match="utilization"):
        audit_record(make_record(utilization=1.5))


# ------------------------------------------------------- cache coherence


def test_registry_detects_cache_divergence():
    registry = MetricsRegistry()
    key = ("tpu-conv", "some-key")
    registry.record_layer(make_record(key=key))
    # Same key, different numbers: a corrupted/stale cache entry.
    with pytest.raises(CycleAccountingError, match="cache coherence"):
        registry.record_layer(
            make_record(key=key, cycles=101.0, exposed_dma_cycles=21.0)
        )


def test_registry_accepts_relabelled_hit():
    registry = MetricsRegistry()
    key = ("tpu-conv", "some-key")
    registry.record_layer(make_record(key=key, name="original"))
    registry.record_layer(make_record(key=key, name="renamed-twin"))
    assert len(registry.layers) == 2


# --------------------------------------------------------- simulator wiring


def test_simulator_records_hit_and_miss(traced_registry):
    clear_cache()
    spec = ConvSpec(n=1, c_in=32, h_in=14, w_in=14, c_out=32,
                    h_filter=3, w_filter=3, padding=1)
    sim = TPUSim()
    sim.simulate_conv(spec)  # miss
    sim.simulate_conv(spec)  # hit — must record an identical entry
    records = traced_registry.layers
    assert len(records) == 2
    assert records[0].identity() == records[1].identity()
    assert records[0].key == records[1].key is not None
    assert traced_registry.audit() == 2
    clear_cache()


def test_simulator_records_nothing_when_disabled():
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        assert not trace.enabled()
        spec = ConvSpec(n=1, c_in=16, h_in=7, w_in=7, c_out=16,
                        h_filter=3, w_filter=3, padding=1)
        TPUSim().simulate_conv(dataclasses.replace(spec, name="untraced"))
        assert len(registry) == 0
    finally:
        set_registry(previous)


def test_by_source_aggregation(traced_registry):
    clear_cache()
    sim = TPUSim()
    spec = ConvSpec(n=1, c_in=64, h_in=14, w_in=14, c_out=64,
                    h_filter=3, w_filter=3, padding=1)
    sim.simulate_conv(spec)
    sim.simulate_gemm(spec.gemm_shape())
    agg = traced_registry.by_source()
    assert set(agg) == {"tpu.conv", "tpu.gemm"}
    for stats in agg.values():
        assert stats["layers"] == 1
        assert stats["cycles"] > 0
        assert stats["compute_cycles"] <= stats["array_cycles"]
    clear_cache()


def test_global_registry_clear():
    registry = get_registry()
    registry.clear()
    assert len(registry) == 0
