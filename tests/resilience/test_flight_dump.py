"""Flight-recorder dumps from the supervisor when workers die or time out.

A SIGKILL'd worker cannot write its own post-mortem — ``crash@I`` is an
``os._exit`` mid-task — so the *supervisor* dumps its ring when it detects
the pool death.  These tests drive the real runner with fault injection and
assert the dump is a well-formed, schema-complete JSON document.
"""

import json

import pytest

from repro.harness.runner import main
from repro.obs import log as obs_log
from repro.obs.flight import recorder as recorder_mod


@pytest.fixture(autouse=True)
def _reset_obs():
    obs_log.shutdown()
    yield
    recorder_mod.reset_recorder()
    obs_log.shutdown()


def _flight_dumps(run_dir, reason):
    return sorted(run_dir.glob(f"flightrec-{reason}-*.json"))


def test_worker_kill9_leaves_a_wellformed_supervisor_dump(tmp_path, capsys):
    code = main(
        ["table2", "fig2", "--quick", "--jobs", "2", "--flight",
         "--run-id", "r1", "--results-dir", str(tmp_path),
         "--inject-faults", "crash@1"],
    )
    capsys.readouterr()
    assert code == 0  # crash@1 is first-attempt-only: the retry succeeds

    (dump_path,) = _flight_dumps(tmp_path / "r1", "worker-death")
    doc = json.loads(dump_path.read_text())
    assert doc["schema"] == 1 and doc["kind"] == "flight-recorder"
    assert doc["reason"] == "worker-death"
    assert isinstance(doc["spans"], list) and isinstance(doc["logs"], list)
    assert doc["extra"]["consecutive_deaths"] >= 1
    assert doc["extra"]["requeued"] >= 0
    assert doc["dropped"] == {"spans": 0, "logs": 0}
    # The supervisor's own ring captured the run's structured log events.
    assert any("event" in record for record in doc["logs"])


def test_supervisor_timeout_dumps_with_task_identity(tmp_path, capsys):
    code = main(
        ["table2", "fig2", "--quick", "--jobs", "2", "--flight",
         "--run-id", "r2", "--results-dir", str(tmp_path),
         "--task-timeout", "2", "--inject-faults", "hang@1"],
    )
    capsys.readouterr()
    assert code == 0  # hang@1 is first-attempt-only: the retry succeeds

    (dump_path,) = _flight_dumps(tmp_path / "r2", "supervisor-timeout")
    doc = json.loads(dump_path.read_text())
    assert doc["reason"] == "supervisor-timeout"
    assert doc["extra"]["task"] in ("table2", "fig2")
    assert doc["extra"]["timeout_s"] == 2.0


def test_no_flight_flag_means_no_dump_files(tmp_path, capsys):
    code = main(
        ["table2", "fig2", "--quick", "--jobs", "2",
         "--run-id", "r3", "--results-dir", str(tmp_path),
         "--inject-faults", "crash@1"],
    )
    capsys.readouterr()
    assert code == 0
    assert list((tmp_path / "r3").glob("flightrec-*.json")) == []
