"""Lease protocol unit tests: acquire, renew, steal, fence, release."""

from repro.resilience.lease import (
    LeaseRecord,
    read_lease,
    release,
    renew,
    try_acquire,
)


def _path(tmp_path):
    return tmp_path / "task.lease"


def test_fresh_acquire_is_generation_one(tmp_path):
    lease = try_acquire(_path(tmp_path), "w0", ttl_s=30.0, now=100.0)
    assert lease is not None
    assert lease.owner == "w0" and lease.generation == 1
    assert lease.expires_at == 130.0
    assert read_lease(_path(tmp_path)) == lease


def test_contested_acquire_fails_while_unexpired(tmp_path):
    try_acquire(_path(tmp_path), "w0", ttl_s=30.0, now=100.0)
    assert try_acquire(_path(tmp_path), "w1", ttl_s=30.0, now=110.0) is None


def test_reacquire_by_owner_is_reentrant(tmp_path):
    first = try_acquire(_path(tmp_path), "w0", ttl_s=30.0, now=100.0)
    again = try_acquire(_path(tmp_path), "w0", ttl_s=30.0, now=110.0)
    assert again == first  # same record, no generation bump


def test_expired_lease_is_stolen_with_generation_bump(tmp_path):
    try_acquire(_path(tmp_path), "dead", ttl_s=10.0, now=100.0)
    stolen = try_acquire(_path(tmp_path), "survivor", ttl_s=30.0, now=111.0)
    assert stolen is not None
    assert stolen.owner == "survivor" and stolen.generation == 2
    # A second steal keeps counting transfers — the fencing evidence the
    # coordinator's poison verdict reads.
    third = try_acquire(_path(tmp_path), "w3", ttl_s=30.0, now=200.0)
    assert third.generation == 3


def test_renew_extends_only_the_owner(tmp_path):
    try_acquire(_path(tmp_path), "w0", ttl_s=10.0, now=100.0)
    renewed = renew(_path(tmp_path), "w0", ttl_s=50.0, now=105.0)
    assert renewed is not None and renewed.expires_at == 155.0
    assert renewed.generation == 1
    assert renew(_path(tmp_path), "intruder", ttl_s=50.0, now=105.0) is None


def test_fenced_owner_cannot_renew_after_steal(tmp_path):
    try_acquire(_path(tmp_path), "sleeper", ttl_s=1.0, now=100.0)
    try_acquire(_path(tmp_path), "survivor", ttl_s=30.0, now=200.0)
    # The hung sleeper wakes up: its lease is gone, renew refuses.
    assert renew(_path(tmp_path), "sleeper", ttl_s=30.0, now=201.0) is None


def test_release_only_by_owner(tmp_path):
    try_acquire(_path(tmp_path), "w0", ttl_s=30.0, now=100.0)
    assert not release(_path(tmp_path), "intruder")
    assert release(_path(tmp_path), "w0")
    assert read_lease(_path(tmp_path)) is None
    assert not release(_path(tmp_path), "w0")  # already gone


def test_read_lease_tolerates_missing_and_garbage(tmp_path):
    assert read_lease(_path(tmp_path)) is None
    _path(tmp_path).write_text("{not json")
    assert read_lease(_path(tmp_path)) is None
    _path(tmp_path).write_text('{"schema": 99}')
    assert read_lease(_path(tmp_path)) is None


def test_record_json_roundtrip():
    record = LeaseRecord(
        owner="w1.3", generation=2, acquired_at=10.0, expires_at=40.0
    )
    assert LeaseRecord.from_json(record.to_json()) == record
    assert record.expired(now=40.0) and not record.expired(now=39.9)
