"""SIGTERM handling: the runner treats it as a graceful stop (exit 143).

The orchestrator's stop signal (Kubernetes, systemd, a batch scheduler
draining a node) must behave exactly like Ctrl-C — checkpoint journal
flushed, resume hint printed — distinguished only by the exit code:
143 (128+SIGTERM) instead of 130 (128+SIGINT).
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

REPO = pathlib.Path(__file__).resolve().parents[2]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _spawn_hung_checkpointed_run(tmp_path, run_id):
    """A --jobs 2 checkpointed run whose second task hangs forever: once
    the first experiment is journaled the run is provably mid-flight and
    stays there until signalled."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.harness.runner", "fig2", "table2",
            "--quick", "--jobs", "2", "--checkpoint", "--run-id", run_id,
            "--results-dir", str(tmp_path), "--inject-faults", "hang@1",
        ],
        cwd=REPO, env=_env(), start_new_session=True,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    journal = tmp_path / run_id / "checkpoint.jsonl"
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"run exited early ({proc.returncode}): {proc.stderr.read()}"
            )
        if journal.exists() and journal.read_text().count("\n") >= 1:
            return proc, journal
        time.sleep(0.2)
    raise AssertionError("run never journaled its first experiment")


def test_sigterm_flushes_checkpoint_and_exits_143(tmp_path):
    proc, journal = _spawn_hung_checkpointed_run(tmp_path, "st-term")
    journaled_before = journal.read_bytes()
    try:
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.communicate(timeout=30)

    assert proc.returncode == 143, f"rc={proc.returncode} stderr={stderr}"
    assert "terminated" in stderr
    assert "--resume st-term" in stderr  # the operator's next command
    # Journaled work survived the termination untouched.
    assert journal.read_bytes().startswith(journaled_before)

    # And the hint is honest: the resumed run skips the journaled work
    # and finishes clean.
    resumed = subprocess.run(
        [
            sys.executable, "-m", "repro.harness.runner", "fig2", "table2",
            "--quick", "--jobs", "2", "--resume", "st-term",
            "--results-dir", str(tmp_path),
        ],
        cwd=REPO, env=_env(), capture_output=True, text=True, timeout=600,
    )
    assert resumed.returncode == 0, resumed.stderr[-800:]
