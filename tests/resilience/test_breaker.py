"""Unit tests of the per-fingerprint circuit breakers (fake clock)."""

import pytest

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerOpen,
    BreakerPolicy,
    BreakerRegistry,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


POLICY = BreakerPolicy(threshold=3, cooldown_s=10.0, window_s=60.0)


def make(policy: BreakerPolicy = POLICY):
    clock = FakeClock()
    return CircuitBreaker("fp-1", policy, clock), clock


def test_stays_closed_below_threshold():
    breaker, _ = make()
    assert breaker.record_failure("AuditFault", "boom") is False
    assert breaker.record_failure("AuditFault", "boom") is False
    assert breaker.state == CLOSED
    breaker.admit()  # closed breaker admits freely


def test_trips_at_threshold_and_refuses_with_verdict():
    breaker, clock = make()
    for i in range(2):
        assert breaker.record_failure("AuditFault", f"boom {i}") is False
    assert breaker.record_failure("WorkerCrash", "boom 2") is True
    assert breaker.state == OPEN
    with pytest.raises(BreakerOpen) as err:
        breaker.admit()
    verdict = err.value.verdict
    assert verdict["fingerprint"] == "fp-1"
    assert verdict["state"] == OPEN
    assert verdict["trips"] == 1
    assert verdict["trip_reason"] == "WorkerCrash"
    assert len(verdict["failures"]) == 3
    assert verdict["retry_after_s"] == pytest.approx(10.0)
    clock.advance(4.0)
    with pytest.raises(BreakerOpen) as err:
        breaker.admit()
    assert err.value.verdict["retry_after_s"] == pytest.approx(6.0)


def test_half_open_probe_success_closes_with_amnesty():
    breaker, clock = make()
    for i in range(3):
        breaker.record_failure("AuditFault", f"boom {i}")
    clock.advance(10.0)
    breaker.admit()  # the cooldown elapsed: one probe gets through
    assert breaker.state == HALF_OPEN
    with pytest.raises(BreakerOpen):  # ...but only one
        breaker.admit()
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.failures == []  # full amnesty
    breaker.admit()


def test_half_open_probe_failure_reopens_fresh_cooldown():
    breaker, clock = make()
    for i in range(3):
        breaker.record_failure("AuditFault", f"boom {i}")
    clock.advance(10.0)
    breaker.admit()
    assert breaker.record_failure("AuditFault", "still bad") is True
    assert breaker.state == OPEN
    assert breaker.trips == 2
    assert breaker.cooldown_remaining() == pytest.approx(10.0)


def test_window_prunes_stale_failures():
    breaker, clock = make()
    breaker.record_failure("AuditFault", "old")
    breaker.record_failure("AuditFault", "old")
    clock.advance(61.0)  # both fall out of the 60s window
    assert breaker.record_failure("AuditFault", "new") is False
    assert breaker.state == CLOSED
    assert len(breaker.failures) == 1


def test_registry_allocates_nothing_for_clean_keys():
    clock = FakeClock()
    registry = BreakerRegistry(POLICY, clock=clock)
    for key in ("a", "b", "c"):
        registry.admit(key)
        registry.record_success(key)
    assert registry.snapshot() == {
        "keys": 0, "open": [], "trips": 0, "fast_fails": 0
    }


def test_registry_counts_trips_and_fast_fails():
    clock = FakeClock()
    registry = BreakerRegistry(POLICY, clock=clock)
    for i in range(3):
        registry.record_failure("bad", "AuditFault", f"boom {i}")
    assert registry.trips == 1
    assert registry.open_keys() == ["bad"]
    for _ in range(4):
        with pytest.raises(BreakerOpen):
            registry.admit("bad")
    assert registry.fast_fails == 4
    registry.admit("good")  # other keys unaffected
    clock.advance(10.0)
    registry.admit("bad")  # half-open probe
    registry.record_success("bad")
    assert registry.open_keys() == []


def test_registry_evicts_stalest_closed_breaker_first():
    clock = FakeClock()
    registry = BreakerRegistry(POLICY, clock=clock, max_keys=2)
    registry.record_failure("stale-closed", "AuditFault", "x")
    clock.advance(1.0)
    for i in range(3):
        registry.record_failure("open-key", "AuditFault", f"x{i}")
    clock.advance(1.0)
    registry.record_failure("fresh", "AuditFault", "x")  # forces eviction
    assert "stale-closed" not in registry._breakers
    assert "open-key" in registry._breakers  # open verdicts are kept
