"""Supervisor recovery matrix: crash, hang, flake, fatal, degrade, backoff.

Worker functions must be module-level (picklable) because the supervisor
fans them out over a ``ProcessPoolExecutor``.  Policies use tiny backoffs
so the whole matrix runs in seconds.
"""

import os
import time

import pytest

from repro.errors import TransientFault
from repro.resilience.supervisor import RetryPolicy, Supervisor, TaskSpec

FAST = dict(backoff_base_s=0.01, backoff_cap_s=0.05, jitter=0.0)


def _tasks(payloads):
    return [
        TaskSpec(index=i, key=f"task{i}", payload=p)
        for i, p in enumerate(payloads)
    ]


# --------------------------------------------------------- worker functions


def _double(payload, index, attempt):
    return payload * 2


def _crash_first_attempt(payload, index, attempt):
    if attempt == 1:
        os._exit(137)  # simulate OOM-kill / SIGKILL
    return ("recovered", attempt)


def _flaky_then_ok(payload, index, attempt):
    if attempt <= payload:
        raise TransientFault(f"flaky attempt {attempt}")
    return attempt


def _hang_first_attempt(payload, index, attempt):
    if attempt == 1:
        time.sleep(120)
    return ("awake", attempt)


def _always_broken(payload, index, attempt):
    raise RuntimeError("deterministic bug")


def _crash_unless_supervisor(payload, index, attempt):
    if os.getpid() != payload:
        os._exit(1)
    return "ran serially"


# ----------------------------------------------------------------- matrix


def test_serial_success():
    report = Supervisor(_double, jobs=1).run(_tasks([1, 2, 3]))
    assert report.ok
    assert report.results == {0: 2, 1: 4, 2: 6}
    assert report.budget.succeeded == 3 and report.budget.tasks == 3


def test_parallel_success_and_on_result_callback():
    seen = []
    report = Supervisor(
        _double, jobs=2, on_result=lambda task, value: seen.append((task.key, value))
    ).run(_tasks([5, 6]))
    assert report.ok and report.results == {0: 10, 1: 12}
    assert sorted(seen) == [("task0", 10), ("task1", 12)]


def test_worker_crash_respawns_pool_and_retries():
    policy = RetryPolicy(max_retries=2, **FAST)
    report = Supervisor(_crash_first_attempt, jobs=2, policy=policy).run(
        _tasks([None, None])
    )
    assert report.ok
    assert all(value == ("recovered", 2) for value in report.results.values())
    assert report.budget.pool_respawns >= 1
    assert report.budget.transient_retries >= 1
    assert report.budget.faults_by_class.get("TransientFault", 0) >= 1


def test_transient_then_success_retry():
    policy = RetryPolicy(max_retries=2, **FAST)
    report = Supervisor(_flaky_then_ok, jobs=2, policy=policy).run(_tasks([1, 0]))
    assert report.ok
    assert report.results == {0: 2, 1: 1}  # task0 needed one retry
    assert report.budget.transient_retries == 1


def test_transient_budget_exhaustion_fails_task():
    policy = RetryPolicy(max_retries=1, **FAST)
    report = Supervisor(_flaky_then_ok, jobs=2, policy=policy).run(_tasks([99]))
    assert not report.ok
    (failure,) = report.failures
    assert failure.fault == "TransientFault" and failure.attempts == 2
    assert report.budget.failed == 1


def test_hung_worker_times_out_and_retries():
    policy = RetryPolicy(max_retries=1, timeout_s=1.0, **FAST)
    report = Supervisor(_hang_first_attempt, jobs=2, policy=policy).run(
        _tasks([None])
    )
    assert report.ok
    assert report.results == {0: ("awake", 2)}
    assert report.budget.timeouts >= 1


def test_permanent_failure_is_not_retried():
    policy = RetryPolicy(max_retries=5, **FAST)
    report = Supervisor(_always_broken, jobs=2, policy=policy).run(_tasks([None]))
    assert not report.ok
    (failure,) = report.failures
    assert failure.fault == "PermanentFault"
    assert failure.attempts == 1  # permanent: one attempt, no retries
    assert report.budget.transient_retries == 0


def test_degrades_to_serial_after_repeated_pool_deaths():
    # The worker dies in any child process but succeeds in the supervisor,
    # so only the degraded-serial fallback can complete it.
    policy = RetryPolicy(max_retries=6, max_pool_respawns=1, **FAST)
    report = Supervisor(_crash_unless_supervisor, jobs=2, policy=policy).run(
        _tasks([os.getpid()])
    )
    assert report.ok
    assert report.results == {0: "ran serially"}
    assert report.budget.degraded_serial


# ----------------------------------------------------------------- backoff


def test_backoff_is_deterministic_per_seed():
    a = RetryPolicy(seed=11)
    b = RetryPolicy(seed=11)
    c = RetryPolicy(seed=12)
    grid = [(task, attempt) for task in range(3) for attempt in (2, 3, 4)]
    assert [a.backoff_s(*p) for p in grid] == [b.backoff_s(*p) for p in grid]
    assert [a.backoff_s(*p) for p in grid] != [c.backoff_s(*p) for p in grid]


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=0.4, jitter=0.0)
    assert policy.backoff_s(0, 2) == pytest.approx(0.1)
    assert policy.backoff_s(0, 3) == pytest.approx(0.2)
    assert policy.backoff_s(0, 4) == pytest.approx(0.4)
    assert policy.backoff_s(0, 9) == pytest.approx(0.4)  # capped
