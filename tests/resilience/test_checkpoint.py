"""Checkpoint journal: round-trip fidelity, corruption handling, keys."""

import json

from repro.harness.runner import run_experiment
from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointJournal,
    journal_path,
    load_journal,
    load_resume_state,
    result_from_record,
    result_to_record,
    task_fingerprint,
)


def test_journal_path_shape(tmp_path):
    path = journal_path(tmp_path, "run-1")
    assert path == tmp_path / "run-1" / "checkpoint.jsonl"


def test_fingerprint_is_stable_and_keyed():
    a = task_fingerprint("table2", quick=True)
    assert a == task_fingerprint("table2", quick=True)
    assert a != task_fingerprint("table2", quick=False)
    assert a != task_fingerprint("fig4", quick=True)


def test_result_roundtrips_bit_identically(tmp_path):
    result = run_experiment("table2", quick=True)
    record = result_to_record("table2", task_fingerprint("table2", True), result)
    # Through JSON, as the journal stores it.
    restored = result_from_record(json.loads(json.dumps(record)))
    assert restored.render() == result.render()
    assert restored.experiment_id == result.experiment_id
    assert [t.rows for t in restored.tables] == [
        [tuple(row) for row in t.rows] for t in result.tables
    ]


def test_journal_append_and_resume_hit(tmp_path):
    result = run_experiment("table2", quick=True)
    fp = task_fingerprint("table2", True)
    path = journal_path(tmp_path, "run-1")
    journal = CheckpointJournal(path)
    journal.append(result_to_record("table2", fp, result))
    assert journal.appended == 1

    state = load_resume_state(path)
    assert state.corrupt == 0
    hit = state.hit("table2", fp)
    assert hit is not None and hit.render() == result.render()
    # A different fingerprint (config drift) must miss.
    assert state.hit("table2", "0" * 16) is None


def test_corrupt_records_are_skipped_with_warning(tmp_path):
    result = run_experiment("table2", quick=True)
    fp = task_fingerprint("table2", True)
    path = journal_path(tmp_path, "run-1")
    journal = CheckpointJournal(path)
    journal.append(result_to_record("table2", fp, result))
    with path.open("a") as handle:
        handle.write('{"schema": 1, "experiment": "fig4", "trunc\n')
        handle.write("not json at all\n")
    records, corrupt = load_journal(path)
    assert corrupt == 2
    assert set(records) == {("table2", fp)}


def test_injected_corruption_tears_the_record(tmp_path):
    result = run_experiment("table2", quick=True)
    fp = task_fingerprint("table2", True)
    path = journal_path(tmp_path, "run-1")
    journal = CheckpointJournal(path)
    journal.append(result_to_record("table2", fp, result), corrupt=True)
    records, corrupt = load_journal(path)
    assert records == {} and corrupt == 1


def test_unknown_schema_counts_as_corrupt(tmp_path):
    path = tmp_path / "checkpoint.jsonl"
    path.write_text(
        json.dumps({"schema": CHECKPOINT_SCHEMA + 1, "experiment": "x"}) + "\n"
    )
    records, corrupt = load_journal(path)
    assert records == {} and corrupt == 1


def test_missing_journal_is_empty_not_fatal(tmp_path):
    records, corrupt = load_journal(tmp_path / "absent.jsonl")
    assert records == {} and corrupt == 0
