"""Runner-level resilience: --checkpoint/--resume, fault injection, budgets.

These drive :func:`repro.harness.runner.main` in-process (capsys captures
stdout/stderr) — the subprocess kill/resume matrix lives in
``test_resume_e2e.py``.
"""

import json

import pytest

from repro.harness.runner import main
from repro.obs import log as obs_log


@pytest.fixture(autouse=True)
def _reset_obs():
    obs_log.shutdown()
    yield
    obs_log.shutdown()


def _run(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


# ------------------------------------------------------- checkpoint/resume


def test_checkpoint_then_resume_is_byte_identical(tmp_path, capsys):
    base = ["table2", "--quick", "--results-dir", str(tmp_path)]
    code, plain_out, _ = _run(capsys, ["table2", "--quick"])
    assert code == 0

    code, out1, _ = _run(capsys, base + ["--checkpoint", "--run-id", "r1"])
    assert code == 0
    journal = tmp_path / "r1" / "checkpoint.jsonl"
    assert journal.exists() and len(journal.read_text().splitlines()) == 1

    code, out2, err2 = _run(capsys, base + ["--resume", "r1"])
    assert code == 0
    assert "resume r1: 1 checkpoint hit(s), 0 experiment(s) to run" in err2
    assert out1 == out2 == plain_out


def test_resume_misses_when_fingerprint_changes(tmp_path, capsys):
    base = ["table2", "--results-dir", str(tmp_path)]
    code, _, _ = _run(capsys, base + ["--quick", "--checkpoint", "--run-id", "r1"])
    assert code == 0
    # Same experiment without --quick: different fingerprint, must rerun.
    code, _, err = _run(capsys, base + ["--resume", "r1"])
    assert code == 0
    assert "resume r1: 0 checkpoint hit(s), 1 experiment(s) to run" in err


def test_corrupted_checkpoint_record_is_skipped_and_rerun(tmp_path, capsys):
    base = ["table2", "--quick", "--results-dir", str(tmp_path)]
    code, out1, _ = _run(
        capsys,
        base + ["--checkpoint", "--run-id", "r1",
                "--inject-faults", "corrupt-checkpoint@0"],
    )
    assert code == 0
    code, out2, err = _run(capsys, base + ["--resume", "r1"])
    assert code == 0
    assert "0 checkpoint hit(s)" in err and "1 corrupt record(s) skipped" in err
    assert out1 == out2
    # The rerun re-journaled a good record: resuming again hits.
    code, out3, err3 = _run(capsys, base + ["--resume", "r1"])
    assert code == 0
    assert "1 checkpoint hit(s), 0 experiment(s) to run" in err3
    assert out3 == out1


# --------------------------------------------------------- fault injection


def test_serial_flaky_injection_retries_to_identical_output(tmp_path, capsys):
    code, plain_out, _ = _run(capsys, ["table2", "--quick"])
    assert code == 0
    code, out, _ = _run(
        capsys,
        ["table2", "--quick", "--results-dir", str(tmp_path),
         "--inject-faults", "seed=5,flaky@0:2"],
    )
    assert code == 0
    assert out == plain_out


def test_serial_flaky_exhaustion_fails_the_run(tmp_path, capsys):
    code, _, err = _run(
        capsys,
        ["table2", "--quick", "--results-dir", str(tmp_path),
         "--max-retries", "1", "--inject-faults", "flaky@0:9"],
    )
    assert code == 1
    assert "experiment run failed" in err


def test_supervised_fatal_fault_reports_and_exits_nonzero(tmp_path, capsys):
    code, out, err = _run(
        capsys,
        ["table2", "fig2", "--quick", "--jobs", "2",
         "--results-dir", str(tmp_path), "--inject-faults", "fatal@0"],
    )
    assert code == 1
    assert out == ""  # a failed sweep renders nothing
    assert "error: experiment table2 failed [PermanentFault]" in err


def test_bad_inject_spec_exits_2_before_any_work(tmp_path, capsys):
    code, out, err = _run(
        capsys,
        ["table2", "--quick", "--inject-faults", "explode@1"],
    )
    assert code == 2
    assert out == "" and "bad --inject-faults spec" in err


def test_error_budget_and_checkpoint_land_in_manifest(tmp_path, capsys):
    code, _, _ = _run(
        capsys,
        ["table2", "fig2", "--quick", "--jobs", "2", "--manifest",
         "--checkpoint", "--run-id", "r1", "--results-dir", str(tmp_path),
         "--inject-faults", "seed=2,flaky@1:1"],
    )
    assert code == 0
    manifest = json.loads((tmp_path / "r1" / "manifest.json").read_text())
    budget = manifest["extra"]["error_budget"]
    assert budget["tasks"] == 2 and budget["succeeded"] == 2
    assert budget["transient_retries"] == 1
    assert budget["faults_by_class"] == {"TransientFault": 1}
    checkpoint = manifest["extra"]["checkpoint"]
    assert checkpoint["appended"] == 2 and checkpoint["hits"] == 0
    assert manifest["args"]["inject_faults"] == "seed=2,flaky@1:1"


# ------------------------------------------------------------- validation


def test_unknown_config_values_raise_structured_errors():
    from repro.errors import ConfigError
    from repro.gpu.config import GPUConfig
    from repro.memory.dram import HBMConfig
    from repro.systolic.config import TPUConfig

    with pytest.raises(ConfigError) as excinfo:
        HBMConfig(channels=0)
    assert excinfo.value.field == "channels" and excinfo.value.value == 0
    with pytest.raises(ValueError):  # ConfigError is a ValueError
        TPUConfig(clock_ghz=-1)
    with pytest.raises(ConfigError) as excinfo:
        GPUConfig(compute_efficiency=1.5)
    assert excinfo.value.field == "compute_efficiency"
