"""End-to-end crash recovery: kill -9 a sweep, resume it, compare bytes.

These tests drive the runner as real subprocesses (their own process
groups, real pools, real signals) — the in-process matrix lives in
``test_runner_resilience.py``.
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
IDS = ["fig2", "table2"]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _runner(argv, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro.harness.runner", *argv],
        cwd=REPO, env=_env(), capture_output=True, text=True,
        timeout=600, **kwargs,
    )


def _spawn_hung_run(tmp_path, run_id):
    """Start a checkpointed --jobs 2 sweep whose second task hangs forever.

    Returns the Popen (its own session, so the whole tree is killable)
    and the journal path.  Waits until the first experiment is journaled,
    i.e. the run is provably mid-flight with durable progress.
    """
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.harness.runner", *IDS,
            "--quick", "--jobs", "2", "--checkpoint", "--run-id", run_id,
            "--results-dir", str(tmp_path), "--inject-faults", "hang@1",
        ],
        cwd=REPO, env=_env(), start_new_session=True,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    journal = tmp_path / run_id / "checkpoint.jsonl"
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"run exited early ({proc.returncode}): {proc.stderr.read()}"
            )
        if journal.exists() and journal.read_text().count("\n") >= 1:
            return proc, journal
        time.sleep(0.2)
    raise AssertionError("first experiment never reached the journal")


def _kill_tree(proc):
    try:
        os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
    except ProcessLookupError:
        pass
    proc.wait(timeout=30)


def test_kill9_then_resume_is_byte_identical(tmp_path):
    plain = _runner([*IDS, "--quick"])
    assert plain.returncode == 0

    proc, journal = _spawn_hung_run(tmp_path, "e2e")
    _kill_tree(proc)
    assert journal.read_text().count("\n") >= 1  # durable partial progress

    resumed = _runner(
        [*IDS, "--quick", "--resume", "e2e", "--results-dir", str(tmp_path)]
    )
    assert resumed.returncode == 0
    assert "resume e2e: 1 checkpoint hit(s), 1 experiment(s) to run" in resumed.stderr
    assert resumed.stdout == plain.stdout  # bit-identical final report


def test_sigint_exits_130_without_traceback_spray(tmp_path):
    proc, _ = _spawn_hung_run(tmp_path, "intr")
    os.killpg(os.getpgid(proc.pid), signal.SIGINT)  # Ctrl-C hits the group
    try:
        _, stderr = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        _kill_tree(proc)
        pytest.fail("runner did not exit after SIGINT")
    assert proc.returncode == 130
    stderr = stderr.decode()
    assert "Traceback" not in stderr
    assert "--resume intr" in stderr  # tells the user how to pick it back up

    # And the interrupted sweep is in fact resumable.
    resumed = _runner(
        [*IDS, "--quick", "--resume", "intr", "--results-dir", str(tmp_path)]
    )
    assert resumed.returncode == 0
    assert "1 checkpoint hit(s)" in resumed.stderr
