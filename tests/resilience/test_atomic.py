"""Crash-safe filesystem primitives."""

import os

import pytest

from repro.resilience.atomic import (
    atomic_write_bytes,
    atomic_write_text,
    crash_safe_append,
)


def test_atomic_write_creates_file_and_parents(tmp_path):
    target = tmp_path / "deep" / "nested" / "artifact.json"
    atomic_write_text(target, "hello\n")
    assert target.read_text() == "hello\n"


def test_atomic_write_replaces_existing_content(tmp_path):
    target = tmp_path / "artifact.txt"
    target.write_text("old")
    atomic_write_text(target, "new")
    assert target.read_text() == "new"


def test_atomic_write_leaves_no_temp_files(tmp_path):
    target = tmp_path / "artifact.txt"
    atomic_write_text(target, "payload")
    atomic_write_text(target, "payload2")
    assert os.listdir(tmp_path) == ["artifact.txt"]


def test_atomic_write_bytes_roundtrip(tmp_path):
    target = tmp_path / "blob.bin"
    atomic_write_bytes(target, b"\x00\x01\xff")
    assert target.read_bytes() == b"\x00\x01\xff"


def test_atomic_write_cleans_up_on_failure(tmp_path):
    target = tmp_path / "artifact.txt"
    with pytest.raises(TypeError):
        atomic_write_bytes(target, "not bytes")  # os.write rejects str
    assert os.listdir(tmp_path) == []


def test_crash_safe_append_builds_a_journal(tmp_path):
    journal = tmp_path / "sub" / "journal.jsonl"
    crash_safe_append(journal, "one")
    crash_safe_append(journal, "two\n")
    assert journal.read_text() == "one\ntwo\n"


def test_crash_safe_append_without_fsync(tmp_path):
    journal = tmp_path / "journal.jsonl"
    crash_safe_append(journal, "line", fsync=False)
    assert journal.read_text() == "line\n"
