"""Fault-plan parsing, determinism, and the memory-model hooks."""

import pytest

from repro.errors import ConfigError, PermanentFault, TransientFault
from repro.memory.dram import HBMConfig, HBMModel
from repro.memory.sram import SRAMModel
from repro.resilience import faults
from repro.resilience.faults import FaultPlan


@pytest.fixture(autouse=True)
def _no_active_plan():
    faults.deactivate()
    yield
    faults.deactivate()


# ----------------------------------------------------------------- parsing


def test_parse_full_spec():
    plan = FaultPlan.parse(
        "seed=7,crash@1,hang@2:3,flaky@0:2,fatal@4,corrupt-checkpoint@5,"
        "dram-drop=0.25,dram-delay=100,sram-latency=2.5,sram-capacity=0.5"
    )
    assert plan.seed == 7
    assert plan.crash == {1: 1}
    assert plan.hang == {2: 3}
    assert plan.flaky == {0: 2}
    assert plan.fatal == {4}
    assert plan.corrupt_checkpoint == {5}
    assert plan.dram_drop == 0.25
    assert plan.dram_delay_cycles == 100
    assert plan.sram_latency_factor == 2.5
    assert plan.sram_capacity_factor == 0.5


@pytest.mark.parametrize(
    "spec",
    [
        "explode@1",          # unknown fault kind
        "crash@x",            # non-integer index
        "dram-drop=oops",     # non-numeric parameter
        "dram-drop=1.5",      # probability out of range
        "warp=9",             # unknown parameter
        "justaword",          # no @ or =
    ],
)
def test_parse_rejects_bad_tokens(spec):
    with pytest.raises(ConfigError):
        FaultPlan.parse(spec)


def test_parse_empty_tokens_are_ignored():
    plan = FaultPlan.parse("crash@0, ,")
    assert plan.crash == {0: 1}


# ---------------------------------------------------------- exception faults


def test_flaky_fires_only_up_to_attempt_budget():
    plan = FaultPlan.parse("flaky@3:2")
    with pytest.raises(TransientFault):
        plan.maybe_raise_fault(3, attempt=1)
    with pytest.raises(TransientFault):
        plan.maybe_raise_fault(3, attempt=2)
    plan.maybe_raise_fault(3, attempt=3)  # exhausted: succeeds
    plan.maybe_raise_fault(0, attempt=1)  # other tasks untouched
    assert plan.counters["flaky"] == 2


def test_fatal_fires_on_every_attempt():
    plan = FaultPlan.parse("fatal@1")
    for attempt in (1, 2, 5):
        with pytest.raises(PermanentFault):
            plan.maybe_raise_fault(1, attempt=attempt)


# ------------------------------------------------------------ memory faults


def test_dram_drop_is_deterministic_under_seed():
    def run(plan):
        return [plan.perturb_dram_cycles(1000.0) for _ in range(64)]

    a = run(FaultPlan.parse("seed=3,dram-drop=0.2,dram-delay=50"))
    b = run(FaultPlan.parse("seed=3,dram-drop=0.2,dram-delay=50"))
    c = run(FaultPlan.parse("seed=4,dram-drop=0.2,dram-delay=50"))
    assert a == b
    assert a != c
    assert any(v == 1050.0 for v in a) and any(v == 1000.0 for v in a)


def test_dram_hook_only_fires_when_active():
    hbm = HBMModel(HBMConfig())
    baseline = hbm.contiguous_cycles(1 << 20)
    assert hbm.contiguous_cycles(1 << 20) == baseline
    plan = faults.activate(FaultPlan.parse("seed=1,dram-drop=1.0,dram-delay=500"))
    assert hbm.contiguous_cycles(1 << 20) == baseline + 500
    assert plan.counters["dram_dropped"] >= 1
    faults.deactivate()
    assert hbm.contiguous_cycles(1 << 20) == baseline


def test_sram_latency_and_capacity_flips():
    model = SRAMModel()
    baseline = model.access_latency_ns(256 * 1024)
    plan = faults.activate(FaultPlan.parse("sram-latency=3"))
    assert model.access_latency_ns(256 * 1024) == pytest.approx(3 * baseline)
    faults.deactivate()
    faults.activate(FaultPlan.parse("sram-capacity=4"))
    # Believing it has 4x the capacity makes the modelled latency larger.
    assert model.access_latency_ns(256 * 1024) > baseline
    faults.deactivate()
    assert model.access_latency_ns(256 * 1024) == baseline
    assert plan.counters["sram_latency_flipped"] >= 1


# --------------------------------------------------------- checkpoint faults


def test_corrupt_checkpoint_fires_exactly_once():
    plan = FaultPlan.parse("corrupt-checkpoint@2")
    assert not plan.should_corrupt_checkpoint(0)
    assert plan.should_corrupt_checkpoint(2)
    assert not plan.should_corrupt_checkpoint(2)  # one-shot
    assert plan.counters["checkpoint_corrupted"] == 1


# ----------------------------------------------------------- activation API


def test_activate_deactivate_roundtrip():
    assert faults.get_active() is None
    plan = faults.activate(FaultPlan.parse("seed=9"))
    assert faults.get_active() is plan
    faults.deactivate()
    assert faults.get_active() is None
