"""Checkpoint journal under writer races: duplicates, interleaving, stale
records.

A lease steal (or a hung worker waking up fenced) means two writers can
journal the *same* experiment — possibly interleaved with each other's
other records, possibly with a stale earlier record landing before a
fresher one.  The journal contract that makes this benign: records are
appended whole lines, the loader deduplicates by ``(experiment,
fingerprint)`` with last-write-wins, and reconstruction from the surviving
record is byte-identical to the original result.
"""

import json

from repro.harness.report import ExperimentResult, Table
from repro.resilience.checkpoint import (
    CheckpointJournal,
    load_journal,
    result_from_record,
    result_to_record,
)


def _result(experiment_id, marker="v1"):
    result = ExperimentResult(experiment_id, f"Title {experiment_id}")
    table = result.add_table(Table("cells", ("name", "cycles", "ratio")))
    table.add_row("layer0", 12345, 0.1 + 0.2)  # a float that must round-trip
    table.add_row("layer1", None, 1e-17)
    result.note(f"note {marker}")
    return result


def _record(experiment_id, marker="v1"):
    return result_to_record(
        experiment_id, f"fp-{experiment_id}", _result(experiment_id, marker)
    )


def test_interleaved_duplicate_writers_last_write_wins(tmp_path):
    path = tmp_path / "checkpoint.jsonl"
    writer_a = CheckpointJournal(path)
    writer_b = CheckpointJournal(path)

    # Two racing writers: B duplicates A's records, interleaved with its
    # own, and lands a stale copy of exp2 *before* A's fresh one.
    writer_a.append(_record("exp1"))
    writer_b.append(_record("exp1"))          # identical duplicate
    writer_b.append(_record("exp2", "stale"))
    writer_a.append(_record("exp3"))
    writer_a.append(_record("exp2", "fresh"))  # last write for exp2

    records, corrupt = load_journal(path)
    assert corrupt == 0
    assert len(records) == 3  # five appends, three keys
    winner = records[("exp2", "fp-exp2")]
    assert winner["result"]["notes"] == ["note fresh"]


def test_reconstruction_is_byte_identical(tmp_path):
    path = tmp_path / "checkpoint.jsonl"
    journal = CheckpointJournal(path)
    original = _record("exp1")
    journal.append(original)
    CheckpointJournal(path).append(original)  # the duplicate from the race

    records, _ = load_journal(path)
    restored = result_from_record(records[("exp1", "fp-exp1")])
    # Round-trip the reconstruction through the record encoder: identical
    # bytes means cells (floats included) survived exactly.
    assert json.dumps(
        result_to_record("exp1", "fp-exp1", restored), sort_keys=True
    ) == json.dumps(original, sort_keys=True)
    assert restored.tables[0].rows == _result("exp1").tables[0].rows


def test_torn_line_between_writers_is_skipped_not_fatal(tmp_path):
    path = tmp_path / "checkpoint.jsonl"
    writer_a = CheckpointJournal(path)
    writer_a.append(_record("exp1"))
    writer_a.append(_record("exp2"), corrupt=True)  # torn mid-append
    CheckpointJournal(path).append(_record("exp2"))  # survivor's clean copy

    records, corrupt = load_journal(path)
    assert corrupt == 1
    assert set(records) == {("exp1", "fp-exp1"), ("exp2", "fp-exp2")}
    assert result_from_record(records[("exp2", "fp-exp2")]).notes == ["note v1"]
