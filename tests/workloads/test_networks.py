"""Network layer tables: shape chaining, FLOP totals, registry."""

import pytest

from repro.workloads import NETWORKS, network, network_names


#: Published conv-only GFLOPs per image (2 FLOPs/MAC), loose bounds.
EXPECTED_GFLOPS = {
    "AlexNet": (1.0, 3.0),  # ungrouped variant
    "VGG16": (28.0, 33.0),
    "ResNet": (6.5, 9.0),
    "GoogleNet": (2.5, 4.0),
    "DenseNet": (4.5, 7.0),
    "YOLO": (25.0, 34.0),
    "ZFNet": (1.5, 3.5),
}


def test_registry_has_seven_networks():
    assert len(NETWORKS) == 7
    assert set(network_names()) == set(EXPECTED_GFLOPS)


@pytest.mark.parametrize("name", list(EXPECTED_GFLOPS))
def test_flop_totals_match_published(name):
    layers = network(name, batch=1)
    gflops = sum(2 * layer.macs for layer in layers) / 1e9
    low, high = EXPECTED_GFLOPS[name]
    assert low <= gflops <= high, f"{name}: {gflops:.2f} GFLOPs outside [{low}, {high}]"


@pytest.mark.parametrize("name", list(EXPECTED_GFLOPS))
def test_batch_scales_macs(name):
    one = sum(l.macs for l in network(name, 1))
    eight = sum(l.macs for l in network(name, 8))
    assert eight == 8 * one


@pytest.mark.parametrize("name", list(EXPECTED_GFLOPS))
def test_layer_names_unique_and_prefixed(name):
    layers = network(name, 1)
    names = [l.name for l in layers]
    assert len(set(names)) == len(names)
    assert all(n.lower().startswith(name.lower()[:4]) or "." in n for n in names)


def test_case_insensitive_lookup():
    assert network("resnet", 1) == network("ResNet", 1)


def test_unknown_network():
    with pytest.raises(KeyError):
        network("LeNet")


class TestSpecificShapes:
    def test_resnet_conv1(self):
        conv1 = network("ResNet", 1)[0]
        assert conv1.c_in == 3 and conv1.h_filter == 7 and conv1.stride == 2
        assert conv1.h_out == 112

    def test_resnet_layer_count(self):
        # conv1 + 16 blocks x 3 convs + 4 projections = 53
        assert len(network("ResNet", 1)) == 53

    def test_resnet_v15_stride_on_3x3(self):
        layers = {l.name: l for l in network("ResNet", 1)}
        assert layers["resnet50.s3b1.conv2"].stride == 2
        assert layers["resnet50.s3b1.conv1"].stride == 1

    def test_vgg_all_3x3_stride_1(self):
        for layer in network("VGG16", 1):
            assert layer.h_filter == layer.w_filter == 3
            assert layer.stride == 1

    def test_densenet_channel_growth(self):
        layers = network("DenseNet", 1)
        first_block = [l for l in layers if l.name.startswith("densenet121.b1l")]
        bottlenecks = [l for l in first_block if "bottleneck" in l.name]
        channels = [l.c_in for l in bottlenecks]
        assert channels == [64 + 32 * i for i in range(6)]

    def test_yolo_input_resolution(self):
        assert network("YOLO", 1)[0].h_in == 416

    def test_googlenet_inception_channel_chain(self):
        layers = {l.name: l for l in network("GoogleNet", 1)}
        # inc3b consumes 3a's concatenated output: 64+128+32+32 = 256
        assert layers["googlenet.inc3b.1x1"].c_in == 256

    def test_strided_layers_exist(self):
        strided = [l for name in network_names() for l in network(name, 1) if l.stride > 1]
        assert len(strided) >= 6
