"""MobileNet-v1 workload table."""

import pytest

from repro.core import ConvSpec, GroupedConvSpec
from repro.workloads import mobilenet_v1, mobilenet_v1_pointwise_only


def test_layer_count():
    layers = mobilenet_v1(1)
    assert len(layers) == 1 + 13 * 2  # stem + (dw + pw) x 13


def test_flops_match_published():
    layers = mobilenet_v1(1)
    gflops = 2 * sum(l.macs for l in layers) / 1e9
    assert 0.9 <= gflops <= 1.3  # published ~1.1 GFLOPs


def test_depthwise_blocks_are_grouped():
    layers = mobilenet_v1(1)
    depthwise = [l for l in layers if isinstance(l, GroupedConvSpec)]
    assert len(depthwise) == 13
    assert all(l.is_depthwise for l in depthwise)


def test_channel_chaining():
    """Each pointwise consumes its depthwise's channels at the right size."""
    layers = mobilenet_v1(1)
    for i in range(1, len(layers) - 1, 2):
        dw = layers[i]
        pw = layers[i + 1]
        assert isinstance(dw, GroupedConvSpec) and isinstance(pw, ConvSpec)
        assert pw.c_in == dw.base.c_out
        assert pw.h_in == dw.base.h_out


def test_pointwise_only_subset():
    dense = mobilenet_v1_pointwise_only(1)
    assert all(isinstance(l, ConvSpec) for l in dense)
    assert len(dense) == 14
    assert all(l.is_pointwise() for l in dense[1:])


def test_batch_parameter():
    assert all(
        (l.base.n if isinstance(l, GroupedConvSpec) else l.n) == 4
        for l in mobilenet_v1(4)
    )


def test_final_resolution():
    last = mobilenet_v1(1)[-1]
    assert last.h_out == 7
