"""Synthetic microbenchmark definitions."""

import pytest

from repro.core import tpu_multi_tile_policy
from repro.workloads import (
    conv_validation_layers,
    fig4_layers,
    fig14_layer,
    gemm_sweep,
    memory_bound_layers,
    small_channel_sweep,
    strided_layers,
)


class TestGemmSweep:
    def test_range_covers_paper(self):
        shapes = gemm_sweep()
        dims = [d for s in shapes for d in (s.m, s.n, s.k)]
        assert min(dims) == 256 and max(dims) == 8192

    def test_no_duplicates(self):
        shapes = gemm_sweep()
        keys = {(s.m, s.n, s.k) for s in shapes}
        assert len(keys) == len(shapes)

    def test_includes_square_diagonal(self):
        shapes = {(s.m, s.n, s.k) for s in gemm_sweep()}
        for size in (256, 1024, 8192):
            assert (size, size, size) in shapes


class TestConvValidationLayers:
    def test_no_multi_tile_triggered(self):
        """Fig 13b uses layers that do NOT trigger the Sec. IV-B
        optimisation: policy must be 1 everywhere."""
        for layer in conv_validation_layers():
            assert tpu_multi_tile_policy(layer) == 1

    def test_batch_parameter(self):
        assert all(l.n == 4 for l in conv_validation_layers(batch=4))


class TestFig4Layers:
    def test_labels_encode_geometry(self):
        for layer in fig4_layers():
            w_i, c_i, c_o, w_f = map(int, layer.name.split("-"))
            assert (layer.w_in, layer.c_in, layer.c_out, layer.w_filter) == (w_i, c_i, c_o, w_f)

    def test_strides_sweepable(self):
        for layer in fig4_layers():
            for stride in (2, 4):
                layer.with_stride(stride)  # must not raise


class TestFig14:
    def test_study_layer_matches_paper(self):
        layer = fig14_layer()
        assert (layer.n, layer.c_in, layer.w_in, layer.c_out, layer.w_filter) == (
            8, 8, 128, 128, 3,
        )
        assert tpu_multi_tile_policy(layer) == 3

    def test_sweep_engages_policy_at_various_strengths(self):
        policies = {tpu_multi_tile_policy(l) for l in small_channel_sweep()}
        assert len(policies) >= 3  # different channel/filter combos differ


class TestFig18Selections:
    def test_strided_layers_all_strided_spatial(self):
        for layer in strided_layers():
            assert layer.stride > 1
            assert not layer.is_pointwise()

    def test_strided_layers_from_multiple_networks(self):
        prefixes = {l.name.split(".")[0] for l in strided_layers()}
        assert len(prefixes) >= 4

    def test_memory_bound_layers_nonempty(self):
        layers = memory_bound_layers()
        assert len(layers) >= 5
        assert all(l.n == 8 for l in layers)
