"""Property-based tests (hypothesis) for the core algorithm invariants.

These pin the load-bearing algebraic facts the whole reproduction rests on:
every lowering path computes the same convolution as the direct reference,
for arbitrary geometry (batch, channels, filter, stride, padding, dilation)
and arbitrary integer-valued data (so equality is exact, no tolerances).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    ColumnOrder,
    ConvSpec,
    column_permutation,
    conv2d_channel_first,
    direct_conv2d,
    flatten_filters,
    greedy_reuse_order,
    im2col,
    merged_gemm_operands,
    ofmap_from_gemm,
    order_reuse_fraction,
    overlap_fraction,
    plan_multi_tile,
    decompose,
    tpu_multi_tile_policy,
)
from repro.core.reference import gemm


@st.composite
def conv_specs(draw):
    """Random small-but-interesting conv geometries (filter fits input)."""
    h_filter = draw(st.integers(1, 4))
    w_filter = draw(st.integers(1, 4))
    stride = draw(st.integers(1, 3))
    dilation = draw(st.integers(1, 2))
    padding = draw(st.integers(0, 2))
    eff_h = dilation * (h_filter - 1) + 1
    eff_w = dilation * (w_filter - 1) + 1
    h_in = draw(st.integers(max(1, eff_h - 2 * padding), 10))
    w_in = draw(st.integers(max(1, eff_w - 2 * padding), 10))
    # Guarantee the filter fits at least once.
    h_in = max(h_in, eff_h - 2 * padding)
    w_in = max(w_in, eff_w - 2 * padding)
    return ConvSpec(
        n=draw(st.integers(1, 3)),
        c_in=draw(st.integers(1, 5)),
        h_in=h_in,
        w_in=w_in,
        c_out=draw(st.integers(1, 5)),
        h_filter=h_filter,
        w_filter=w_filter,
        stride=stride,
        padding=padding,
        dilation=dilation,
    )


def _operands(spec, seed):
    rng = np.random.default_rng(seed)
    ifmap = rng.integers(-3, 4, size=spec.ifmap_shape).astype(np.float64)
    weights = rng.integers(-3, 4, size=spec.filter_shape).astype(np.float64)
    return ifmap, weights


@settings(max_examples=60, deadline=None)
@given(spec=conv_specs(), seed=st.integers(0, 2**16))
def test_channel_first_equals_direct(spec, seed):
    ifmap, weights = _operands(spec, seed)
    assert np.array_equal(
        conv2d_channel_first(ifmap, weights, spec), direct_conv2d(ifmap, weights, spec)
    )


@settings(max_examples=40, deadline=None)
@given(spec=conv_specs(), seed=st.integers(0, 2**16))
def test_both_explicit_lowerings_equal_direct(spec, seed):
    ifmap, weights = _operands(spec, seed)
    reference = direct_conv2d(ifmap, weights, spec)
    for order in ColumnOrder:
        lowered = im2col(ifmap, spec, order)
        out = ofmap_from_gemm(gemm(lowered, flatten_filters(weights, spec, order)), spec)
        assert np.array_equal(out, reference)


@settings(max_examples=40, deadline=None)
@given(spec=conv_specs(), seed=st.integers(0, 2**16))
def test_column_permutation_links_orders(spec, seed):
    ifmap, _ = _operands(spec, seed)
    perm = column_permutation(spec)
    low_cl = im2col(ifmap, spec, ColumnOrder.CHANNEL_LAST)
    low_cf = im2col(ifmap, spec, ColumnOrder.CHANNEL_FIRST)
    assert np.array_equal(low_cf, low_cl[:, perm])


@settings(max_examples=40, deadline=None)
@given(spec=conv_specs(), seed=st.integers(0, 2**16), group_size=st.integers(1, 6))
def test_multi_tile_merge_preserves_conv(spec, seed, group_size):
    """The Sec. IV-B merge is exact for every group size and geometry."""
    ifmap, weights = _operands(spec, seed)
    acc = np.zeros((spec.lowered_rows(), spec.c_out))
    for group in plan_multi_tile(spec, group_size):
        a, b = merged_gemm_operands(ifmap, weights, spec, group)
        acc += a @ b
    assert np.array_equal(ofmap_from_gemm(acc, spec), direct_conv2d(ifmap, weights, spec))


@settings(max_examples=60, deadline=None)
@given(spec=conv_specs())
def test_overlap_fraction_is_symmetric_and_bounded(spec):
    tiles = decompose(spec)
    for a in tiles[: min(4, len(tiles))]:
        for b in tiles[-min(4, len(tiles)):]:
            if a.index == b.index:
                continue
            f_ab = overlap_fraction(spec, a, b)
            f_ba = overlap_fraction(spec, b, a)
            assert 0.0 <= f_ab <= 1.0
            assert f_ab == f_ba


@settings(max_examples=60, deadline=None)
@given(spec=conv_specs())
def test_greedy_order_never_worse_than_naive(spec):
    naive = order_reuse_fraction(spec, decompose(spec))
    greedy = order_reuse_fraction(spec, greedy_reuse_order(spec))
    assert greedy >= naive - 1e-12


@settings(max_examples=60, deadline=None)
@given(spec=conv_specs(), array=st.sampled_from([32, 64, 128, 256]))
def test_policy_bounds(spec, array):
    tiles = tpu_multi_tile_policy(spec, array)
    assert 1 <= tiles <= max(1, spec.w_filter)
    if spec.c_in <= array and tiles > 1:
        assert tiles * spec.c_in <= array or tiles == 1


@settings(max_examples=60, deadline=None)
@given(spec=conv_specs())
def test_lowered_geometry_identities(spec):
    assert spec.gemm_shape().macs == spec.macs
    assert spec.lowered_elements() == spec.lowered_rows() * spec.lowered_cols()
    assert spec.positions == spec.h_filter * spec.w_filter
