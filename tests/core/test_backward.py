"""Backward passes via the channel-first decomposition."""

import numpy as np
import pytest

from repro.core import (
    conv2d_backward_data,
    conv2d_backward_weights,
    conv2d_channel_first,
    direct_conv2d,
    random_conv_operands,
)


def _grad(spec, seed=9):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(spec.ofmap_shape)


class TestAdjointIdentities:
    """The defining property: the backward passes are the adjoints of the
    (linear) forward map, so inner products must match exactly."""

    def test_backward_data_adjoint(self, operands):
        spec, x, w = operands
        g = _grad(spec)
        lhs = float((direct_conv2d(x, w, spec) * g).sum())
        rhs = float((x.astype(np.float64) * conv2d_backward_data(g, w, spec)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10, abs=1e-8)

    def test_backward_weights_adjoint(self, operands):
        spec, x, w = operands
        g = _grad(spec)
        lhs = float((direct_conv2d(x, w, spec) * g).sum())
        rhs = float((w.astype(np.float64) * conv2d_backward_weights(x, g, spec)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10, abs=1e-8)


class TestShapes:
    def test_backward_data_shape(self, operands):
        spec, _, w = operands
        assert conv2d_backward_data(_grad(spec), w, spec).shape == spec.ifmap_shape

    def test_backward_weights_shape(self, operands):
        spec, x, _ = operands
        assert conv2d_backward_weights(x, _grad(spec), spec).shape == spec.filter_shape


class TestDirectionalDerivatives:
    def test_data_gradient_matches_finite_difference(self, small_spec):
        spec = small_spec
        x, w = random_conv_operands(spec, seed=2)
        x = x.astype(np.float64)
        w = w.astype(np.float64)
        rng = np.random.default_rng(3)
        g = rng.standard_normal(spec.ofmap_shape)
        direction = rng.standard_normal(x.shape)
        eps = 1e-6
        loss = lambda xx: float((conv2d_channel_first(xx, w, spec) * g).sum())
        numeric = (loss(x + eps * direction) - loss(x - eps * direction)) / (2 * eps)
        analytic = float((conv2d_backward_data(g, w, spec) * direction).sum())
        assert numeric == pytest.approx(analytic, rel=1e-6)

    def test_weight_gradient_matches_finite_difference(self, strided_spec):
        spec = strided_spec
        x, w = random_conv_operands(spec, seed=4)
        x = x.astype(np.float64)
        w = w.astype(np.float64)
        rng = np.random.default_rng(5)
        g = rng.standard_normal(spec.ofmap_shape)
        direction = rng.standard_normal(w.shape)
        eps = 1e-6
        loss = lambda ww: float((conv2d_channel_first(x, ww, spec) * g).sum())
        numeric = (loss(w + eps * direction) - loss(w - eps * direction)) / (2 * eps)
        analytic = float((conv2d_backward_weights(x, g, spec) * direction).sum())
        assert numeric == pytest.approx(analytic, rel=1e-6)


class TestOrderFreedom:
    def test_visit_order_does_not_matter(self, small_spec):
        from repro.core import decompose

        spec = small_spec
        x, w = random_conv_operands(spec, seed=6)
        g = _grad(spec)
        reversed_order = list(reversed(decompose(spec)))
        # g is real-valued, so different accumulation orders differ by ulps.
        assert np.allclose(
            conv2d_backward_data(g, w, spec),
            conv2d_backward_data(g, w, spec, order=reversed_order),
            rtol=1e-12, atol=1e-12,
        )
        assert np.allclose(
            conv2d_backward_weights(x, g, spec),
            conv2d_backward_weights(x, g, spec, order=reversed_order),
            rtol=1e-12, atol=1e-12,
        )


class TestValidation:
    def test_shape_mismatches(self, small_spec):
        x, w = random_conv_operands(small_spec)
        g = _grad(small_spec)
        with pytest.raises(ValueError):
            conv2d_backward_data(g[:1], w, small_spec)
        with pytest.raises(ValueError):
            conv2d_backward_data(g, w[:1], small_spec)
        with pytest.raises(ValueError):
            conv2d_backward_weights(x[:1], g, small_spec)
