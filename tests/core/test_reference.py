"""Direct-convolution and GEMM references."""

import numpy as np
import pytest

from repro.core import ConvSpec, direct_conv2d, gemm, random_conv_operands
from repro.core.reference import pad_ifmap


def naive_conv(ifmap, weights, spec):
    """Sextuple-loop convolution — the slowest, most obviously-correct oracle."""
    padded = pad_ifmap(ifmap, spec.padding).astype(np.float64)
    out = np.zeros(spec.ofmap_shape)
    for n in range(spec.n):
        for co in range(spec.c_out):
            for oy in range(spec.h_out):
                for ox in range(spec.w_out):
                    acc = 0.0
                    for ci in range(spec.c_in):
                        for r in range(spec.h_filter):
                            for s in range(spec.w_filter):
                                y = oy * spec.stride + r * spec.dilation
                                x = ox * spec.stride + s * spec.dilation
                                acc += padded[n, ci, y, x] * float(weights[co, ci, r, s])
                    out[n, co, oy, ox] = acc
    return out


def test_direct_conv_matches_naive_loops(operands):
    spec, ifmap, weights = operands
    assert np.array_equal(direct_conv2d(ifmap, weights, spec), naive_conv(ifmap, weights, spec))


def test_direct_conv_identity_kernel():
    spec = ConvSpec(n=1, c_in=1, h_in=4, w_in=4, c_out=1, h_filter=1, w_filter=1)
    ifmap = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
    weights = np.ones((1, 1, 1, 1), dtype=np.float32)
    assert np.array_equal(direct_conv2d(ifmap, weights, spec)[0, 0], ifmap[0, 0])


def test_direct_conv_shape_validation(small_spec):
    ifmap, weights = random_conv_operands(small_spec)
    with pytest.raises(ValueError):
        direct_conv2d(ifmap[:, :1], weights, small_spec)
    with pytest.raises(ValueError):
        direct_conv2d(ifmap, weights[:1], small_spec)


def test_gemm_basic():
    a = np.array([[1.0, 2.0], [3.0, 4.0]])
    b = np.array([[5.0, 6.0], [7.0, 8.0]])
    assert np.array_equal(gemm(a, b), a @ b)


def test_gemm_accumulate():
    a = np.ones((2, 3))
    b = np.ones((3, 2))
    acc = np.ones((2, 2))
    result = gemm(a, b, accumulate_into=acc)
    assert result is acc
    assert np.array_equal(acc, np.full((2, 2), 4.0))


def test_gemm_dim_checks():
    with pytest.raises(ValueError):
        gemm(np.ones((2, 3)), np.ones((2, 3)))
    with pytest.raises(ValueError):
        gemm(np.ones(3), np.ones((3, 2)))
    with pytest.raises(ValueError):
        gemm(np.ones((2, 3)), np.ones((3, 2)), accumulate_into=np.ones((3, 3)))


def test_pad_ifmap_zero_is_noop():
    x = np.ones((1, 1, 3, 3))
    assert pad_ifmap(x, 0) is x


def test_pad_ifmap_negative_rejected():
    with pytest.raises(ValueError):
        pad_ifmap(np.ones((1, 1, 3, 3)), -1)


def test_random_operands_deterministic(small_spec):
    a1, w1 = random_conv_operands(small_spec, seed=3)
    a2, w2 = random_conv_operands(small_spec, seed=3)
    a3, _ = random_conv_operands(small_spec, seed=4)
    assert np.array_equal(a1, a2) and np.array_equal(w1, w2)
    assert not np.array_equal(a1, a3)


def test_random_operands_small_integers(small_spec):
    ifmap, weights = random_conv_operands(small_spec)
    assert np.all(np.abs(ifmap) <= 4) and np.all(np.abs(weights) <= 4)
    assert ifmap.dtype == np.float32
