"""Layout permutations and flat-index math."""

import numpy as np
import pytest

from repro.core.layouts import Layout, dram_linear_address, flatten_index, nchw_to, to_nchw


SHAPE = (2, 3, 4, 5)


@pytest.fixture
def tensor():
    return np.arange(np.prod(SHAPE), dtype=np.float32).reshape(SHAPE)


@pytest.mark.parametrize("layout", list(Layout))
def test_round_trip(tensor, layout):
    assert np.array_equal(to_nchw(nchw_to(tensor, layout), layout), tensor)


@pytest.mark.parametrize("layout", list(Layout))
def test_flatten_index_matches_physical_order(tensor, layout):
    physical = nchw_to(tensor, layout).ravel()
    for n in range(SHAPE[0]):
        for c in range(SHAPE[1]):
            for h in range(SHAPE[2]):
                for w in range(SHAPE[3]):
                    offset = flatten_index(layout, SHAPE, n, c, h, w)
                    assert physical[offset] == tensor[n, c, h, w]


def test_nchw_identity_permutation(tensor):
    assert np.array_equal(nchw_to(tensor, Layout.NCHW), tensor)


def test_nhwc_channel_adjacency(tensor):
    """In NHWC, the channels of one pixel are adjacent — the property the
    channel-first fill relies on."""
    base = flatten_index(Layout.NHWC, SHAPE, 0, 0, 1, 2)
    for c in range(1, SHAPE[1]):
        assert flatten_index(Layout.NHWC, SHAPE, 0, c, 1, 2) == base + c


def test_hwcn_batch_adjacency(tensor):
    """In HWCN, the batch elements of one (pixel, channel) are adjacent —
    what fills the vector-memory word (Sec. IV-A)."""
    base = flatten_index(Layout.HWCN, SHAPE, 0, 1, 2, 3)
    assert flatten_index(Layout.HWCN, SHAPE, 1, 1, 2, 3) == base + 1


def test_nchw_row_adjacency(tensor):
    base = flatten_index(Layout.NCHW, SHAPE, 0, 0, 0, 0)
    assert flatten_index(Layout.NCHW, SHAPE, 0, 0, 0, 1) == base + 1


def test_dram_linear_address_scales_by_elem_bytes():
    a2 = dram_linear_address(Layout.NHWC, SHAPE, 1, 2, 3, 4, elem_bytes=2)
    a4 = dram_linear_address(Layout.NHWC, SHAPE, 1, 2, 3, 4, elem_bytes=4)
    assert a4 == 2 * a2


def test_dram_linear_address_base_offset():
    a = dram_linear_address(Layout.NCHW, SHAPE, 0, 0, 0, 0, base=1000)
    assert a == 1000


def test_flatten_index_bounds():
    with pytest.raises(IndexError):
        flatten_index(Layout.NCHW, SHAPE, 2, 0, 0, 0)
    with pytest.raises(IndexError):
        flatten_index(Layout.NCHW, SHAPE, 0, 0, -1, 0)


def test_non_4d_rejected():
    with pytest.raises(ValueError):
        nchw_to(np.zeros((2, 3)), Layout.NHWC)
    with pytest.raises(ValueError):
        to_nchw(np.zeros((2, 3, 4)), Layout.NHWC)


def test_axes_inverse_consistency():
    for layout in Layout:
        forward = layout.axes_from_nchw
        inverse = layout.axes_to_nchw
        composed = [forward[i] for i in inverse]
        assert composed == [0, 1, 2, 3]
