"""The implicit channel-first algorithm: views, order freedom, plans."""

import numpy as np
import pytest

from repro.core import (
    ChannelFirstPlan,
    conv2d_channel_first,
    decompose,
    decomposed_tile_view,
    decomposed_weight_slice,
    direct_conv2d,
    random_conv_operands,
)
from repro.core.channel_first import DecomposedFilter
from repro.core.reference import pad_ifmap


def test_matches_direct_conv(operands):
    spec, ifmap, weights = operands
    assert np.array_equal(
        conv2d_channel_first(ifmap, weights, spec), direct_conv2d(ifmap, weights, spec)
    )


def test_decompose_count_and_tags(small_spec):
    tiles = decompose(small_spec)
    assert len(tiles) == 9
    assert tiles[0].paper_tag() == "<1,1>"
    assert tiles[-1].paper_tag() == "<3,3>"
    assert [t.index for t in tiles] == list(range(9))


def test_tile_view_is_a_view_not_a_copy(operands):
    """Zero memory overhead: the decomposed tile shares storage with the
    padded IFMap."""
    spec, ifmap, _ = operands
    padded = pad_ifmap(ifmap, spec.padding)
    for tile in decompose(spec):
        view = decomposed_tile_view(padded, spec, tile)
        assert view.base is padded or view.base is padded.base
        assert view.shape == (spec.n, spec.c_in, spec.h_out, spec.w_out)


def test_tile_view_contents(strided_spec):
    """Each view element must be the tap the geometry says it is."""
    spec = strided_spec
    ifmap, _ = random_conv_operands(spec, seed=5)
    padded = pad_ifmap(ifmap, spec.padding)
    tile = decompose(spec)[4]  # centre position (1,1)
    view = decomposed_tile_view(padded, spec, tile)
    for oy in range(spec.h_out):
        for ox in range(spec.w_out):
            y = oy * spec.stride + tile.r * spec.dilation
            x = ox * spec.stride + tile.s * spec.dilation
            assert np.array_equal(view[:, :, oy, ox], padded[:, :, y, x])


def test_weight_slice_shape_and_values(operands):
    spec, _, weights = operands
    tile = decompose(spec)[0]
    b = decomposed_weight_slice(weights, spec, tile)
    assert b.shape == (spec.c_in, spec.c_out)
    assert np.array_equal(b, weights[:, :, tile.r, tile.s].T)


def test_arbitrary_visit_order(operands):
    """Commutativity of accumulation: any visit order gives the same OFMap."""
    spec, ifmap, weights = operands
    tiles = decompose(spec)
    reference = conv2d_channel_first(ifmap, weights, spec)
    reordered = list(reversed(tiles))
    assert np.array_equal(
        conv2d_channel_first(ifmap, weights, spec, order=reordered), reference
    )


def test_order_must_cover_all_tiles(small_spec):
    ifmap, weights = random_conv_operands(small_spec)
    tiles = decompose(small_spec)
    with pytest.raises(ValueError):
        conv2d_channel_first(ifmap, weights, small_spec, order=tiles[:-1])
    with pytest.raises(ValueError):
        conv2d_channel_first(ifmap, weights, small_spec, order=tiles + [tiles[0]])


def test_order_rejects_inconsistent_tile(small_spec):
    ifmap, weights = random_conv_operands(small_spec)
    tiles = decompose(small_spec)
    bogus = [DecomposedFilter(r=0, s=0, index=5)] + tiles[1:]
    with pytest.raises(ValueError):
        conv2d_channel_first(ifmap, weights, small_spec, order=bogus)


def test_plan_geometry(small_spec):
    plan = ChannelFirstPlan.build(small_spec)
    assert plan.gemm_m == small_spec.lowered_rows()
    assert plan.gemm_k == small_spec.c_in
    assert plan.gemm_n == small_spec.c_out
    assert plan.total_macs == small_spec.macs


def test_plan_tile_footprint_shrinks_with_stride(small_spec):
    """The stride-insensitivity mechanism: per-tile input shrinks with the
    OFMap, quadratically in stride."""
    base = ChannelFirstPlan.build(small_spec).tile_input_elements
    spec2 = small_spec.with_stride(2)
    strided = ChannelFirstPlan.build(spec2).tile_input_elements
    ratio = base / strided
    assert ratio == pytest.approx(
        (small_spec.h_out * small_spec.w_out) / (spec2.h_out * spec2.w_out)
    )
    assert ratio > 3  # ~4x for stride 2


def test_shape_validation(small_spec):
    ifmap, weights = random_conv_operands(small_spec)
    with pytest.raises(ValueError):
        conv2d_channel_first(ifmap[:1], weights, small_spec)
    with pytest.raises(ValueError):
        decomposed_tile_view(ifmap, small_spec, decompose(small_spec)[0])  # not padded
