"""Position-structured sparsity: masks, pruning, sparse forward pass."""

import numpy as np
import pytest

from repro.core import (
    PositionMask,
    apply_mask_to_weights,
    conv2d_channel_first_sparse,
    direct_conv2d,
    prune_positions,
    random_conv_operands,
)


class TestMask:
    def test_density(self, small_spec):
        mask = PositionMask(spec=small_spec, kept=(0, 4, 8))
        assert mask.density == pytest.approx(3 / 9)
        assert mask.keeps(4) and not mask.keeps(1)

    def test_kept_tiles(self, small_spec):
        mask = PositionMask(spec=small_spec, kept=(0, 8))
        tiles = mask.kept_tiles()
        assert [(t.r, t.s) for t in tiles] == [(0, 0), (2, 2)]

    def test_validation(self, small_spec):
        with pytest.raises(ValueError):
            PositionMask(spec=small_spec, kept=())
        with pytest.raises(ValueError):
            PositionMask(spec=small_spec, kept=(3, 1))  # unsorted
        with pytest.raises(ValueError):
            PositionMask(spec=small_spec, kept=(0, 9))  # out of range


class TestPruning:
    def test_keeps_largest_norms(self, small_spec):
        _, weights = random_conv_operands(small_spec, seed=1)
        weights = weights.astype(np.float64)
        weights[:, :, 1, 1] *= 100  # make the centre dominant
        weights[:, :, 0, 0] = 0  # and one corner empty
        _, mask = prune_positions(weights, small_spec, keep=1)
        assert mask.kept == (4,)  # the centre

    def test_pruned_weights_zeroed(self, small_spec):
        _, weights = random_conv_operands(small_spec, seed=2)
        pruned, mask = prune_positions(weights, small_spec, keep=3)
        for r in range(3):
            for s in range(3):
                index = r * 3 + s
                block = pruned[:, :, r, s]
                if mask.keeps(index):
                    assert np.array_equal(block, weights[:, :, r, s])
                else:
                    assert np.all(block == 0)

    def test_keep_all_is_identity(self, small_spec):
        _, weights = random_conv_operands(small_spec, seed=3)
        pruned, mask = prune_positions(weights, small_spec, keep=9)
        assert np.array_equal(pruned, weights)
        assert mask.density == 1.0

    def test_keep_bounds(self, small_spec):
        _, weights = random_conv_operands(small_spec)
        with pytest.raises(ValueError):
            prune_positions(weights, small_spec, keep=0)
        with pytest.raises(ValueError):
            prune_positions(weights, small_spec, keep=10)


class TestSparseForward:
    @pytest.mark.parametrize("keep", [1, 3, 5, 9])
    def test_equals_dense_on_masked_weights(self, small_spec, keep):
        x, weights = random_conv_operands(small_spec, seed=4)
        pruned, mask = prune_positions(weights, small_spec, keep=keep)
        sparse = conv2d_channel_first_sparse(x, weights, small_spec, mask)
        dense = direct_conv2d(x, pruned, small_spec)
        assert np.array_equal(sparse, dense)

    def test_strided_sparse(self, strided_spec):
        x, weights = random_conv_operands(strided_spec, seed=5)
        pruned, mask = prune_positions(weights, strided_spec, keep=4)
        sparse = conv2d_channel_first_sparse(x, weights, strided_spec, mask)
        assert np.array_equal(sparse, direct_conv2d(x, pruned, strided_spec))

    def test_mask_spec_must_match(self, small_spec, strided_spec):
        x, weights = random_conv_operands(small_spec)
        _, mask = prune_positions(
            random_conv_operands(strided_spec)[1], strided_spec, keep=2
        )
        with pytest.raises(ValueError):
            conv2d_channel_first_sparse(x, weights, small_spec, mask)

    def test_apply_mask_shape_check(self, small_spec):
        _, weights = random_conv_operands(small_spec)
        mask = PositionMask(spec=small_spec, kept=(0,))
        with pytest.raises(ValueError):
            apply_mask_to_weights(weights[:1], mask)
