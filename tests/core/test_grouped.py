"""Grouped and depthwise convolution."""

import numpy as np
import pytest

from repro.core import ConvSpec, GroupedConvSpec, depthwise_spec, direct_conv2d, grouped_conv2d


@pytest.fixture
def base():
    return ConvSpec(n=2, c_in=8, h_in=6, w_in=6, c_out=8,
                    h_filter=3, w_filter=3, stride=1, padding=1)


def _operands(spec: GroupedConvSpec, seed=0):
    rng = np.random.default_rng(seed)
    ifmap = rng.integers(-3, 4, spec.base.ifmap_shape).astype(np.float64)
    weights = rng.integers(-3, 4, spec.weight_shape).astype(np.float64)
    return ifmap, weights


class TestEquivalences:
    def test_groups_1_equals_dense(self, base):
        grouped = GroupedConvSpec(base=base, groups=1)
        ifmap, weights = _operands(grouped)
        assert np.array_equal(
            grouped_conv2d(ifmap, weights, grouped), direct_conv2d(ifmap, weights, base)
        )

    def test_grouped_is_blockdiagonal_dense(self, base):
        """A grouped conv equals the dense conv with a block-diagonal weight
        tensor (zeros across groups)."""
        grouped = GroupedConvSpec(base=base, groups=2)
        ifmap, weights = _operands(grouped, seed=1)
        dense_weights = np.zeros(base.filter_shape)
        cin_g = base.c_in // 2
        cout_g = base.c_out // 2
        for g in range(2):
            dense_weights[g * cout_g : (g + 1) * cout_g, g * cin_g : (g + 1) * cin_g] = (
                weights[g * cout_g : (g + 1) * cout_g]
            )
        assert np.array_equal(
            grouped_conv2d(ifmap, weights, grouped),
            direct_conv2d(ifmap, dense_weights, base),
        )

    def test_depthwise_per_channel(self):
        """Depthwise: each output channel depends on its input channel only."""
        spec = depthwise_spec(n=1, channels=4, hw=5)
        ifmap, weights = _operands(spec, seed=2)
        out = grouped_conv2d(ifmap, weights, spec)
        bumped = ifmap.copy()
        bumped[:, 0] += 1.0
        out_bumped = grouped_conv2d(bumped, weights, spec)
        assert not np.array_equal(out[:, 0], out_bumped[:, 0])
        assert np.array_equal(out[:, 1:], out_bumped[:, 1:])


class TestAccounting:
    def test_macs_divide_by_groups(self, base):
        for groups in (1, 2, 4, 8):
            grouped = GroupedConvSpec(base=base, groups=groups)
            assert grouped.macs == base.macs // groups

    def test_weight_shape(self, base):
        grouped = GroupedConvSpec(base=base, groups=4)
        assert grouped.weight_shape == (8, 2, 3, 3)

    def test_depthwise_flag(self, base):
        assert depthwise_spec(n=1, channels=8, hw=6).is_depthwise
        assert not GroupedConvSpec(base=base, groups=2).is_depthwise

    def test_per_group_spec(self, base):
        group_spec = GroupedConvSpec(base=base, groups=4).per_group_spec()
        assert group_spec.c_in == 2 and group_spec.c_out == 2
        assert group_spec.h_in == base.h_in


class TestValidation:
    def test_groups_must_divide(self, base):
        with pytest.raises(ValueError):
            GroupedConvSpec(base=base, groups=3)

    def test_positive_groups(self, base):
        with pytest.raises(ValueError):
            GroupedConvSpec(base=base, groups=0)

    def test_operand_shapes(self, base):
        grouped = GroupedConvSpec(base=base, groups=2)
        ifmap, weights = _operands(grouped)
        with pytest.raises(ValueError):
            grouped_conv2d(ifmap[:1], weights, grouped)
        with pytest.raises(ValueError):
            grouped_conv2d(ifmap, weights[:, :1], grouped)
