"""Geometry and accounting of ConvSpec/GemmShape."""

import math

import pytest

from repro.core import ConvSpec, GemmShape, output_extent


class TestOutputExtent:
    def test_basic(self):
        assert output_extent(5, 3, 1, 0) == 3

    def test_stride(self):
        assert output_extent(5, 3, 2, 0) == 2

    def test_padding(self):
        assert output_extent(5, 3, 1, 1) == 5  # SAME

    def test_dilation(self):
        # effective filter = 2*(3-1)+1 = 5
        assert output_extent(9, 3, 1, 0, dilation=2) == 5

    def test_resnet_conv1(self):
        assert output_extent(224, 7, 2, 3) == 112

    def test_filter_too_large(self):
        with pytest.raises(ValueError):
            output_extent(3, 5, 1, 0)

    @pytest.mark.parametrize("bad", [(0, 3, 1, 0), (5, 0, 1, 0), (5, 3, 0, 0), (5, 3, 1, -1)])
    def test_invalid_args(self, bad):
        with pytest.raises(ValueError):
            output_extent(*bad)


class TestGemmShape:
    def test_flops_is_twice_macs(self):
        shape = GemmShape(3, 4, 5)
        assert shape.macs == 60
        assert shape.flops == 120

    def test_bytes_moved(self):
        shape = GemmShape(2, 3, 4)
        # A: 2x4, B: 4x3, C: 2x3 at 2 bytes
        assert shape.bytes_moved(2) == 2 * (8 + 12 + 6)

    def test_arithmetic_intensity_positive(self):
        assert GemmShape(128, 128, 128).arithmetic_intensity() > 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            GemmShape(0, 1, 1)


class TestConvSpec:
    def test_output_shape(self, small_spec):
        assert small_spec.ofmap_shape == (2, 5, 6, 6)

    def test_strided_output_shape(self, strided_spec):
        # (9 + 2 - 3)//2 + 1 = 5
        assert strided_spec.h_out == 5
        assert strided_spec.ofmap_shape == (2, 4, 5, 5)

    def test_macs_formula(self, small_spec):
        s = small_spec
        expected = s.n * s.c_out * s.h_out * s.w_out * s.c_in * 9
        assert s.macs == expected

    def test_lowered_dims(self, small_spec):
        assert small_spec.lowered_rows() == 2 * 36
        assert small_spec.lowered_cols() == 9 * 4

    def test_gemm_shape_consistent_with_macs(self, any_spec):
        assert any_spec.gemm_shape().macs == any_spec.macs

    def test_decomposed_gemm_covers_total(self, any_spec):
        d = any_spec.decomposed_gemm_shape()
        assert d.macs * any_spec.positions == any_spec.macs

    def test_lowering_expansion_at_least_near_one(self, small_spec):
        # stride 1, 3x3 with padding: close to 9x
        assert 6 < small_spec.lowering_expansion() <= 9

    def test_pointwise_expansion_is_one(self, pointwise_spec):
        assert pointwise_spec.lowering_expansion() == pytest.approx(1.0)

    def test_with_stride_and_batch(self, small_spec):
        assert small_spec.with_stride(2).stride == 2
        assert small_spec.with_batch(16).n == 16
        # original unchanged (frozen dataclass)
        assert small_spec.stride == 1 and small_spec.n == 2

    def test_filter_positions_row_major(self, small_spec):
        positions = list(small_spec.filter_positions())
        assert positions[0] == (0, 0)
        assert positions[1] == (0, 1)
        assert positions[-1] == (2, 2)
        assert len(positions) == 9

    def test_tap_coordinate_with_padding(self, small_spec):
        # output (0,0), tap (0,0) reaches into the padding halo
        assert small_spec.tap_coordinate(0, 0, 0, 0) == (-1, -1)
        assert small_spec.tap_coordinate(0, 0, 1, 1) == (0, 0)

    def test_tap_coordinate_dilation(self, dilated_spec):
        y, x = dilated_spec.tap_coordinate(0, 0, 2, 2)
        assert (y, x) == (-2 + 4, -2 + 4)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            ConvSpec(n=0, c_in=1, h_in=4, w_in=4, c_out=1, h_filter=3, w_filter=3)

    def test_rejects_filter_larger_than_input(self):
        with pytest.raises(ValueError):
            ConvSpec(n=1, c_in=1, h_in=2, w_in=2, c_out=1, h_filter=3, w_filter=3)

    def test_describe_mentions_geometry(self, strided_spec):
        text = strided_spec.describe()
        assert "s2" in text and "f3x3" in text

    def test_bytes_accounting(self, small_spec):
        assert small_spec.ifmap_bytes(2) == 2 * small_spec.ifmap_elements()
        assert small_spec.lowered_bytes(2) == 2 * small_spec.lowered_elements()

    def test_is_pointwise(self, pointwise_spec, small_spec):
        assert pointwise_spec.is_pointwise()
        assert not small_spec.is_pointwise()
