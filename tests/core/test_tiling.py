"""Capacity tiling and the multi-tile merge optimisation."""

import numpy as np
import pytest

from repro.core import (
    ConvSpec,
    direct_conv2d,
    merged_gemm_operands,
    ofmap_from_gemm,
    plan_multi_tile,
    plan_row_tiles,
    random_conv_operands,
    tpu_multi_tile_policy,
    workspace_elements,
    array_k_utilization,
)


class TestRowTiles:
    def test_exact_division(self):
        tiles = plan_row_tiles(100, 25)
        assert [t.rows for t in tiles] == [25, 25, 25, 25]
        assert tiles[0].row_start == 0 and tiles[-1].row_end == 100

    def test_remainder(self):
        tiles = plan_row_tiles(10, 4)
        assert [t.rows for t in tiles] == [4, 4, 2]

    def test_single(self):
        assert len(plan_row_tiles(5, 100)) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            plan_row_tiles(0, 4)
        with pytest.raises(ValueError):
            plan_row_tiles(4, 0)


class TestMultiTilePolicy:
    def test_paper_study_layer(self):
        """N=8, C_I=8, W_F=3 -> min(128/8, 3) = 3 (Fig 14a)."""
        spec = ConvSpec(n=8, c_in=8, h_in=128, w_in=128, c_out=128,
                        h_filter=3, w_filter=3, padding=1)
        assert tpu_multi_tile_policy(spec) == 3

    def test_bounded_by_array(self):
        spec = ConvSpec(n=1, c_in=64, h_in=16, w_in=16, c_out=8,
                        h_filter=7, w_filter=7, padding=3)
        assert tpu_multi_tile_policy(spec, array_rows=128) == 2  # 128//64

    def test_large_channels_no_merge(self):
        spec = ConvSpec(n=1, c_in=256, h_in=16, w_in=16, c_out=8,
                        h_filter=3, w_filter=3, padding=1)
        assert tpu_multi_tile_policy(spec) == 1

    def test_always_at_least_one(self):
        spec = ConvSpec(n=1, c_in=512, h_in=8, w_in=8, c_out=8,
                        h_filter=1, w_filter=1)
        assert tpu_multi_tile_policy(spec, array_rows=128) == 1

    def test_invalid_array(self):
        spec = ConvSpec(n=1, c_in=4, h_in=8, w_in=8, c_out=8, h_filter=3, w_filter=3)
        with pytest.raises(ValueError):
            tpu_multi_tile_policy(spec, array_rows=0)


class TestGrouping:
    def test_row_aligned_never_crosses_rows(self, small_spec):
        for g in range(1, 5):
            for group in plan_multi_tile(small_spec, g, row_aligned=True):
                rows = {t.r for t in group.tiles}
                assert len(rows) == 1

    def test_row_aligned_covers_all(self, small_spec):
        for g in range(1, 5):
            groups = plan_multi_tile(small_spec, g, row_aligned=True)
            indices = sorted(t.index for grp in groups for t in grp.tiles)
            assert indices == list(range(small_spec.positions))

    def test_unaligned_group_sizes(self, small_spec):
        groups = plan_multi_tile(small_spec, 4, row_aligned=False)
        assert [g.group_size for g in groups] == [4, 4, 1]

    def test_merged_k(self, small_spec):
        group = plan_multi_tile(small_spec, 3)[0]
        assert group.merged_k == 3 * small_spec.c_in

    def test_invalid_group_size(self, small_spec):
        with pytest.raises(ValueError):
            plan_multi_tile(small_spec, 0)


class TestMergedGemm:
    @pytest.mark.parametrize("group_size", [1, 2, 3])
    def test_merged_gemm_computes_conv(self, operands, group_size):
        """Associativity of GEMM over the concatenated K axis: summing the
        merged group GEMMs reproduces the convolution exactly."""
        spec, ifmap, weights = operands
        acc = np.zeros((spec.lowered_rows(), spec.c_out))
        for group in plan_multi_tile(spec, group_size):
            a, b = merged_gemm_operands(ifmap, weights, spec, group)
            assert a.shape == (spec.lowered_rows(), group.merged_k)
            acc += a @ b
        assert np.array_equal(ofmap_from_gemm(acc, spec), direct_conv2d(ifmap, weights, spec))

    def test_operand_validation(self, small_spec):
        ifmap, weights = random_conv_operands(small_spec)
        group = plan_multi_tile(small_spec, 2)[0]
        with pytest.raises(ValueError):
            merged_gemm_operands(ifmap[:1], weights, small_spec, group)


class TestDuplication:
    def test_single_tile_no_duplication(self, small_spec):
        group = plan_multi_tile(small_spec, 1)[0]
        assert group.duplication_factor() == pytest.approx(1.0)

    def test_stride1_merge_duplicates(self, small_spec):
        """Fig 11: merging adjacent stride-1 tiles stores overlapping data
        roughly group-size times."""
        group = plan_multi_tile(small_spec, 3)[0]
        assert group.duplication_factor() > 1.5

    def test_workspace_grows_linearly(self):
        spec = ConvSpec(n=2, c_in=8, h_in=32, w_in=32, c_out=16,
                        h_filter=3, w_filter=3, padding=1)
        w1 = workspace_elements(spec, 1)
        w2 = workspace_elements(spec, 2)
        w3 = workspace_elements(spec, 3)
        assert w2 == 2 * w1
        assert w3 == 3 * w1

    def test_k_utilization_saturates(self):
        spec = ConvSpec(n=1, c_in=8, h_in=16, w_in=16, c_out=16,
                        h_filter=3, w_filter=3, padding=1)
        assert array_k_utilization(spec, 1) == pytest.approx(8 / 128)
        assert array_k_utilization(spec, 3) == pytest.approx(24 / 128)
        assert array_k_utilization(spec, 32) == 1.0
