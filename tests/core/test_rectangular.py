"""Rectangular inputs and filters: the geometry is exact beyond the paper's
square cases (a downstream-user requirement the square-only tests miss)."""

import numpy as np
import pytest

from repro.core import (
    ColumnOrder,
    ConvSpec,
    conv2d_channel_first,
    direct_conv2d,
    flatten_filters,
    im2col,
    ofmap_from_gemm,
    plan_multi_tile,
    merged_gemm_operands,
)
from repro.core.reference import gemm


RECT_SPECS = [
    # non-square input
    ConvSpec(n=1, c_in=3, h_in=5, w_in=9, c_out=2, h_filter=3, w_filter=3, padding=1),
    # non-square filter (1x7, 7x1 — inception-style factorised convs)
    ConvSpec(n=2, c_in=2, h_in=9, w_in=9, c_out=3, h_filter=1, w_filter=7, padding=0),
    ConvSpec(n=2, c_in=2, h_in=9, w_in=9, c_out=3, h_filter=7, w_filter=1, padding=0),
    # everything different at once
    ConvSpec(n=1, c_in=4, h_in=8, w_in=12, c_out=5, h_filter=2, w_filter=4,
             stride=2, padding=1),
]


def _operands(spec, seed=31):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(-3, 4, spec.ifmap_shape).astype(np.float64),
        rng.integers(-3, 4, spec.filter_shape).astype(np.float64),
    )


@pytest.mark.parametrize("spec", RECT_SPECS, ids=lambda s: s.describe())
def test_channel_first_matches_direct(spec):
    x, w = _operands(spec)
    assert np.array_equal(conv2d_channel_first(x, w, spec), direct_conv2d(x, w, spec))


@pytest.mark.parametrize("spec", RECT_SPECS, ids=lambda s: s.describe())
@pytest.mark.parametrize("order", list(ColumnOrder))
def test_explicit_lowering_matches_direct(spec, order):
    x, w = _operands(spec)
    lowered = im2col(x, spec, order)
    out = ofmap_from_gemm(gemm(lowered, flatten_filters(w, spec, order)), spec)
    assert np.array_equal(out, direct_conv2d(x, w, spec))


@pytest.mark.parametrize("spec", RECT_SPECS, ids=lambda s: s.describe())
def test_multi_tile_merge_rectangular(spec):
    x, w = _operands(spec)
    acc = np.zeros((spec.lowered_rows(), spec.c_out))
    for group in plan_multi_tile(spec, 2):
        a, b = merged_gemm_operands(x, w, spec, group)
        acc += a @ b
    assert np.array_equal(ofmap_from_gemm(acc, spec), direct_conv2d(x, w, spec))


def test_factorised_7x1_output_geometry():
    spec = ConvSpec(n=1, c_in=2, h_in=9, w_in=9, c_out=3, h_filter=7, w_filter=1)
    assert (spec.h_out, spec.w_out) == (3, 9)
    assert spec.positions == 7


def test_row_aligned_groups_respect_rect_filter():
    spec = ConvSpec(n=1, c_in=2, h_in=9, w_in=9, c_out=3, h_filter=2, w_filter=4)
    groups = plan_multi_tile(spec, 3, row_aligned=True)
    # rows of width 4 split as [3, 1] per row, twice
    assert [g.group_size for g in groups] == [3, 1, 3, 1]
