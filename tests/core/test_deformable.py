"""Deformable convolution via the channel-first decomposition."""

import numpy as np
import pytest

from repro.core import (
    decompose,
    deformable_conv2d,
    deformable_tile_gather,
    direct_conv2d,
    gather_traffic_elements,
    random_conv_operands,
    zero_offsets,
)
from repro.core.reference import pad_ifmap


class TestZeroOffsetEquivalence:
    def test_reduces_to_plain_conv(self, operands):
        spec, x, w = operands
        out = deformable_conv2d(x, w, zero_offsets(spec), spec)
        assert np.allclose(out, direct_conv2d(x, w, spec))


class TestIntegerOffsets:
    def test_integer_shift_equals_shifted_taps(self, small_spec):
        """An integer offset must sample exactly the shifted tap (bilinear
        weights degenerate to a point)."""
        spec = small_spec
        x, _ = random_conv_operands(spec, seed=11)
        padded = pad_ifmap(x, spec.padding)
        tile = decompose(spec)[4]  # centre
        offsets = zero_offsets(spec)
        offsets[:, 2 * tile.index] = 1.0  # dy = +1 everywhere
        gathered = deformable_tile_gather(padded, spec, tile, offsets)
        below = decompose(spec)[7]  # position (2, 1): one row below centre
        reference = deformable_tile_gather(padded, spec, below, zero_offsets(spec))
        assert np.allclose(gathered, reference)

    def test_out_of_range_samples_zero(self, small_spec):
        spec = small_spec
        x, _ = random_conv_operands(spec, seed=12)
        padded = pad_ifmap(x, spec.padding)
        tile = decompose(spec)[0]
        offsets = zero_offsets(spec)
        offsets[:, 2 * tile.index] = -100.0  # far above the image
        gathered = deformable_tile_gather(padded, spec, tile, offsets)
        assert np.all(gathered == 0.0)


class TestFractionalOffsets:
    def test_half_pixel_is_average(self):
        """dy = 0.5 on a 1x1 filter averages vertical neighbours."""
        from repro.core import ConvSpec

        spec = ConvSpec(n=1, c_in=1, h_in=4, w_in=4, c_out=1, h_filter=1, w_filter=1)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        w = np.ones((1, 1, 1, 1))
        offsets = zero_offsets(spec)
        offsets[:, 0] = 0.5
        out = deformable_conv2d(x, w, offsets, spec)
        expected = 0.5 * (x[0, 0] + np.vstack([x[0, 0, 1:], np.zeros((1, 4))]))
        assert np.allclose(out[0, 0], expected)

    def test_linearity_in_input(self, small_spec):
        spec = small_spec
        x, w = random_conv_operands(spec, seed=13)
        rng = np.random.default_rng(14)
        offsets = rng.uniform(-0.9, 0.9, size=zero_offsets(spec).shape)
        out1 = deformable_conv2d(x, w, offsets, spec)
        out2 = deformable_conv2d(2.0 * x, w, offsets, spec)
        assert np.allclose(out2, 2.0 * out1)


class TestAccounting:
    def test_gather_traffic_is_4x_taps(self, small_spec):
        spec = small_spec
        taps = spec.lowered_rows() * spec.c_in * spec.positions
        assert gather_traffic_elements(spec) == 4 * taps


class TestValidation:
    def test_offset_shape_checked(self, small_spec):
        x, w = random_conv_operands(small_spec)
        with pytest.raises(ValueError):
            deformable_conv2d(x, w, np.zeros((1, 2, 3, 4)), small_spec)

    def test_operand_shapes_checked(self, small_spec):
        x, w = random_conv_operands(small_spec)
        with pytest.raises(ValueError):
            deformable_conv2d(x[:1], w, zero_offsets(small_spec), small_spec)
        with pytest.raises(ValueError):
            deformable_conv2d(x, w[:1], zero_offsets(small_spec), small_spec)
