"""Inter-tile working-set overlap and the greedy reuse order."""

import pytest

from repro.core import (
    ConvSpec,
    decompose,
    greedy_reuse_order,
    order_reuse_fraction,
    overlap_fraction,
    pairwise_overlap,
    tile_working_set,
)


def brute_overlap(spec, a, b):
    wa = tile_working_set(spec, a)
    wb = tile_working_set(spec, b)
    return len(wa & wb) / len(wa)


@pytest.mark.parametrize("stride", [1, 2, 3])
def test_closed_form_matches_brute_force(stride):
    spec = ConvSpec(n=1, c_in=2, h_in=13, w_in=13, c_out=2,
                    h_filter=3, w_filter=3, stride=stride, padding=1)
    tiles = decompose(spec)
    for a in tiles:
        for b in tiles:
            if a.index == b.index:
                continue
            assert overlap_fraction(spec, a, b) == pytest.approx(brute_overlap(spec, a, b))


def test_dilated_overlap_matches_brute_force(dilated_spec):
    tiles = decompose(dilated_spec)
    for a, b in [(tiles[0], tiles[1]), (tiles[0], tiles[4]), (tiles[2], tiles[6])]:
        assert overlap_fraction(dilated_spec, a, b) == pytest.approx(
            brute_overlap(dilated_spec, a, b)
        )


def test_stride1_neighbours_overlap_heavily(small_spec):
    tiles = decompose(small_spec)
    frac = overlap_fraction(small_spec, tiles[0], tiles[1])
    assert frac == pytest.approx((small_spec.w_out - 1) / small_spec.w_out)


def test_stride2_odd_shift_zero_overlap():
    """At stride 2, tiles shifted by an odd offset share no taps — the
    disconnect the paper's reordering works around."""
    spec = ConvSpec(n=1, c_in=2, h_in=9, w_in=9, c_out=2,
                    h_filter=3, w_filter=3, stride=2, padding=1)
    tiles = decompose(spec)
    assert overlap_fraction(spec, tiles[0], tiles[1]) == 0.0
    assert overlap_fraction(spec, tiles[0], tiles[2]) > 0.5


def test_paper_96_percent_claim():
    """Sec. V: at a 99x99 IFMap (stride 2, 3x3), tiles <1,1> and <1,3>
    overlap ~96%."""
    spec = ConvSpec(n=1, c_in=1, h_in=99, w_in=99, c_out=1,
                    h_filter=3, w_filter=3, stride=2, padding=0)
    tiles = decompose(spec)
    frac = overlap_fraction(spec, tiles[0], tiles[2])  # <1,1> vs <1,3>
    assert 0.94 <= frac <= 0.99


def test_pairwise_table_symmetry(small_spec):
    table = pairwise_overlap(small_spec)
    for (a, b), value in table.items():
        assert table[(b, a)] == pytest.approx(value)
    assert len(table) == small_spec.positions * (small_spec.positions - 1)


def test_greedy_order_is_valid_permutation(strided_spec):
    order = greedy_reuse_order(strided_spec)
    assert sorted(t.index for t in order) == list(range(strided_spec.positions))
    assert order[0].index == 0


def test_greedy_beats_naive_at_stride2():
    spec = ConvSpec(n=1, c_in=2, h_in=17, w_in=17, c_out=2,
                    h_filter=3, w_filter=3, stride=2, padding=1)
    naive = order_reuse_fraction(spec, decompose(spec))
    greedy = order_reuse_fraction(spec, greedy_reuse_order(spec))
    assert greedy > naive


def test_greedy_matches_naive_at_stride1(small_spec):
    """At stride 1 the naive raster order is already near-optimal."""
    naive = order_reuse_fraction(small_spec, decompose(small_spec))
    greedy = order_reuse_fraction(small_spec, greedy_reuse_order(small_spec))
    assert greedy >= naive - 1e-9


def test_reuse_fraction_bounds(any_spec):
    value = order_reuse_fraction(any_spec, greedy_reuse_order(any_spec))
    assert 0.0 <= value < 1.0


def test_pointwise_single_tile(pointwise_spec):
    order = greedy_reuse_order(pointwise_spec)
    assert len(order) == 1
    assert order_reuse_fraction(pointwise_spec, order) == 0.0


def test_reuse_fraction_empty_order_rejected(small_spec):
    with pytest.raises(ValueError):
        order_reuse_fraction(small_spec, [])


def test_working_set_size(small_spec):
    tiles = decompose(small_spec)
    ws = tile_working_set(small_spec, tiles[0])
    assert len(ws) == small_spec.h_out * small_spec.w_out
