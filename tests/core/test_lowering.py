"""Explicit im2col in both column orders, col2im, and Table I accounting."""

import numpy as np
import pytest

from repro.core import (
    ColumnOrder,
    column_permutation,
    direct_conv2d,
    flatten_filters,
    ifmap_mb,
    im2col,
    lowered_matrix_mb,
    col2im,
    ofmap_from_gemm,
    random_conv_operands,
    unflatten_filters,
)
from repro.core.reference import gemm

ORDERS = [ColumnOrder.CHANNEL_LAST, ColumnOrder.CHANNEL_FIRST]


@pytest.mark.parametrize("order", ORDERS)
def test_lowered_gemm_equals_direct_conv(operands, order):
    spec, ifmap, weights = operands
    lowered = im2col(ifmap, spec, order)
    flat = flatten_filters(weights, spec, order)
    out = ofmap_from_gemm(gemm(lowered, flat), spec)
    assert np.array_equal(out, direct_conv2d(ifmap, weights, spec))


def test_lowered_shape(operands):
    spec, ifmap, _ = operands
    lowered = im2col(ifmap, spec, ColumnOrder.CHANNEL_FIRST)
    assert lowered.shape == (spec.lowered_rows(), spec.lowered_cols())


def test_orders_are_column_permutations(operands):
    """The paper's 'General Principle': channel-first is a column shuffle of
    channel-last, and GEMM is invariant under matched shuffles."""
    spec, ifmap, weights = operands
    low_cl = im2col(ifmap, spec, ColumnOrder.CHANNEL_LAST)
    low_cf = im2col(ifmap, spec, ColumnOrder.CHANNEL_FIRST)
    perm = column_permutation(spec)
    assert np.array_equal(low_cf, low_cl[:, perm])
    flat_cl = flatten_filters(weights, spec, ColumnOrder.CHANNEL_LAST)
    flat_cf = flatten_filters(weights, spec, ColumnOrder.CHANNEL_FIRST)
    assert np.array_equal(flat_cf, flat_cl[perm, :])


def test_column_permutation_is_permutation(small_spec):
    perm = column_permutation(small_spec)
    assert sorted(perm) == list(range(small_spec.lowered_cols()))


def test_column_index_conventions(small_spec):
    # channel-last: C -> HF -> WF; channel-first: HF -> WF -> C
    s = small_spec
    assert ColumnOrder.CHANNEL_LAST.column_index(s, c=1, r=0, s=0) == s.h_filter * s.w_filter
    assert ColumnOrder.CHANNEL_FIRST.column_index(s, c=1, r=0, s=0) == 1
    assert ColumnOrder.CHANNEL_FIRST.column_index(s, c=0, r=0, s=1) == s.c_in


@pytest.mark.parametrize("order", ORDERS)
def test_filter_flatten_round_trip(operands, order):
    spec, _, weights = operands
    flat = flatten_filters(weights, spec, order)
    assert np.array_equal(unflatten_filters(flat, spec, order), weights)


@pytest.mark.parametrize("order", ORDERS)
def test_col2im_counts_window_coverage(operands, order):
    """col2im(im2col(x)) scales each element by its window multiplicity;
    with an all-ones input the result directly counts coverage, which must
    total rows x cols of the lowered matrix minus the padding taps."""
    spec, ifmap, _ = operands
    ones = np.ones_like(ifmap)
    coverage = col2im(im2col(ones, spec, order), spec, order)
    lowered_taps = spec.lowered_rows() * spec.lowered_cols()
    padding_taps = lowered_taps - int(coverage.sum())
    assert coverage.min() >= 0
    assert padding_taps >= 0
    if spec.padding == 0:
        assert padding_taps == 0


@pytest.mark.parametrize("order", ORDERS)
def test_col2im_is_adjoint_of_im2col(operands, order):
    """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
    spec, ifmap, _ = operands
    rng = np.random.default_rng(11)
    y = rng.standard_normal((spec.lowered_rows(), spec.lowered_cols()))
    lhs = float((im2col(ifmap, spec, order).astype(np.float64) * y).sum())
    rhs = float((ifmap.astype(np.float64) * col2im(y, spec, order)).sum())
    assert lhs == pytest.approx(rhs, rel=1e-10)


def test_table1_accounting(small_spec):
    assert lowered_matrix_mb(small_spec) == pytest.approx(
        small_spec.lowered_bytes(2) / 2**20
    )
    assert ifmap_mb(small_spec) == pytest.approx(small_spec.ifmap_bytes(2) / 2**20)
    assert lowered_matrix_mb(small_spec) > ifmap_mb(small_spec)


def test_shape_validation(small_spec):
    ifmap, weights = random_conv_operands(small_spec)
    with pytest.raises(ValueError):
        im2col(ifmap[:1], small_spec, ColumnOrder.CHANNEL_LAST)
    with pytest.raises(ValueError):
        flatten_filters(weights[:, :1], small_spec, ColumnOrder.CHANNEL_LAST)
    with pytest.raises(ValueError):
        col2im(np.zeros((3, 3)), small_spec, ColumnOrder.CHANNEL_LAST)
    with pytest.raises(ValueError):
        ofmap_from_gemm(np.zeros((3, 3)), small_spec)
