"""Experiment runner: regenerate any (or every) table/figure of the paper.

Usage::

    python -m repro.harness.runner            # run everything
    python -m repro.harness.runner fig4 fig13 # run selected experiments
    python -m repro.harness.runner --quick    # reduced workloads (CI-sized)
    python -m repro.harness.runner --jobs 4   # fan experiments out over processes

Each experiment module exposes ``run(quick=False) -> ExperimentResult``; the
registry below is the complete per-experiment index from DESIGN.md.

``--jobs N`` runs experiments in a ``ProcessPoolExecutor``; results are
collected and printed in submission order, so the report is byte-identical
to a serial run (each experiment is deterministic and self-contained).

``--trace [PATH]`` enables the :mod:`repro.trace` instrumentation for the
run: a Chrome ``trace_event`` JSON lands at PATH (default ``trace.json``)
and a text summary — span timings, counters, per-source cycle accounting
with the full invariant audit — prints after the reports.  Under ``--jobs``
each worker ships its events and metric records home and they are merged by
(pid, experiment) track.

Run-level observability (see :mod:`repro.obs`): ``--log-level``/
``--log-file`` route the harness's structured events to stderr and/or a
JSONL file, ``--quiet`` suppresses report rendering while artifacts keep
being written, ``--profile`` prints a per-experiment wall/CPU/allocation
hotspot table, and any of ``--log-file``/``--profile``/``--manifest``
additionally writes ``results/<run_id>/manifest.json`` (provenance +
resource costs) and ``results/<run_id>/metrics.prom`` (Prometheus text
exposition).  With all of these off, stdout and every artifact are
byte-identical to the pre-observability harness, and the runner exits
nonzero when an experiment raises or the cycle-accounting audit fails.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..obs import log as obs_log
from ..perf.cache import SIM_CACHE, CacheStats

from .experiments import (
    ablations,
    batch_sweep,
    design_space_plus,
    extensions,
    sparsity,
    fig2,
    fig4,
    fig7,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    table1,
    table2,
)
from .report import ExperimentResult

__all__ = [
    "EXPERIMENTS",
    "RunTelemetry",
    "run_experiment",
    "run_many",
    "run_many_telemetry",
    "run_all",
    "harness_metrics",
    "main",
]

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "fig2": fig2.run,
    "fig4": fig4.run,
    "fig7": fig7.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "fig18": fig18.run,
    "ablations": ablations.run,
    "extensions": extensions.run,
    "batch_sweep": batch_sweep.run,
    "sparsity": sparsity.run,
    "design_space_plus": design_space_plus.run,
}


def run_experiment(experiment_id: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment by id (see DESIGN.md's per-experiment index)."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(quick=quick)


def run_many(
    ids: List[str], quick: bool = False, jobs: int = 1
) -> List[ExperimentResult]:
    """Run several experiments, optionally across worker processes.

    Results always come back in the order of ``ids`` regardless of which
    worker finishes first, so downstream rendering/export is deterministic.
    """
    if jobs <= 1:
        return [run_experiment(eid, quick=quick) for eid in ids]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(run_experiment, eid, quick) for eid in ids]
        return [future.result() for future in futures]


def run_all(quick: bool = False, jobs: int = 1) -> List[ExperimentResult]:
    return run_many(list(EXPERIMENTS), quick=quick, jobs=jobs)


@dataclasses.dataclass
class RunTelemetry:
    """Everything a run ships back beyond the reports themselves.

    ``cache`` is the *per-run* lookup accounting (counters are zeroed before
    each experiment, so pooled workers' warm stores still count their hits
    honestly); ``events``/``layers``/``kernels`` are empty unless the run
    traced.
    """

    events: list = dataclasses.field(default_factory=list)
    layers: list = dataclasses.field(default_factory=list)
    kernels: list = dataclasses.field(default_factory=list)
    cache: CacheStats = CacheStats(hits=0, misses=0, entries=0)
    #: ``(experiment_id, wall_seconds)`` per experiment — always measured
    #: (two perf_counter reads), feeds the latency histogram exposition.
    timings: list = dataclasses.field(default_factory=list)
    #: :class:`repro.obs.PhaseSample` records; empty unless ``--profile``.
    phases: list = dataclasses.field(default_factory=list)

    @classmethod
    def merge(cls, parts: Iterable["RunTelemetry"]) -> "RunTelemetry":
        """Fold per-experiment telemetry into one run-wide view.

        Each experiment's events are re-tagged onto their own ``tid`` track:
        timestamps restart per experiment (and per worker), so distinct
        tracks are what keeps the merged Chrome trace readable and the
        counter rollups correct.
        """
        merged = cls()
        for index, part in enumerate(parts):
            track = index + 1
            merged.events.extend(
                dataclasses.replace(event, tid=track) for event in part.events
            )
            merged.layers.extend(part.layers)
            merged.kernels.extend(part.kernels)
            merged.cache = merged.cache + part.cache
            merged.timings.extend(part.timings)
            merged.phases.extend(part.phases)
        return merged


def _run_with_telemetry(
    experiment_id: str, quick: bool, tracing: bool, profiling: bool = False
) -> Tuple[ExperimentResult, RunTelemetry]:
    """Run one experiment with per-run cache accounting (and tracing if on).

    Runs in the parent (serial) or in a pool worker (``--jobs``); either way
    the process-global tracer/registry/cache belong to *this* process, so
    resetting them here is safe and gives each experiment a clean window.
    """
    SIM_CACHE.reset_stats()
    obs_log.debug("experiment.start", experiment=experiment_id, quick=quick)
    profiler = None
    if profiling:
        from ..obs.profiler import PhaseProfiler

        profiler = PhaseProfiler()

    def execute() -> Tuple[ExperimentResult, float]:
        start = time.perf_counter()
        if profiler is not None:
            with profiler.phase(experiment_id):
                result = run_experiment(experiment_id, quick=quick)
        else:
            result = run_experiment(experiment_id, quick=quick)
        return result, time.perf_counter() - start

    if not tracing:
        result, wall_s = execute()
        telemetry = RunTelemetry(
            cache=SIM_CACHE.stats,
            timings=[(experiment_id, wall_s)],
            phases=list(profiler.samples) if profiler is not None else [],
        )
        obs_log.info(
            "experiment.done", experiment=experiment_id, wall_s=round(wall_s, 4)
        )
        return result, telemetry
    from ..trace import metrics as trace_metrics
    from ..trace import tracer as trace

    registry = trace_metrics.get_registry()
    registry.clear()
    trace.get_tracer().clear()
    trace.enable()
    try:
        with trace.span("experiment", cat="harness", experiment=experiment_id):
            result, wall_s = execute()
        telemetry = RunTelemetry(
            events=trace.drain_events(),
            layers=registry.layers,
            kernels=registry.kernels,
            cache=SIM_CACHE.stats,
            timings=[(experiment_id, wall_s)],
            phases=list(profiler.samples) if profiler is not None else [],
        )
    finally:
        trace.disable()
        registry.clear()
    obs_log.info(
        "experiment.done", experiment=experiment_id, wall_s=round(wall_s, 4)
    )
    return result, telemetry


def run_many_telemetry(
    ids: List[str],
    quick: bool = False,
    jobs: int = 1,
    tracing: bool = False,
    profiling: bool = False,
) -> Tuple[List[ExperimentResult], RunTelemetry]:
    """Like :func:`run_many`, but also collect :class:`RunTelemetry`."""
    if jobs <= 1:
        pairs = [_run_with_telemetry(eid, quick, tracing, profiling) for eid in ids]
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(_run_with_telemetry, eid, quick, tracing, profiling)
                for eid in ids
            ]
            pairs = [future.result() for future in futures]
    results = [result for result, _ in pairs]
    telemetry = RunTelemetry.merge(part for _, part in pairs)
    return results, telemetry


def harness_metrics(
    telemetry: RunTelemetry, wall_seconds: float, failures: int = 0
):
    """The harness-level metric snapshot a run exposes (see repro.obs.prom).

    Counters/gauges/histograms on a fresh :class:`~repro.trace.metrics.
    MetricsRegistry`: experiments run, cache hits/misses and hit rate,
    simulated layers per second, and the per-experiment latency
    distribution.  Traced layer records are *not* merged here — the caller
    decides whether to attach them (their merge re-runs the audit).
    """
    from ..trace.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.inc_counter("repro_experiments_total", len(telemetry.timings))
    registry.inc_counter("repro_experiment_failures_total", failures)
    registry.inc_counter("repro_sim_cache_hits_total", telemetry.cache.hits)
    registry.inc_counter("repro_sim_cache_misses_total", telemetry.cache.misses)
    lookups = telemetry.cache.hits + telemetry.cache.misses
    registry.inc_counter("repro_layers_simulated_total", lookups)
    registry.set_gauge("repro_sim_cache_entries", telemetry.cache.entries)
    registry.set_gauge("repro_sim_cache_hit_rate", telemetry.cache.hit_rate)
    registry.set_gauge("repro_run_wall_seconds", wall_seconds)
    if wall_seconds > 0:
        registry.set_gauge("repro_layers_per_second", lookups / wall_seconds)
    for _, wall_s in telemetry.timings:
        registry.observe("repro_experiment_seconds", wall_s)
    return registry


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--quick", action="store_true", help="reduced workloads")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for running experiments (default: serial)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print per-run simulation-cache hit/miss statistics "
        "(aggregated across workers under --jobs)",
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const="trace.json",
        default=None,
        metavar="PATH",
        help="collect cycle-accounting traces; writes Chrome trace JSON to "
        "PATH (default trace.json) and prints a summary",
    )
    parser.add_argument(
        "--export-dir",
        default=None,
        help="also write <id>.json and per-table CSVs into this directory",
    )
    parser.add_argument(
        "--log-level",
        choices=sorted(obs_log.LEVELS, key=obs_log.LEVELS.get),
        default=obs_log.DEFAULT_LEVEL,
        help="stderr diagnostics threshold (default: warning — silent runs)",
    )
    parser.add_argument(
        "--log-file",
        default=None,
        metavar="PATH",
        help="append every structured event (debug and up) to PATH as JSONL",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress report rendering on stdout (artifacts still written)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile each experiment (wall/CPU/tracemalloc) and print a "
        "hotspot table",
    )
    parser.add_argument(
        "--manifest",
        action="store_true",
        help="write results/<run_id>/manifest.json + metrics.prom even "
        "without --log-file/--profile",
    )
    parser.add_argument(
        "--results-dir",
        default="results",
        help="directory that receives <run_id>/ observability artifacts "
        "(default: results)",
    )
    args = parser.parse_args(argv)
    ids = args.experiments or list(EXPERIMENTS)
    for eid in ids:
        if eid not in EXPERIMENTS:  # fail before spawning any worker
            raise KeyError(
                f"unknown experiment {eid!r}; known: {sorted(EXPERIMENTS)}"
            )
    tracing = args.trace is not None
    obs_active = args.log_file is not None or args.profile or args.manifest
    from ..obs.manifest import new_run_id, write_manifest

    run_id = new_run_id()
    obs_log.configure(
        level=args.log_level,
        log_file=args.log_file,
        quiet=args.quiet,
        run_id=run_id if obs_active else None,
    )
    run_ctx = None
    if obs_active:  # provenance collection (git, versions) only when observed
        from ..obs.manifest import RunContext

        run_ctx = RunContext(
            tool="repro.harness.runner",
            results_dir=args.results_dir,
            run_id=run_id,
            args={
                "experiments": ids,
                "quick": args.quick,
                "jobs": args.jobs,
                "trace": args.trace,
                "profile": args.profile,
                "quiet": args.quiet,
                "export_dir": args.export_dir,
            },
        )
        run_ctx.__enter__()
    obs_log.info(
        "run.start", experiments=ids, quick=args.quick, jobs=args.jobs,
        tracing=tracing, profiling=args.profile,
    )
    exit_code = 0
    failures = 0
    results: List[ExperimentResult] = []
    telemetry = RunTelemetry()
    try:
        try:
            results, telemetry = run_many_telemetry(
                ids,
                quick=args.quick,
                jobs=args.jobs,
                tracing=tracing,
                profiling=args.profile,
            )
        except Exception as err:  # an experiment raised: fail the run loudly
            failures += 1
            exit_code = 1
            obs_log.error("run.experiment_error", error=repr(err))
            print(f"error: experiment run failed: {err!r}", file=sys.stderr)
        for result in results:
            obs_log.console(result.render())
            obs_log.console()
        if tracing and exit_code == 0:
            from ..trace.export import render_summary, write_chrome_trace
            from ..trace.metrics import CycleAccountingError, MetricsRegistry

            write_chrome_trace(
                args.trace,
                telemetry.events,
                metadata={"experiments": ids, "quick": args.quick, "jobs": args.jobs},
            )
            try:
                registry = MetricsRegistry()
                registry.merge(telemetry.layers, telemetry.kernels)
                obs_log.console(render_summary(telemetry.events, registry))
            except CycleAccountingError as err:
                exit_code = 1
                obs_log.error("run.audit_error", error=str(err))
                print(f"error: cycle-accounting audit failed: {err}", file=sys.stderr)
            obs_log.console(f"chrome trace written to {args.trace}")
        if args.profile and telemetry.phases:
            from ..obs.profiler import render_hotspots

            obs_log.console(render_hotspots(telemetry.phases), kind="profile")
        if args.cache_stats:
            stats = telemetry.cache
            obs_log.console(
                f"simulation cache: {stats.hits} hits / {stats.misses} misses "
                f"({stats.hit_rate:.0%} hit rate, {stats.entries} entries)"
            )
        if args.export_dir and results:
            from .export import write_results

            paths = write_results(results, args.export_dir)
            if run_ctx is not None:
                for path in paths:
                    run_ctx.add_output(path)
            obs_log.console(f"exported {len(paths)} files to {args.export_dir}")
    finally:
        if run_ctx is not None:
            from ..obs.prom import write_prometheus

            manifest = run_ctx.finish(exit_code)
            run_dir = run_ctx.run_dir
            registry = harness_metrics(telemetry, manifest.wall_seconds or 0.0, failures)
            prom_path = write_prometheus(
                run_dir / "metrics.prom", registry, labels={"run_id": run_id}
            )
            run_ctx.add_output(prom_path)
            if args.log_file:
                run_ctx.add_output(args.log_file)
            if args.trace:
                run_ctx.add_output(args.trace)
            manifest_path = write_manifest(manifest, run_dir)
            obs_log.info(
                "run.complete",
                exit_code=exit_code,
                wall_s=manifest.wall_seconds,
                manifest=str(manifest_path),
                metrics=str(prom_path),
            )
        obs_log.shutdown()
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
