"""Experiment runner: regenerate any (or every) table/figure of the paper.

Usage::

    python -m repro.harness.runner            # run everything
    python -m repro.harness.runner fig4 fig13 # run selected experiments
    python -m repro.harness.runner --quick    # reduced workloads (CI-sized)
    python -m repro.harness.runner --jobs 4   # fan experiments out over processes

Each experiment module exposes ``run(quick=False) -> ExperimentResult``; the
registry below is the complete per-experiment index from DESIGN.md.

``--jobs N`` runs experiments in a ``ProcessPoolExecutor``; results are
collected and printed in submission order, so the report is byte-identical
to a serial run (each experiment is deterministic and self-contained).

``--trace [PATH]`` enables the :mod:`repro.trace` instrumentation for the
run: a Chrome ``trace_event`` JSON lands at PATH (default ``trace.json``)
and a text summary — span timings, counters, per-source cycle accounting
with the full invariant audit — prints after the reports.  Under ``--jobs``
each worker ships its events and metric records home and they are merged by
(pid, experiment) track.

Run-level observability (see :mod:`repro.obs`): ``--log-level``/
``--log-file`` route the harness's structured events to stderr and/or a
JSONL file, ``--quiet`` suppresses report rendering while artifacts keep
being written, ``--profile`` prints a per-experiment wall/CPU/allocation
hotspot table, and any of ``--log-file``/``--profile``/``--manifest``
additionally writes ``results/<run_id>/manifest.json`` (provenance +
resource costs) and ``results/<run_id>/metrics.prom`` (Prometheus text
exposition).  With all of these off, stdout and every artifact are
byte-identical to the pre-observability harness, and the runner exits
nonzero when an experiment raises or the cycle-accounting audit fails.

Resilience (see :mod:`repro.resilience`): ``--checkpoint`` journals each
completed experiment to ``results/<run_id>/checkpoint.jsonl`` and
``--resume RUN_ID`` skips the journaled work of a crashed sweep (the
reconstructed report is bit-identical; the hit count prints to stderr).
``--jobs N`` runs are *supervised*: ``--task-timeout`` bounds each
experiment's wall clock, ``--max-retries`` retries transient faults with
seeded exponential backoff, crashed pools are respawned (degrading to
serial execution if they keep dying), and ``--inject-faults SPEC``
deterministically manufactures crashes/hangs/flaky failures plus DRAM/
SRAM misbehaviour so every recovery path is testable.  ``Ctrl-C``
cancels pending work, flushes the journal and exits 130; ``SIGTERM``
(what init systems, container runtimes and batch schedulers send) takes
the same graceful path — journal flushed, resume hint printed — and
exits 143.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import signal
import sys
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..errors import AuditFault, PermanentFault
from ..obs import log as obs_log
from ..perf.cache import SIM_CACHE, CacheStats

from .experiments import (
    ablations,
    batch_sweep,
    design_space_plus,
    extensions,
    sparsity,
    fig2,
    fig4,
    fig7,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    table1,
    table2,
)
from .report import ExperimentResult

__all__ = [
    "EXPERIMENTS",
    "RunTelemetry",
    "run_experiment",
    "run_many",
    "run_many_telemetry",
    "run_all",
    "harness_metrics",
    "main",
]

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "fig2": fig2.run,
    "fig4": fig4.run,
    "fig7": fig7.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "fig18": fig18.run,
    "ablations": ablations.run,
    "extensions": extensions.run,
    "batch_sweep": batch_sweep.run,
    "sparsity": sparsity.run,
    "design_space_plus": design_space_plus.run,
}


def run_experiment(experiment_id: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment by id (see DESIGN.md's per-experiment index)."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(quick=quick)


def run_many(
    ids: List[str], quick: bool = False, jobs: int = 1
) -> List[ExperimentResult]:
    """Run several experiments, optionally across worker processes.

    Results always come back in the order of ``ids`` regardless of which
    worker finishes first, so downstream rendering/export is deterministic.
    """
    if jobs <= 1:
        return [run_experiment(eid, quick=quick) for eid in ids]
    results, _ = run_many_telemetry(ids, quick=quick, jobs=jobs)
    return results


def run_all(quick: bool = False, jobs: int = 1) -> List[ExperimentResult]:
    return run_many(list(EXPERIMENTS), quick=quick, jobs=jobs)


@dataclasses.dataclass
class RunTelemetry:
    """Everything a run ships back beyond the reports themselves.

    ``cache`` is the *per-run* lookup accounting (counters are zeroed before
    each experiment, so pooled workers' warm stores still count their hits
    honestly); ``events``/``layers``/``kernels`` are empty unless the run
    traced.
    """

    events: list = dataclasses.field(default_factory=list)
    layers: list = dataclasses.field(default_factory=list)
    kernels: list = dataclasses.field(default_factory=list)
    cache: CacheStats = CacheStats(hits=0, misses=0, entries=0)
    #: ``(experiment_id, wall_seconds)`` per experiment — always measured
    #: (two perf_counter reads), feeds the latency histogram exposition.
    timings: list = dataclasses.field(default_factory=list)
    #: :class:`repro.obs.PhaseSample` records; empty unless ``--profile``.
    phases: list = dataclasses.field(default_factory=list)
    #: :func:`repro.audit.snapshot` dict; empty unless ``--audit`` is on.
    audit: dict = dataclasses.field(default_factory=dict)

    @staticmethod
    def _fold_audit(into: dict, part: dict) -> dict:
        if not part:
            return into
        if not into:
            folded = dict(part)
            folded["checks_by_invariant"] = dict(part.get("checks_by_invariant", {}))
            return folded
        into["checks"] = into.get("checks", 0) + part.get("checks", 0)
        into["violations"] = into.get("violations", 0) + part.get("violations", 0)
        by_invariant = into.setdefault("checks_by_invariant", {})
        for invariant, count in part.get("checks_by_invariant", {}).items():
            by_invariant[invariant] = by_invariant.get(invariant, 0) + count
        return into

    @classmethod
    def merge(cls, parts: Iterable["RunTelemetry"]) -> "RunTelemetry":
        """Fold per-experiment telemetry into one run-wide view.

        Each experiment's events are re-tagged onto their own ``tid`` track:
        timestamps restart per experiment (and per worker), so distinct
        tracks are what keeps the merged Chrome trace readable and the
        counter rollups correct.
        """
        merged = cls()
        for index, part in enumerate(parts):
            track = index + 1
            merged.events.extend(
                dataclasses.replace(event, tid=track) for event in part.events
            )
            merged.layers.extend(part.layers)
            merged.kernels.extend(part.kernels)
            merged.cache = merged.cache + part.cache
            merged.timings.extend(part.timings)
            merged.phases.extend(part.phases)
            merged.audit = cls._fold_audit(merged.audit, part.audit)
        return merged


def _run_with_telemetry(
    experiment_id: str,
    quick: bool,
    tracing: bool,
    profiling: bool = False,
    audit_level: str = "off",
    traceparent: Optional[str] = None,
) -> Tuple[ExperimentResult, RunTelemetry]:
    """Run one experiment with per-run cache accounting (and tracing if on).

    Runs in the parent (serial) or in a pool worker (``--jobs``); either way
    the process-global tracer/registry/cache belong to *this* process, so
    resetting them here is safe and gives each experiment a clean window.

    ``traceparent`` (a W3C header string, threaded through the supervisor
    payload under ``--jobs``) carries the task's trace context across the
    process boundary; the experiment span adopts it, so every task yields
    exactly one connected span tree in the merged Chrome export.
    """
    if os.environ.get("REPRO_STORE_DIR"):
        # --store exports the directory before workers spawn, so every
        # process (parent or pool) backs its memo cache with the same
        # persistent store.  Guarded on the env var: flagless runs never
        # import repro.store at all.
        from ..store import attach_from_env

        attach_from_env()
    SIM_CACHE.reset_stats()
    obs_log.debug("experiment.start", experiment=experiment_id, quick=quick)
    auditing = audit_level != "off"
    if auditing:
        # Configure in *this* process (pool workers start with audit off) and
        # zero the counters so each experiment reports its own window.
        from ..audit import auditor as audit_mod

        audit_mod.configure(audit_level)
        audit_mod.reset()
    profiler = None
    if profiling:
        from ..obs.profiler import PhaseProfiler

        profiler = PhaseProfiler()

    def execute() -> Tuple[ExperimentResult, float]:
        start = time.perf_counter()
        try:
            if profiler is not None:
                with profiler.phase(experiment_id):
                    result = run_experiment(experiment_id, quick=quick)
            else:
                result = run_experiment(experiment_id, quick=quick)
        except BaseException as err:
            # Post-mortem aid: dump the flight-recorder ring (if one is
            # configured in this process) before the fault propagates.
            from ..obs.flight.recorder import maybe_dump

            maybe_dump(
                "audit-fault" if isinstance(err, AuditFault) else "exception",
                {"experiment": experiment_id, "error": repr(err)},
            )
            raise
        return result, time.perf_counter() - start

    if not tracing:
        result, wall_s = execute()
        telemetry = RunTelemetry(
            cache=SIM_CACHE.stats,
            timings=[(experiment_id, wall_s)],
            phases=list(profiler.samples) if profiler is not None else [],
            audit=audit_mod.snapshot() if auditing else {},
        )
        obs_log.info(
            "experiment.done", experiment=experiment_id, wall_s=round(wall_s, 4)
        )
        return result, telemetry
    from ..trace import context as trace_context
    from ..trace import metrics as trace_metrics
    from ..trace import tracer as trace

    registry = trace_metrics.get_registry()
    registry.clear()
    trace.get_tracer().clear()
    trace.enable()
    # The task's root context: received from the supervisor under --jobs,
    # freshly minted for serial runs.  The experiment span adopts it.
    root_ctx = (
        trace_context.TraceContext.from_traceparent(traceparent)
        or trace_context.TraceContext.new()
    )
    try:
        with trace_context.activate_root(root_ctx):
            with trace.span(
                "experiment", cat="harness", experiment=experiment_id
            ):
                result, wall_s = execute()
        telemetry = RunTelemetry(
            events=trace.drain_events(),
            layers=registry.layers,
            kernels=registry.kernels,
            cache=SIM_CACHE.stats,
            timings=[(experiment_id, wall_s)],
            phases=list(profiler.samples) if profiler is not None else [],
            audit=audit_mod.snapshot() if auditing else {},
        )
    finally:
        trace.disable()
        registry.clear()
    obs_log.info(
        "experiment.done", experiment=experiment_id, wall_s=round(wall_s, 4)
    )
    return result, telemetry


def run_many_telemetry(
    ids: List[str],
    quick: bool = False,
    jobs: int = 1,
    tracing: bool = False,
    profiling: bool = False,
    audit_level: str = "off",
) -> Tuple[List[ExperimentResult], RunTelemetry]:
    """Like :func:`run_many`, but also collect :class:`RunTelemetry`.

    ``jobs > 1`` fans out through the :mod:`repro.resilience` supervisor
    with the default policy (no timeout, transient retries on); the first
    unrecoverable failure raises, matching the serial path's fail-loud
    contract.
    """
    if jobs <= 1:
        pairs = [
            _run_with_telemetry(eid, quick, tracing, profiling, audit_level)
            for eid in ids
        ]
    else:
        from ..resilience.supervisor import RetryPolicy

        by_id, report = _run_supervised(
            ids, quick=quick, tracing=tracing, profiling=profiling,
            jobs=jobs, policy=RetryPolicy(), audit_level=audit_level,
        )
        if report.failures:
            first = report.failures[0]
            raise PermanentFault(
                f"experiment {first.key} failed [{first.fault}] after "
                f"{first.attempts} attempt(s): {first.message}"
            )
        pairs = [by_id[eid] for eid in ids]
    results = [result for result, _ in pairs]
    telemetry = RunTelemetry.merge(part for _, part in pairs)
    return results, telemetry


def _supervised_task(
    payload: Tuple,
    index: int,
    attempt: int,
) -> Tuple[ExperimentResult, RunTelemetry]:
    """One supervised unit of work (runs in a pool worker, or serially).

    ``payload`` carries ``(experiment_id, quick, tracing, profiling,
    fault_spec, audit_level, supervisor_pid[, traceparent])``.  The
    optional eighth element is the task's W3C trace context, minted in the
    supervising process so a ``--jobs N`` trace reassembles into one
    connected tree per task.  Process-level injected faults (crash/hang)
    only fire when this is *not* the supervising process, so the
    degraded-serial fallback can never be taken down by its own injection.
    """
    eid, quick, tracing, profiling, fault_spec, audit_level, supervisor_pid = (
        payload[:7]
    )
    traceparent = payload[7] if len(payload) > 7 else None
    if fault_spec is None:
        return _run_with_telemetry(
            eid, quick, tracing, profiling, audit_level, traceparent
        )
    from ..resilience import faults

    plan = faults.FaultPlan.parse(fault_spec)
    if os.getpid() != supervisor_pid:
        plan.maybe_process_fault(index, attempt)
    plan.maybe_raise_fault(index, attempt)
    faults.activate(plan)
    try:
        return _run_with_telemetry(
            eid, quick, tracing, profiling, audit_level, traceparent
        )
    finally:
        faults.deactivate()


def _run_supervised(
    ids: List[str],
    quick: bool,
    tracing: bool,
    profiling: bool,
    jobs: int,
    policy: Any,
    fault_spec: Optional[str] = None,
    audit_level: str = "off",
    on_result: Optional[Callable[[Any, Any], None]] = None,
):
    """Run ``ids`` under the resilience supervisor.

    Returns ``({experiment_id: (result, telemetry)}, SupervisorReport)``;
    results cover every task that succeeded (possibly after retries), the
    report carries the failures and the error budget.
    """
    from ..resilience.supervisor import Supervisor, TaskSpec
    from ..trace import context as trace_context

    def _task_traceparent() -> Optional[str]:
        # One root context per task, minted here in the supervising process;
        # the worker's experiment span adopts it (same ids on every retry,
        # so a retried task still forms a single tree).
        if not tracing:
            return None
        return trace_context.TraceContext.new().to_traceparent()

    tasks = [
        TaskSpec(
            index=i, key=eid,
            payload=(
                eid, quick, tracing, profiling, fault_spec, audit_level,
                os.getpid(), _task_traceparent(),
            ),
        )
        for i, eid in enumerate(ids)
    ]
    supervisor = Supervisor(
        _supervised_task, jobs=jobs, policy=policy, on_result=on_result
    )
    report = supervisor.run(tasks)
    by_id = {tasks[index].key: value for index, value in report.results.items()}
    return by_id, report


def _resilient_run(
    args: argparse.Namespace,
    ids: List[str],
    tracing: bool,
    run_id: str,
    plan: Optional[Any],
):
    """The checkpoint-aware, supervised execution path behind the
    resilience flags.

    Returns ``(results, telemetry, task_failures, budget, checkpoint_info)``.
    ``results`` is ``None`` when any experiment ultimately failed —
    ``task_failures`` then carries one :class:`~repro.resilience.supervisor.
    TaskFailure` per casualty.  ``checkpoint_info`` is the manifest block
    (path / hits / appended / corrupt_skipped) or ``None`` when the run is
    not journaling.  ``KeyboardInterrupt`` propagates to the caller with
    every already-journaled record safely fsynced.
    """
    from ..errors import TransientFault
    from ..resilience.checkpoint import (
        CheckpointJournal,
        journal_path,
        load_resume_state,
        result_to_record,
        task_fingerprint,
    )
    from ..resilience.supervisor import RetryPolicy

    checkpointing = args.checkpoint or args.resume is not None
    policy = RetryPolicy(
        max_retries=args.max_retries if args.max_retries is not None else 2,
        timeout_s=args.task_timeout,
        seed=plan.seed if plan is not None else 0,
    )
    jpath = journal_path(args.results_dir, run_id)
    fingerprints = {eid: task_fingerprint(eid, args.quick) for eid in ids}
    completed: Dict[str, ExperimentResult] = {}
    hits = 0
    corrupt_skipped = 0
    if args.resume is not None:
        state = load_resume_state(jpath)
        corrupt_skipped = state.corrupt
        for eid in ids:
            restored = state.hit(eid, fingerprints[eid])
            if restored is not None:
                completed[eid] = restored
        hits = len(completed)
        line = (
            f"resume {run_id}: {hits} checkpoint hit(s), "
            f"{len(ids) - hits} experiment(s) to run"
        )
        if corrupt_skipped:
            line += f", {corrupt_skipped} corrupt record(s) skipped"
        print(line, file=sys.stderr)
    pending = [eid for eid in ids if eid not in completed]
    journal = CheckpointJournal(jpath) if checkpointing else None
    obs_log.info(
        "run.resilience",
        run_id=run_id, checkpoint=checkpointing, resume=args.resume,
        hits=hits, pending=len(pending), timeout_s=policy.timeout_s,
        max_retries=policy.max_retries,
        faults=plan.spec if plan is not None else None,
    )

    def journal_result(index: int, eid: str, result: ExperimentResult) -> None:
        if journal is None:
            return
        corrupt = plan is not None and plan.should_corrupt_checkpoint(index)
        journal.append(
            result_to_record(eid, fingerprints[eid], result), corrupt=corrupt
        )

    telemetry_parts: Dict[str, RunTelemetry] = {}
    failures: List[Any] = []
    budget = None
    if pending and args.jobs > 1:
        def on_result(task, value):
            journal_result(task.index, task.key, value[0])

        by_id, report = _run_supervised(
            pending, quick=args.quick, tracing=tracing, profiling=args.profile,
            jobs=args.jobs, policy=policy, fault_spec=args.inject_faults,
            audit_level=args.audit, on_result=on_result,
        )
        failures = list(report.failures)
        budget = report.budget
        for eid, (result, part) in by_id.items():
            completed[eid] = result
            telemetry_parts[eid] = part
    elif pending:
        # Serial, but still journaled and fault-injectable: transient
        # faults retry with the same deterministic backoff schedule.
        for index, eid in enumerate(pending):
            payload = (
                eid, args.quick, tracing, args.profile,
                args.inject_faults, args.audit, os.getpid(),
            )
            attempt = 1
            while True:
                try:
                    result, part = _supervised_task(payload, index, attempt)
                    break
                except TransientFault as err:
                    if attempt > policy.max_retries:
                        raise
                    obs_log.warning(
                        "supervisor.retry",
                        task=eid, index=index, attempt=attempt,
                        fault=type(err).__name__, error=str(err),
                    )
                    time.sleep(policy.backoff_s(index, attempt + 1))
                    attempt += 1
            completed[eid] = result
            telemetry_parts[eid] = part
            journal_result(index, eid, result)

    checkpoint_info = None
    if checkpointing:
        checkpoint_info = {
            "path": str(jpath),
            "hits": hits,
            "appended": journal.appended if journal is not None else 0,
            "corrupt_skipped": corrupt_skipped,
        }
    if failures:
        return None, RunTelemetry(), failures, budget, checkpoint_info
    results = [completed[eid] for eid in ids]
    telemetry = RunTelemetry.merge(
        telemetry_parts[eid] for eid in ids if eid in telemetry_parts
    )
    return results, telemetry, failures, budget, checkpoint_info


def harness_metrics(
    telemetry: RunTelemetry, wall_seconds: float, failures: int = 0
):
    """The harness-level metric snapshot a run exposes (see repro.obs.prom).

    Counters/gauges/histograms on a fresh :class:`~repro.trace.metrics.
    MetricsRegistry`: experiments run, cache hits/misses and hit rate,
    simulated layers per second, and the per-experiment latency
    distribution.  Traced layer records are *not* merged here — the caller
    decides whether to attach them (their merge re-runs the audit).
    """
    from ..trace.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.inc_counter("repro_experiments_total", len(telemetry.timings))
    registry.inc_counter("repro_experiment_failures_total", failures)
    registry.inc_counter("repro_sim_cache_hits_total", telemetry.cache.hits)
    registry.inc_counter("repro_sim_cache_misses_total", telemetry.cache.misses)
    if telemetry.cache.persistent_hits or os.environ.get("REPRO_STORE_DIR"):
        # Store series appear only on store-backed runs, keeping flagless
        # metrics.prom files byte-identical to the pre-store harness.
        registry.inc_counter(
            "repro_sim_cache_persistent_hits_total",
            telemetry.cache.persistent_hits,
        )
    lookups = telemetry.cache.hits + telemetry.cache.misses
    registry.inc_counter("repro_layers_simulated_total", lookups)
    registry.set_gauge("repro_sim_cache_entries", telemetry.cache.entries)
    registry.set_gauge("repro_sim_cache_hit_rate", telemetry.cache.hit_rate)
    registry.set_gauge("repro_run_wall_seconds", wall_seconds)
    if wall_seconds > 0:
        registry.set_gauge("repro_layers_per_second", lookups / wall_seconds)
    for _, wall_s in telemetry.timings:
        registry.observe("repro_experiment_seconds", wall_s)
    if telemetry.audit:  # only audited runs expose audit series
        registry.inc_counter(
            "repro_audit_checks_total", telemetry.audit.get("checks", 0)
        )
        registry.inc_counter(
            "repro_audit_violations_total", telemetry.audit.get("violations", 0)
        )
    return registry


class _Terminated(KeyboardInterrupt):
    """SIGTERM, routed down the Ctrl-C path.

    Subclassing :class:`KeyboardInterrupt` means every cancellation point
    the interrupt path already has — pool teardown, journal flush, the
    resume hint — handles SIGTERM identically; only the exit code (143,
    the shell convention for death-by-SIGTERM) differs.
    """


def _install_sigterm_handler() -> None:
    def _on_sigterm(signum, frame):
        raise _Terminated()

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        pass  # not the main thread (embedded use); SIGTERM stays default


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--quick", action="store_true", help="reduced workloads")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for running experiments (default: serial)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print per-run simulation-cache hit/miss statistics "
        "(aggregated across workers under --jobs)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="back the simulation cache with a persistent on-disk result "
        "store at DIR (content-addressed, shared across processes and "
        "runs; see repro.store). When REPRO_STORE_DIR is also set, the "
        "two must name the same directory — a conflict is a config error",
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const="trace.json",
        default=None,
        metavar="PATH",
        help="collect cycle-accounting traces; writes Chrome trace JSON to "
        "PATH (default trace.json) and prints a summary",
    )
    parser.add_argument(
        "--export-dir",
        default=None,
        help="also write <id>.json and per-table CSVs into this directory",
    )
    parser.add_argument(
        "--log-level",
        choices=sorted(obs_log.LEVELS, key=obs_log.LEVELS.get),
        default=obs_log.DEFAULT_LEVEL,
        help="stderr diagnostics threshold (default: warning — silent runs)",
    )
    parser.add_argument(
        "--log-file",
        default=None,
        metavar="PATH",
        help="append every structured event (debug and up) to PATH as JSONL",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress report rendering on stdout (artifacts still written)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile each experiment (wall/CPU/tracemalloc) and print a "
        "hotspot table",
    )
    parser.add_argument(
        "--manifest",
        action="store_true",
        help="write results/<run_id>/manifest.json + metrics.prom even "
        "without --log-file/--profile",
    )
    parser.add_argument(
        "--results-dir",
        default="results",
        help="directory that receives <run_id>/ observability artifacts "
        "(default: results)",
    )
    parser.add_argument(
        "--checkpoint",
        action="store_true",
        help="journal each completed experiment to "
        "results/<run_id>/checkpoint.jsonl (crash-safe, fsync per record)",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="RUN_ID",
        help="resume a checkpointed run: skip journaled experiments whose "
        "config fingerprint still matches, run the rest, keep journaling",
    )
    parser.add_argument(
        "--run-id",
        default=None,
        metavar="RUN_ID",
        help="pin the run id (default: generated); --resume implies it",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-experiment wall-clock limit under --jobs; a task over "
        "budget is killed and retried as a transient fault",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retries beyond the first attempt for transient faults "
        "(worker crashes, timeouts; default: 2)",
    )
    parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection, e.g. "
        "'seed=7,crash@1,flaky@2:2,dram-drop=0.01' "
        "(see repro.resilience.faults.FaultPlan.parse)",
    )
    parser.add_argument(
        "--audit",
        choices=("off", "cheap", "full"),
        default="off",
        help="runtime invariant auditing: 'cheap' checks conservation laws "
        "in-line, 'full' adds per-layer cross-model differential checks; "
        "a violation raises AuditFault and fails the run (default: off)",
    )
    parser.add_argument(
        "--flight",
        action="store_true",
        help="keep a flight-recorder ring of recent spans/log events; "
        "dumped to results/<run_id>/flightrec-*.json on AuditFault, "
        "worker death/timeout, unhandled exceptions, or SIGUSR1",
    )
    parser.add_argument(
        "--status-file",
        default=None,
        metavar="PATH",
        help="mirror live sweep progress (queue depth, ETA, cache hit "
        "rates) to PATH for 'repro top --status-file PATH'",
    )
    args = parser.parse_args(argv)
    ids = args.experiments or list(EXPERIMENTS)
    for eid in ids:
        if eid not in EXPERIMENTS:  # fail before spawning any worker
            raise KeyError(
                f"unknown experiment {eid!r}; known: {sorted(EXPERIMENTS)}"
            )
    tracing = args.trace is not None
    _install_sigterm_handler()
    if args.store:
        # Export before any worker spawns; _run_with_telemetry attaches in
        # whichever process it runs in (parent and every pool worker).
        # --store and an inherited REPRO_STORE_DIR must agree: silently
        # preferring one would leave a store that never sees results.
        from ..errors import ConfigError
        from ..store import resolve_store_dir

        try:
            store_dir = resolve_store_dir(args.store)
        except ConfigError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        os.environ["REPRO_STORE_DIR"] = store_dir
    resilient = (
        args.checkpoint
        or args.resume is not None
        or args.task_timeout is not None
        or args.max_retries is not None
        or args.inject_faults is not None
    )
    plan = None
    if args.inject_faults is not None:
        from ..resilience.faults import FaultPlan

        try:  # validate the spec in the parent, before any work starts
            plan = FaultPlan.parse(args.inject_faults)
        except ValueError as err:
            print(f"error: bad --inject-faults spec: {err}", file=sys.stderr)
            return 2
    obs_active = args.log_file is not None or args.profile or args.manifest
    from ..obs.manifest import new_run_id, write_manifest

    run_id = args.resume or args.run_id or new_run_id()
    obs_log.configure(
        level=args.log_level,
        log_file=args.log_file,
        quiet=args.quiet,
        run_id=run_id if obs_active else None,
    )
    from ..obs.flight.beacon import configure_beacon

    configure_beacon(
        role="runner", run_id=run_id, status_path=args.status_file
    )
    if args.flight:
        # Configured after obs_log.configure (which replaces the log state,
        # tee included).  Forked pool workers inherit the hooks, so their
        # dumps land beside the supervisor's, distinguished by pid.
        from ..obs.flight.recorder import configure_recorder

        configure_recorder(run_dir=os.path.join(args.results_dir, run_id))
    run_ctx = None
    if obs_active:  # provenance collection (git, versions) only when observed
        from ..obs.manifest import RunContext

        run_ctx = RunContext(
            tool="repro.harness.runner",
            results_dir=args.results_dir,
            run_id=run_id,
            args={
                "experiments": ids,
                "quick": args.quick,
                "jobs": args.jobs,
                "trace": args.trace,
                "profile": args.profile,
                "quiet": args.quiet,
                "export_dir": args.export_dir,
                "checkpoint": args.checkpoint,
                "resume": args.resume,
                "task_timeout": args.task_timeout,
                "max_retries": args.max_retries,
                "inject_faults": args.inject_faults,
                # Keyed only when auditing so unaudited manifests keep their
                # pre-audit shape.
                **({"audit": args.audit} if args.audit != "off" else {}),
            },
        )
        run_ctx.__enter__()
    obs_log.info(
        "run.start", experiments=ids, quick=args.quick, jobs=args.jobs,
        tracing=tracing, profiling=args.profile,
    )
    exit_code = 0
    failures = 0
    audit_fault_failures = 0
    results: List[ExperimentResult] = []
    telemetry = RunTelemetry()
    budget = None
    checkpoint_info = None
    try:
        try:
            if resilient:
                resilient_results, telemetry, task_failures, budget, checkpoint_info = (
                    _resilient_run(args, ids, tracing, run_id, plan)
                )
                if task_failures:
                    failures = len(task_failures)
                    audit_fault_failures = sum(
                        1 for f in task_failures if f.fault == "AuditFault"
                    )
                    exit_code = 1
                    for failure in task_failures:
                        print(
                            f"error: experiment {failure.key} failed "
                            f"[{failure.fault}] after {failure.attempts} "
                            f"attempt(s): {failure.message}",
                            file=sys.stderr,
                        )
                else:
                    results = resilient_results
            else:
                results, telemetry = run_many_telemetry(
                    ids,
                    quick=args.quick,
                    jobs=args.jobs,
                    tracing=tracing,
                    profiling=args.profile,
                    audit_level=args.audit,
                )
        except KeyboardInterrupt as interrupt:
            terminated = isinstance(interrupt, _Terminated)
            exit_code = 143 if terminated else 130
            word = "terminated" if terminated else "interrupted"
            obs_log.error("run.terminated" if terminated else "run.interrupted")
            if args.checkpoint or args.resume is not None:
                print(
                    f"{word}: completed work is journaled; "
                    f"rerun with --resume {run_id}",
                    file=sys.stderr,
                )
            else:
                print(word, file=sys.stderr)
        except Exception as err:  # an experiment raised: fail the run loudly
            failures += 1
            if isinstance(err, AuditFault):
                audit_fault_failures += 1
            exit_code = 1
            obs_log.error("run.experiment_error", error=repr(err))
            from ..obs.flight.recorder import maybe_dump

            maybe_dump(
                "audit-fault" if isinstance(err, AuditFault) else "exception",
                {"error": repr(err)},
            )
            print(f"error: experiment run failed: {err!r}", file=sys.stderr)
        for result in results:
            obs_log.console(result.render())
            obs_log.console()
        if tracing and exit_code == 0:
            from ..trace.export import render_summary, write_chrome_trace
            from ..trace.metrics import CycleAccountingError, MetricsRegistry

            write_chrome_trace(
                args.trace,
                telemetry.events,
                metadata={"experiments": ids, "quick": args.quick, "jobs": args.jobs},
            )
            try:
                registry = MetricsRegistry()
                registry.merge(telemetry.layers, telemetry.kernels)
                obs_log.console(render_summary(telemetry.events, registry))
            except CycleAccountingError as err:
                exit_code = 1
                obs_log.error("run.audit_error", error=str(err))
                print(f"error: cycle-accounting audit failed: {err}", file=sys.stderr)
            obs_log.console(f"chrome trace written to {args.trace}")
        if args.profile and telemetry.phases:
            from ..obs.profiler import render_hotspots

            obs_log.console(render_hotspots(telemetry.phases), kind="profile")
        if args.cache_stats:
            stats = telemetry.cache
            obs_log.console(
                f"simulation cache: {stats.hits} hits "
                f"({stats.exact_hits} exact + {stats.canonical_hits} canonical) "
                f"/ {stats.misses} misses "
                f"({stats.hit_rate:.0%} hit rate, {stats.entries} entries)"
            )
            if os.environ.get("REPRO_STORE_DIR"):
                from ..store import attach_from_env

                store = attach_from_env()
                obs_log.console(
                    f"persistent store: {stats.persistent_hits} hits, "
                    f"{len(store)} records at {store.root}"
                )
        if args.audit != "off":
            # Experiments that *raised* AuditFault never shipped their
            # counter window back, so count those failures as violations.
            summary = RunTelemetry._fold_audit(
                {"level": args.audit, "checks": 0,
                 "checks_by_invariant": {}, "violations": 0},
                telemetry.audit,
            )
            summary["level"] = args.audit
            summary["violations"] += audit_fault_failures
            telemetry.audit = summary
            obs_log.console(
                f"audit[{args.audit}]: {summary['checks']} checks, "
                f"{summary['violations']} violation(s)"
            )
        if args.export_dir and results:
            from .export import write_results

            paths = write_results(results, args.export_dir)
            if run_ctx is not None:
                for path in paths:
                    run_ctx.add_output(path)
            obs_log.console(f"exported {len(paths)} files to {args.export_dir}")
    finally:
        if args.audit != "off":
            # The level is process-global state; restore it so later runs in
            # the same interpreter start unaudited unless they opt in again.
            from ..audit import auditor as audit_mod

            audit_mod.configure("off")
        if run_ctx is not None:
            from ..obs.prom import write_prometheus

            if budget is not None:
                run_ctx.manifest.extra["error_budget"] = budget.to_dict()
            if checkpoint_info is not None:
                run_ctx.manifest.extra["checkpoint"] = checkpoint_info
            if args.audit != "off":
                run_ctx.manifest.extra["audit"] = telemetry.audit
            manifest = run_ctx.finish(exit_code)
            run_dir = run_ctx.run_dir
            registry = harness_metrics(telemetry, manifest.wall_seconds or 0.0, failures)
            prom_path = write_prometheus(
                run_dir / "metrics.prom", registry, labels={"run_id": run_id}
            )
            run_ctx.add_output(prom_path)
            if args.log_file:
                run_ctx.add_output(args.log_file)
            if args.trace:
                run_ctx.add_output(args.trace)
            manifest_path = write_manifest(manifest, run_dir)
            obs_log.info(
                "run.complete",
                exit_code=exit_code,
                wall_s=manifest.wall_seconds,
                manifest=str(manifest_path),
                metrics=str(prom_path),
            )
        obs_log.shutdown()
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
