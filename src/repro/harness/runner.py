"""Experiment runner: regenerate any (or every) table/figure of the paper.

Usage::

    python -m repro.harness.runner            # run everything
    python -m repro.harness.runner fig4 fig13 # run selected experiments
    python -m repro.harness.runner --quick    # reduced workloads (CI-sized)
    python -m repro.harness.runner --jobs 4   # fan experiments out over processes

Each experiment module exposes ``run(quick=False) -> ExperimentResult``; the
registry below is the complete per-experiment index from DESIGN.md.

``--jobs N`` runs experiments in a ``ProcessPoolExecutor``; results are
collected and printed in submission order, so the report is byte-identical
to a serial run (each experiment is deterministic and self-contained).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from .experiments import (
    ablations,
    batch_sweep,
    design_space_plus,
    extensions,
    sparsity,
    fig2,
    fig4,
    fig7,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    table1,
    table2,
)
from .report import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "run_many", "run_all", "main"]

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "fig2": fig2.run,
    "fig4": fig4.run,
    "fig7": fig7.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "fig18": fig18.run,
    "ablations": ablations.run,
    "extensions": extensions.run,
    "batch_sweep": batch_sweep.run,
    "sparsity": sparsity.run,
    "design_space_plus": design_space_plus.run,
}


def run_experiment(experiment_id: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment by id (see DESIGN.md's per-experiment index)."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(quick=quick)


def run_many(
    ids: List[str], quick: bool = False, jobs: int = 1
) -> List[ExperimentResult]:
    """Run several experiments, optionally across worker processes.

    Results always come back in the order of ``ids`` regardless of which
    worker finishes first, so downstream rendering/export is deterministic.
    """
    if jobs <= 1:
        return [run_experiment(eid, quick=quick) for eid in ids]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(run_experiment, eid, quick) for eid in ids]
        return [future.result() for future in futures]


def run_all(quick: bool = False, jobs: int = 1) -> List[ExperimentResult]:
    return run_many(list(EXPERIMENTS), quick=quick, jobs=jobs)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--quick", action="store_true", help="reduced workloads")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for running experiments (default: serial)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print simulation-cache hit/miss statistics after the run",
    )
    parser.add_argument(
        "--export-dir",
        default=None,
        help="also write <id>.json and per-table CSVs into this directory",
    )
    args = parser.parse_args(argv)
    ids = args.experiments or list(EXPERIMENTS)
    for eid in ids:
        if eid not in EXPERIMENTS:  # fail before spawning any worker
            raise KeyError(
                f"unknown experiment {eid!r}; known: {sorted(EXPERIMENTS)}"
            )
    results = run_many(ids, quick=args.quick, jobs=args.jobs)
    for result in results:
        print(result.render())
        print()
    if args.cache_stats:
        from ..perf.cache import cache_stats

        stats = cache_stats()
        print(
            f"simulation cache: {stats.hits} hits / {stats.misses} misses "
            f"({stats.hit_rate:.0%} hit rate, {stats.entries} entries)"
        )
    if args.export_dir:
        from .export import write_results

        paths = write_results(results, args.export_dir)
        print(f"exported {len(paths)} files to {args.export_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
