"""Experiment runner: regenerate any (or every) table/figure of the paper.

Usage::

    python -m repro.harness.runner            # run everything
    python -m repro.harness.runner fig4 fig13 # run selected experiments
    python -m repro.harness.runner --quick    # reduced workloads (CI-sized)

Each experiment module exposes ``run(quick=False) -> ExperimentResult``; the
registry below is the complete per-experiment index from DESIGN.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from .experiments import (
    ablations,
    batch_sweep,
    design_space_plus,
    extensions,
    sparsity,
    fig2,
    fig4,
    fig7,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    table1,
    table2,
)
from .report import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "run_all", "main"]

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "fig2": fig2.run,
    "fig4": fig4.run,
    "fig7": fig7.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "fig18": fig18.run,
    "ablations": ablations.run,
    "extensions": extensions.run,
    "batch_sweep": batch_sweep.run,
    "sparsity": sparsity.run,
    "design_space_plus": design_space_plus.run,
}


def run_experiment(experiment_id: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment by id (see DESIGN.md's per-experiment index)."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(quick=quick)


def run_all(quick: bool = False) -> List[ExperimentResult]:
    return [run_experiment(eid, quick=quick) for eid in EXPERIMENTS]


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--quick", action="store_true", help="reduced workloads")
    parser.add_argument(
        "--export-dir",
        default=None,
        help="also write <id>.json and per-table CSVs into this directory",
    )
    args = parser.parse_args(argv)
    ids = args.experiments or list(EXPERIMENTS)
    results = []
    for eid in ids:
        result = run_experiment(eid, quick=args.quick)
        results.append(result)
        print(result.render())
        print()
    if args.export_dir:
        from .export import write_results

        paths = write_results(results, args.export_dir)
        print(f"exported {len(paths)} files to {args.export_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
