"""Experiment runner: regenerate any (or every) table/figure of the paper.

Usage::

    python -m repro.harness.runner            # run everything
    python -m repro.harness.runner fig4 fig13 # run selected experiments
    python -m repro.harness.runner --quick    # reduced workloads (CI-sized)
    python -m repro.harness.runner --jobs 4   # fan experiments out over processes

Each experiment module exposes ``run(quick=False) -> ExperimentResult``; the
registry below is the complete per-experiment index from DESIGN.md.

``--jobs N`` runs experiments in a ``ProcessPoolExecutor``; results are
collected and printed in submission order, so the report is byte-identical
to a serial run (each experiment is deterministic and self-contained).

``--trace [PATH]`` enables the :mod:`repro.trace` instrumentation for the
run: a Chrome ``trace_event`` JSON lands at PATH (default ``trace.json``)
and a text summary — span timings, counters, per-source cycle accounting
with the full invariant audit — prints after the reports.  Under ``--jobs``
each worker ships its events and metric records home and they are merged by
(pid, experiment) track.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..perf.cache import SIM_CACHE, CacheStats

from .experiments import (
    ablations,
    batch_sweep,
    design_space_plus,
    extensions,
    sparsity,
    fig2,
    fig4,
    fig7,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    table1,
    table2,
)
from .report import ExperimentResult

__all__ = [
    "EXPERIMENTS",
    "RunTelemetry",
    "run_experiment",
    "run_many",
    "run_many_telemetry",
    "run_all",
    "main",
]

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "fig2": fig2.run,
    "fig4": fig4.run,
    "fig7": fig7.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "fig18": fig18.run,
    "ablations": ablations.run,
    "extensions": extensions.run,
    "batch_sweep": batch_sweep.run,
    "sparsity": sparsity.run,
    "design_space_plus": design_space_plus.run,
}


def run_experiment(experiment_id: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment by id (see DESIGN.md's per-experiment index)."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(quick=quick)


def run_many(
    ids: List[str], quick: bool = False, jobs: int = 1
) -> List[ExperimentResult]:
    """Run several experiments, optionally across worker processes.

    Results always come back in the order of ``ids`` regardless of which
    worker finishes first, so downstream rendering/export is deterministic.
    """
    if jobs <= 1:
        return [run_experiment(eid, quick=quick) for eid in ids]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(run_experiment, eid, quick) for eid in ids]
        return [future.result() for future in futures]


def run_all(quick: bool = False, jobs: int = 1) -> List[ExperimentResult]:
    return run_many(list(EXPERIMENTS), quick=quick, jobs=jobs)


@dataclasses.dataclass
class RunTelemetry:
    """Everything a run ships back beyond the reports themselves.

    ``cache`` is the *per-run* lookup accounting (counters are zeroed before
    each experiment, so pooled workers' warm stores still count their hits
    honestly); ``events``/``layers``/``kernels`` are empty unless the run
    traced.
    """

    events: list = dataclasses.field(default_factory=list)
    layers: list = dataclasses.field(default_factory=list)
    kernels: list = dataclasses.field(default_factory=list)
    cache: CacheStats = CacheStats(hits=0, misses=0, entries=0)

    @classmethod
    def merge(cls, parts: Iterable["RunTelemetry"]) -> "RunTelemetry":
        """Fold per-experiment telemetry into one run-wide view.

        Each experiment's events are re-tagged onto their own ``tid`` track:
        timestamps restart per experiment (and per worker), so distinct
        tracks are what keeps the merged Chrome trace readable and the
        counter rollups correct.
        """
        merged = cls()
        for index, part in enumerate(parts):
            track = index + 1
            merged.events.extend(
                dataclasses.replace(event, tid=track) for event in part.events
            )
            merged.layers.extend(part.layers)
            merged.kernels.extend(part.kernels)
            merged.cache = merged.cache + part.cache
        return merged


def _run_with_telemetry(
    experiment_id: str, quick: bool, tracing: bool
) -> Tuple[ExperimentResult, RunTelemetry]:
    """Run one experiment with per-run cache accounting (and tracing if on).

    Runs in the parent (serial) or in a pool worker (``--jobs``); either way
    the process-global tracer/registry/cache belong to *this* process, so
    resetting them here is safe and gives each experiment a clean window.
    """
    SIM_CACHE.reset_stats()
    if not tracing:
        result = run_experiment(experiment_id, quick=quick)
        return result, RunTelemetry(cache=SIM_CACHE.stats)
    from ..trace import metrics as trace_metrics
    from ..trace import tracer as trace

    registry = trace_metrics.get_registry()
    registry.clear()
    trace.get_tracer().clear()
    trace.enable()
    try:
        with trace.span("experiment", cat="harness", experiment=experiment_id):
            result = run_experiment(experiment_id, quick=quick)
        telemetry = RunTelemetry(
            events=trace.drain_events(),
            layers=registry.layers,
            kernels=registry.kernels,
            cache=SIM_CACHE.stats,
        )
    finally:
        trace.disable()
        registry.clear()
    return result, telemetry


def run_many_telemetry(
    ids: List[str], quick: bool = False, jobs: int = 1, tracing: bool = False
) -> Tuple[List[ExperimentResult], RunTelemetry]:
    """Like :func:`run_many`, but also collect :class:`RunTelemetry`."""
    if jobs <= 1:
        pairs = [_run_with_telemetry(eid, quick, tracing) for eid in ids]
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(_run_with_telemetry, eid, quick, tracing) for eid in ids
            ]
            pairs = [future.result() for future in futures]
    results = [result for result, _ in pairs]
    telemetry = RunTelemetry.merge(part for _, part in pairs)
    return results, telemetry


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--quick", action="store_true", help="reduced workloads")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for running experiments (default: serial)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print per-run simulation-cache hit/miss statistics "
        "(aggregated across workers under --jobs)",
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const="trace.json",
        default=None,
        metavar="PATH",
        help="collect cycle-accounting traces; writes Chrome trace JSON to "
        "PATH (default trace.json) and prints a summary",
    )
    parser.add_argument(
        "--export-dir",
        default=None,
        help="also write <id>.json and per-table CSVs into this directory",
    )
    args = parser.parse_args(argv)
    ids = args.experiments or list(EXPERIMENTS)
    for eid in ids:
        if eid not in EXPERIMENTS:  # fail before spawning any worker
            raise KeyError(
                f"unknown experiment {eid!r}; known: {sorted(EXPERIMENTS)}"
            )
    tracing = args.trace is not None
    results, telemetry = run_many_telemetry(
        ids, quick=args.quick, jobs=args.jobs, tracing=tracing
    )
    for result in results:
        print(result.render())
        print()
    if tracing:
        from ..trace.export import render_summary, write_chrome_trace
        from ..trace.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.merge(telemetry.layers, telemetry.kernels)
        write_chrome_trace(
            args.trace,
            telemetry.events,
            metadata={"experiments": ids, "quick": args.quick, "jobs": args.jobs},
        )
        print(render_summary(telemetry.events, registry))
        print(f"chrome trace written to {args.trace}")
    if args.cache_stats:
        stats = telemetry.cache
        print(
            f"simulation cache: {stats.hits} hits / {stats.misses} misses "
            f"({stats.hit_rate:.0%} hit rate, {stats.entries} entries)"
        )
    if args.export_dir:
        from .export import write_results

        paths = write_results(results, args.export_dir)
        print(f"exported {len(paths)} files to {args.export_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
