"""Fig 18: the two GPU optimization studies.

(a) Strided convolution: our channel-first implementation's TFLOPS
normalized to cuDNN on the stride>1 layers of the benchmark networks.
Paper: on average 20%, up to 40% faster.

(b) Inter-tile reuse: our implementation with the reuse-reordering of
decomposed filters vs without, on layers whose global-memory access is not
fully hidden by compute.  Paper: average 16.7% improvement.
"""

from __future__ import annotations

from ...analysis.metrics import geometric_mean
from ...gpu.channel_first import channel_first_conv_time
from ...gpu.config import V100
from ...gpu.cudnn_model import cudnn_conv_time
from ...workloads.synthetic import memory_bound_layers, strided_layers
from ..report import ExperimentResult, Table

BATCH = 8


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult("fig18", "GPU optimization studies: stride and inter-tile reuse")

    table_a = result.add_table(
        Table(
            "Fig 18a: strided layers, ours vs cuDNN",
            ("layer", "stride", "cuDNN TFLOPS", "ours TFLOPS", "speedup"),
        )
    )
    layers = strided_layers(BATCH)
    if quick:
        layers = layers[:4]
    speedups = []
    for layer in layers:
        ours = channel_first_conv_time(layer, V100)
        cudnn = cudnn_conv_time(layer, V100)
        speedup = cudnn.seconds / ours.seconds
        speedups.append(speedup)
        table_a.add_row(layer.name, layer.stride, cudnn.tflops, ours.tflops, speedup)
    result.note(
        f"Strided layers: geomean speedup {geometric_mean(speedups):.2f}x, "
        f"max {max(speedups):.2f}x over cuDNN (paper: avg 1.20x, up to 1.40x)."
    )

    table_b = result.add_table(
        Table(
            "Fig 18b: inter-tile reuse impact",
            ("layer", "no-reuse (ms)", "reuse (ms)", "improvement %", "reuse fraction"),
        )
    )
    layers_b = memory_bound_layers(BATCH)
    if quick:
        layers_b = layers_b[:4]
    improvements = []
    for layer in layers_b:
        baseline = channel_first_conv_time(layer, V100, reorder=False)
        reordered = channel_first_conv_time(layer, V100, reorder=True)
        gain = baseline.seconds / reordered.seconds - 1.0
        improvements.append(gain)
        table_b.add_row(
            layer.name,
            baseline.seconds * 1e3,
            reordered.seconds * 1e3,
            100 * gain,
            reordered.reuse_fraction,
        )
    avg_gain = sum(improvements) / len(improvements)
    result.note(
        f"Inter-tile reuse: average improvement {100 * avg_gain:.1f}% (paper: 16.7%)."
    )
    return result
