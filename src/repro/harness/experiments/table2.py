"""Table II: the TPUSim configuration (a print-out, kept as an experiment so
the benchmark suite pins the simulated machine's parameters)."""

from __future__ import annotations

from ...systolic.config import TPU_V2
from ..report import ExperimentResult, Table


def run(quick: bool = False) -> ExperimentResult:
    cfg = TPU_V2
    result = ExperimentResult("table2", "TPU-v2 simulator configuration")
    table = result.add_table(Table("Table II", ("parameter", "value")))
    table.add_row("Systolic array", f"{cfg.array_rows} x {cfg.array_cols} @ {cfg.clock_ghz * 1000:.0f} MHz")
    table.add_row("Vector ALUs", cfg.vector_alus)
    table.add_row("On-chip memory", f"{cfg.unified_sram_bytes // (1024 * 1024)} MB unified")
    table.add_row(
        "Vector memories",
        f"{cfg.num_vector_memories} SRAMs, word {cfg.sram_word_elems} x {cfg.sram_elem_bytes} B",
    )
    table.add_row("Off-chip memory", f"{cfg.hbm.peak_bandwidth_gbps:.0f} GB/s HBM")
    table.add_row("Peak throughput", f"{cfg.peak_tflops:.1f} TFLOPS (bf16)")
    result.note(cfg.describe())
    return result
