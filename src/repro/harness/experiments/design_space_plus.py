"""Extended design-space exploration (beyond Fig 16).

Two studies the paper's Fig 16 analysis points at but does not run:

1. **HBM bandwidth sweep** — how much off-chip bandwidth does the 128x128
   array actually need?  VGG16 throughput vs bandwidth locates the knee and
   shows the Tbl. II choice of 700 GB/s sits just past it.
2. **Second systolic array (the TPU-v3 move)** — Fig 16b observes >50% of
   the vector-memory port bandwidth idle at word 8 and says that is why
   TPU-v3 added another array.  We check feasibility per word size (the
   ``2*arrays/word <= 1`` port budget) and simulate the dual-MXU core:
   compute-bound layers scale ~2x on the same memories; memory-bound ones
   do not, explaining why TPU-v3 also raised HBM bandwidth.

For *at-scale* exploration — the full array x SRAM x word x HBM x MXU
cross-product over the workload zoo, with adaptive Pareto refinement,
sharded lease-based workers and crash-safe resume — use ``python -m repro
dse sweep`` (:mod:`repro.dse`), which supersedes this fixed-grid
experiment; these two tables remain the paper-sized reference studies.
"""

from __future__ import annotations

import dataclasses

from ...core.conv_spec import ConvSpec
from ...memory.dram import HBMConfig
from ...systolic.config import TPU_V2
from ...systolic.dual_mxu import port_budget_allows, simulate_conv_dual_mxu
from ...systolic.simulator import TPUSim
from ...workloads.networks import vgg16
from ..report import ExperimentResult, Table

BANDWIDTHS = (100, 200, 400, 700, 1000, 1400)


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        "design_space_plus", "Extended DSE: HBM bandwidth and the second systolic array"
    )

    # ------------------------------------------------------ bandwidth sweep
    layers = vgg16(batch=8)
    if quick:
        layers = layers[:4]
    table_bw = result.add_table(
        Table("HBM bandwidth sweep (VGG16, batch 8)", ("GB/s", "TFLOPS", "vs 700 GB/s"))
    )
    tflops_by_bw = {}
    for bw in BANDWIDTHS if not quick else (200, 700, 1400):
        config = dataclasses.replace(
            TPU_V2, hbm=dataclasses.replace(TPU_V2.hbm, peak_bandwidth_gbps=float(bw))
        )
        sim = TPUSim(config)
        cycles = sum(sim.simulate_conv(layer).cycles for layer in layers)
        macs = sum(layer.macs for layer in layers)
        tflops_by_bw[bw] = 2 * macs * config.clock_ghz / cycles / 1e3
    for bw, tflops in tflops_by_bw.items():
        table_bw.add_row(bw, tflops, tflops / tflops_by_bw[700])
    low = 100 if not quick else 200
    result.note(
        f"Single-array conv inference saturates early ({tflops_by_bw[low]:.1f} TFLOPS "
        f"at {low} GB/s vs {tflops_by_bw[700]:.1f} at 700): the channel-first "
        "pipeline keeps one MXU fed from a fraction of Tbl. II's bandwidth — the "
        "700 GB/s provisioning is for training GEMMs and the multi-array configs "
        "below, not for single-array conv."
    )

    # ---------------------------------------------------------- second MXU
    table_port = result.add_table(
        Table(
            "Port budget: arrays feedable per word size",
            ("word (elems)", "max arrays", "port demand at 2 arrays"),
        )
    )
    for word in (2, 4, 8, 16):
        config = TPU_V2.with_word_elems(word)
        max_arrays = word // 2
        table_port.add_row(word, max_arrays, 4 / word)
    result.note(
        "Word 8 feeds up to 4 arrays contention-free (2 with half the port "
        "still idle); word 2 feeds exactly one — the feasibility behind the "
        "paper's TPU-v3 remark."
    )

    table_mxu = result.add_table(
        Table(
            "Dual-MXU core (word 8, shared vector memories)",
            ("layer", "1 array", "2 arrays @700GB/s", "2 arrays @100GB/s", "scaling", "scaling (starved)"),
        )
    )
    sim = TPUSim()
    starved = dataclasses.replace(
        TPU_V2, hbm=dataclasses.replace(TPU_V2.hbm, peak_bandwidth_gbps=100.0)
    )
    study = [
        ConvSpec(n=8, c_in=256, h_in=14, w_in=14, c_out=256,
                 h_filter=3, w_filter=3, padding=1, name="14-256-256-3"),
        ConvSpec(n=8, c_in=64, h_in=56, w_in=56, c_out=256,
                 h_filter=1, w_filter=1, name="56-64-256-1"),
    ]
    for layer in study:
        one = sim.simulate_conv(layer).tflops
        two = simulate_conv_dual_mxu(layer, arrays=2).tflops
        two_starved = simulate_conv_dual_mxu(layer, arrays=2, config=starved).tflops
        table_mxu.add_row(layer.name, one, two, two_starved, two / one, two_starved / one)
    result.note(
        "At full bandwidth the second array nearly doubles throughput on the "
        "same vector memories (the Fig 16b headroom cashed in); starve the HBM "
        "and the scaling evaporates — why TPU-v3 raised bandwidth alongside."
    )
    return result
