"""Fig 14: the multi-tile computation parameter (Sec. IV-B).

(a) Sweep the multi-tile parameter on the study layer
(N=8, C_I=8, W_I=C_O=128, W_F=3): the vector-memory workspace grows
linearly while performance improves with diminishing returns, matching the
TPU at 3 tiles.

(b) Validate the inferred policy ``tiles = MIN(128/C_I, W_F)`` across a
channel/filter sweep against the TPU-v2 oracle (paper: 5.3% average error).
"""

from __future__ import annotations

from ...analysis.validation import ValidationRun
from ...core.tiling import tpu_multi_tile_policy, workspace_elements
from ...oracle.tpu_oracle import TPUv2Oracle
from ...systolic.config import TPU_V2
from ...systolic.simulator import TPUSim
from ...workloads.synthetic import fig14_layer, small_channel_sweep
from ..report import ExperimentResult, Table


def policy_validation(quick: bool = False) -> ValidationRun:
    sim = TPUSim()
    oracle = TPUv2Oracle()
    run_ = ValidationRun("fig14b-policy")
    layers = small_channel_sweep(batch=8)
    if quick:
        layers = layers[:6]
    for layer in layers:
        simulated = sim.simulate_conv(layer).tflops  # policy applied by default
        measured = oracle.measured_conv_tflops(layer)
        run_.add(layer.name, simulated, measured)
    return run_


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult("fig14", "Multi-tile parameter: effect and policy validation")
    sim = TPUSim()
    layer = fig14_layer(batch=8)
    policy_tiles = tpu_multi_tile_policy(layer, TPU_V2.array_rows)

    table_a = result.add_table(
        Table(
            "Fig 14a: tiles vs performance and workspace",
            ("tiles", "TFLOPS", "speedup vs 1", "workspace (MB)"),
        )
    )
    max_tiles = 4 if quick else 8
    base_tflops = None
    for tiles in range(1, max_tiles + 1):
        res = sim.simulate_conv(layer, group_size=tiles)
        if base_tflops is None:
            base_tflops = res.tflops
        workspace_mb = (
            workspace_elements(layer, tiles) * TPU_V2.compute_elem_bytes / (1024 * 1024)
        )
        table_a.add_row(tiles, res.tflops, res.tflops / base_tflops, workspace_mb)
    result.note(
        f"Workspace grows linearly with the tile count up to W_F = {layer.w_filter} "
        f"(our merge is row-aligned, so both workspace and performance plateau there; "
        f"the paper's sweep shows workspace continuing linearly past the useful point). "
        f"Inferred TPU policy for this layer: {policy_tiles} tiles (paper: TPU matches at 3)."
    )

    run_b = policy_validation(quick)
    table_b = result.add_table(
        Table(
            "Fig 14b: policy validation (TFLOPS)",
            ("layer", "TPUSim", "TPUv2", "error %"),
        )
    )
    for point in run_b.points:
        table_b.add_row(point.label, point.simulated, point.measured, point.error_pct)
    result.note(f"Policy-validation average error: {run_b.mape():.2f}% (paper: 5.3%)")
    return result
