"""Table I: memory usage (MB) of explicit im2col across five CNNs.

Paper row 1: total IFMap storage of all conv layers; row 2: total lowered
feature-matrix storage.  The paper measures on a V100 via cuDNN's explicit
workspace query at batch size 64 (the batch used throughout Sec. II); here
the quantities are exact geometry (see DESIGN.md) computed per layer and
summed, FP16 elements.

Expected shape: lowered IFMaps are ~1.5-10x the IFMaps.
"""

from __future__ import annotations

from ...core.lowering import ifmap_mb, lowered_matrix_mb
from ...obs import log as obs_log
from ...workloads.networks import network
from ..report import ExperimentResult, Table

#: Table I's column order in the paper.
TABLE1_NETWORKS = ("AlexNet", "ResNet", "VGG16", "YOLO", "DenseNet")


def run(quick: bool = False, batch: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        "table1", "Memory usage (MB) of explicit im2col (IFMaps vs lowered IFMaps)"
    )
    table = result.add_table(
        Table("Table I (batch %d, FP16)" % batch, ("quantity", *TABLE1_NETWORKS))
    )
    ifmap_row = []
    lowered_row = []
    expansions = {}
    for name in TABLE1_NETWORKS:
        layers = network(name, batch)
        ifmaps = sum(ifmap_mb(layer) for layer in layers)
        lowered = sum(lowered_matrix_mb(layer) for layer in layers)
        ifmap_row.append(ifmaps)
        lowered_row.append(lowered)
        expansions[name] = lowered / ifmaps
        obs_log.debug(
            "table1.network", network=name, layers=len(layers),
            expansion_x=round(expansions[name], 2),
        )
    table.add_row("IFMaps", *ifmap_row)
    table.add_row("Lowered IFMaps", *lowered_row)
    table.add_row("Expansion (x)", *[expansions[n] for n in TABLE1_NETWORKS])
    result.note(
        "Paper: additional storage is generally 1.5x-10x the input feature maps; "
        f"measured expansions here: "
        + ", ".join(f"{n}={expansions[n]:.1f}x" for n in TABLE1_NETWORKS)
    )
    return result
