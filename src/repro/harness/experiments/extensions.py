"""Extension studies: grouped/depthwise convolution, the skew-layout
alternative, and training-step timing.

These push the reproduced system into territory the paper motivates but does
not evaluate:

- ``depthwise``: grouped convs starve the GEMM engine's K dimension; the
  multi-tile policy claws back what the filter size allows, but depthwise
  remains the honest worst case of GEMM-based conv (why dedicated engines
  exist for it).
- ``skew layout``: the Sec. IV-A design alternative — physically skewing the
  data instead of the addresses — priced as skew/restore passes around every
  non-GEMM layer of VGG16.
- ``training``: forward + backward-data + backward-weights volumes per
  layer, all lowering through the same decomposed machinery (the TPU-v2's
  actual job).
"""

from __future__ import annotations

from ...core.conv_spec import ConvSpec, GemmShape
from ...core.grouped import GroupedConvSpec, depthwise_spec
from ...systolic.config import TPU_V2
from ...systolic.network_scheduler import (
    plan_residency,
    residency_traffic_saved_bytes,
    simulate_network_resident,
)
from ...systolic.simulator import TPUSim
from ...systolic.vector_unit import skew_restore_cycles, skewed_layout_overhead
from ...workloads.mobilenet import mobilenet_v1
from ...workloads.networks import vgg16
from ..report import ExperimentResult, Table


def _simulate_grouped(sim: TPUSim, grouped: GroupedConvSpec):
    """Grouped conv = groups x the per-group layer (sequential on one core)."""
    per_group = sim.simulate_conv(grouped.per_group_spec())
    cycles = per_group.cycles * grouped.groups
    tflops = 2 * grouped.macs * sim.config.clock_ghz / cycles / 1e3
    utilization = grouped.macs / (sim.config.peak_macs_per_cycle * cycles)
    return cycles, tflops, utilization, per_group.group_size


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        "extensions", "Grouped/depthwise convs, the skew-layout alternative, training"
    )
    sim = TPUSim()

    # ------------------------------------------------------- grouped sweep
    table_g = result.add_table(
        Table(
            "Grouped conv on the TPU (C=256, 28x28, 3x3, batch 8)",
            ("groups", "per-group C_I", "multi-tile", "TFLOPS", "utilization"),
        )
    )
    base = ConvSpec(n=8, c_in=256, h_in=28, w_in=28, c_out=256,
                    h_filter=3, w_filter=3, padding=1, name="grouped.base")
    group_counts = (1, 4, 16) if quick else (1, 2, 4, 8, 16, 64, 256)
    utilizations = {}
    for groups in group_counts:
        grouped = GroupedConvSpec(base=base, groups=groups)
        cycles, tflops, utilization, tile = _simulate_grouped(sim, grouped)
        utilizations[groups] = utilization
        table_g.add_row(groups, base.c_in // groups, tile, tflops, utilization)
    result.note(
        "Grouping divides the GEMM's K depth; the multi-tile policy recovers "
        "up to W_F x, but depthwise (groups=C) still collapses utilization — "
        "the honest limit of GEMM-based convolution, and why production "
        "compilers route depthwise layers to the vector unit instead of the MXU."
    )

    # --------------------------------------------------------- depthwise row
    table_dw = result.add_table(
        Table("Depthwise layers (MobileNet-style)", ("layer", "TFLOPS", "utilization"))
    )
    for channels, hw in ((32, 112), (128, 56), (512, 14)):
        grouped = depthwise_spec(n=8, channels=channels, hw=hw)
        cycles, tflops, utilization, _ = _simulate_grouped(sim, grouped)
        table_dw.add_row(grouped.base.name, tflops, utilization)

    # ------------------------------------------------------------ mobilenet
    mobile_layers = mobilenet_v1(batch=8)
    dense_cycles = 0.0
    dense_macs = 0
    dw_cycles = 0.0
    dw_macs = 0
    for layer in mobile_layers:
        if isinstance(layer, GroupedConvSpec):
            cycles, _, _, _ = _simulate_grouped(sim, layer)
            dw_cycles += cycles
            dw_macs += layer.macs
        else:
            dense_cycles += sim.simulate_conv(layer).cycles
            dense_macs += layer.macs
    table_mb = result.add_table(
        Table(
            "MobileNet-v1 on the TPU (batch 8)",
            ("layer class", "MAC share", "cycle share", "TFLOPS"),
        )
    )
    total_cycles = dense_cycles + dw_cycles
    total_macs = dense_macs + dw_macs
    clock = sim.config.clock_ghz
    table_mb.add_row(
        "stem + pointwise (MXU)", dense_macs / total_macs, dense_cycles / total_cycles,
        2 * dense_macs * clock / dense_cycles / 1e3,
    )
    table_mb.add_row(
        "depthwise (if forced onto the MXU)", dw_macs / total_macs, dw_cycles / total_cycles,
        2 * dw_macs * clock / dw_cycles / 1e3,
    )
    result.note(
        f"MobileNet's depthwise layers hold {100 * dw_macs / total_macs:.0f}% of the MACs "
        f"but would eat {100 * dw_cycles / total_cycles:.0f}% of the cycles on the MXU — "
        "the quantitative case for routing them elsewhere."
    )

    # ---------------------------------------------------------- skew layout
    layers = vgg16(batch=8)
    if quick:
        layers = layers[:4]
    conv_cycles = sum(sim.simulate_conv(layer).cycles for layer in layers)
    skew_cycles = skewed_layout_overhead(layers)
    table_skew = result.add_table(
        Table(
            "Skewed-data-layout alternative (VGG16, batch 8)",
            ("quantity", "cycles", "fraction of conv time"),
        )
    )
    table_skew.add_row("conv (channel-first, skewed addressing)", conv_cycles, 1.0)
    table_skew.add_row("skew/restore passes (skewed layout)", skew_cycles,
                       skew_cycles / conv_cycles)
    result.note(
        f"Physically skewing the layout would add {100 * skew_cycles / conv_cycles:.0f}% "
        "of the conv time in skew/restore passes around non-GEMM layers — the "
        "quantified version of Sec. IV-A's rejection."
    )

    # ------------------------------------------------------------- residency
    from ...workloads.networks import network, network_names

    table_res = result.add_table(
        Table(
            "Inter-layer activation residency (batch 8)",
            ("network", "resident edges", "latency speedup", "DRAM GB saved", "traffic cut"),
        )
    )
    residency_networks = ("VGG16",) if quick else ("VGG16", "ResNet", "YOLO")
    for net_name in residency_networks:
        net_layers = network(net_name, 8)
        base_cycles = sum(sim.simulate_conv(layer).cycles for layer in net_layers)
        resident = simulate_network_resident(net_name, net_layers).total_cycles
        decisions = plan_residency(net_layers)
        saved = residency_traffic_saved_bytes(net_layers)
        elem = sim.config.compute_elem_bytes
        baseline_traffic = sum(
            layer.positions * layer.lowered_rows() * layer.c_in * elem
            + layer.filter_bytes(elem)
            + layer.ofmap_bytes(elem)
            for layer in net_layers
        )
        table_res.add_row(
            net_name,
            f"{sum(d.resident for d in decisions)}/{len(decisions)}",
            base_cycles / resident,
            saved / 1e9,
            saved / baseline_traffic,
        )
    result.note(
        "Keeping chain-edge activations in the 32 MB SRAM barely moves latency "
        "(the fills were already hidden under compute) but removes a real slice "
        "of DRAM traffic — an energy win, not a speed win, on a balanced design."
    )

    # -------------------------------------------------------------- training
    table_t = result.add_table(
        Table(
            "Training-step GEMM volumes (batch 8)",
            ("layer", "forward", "bwd-data", "bwd-weights", "bwd/fwd ratio"),
        )
    )
    training_layers = [
        ConvSpec(n=8, c_in=128, h_in=28, w_in=28, c_out=128,
                 h_filter=3, w_filter=3, padding=1, name="28-128-128-3"),
        ConvSpec(n=8, c_in=512, h_in=14, w_in=14, c_out=512,
                 h_filter=3, w_filter=3, padding=1, name="14-512-512-3"),
    ]
    for layer in training_layers:
        forward = sim.simulate_conv(layer).cycles
        m = layer.lowered_rows()
        bwd_data = sim.simulate_gemm(
            GemmShape(m=m, n=layer.c_in * layer.positions, k=layer.c_out)
        ).cycles
        bwd_weights = sim.simulate_gemm(
            GemmShape(m=layer.c_in * layer.positions, n=layer.c_out, k=m)
        ).cycles
        table_t.add_row(
            layer.name, forward, bwd_data, bwd_weights, (bwd_data + bwd_weights) / forward
        )
    result.note(
        "Both backward passes lower through the same decomposed GEMM family; "
        "a training step costs ~3x the forward conv, as expected."
    )
    return result
