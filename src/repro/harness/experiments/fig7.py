"""Fig 7: HWC vs CHW DRAM layout for filling the lowered-matrix tile.

Prices the exact address trace of a decomposed-tile fill under both layouts
through the HBM model: the HWC layout coalesces the channel groups of
consecutive taps into long runs; CHW fragments them.  Reported per stride,
since the paper's point is that HWC's advantage is what keeps larger strides
cheap (Sec. III-A "DRAM Layout").
"""

from __future__ import annotations

from ...core.channel_first import decompose
from ...core.conv_spec import ConvSpec
from ...core.layouts import Layout
from ...memory.access_pattern import compare_layout_fill
from ...memory.dram import HBMModel
from ..report import ExperimentResult, Table


def _study_layer(stride: int, batch: int = 4) -> ConvSpec:
    return ConvSpec(
        n=batch, c_in=32, h_in=56, w_in=56, c_out=64,
        h_filter=3, w_filter=3, stride=stride, padding=1,
        name=f"fig7.s{stride}",
    )


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult("fig7", "HWC vs CHW DRAM layout for tile fills")
    hbm = HBMModel()
    table = result.add_table(
        Table(
            "Fig 7: tile-fill cost by DRAM layout",
            ("stride", "layout", "runs", "mean run (B)", "cycles", "eff. GB/s"),
        )
    )
    strides = (1, 2) if quick else (1, 2, 4)
    speedups = {}
    for stride in strides:
        spec = _study_layer(stride, batch=2 if quick else 4)
        tile = decompose(spec)[4]  # the centre decomposed filter
        outcome = compare_layout_fill(
            spec, tile, hbm, layouts=(Layout.NHWC, Layout.NCHW)
        )
        for layout in (Layout.NHWC, Layout.NCHW):
            r = outcome[layout]
            table.add_row(
                stride, layout.value, r.stats.runs, r.mean_run_bytes, r.cycles,
                r.effective_bandwidth_gbps,
            )
        speedups[stride] = outcome[Layout.NCHW].cycles / outcome[Layout.NHWC].cycles
    for stride, speedup in speedups.items():
        result.note(f"stride {stride}: HWC fills {speedup:.1f}x faster than CHW")
    result.note(
        "Paper: HWC's mostly-continuous accesses better utilise off-chip bandwidth, "
        "and the advantage matters most at stride > 1."
    )
    return result
