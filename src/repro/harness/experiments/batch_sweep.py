"""Batch-size sensitivity (extension study).

The paper evaluates at batch 8 (TPU validation, Fig 17) and batch 64
(Fig 2); this study sweeps the batch and shows *why* those regimes behave
as they do:

- **TPU**: the HWCN layout packs the batch into the vector-memory word and
  into each DRAM run — small batches fragment the fills and shrink the
  GEMM's M dimension, so throughput climbs steeply to ~batch 8 (one word)
  and saturates after.  This is the quantitative version of Sec. IV-C's
  "TPU design is clever in leveraging the large word size through batching".
- **GPU**: throughput rises with batch as the grid fills the SMs and
  memory/launch overheads amortise, saturating once tiles outnumber the
  machine.
- The **explicit-on-TPU** column (the SCALE-Sim assumption) trails the
  implicit path at every batch by the transform + lowered-streaming costs.
"""

from __future__ import annotations

from ...core.conv_spec import ConvSpec
from ...gpu.channel_first import channel_first_conv_time
from ...gpu.config import V100
from ...systolic.explicit_schedule import simulate_conv_explicit_tpu
from ...systolic.simulator import TPUSim
from ..report import ExperimentResult, Table

STUDY_LAYER = ConvSpec(
    n=1, c_in=128, h_in=28, w_in=28, c_out=128,
    h_filter=3, w_filter=3, stride=1, padding=1, name="batchsweep.28-128-128-3",
)

BATCHES = (1, 2, 4, 8, 16, 32, 64)


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult("batch_sweep", "Batch-size sensitivity across platforms")
    sim = TPUSim()
    batches = (1, 8, 64) if quick else BATCHES
    table = result.add_table(
        Table(
            "TFLOPS vs batch (28x28, 128->128, 3x3)",
            ("batch", "TPU implicit", "TPU explicit (SCALE-Sim-style)", "V100 channel-first"),
        )
    )
    tpu_by_batch = {}
    specs = [STUDY_LAYER.with_batch(batch) for batch in batches]
    # The implicit column runs as one batched pass (bit-identical per layer).
    implicit_results = sim.simulate_conv_batch(specs)
    for batch, spec, implicit in zip(batches, specs, implicit_results):
        explicit = simulate_conv_explicit_tpu(spec)
        gpu = channel_first_conv_time(spec, V100)
        tpu_by_batch[batch] = implicit.tflops
        table.add_row(
            batch,
            implicit.tflops,
            explicit.tflops(sim.config.clock_ghz, spec.macs),
            gpu.tflops,
        )
    if 1 in tpu_by_batch and 8 in tpu_by_batch:
        result.note(
            f"TPU throughput grows {tpu_by_batch[8] / tpu_by_batch[1]:.1f}x from batch 1 "
            f"to batch 8 (one full vector-memory word) and "
            f"{tpu_by_batch[max(batches)] / tpu_by_batch[8]:.2f}x beyond — batching is "
            "what makes the large word size pay (Sec. IV-C)."
        )
    result.note(
        "The explicit path trails the implicit one at every batch: the transform "
        "pass plus streaming the lowered matrix from DRAM never amortises away."
    )
    return result
