"""Fig 13: TPUSim validation against the TPU-v2 oracle.

(a) GEMM microbenchmarks (M, N, K from 256 to 8192): paper reports 4.42%
average error.  (b) CONV layers that do not trigger the multi-tile
optimisation (C_I >= 128): paper reports 4.87%.

The "measurement" is the independent analytic TPU-v2 oracle with
deterministic noise (DESIGN.md substitutions); the experiment demonstrates
that two independently constructed models of the machine agree to ~5%.
"""

from __future__ import annotations

from ...analysis.validation import ValidationRun
from ...oracle.tpu_oracle import TPUv2Oracle
from ...systolic.simulator import TPUSim
from ...workloads.synthetic import conv_validation_layers, gemm_sweep
from ..report import ExperimentResult, Table


def gemm_validation(quick: bool = False) -> ValidationRun:
    sim = TPUSim()
    oracle = TPUv2Oracle()
    run_ = ValidationRun("fig13a-gemm")
    shapes = gemm_sweep()
    if quick:
        shapes = shapes[:4]
    # One batched pass: shared pricing + a single segmented recurrence
    # (bit-identical per shape to the per-call loop).
    simulated = sim.simulate_gemm_batch(shapes)
    for shape, layer in zip(shapes, simulated):
        measured = oracle.measured_gemm_cycles(shape)
        run_.add(f"{shape.m}x{shape.k}x{shape.n}", layer.cycles, measured)
    return run_


def conv_validation(quick: bool = False) -> ValidationRun:
    sim = TPUSim()
    oracle = TPUv2Oracle()
    run_ = ValidationRun("fig13b-conv")
    layers = conv_validation_layers(batch=8)
    if quick:
        layers = layers[:4]
    simulated = sim.simulate_conv_batch(layers)
    for layer, result in zip(layers, simulated):
        measured = oracle.measured_conv_cycles(layer)
        run_.add(layer.name, result.cycles, measured)
    return run_


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult("fig13", "TPUSim vs TPU-v2 validation on microbenchmarks")

    gemm_run = gemm_validation(quick)
    table_a = result.add_table(
        Table("Fig 13a: GEMM cycles", ("shape (MxKxN)", "TPUSim", "TPUv2", "error %"))
    )
    for point in gemm_run.points:
        table_a.add_row(point.label, point.simulated, point.measured, point.error_pct)
    result.note(f"GEMM average error: {gemm_run.mape():.2f}% (paper: 4.42%)")

    conv_run = conv_validation(quick)
    table_b = result.add_table(
        Table("Fig 13b: CONV cycles", ("layer", "TPUSim", "TPUv2", "error %"))
    )
    for point in conv_run.points:
        table_b.add_row(point.label, point.simulated, point.measured, point.error_pct)
    result.note(f"CONV average error: {conv_run.mape():.2f}% (paper: 4.87%)")
    return result
