"""Ablation and extension studies beyond the paper's figures.

These exercise the design choices DESIGN.md calls out and the paper's
qualitative claims that have no dedicated figure:

- ``channel_last_tpu``: the Sec. II-C counterfactual — migrate the
  Lym-et-al. schedule onto the TPU substrate and show the stride cliff the
  real TPU does not exhibit (the strongest evidence for channel-first).
- ``weight_fifo``: what the TPU's weight double-buffering buys.
- ``dram_layout``: HWC vs CHW DRAM layout end-to-end on TPU conv time
  (Sec. III's "DRAM Layout" argument, at layer scale).
- ``reordering``: naive vs greedy decomposed-filter orders across strides.
- ``variants``: dilated and deformable conv — channel-first vs the
  channel-last ecosystem's options (Sec. II-C's "CONV variants" claim).
- ``multicore``: data-parallel scaling across TPU cores.
- ``energy_word_size``: Fig 16b extended from area to energy per MAC.
"""

from __future__ import annotations

import dataclasses

from ...core.channel_first import decompose
from ...core.conv_spec import ConvSpec
from ...core.layouts import Layout
from ...core.reordering import greedy_reuse_order, order_reuse_fraction
from ...gpu.config import V100
from ...gpu.variants import (
    deformable_conv_time_channel_first,
    deformable_conv_time_fallback,
    dilated_conv_times,
)
from ...systolic.channel_last_schedule import simulate_conv_channel_last
from ...systolic.config import TPU_V2
from ...systolic.energy import EnergyModel
from ...systolic.multicore import scaling_efficiency
from ...systolic.simulator import TPUSim
from ..report import ExperimentResult, Table

STUDY_LAYER = ConvSpec(
    n=64, c_in=128, h_in=28, w_in=28, c_out=128,
    h_filter=3, w_filter=3, stride=1, padding=1, name="ablation.28-128-128-3",
)


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult("ablations", "Design-choice ablations and CONV-variant extensions")
    sim = TPUSim()

    # ---------------------------------------------- channel-last on the TPU
    table_cl = result.add_table(
        Table(
            "Counterfactual: channel-last schedule on the TPU (TFLOPS)",
            ("stride", "channel-first", "channel-last", "CF advantage"),
        )
    )
    strides = (1, 2) if quick else (1, 2, 4)
    for stride in strides:
        spec = STUDY_LAYER.with_stride(stride)
        cf = sim.simulate_conv(spec).tflops
        cl = simulate_conv_channel_last(spec, TPU_V2).tflops
        table_cl.add_row(stride, cf, cl, cf / cl)
    result.note(
        "A channel-last TPU would lose most of its throughput at stride 4; the "
        "measured TPU does not (Fig 4b) — the paper's core inference."
    )

    # ---------------------------------------------------------- weight FIFO
    serial_cfg = dataclasses.replace(TPU_V2, weight_double_buffer=False)
    table_wf = result.add_table(
        Table("Weight-FIFO double buffering", ("config", "cycles", "TFLOPS"))
    )
    for label, config in (("with FIFO", TPU_V2), ("serial weight loads", serial_cfg)):
        res = TPUSim(config).simulate_conv(STUDY_LAYER)
        table_wf.add_row(label, res.cycles, res.tflops)
    result.note("Serial weight loads expose K_t cycles per stationary tile.")

    # ----------------------------------------------------------- DRAM layout
    table_layout = result.add_table(
        Table("DRAM layout for IFMap fills (TPU conv)", ("stride", "HWC cycles", "CHW cycles", "CHW/HWC"))
    )
    for stride in strides:
        spec = STUDY_LAYER.with_stride(stride)
        hwc = sim.simulate_conv(spec, layout=Layout.NHWC).cycles
        chw = sim.simulate_conv(spec, layout=Layout.NCHW).cycles
        table_layout.add_row(stride, hwc, chw, chw / hwc)
    result.note("CHW fills fragment per channel; the penalty grows with stride (Fig 7 at layer scale).")

    # ------------------------------------------------------------ reordering
    table_order = result.add_table(
        Table("Decomposed-filter visit order (reuse fraction)", ("stride", "naive", "greedy"))
    )
    for stride in strides:
        spec = STUDY_LAYER.with_stride(stride)
        naive = order_reuse_fraction(spec, decompose(spec))
        greedy = order_reuse_fraction(spec, greedy_reuse_order(spec))
        table_order.add_row(stride, naive, greedy)
    result.note("Greedy reordering recovers reuse the raster order loses at stride > 1 (Sec. V).")

    # --------------------------------------------------------- CONV variants
    table_var = result.add_table(
        Table(
            "CONV variants on V100 (ms)",
            ("variant", "channel-last / fallback", "channel-first", "speedup"),
        )
    )
    dilated = dataclasses.replace(
        STUDY_LAYER.with_batch(8), dilation=2, padding=2, name="dilated"
    )
    cl_time, cf_time = dilated_conv_times(dilated, V100)
    table_var.add_row("dilated (d=2)", cl_time.seconds * 1e3, cf_time.seconds * 1e3,
                      cl_time.seconds / cf_time.seconds)
    deform = STUDY_LAYER.with_batch(8)
    fallback = deformable_conv_time_fallback(deform, V100)
    fused = deformable_conv_time_channel_first(deform, V100)
    table_var.add_row("deformable", fallback.seconds * 1e3, fused.seconds * 1e3,
                      fallback.seconds / fused.seconds)
    result.note(
        "Deformable conv forces the channel-last ecosystem into an explicit "
        "gather + GEMM; fusing the gather into channel-first staging avoids "
        "materialising the lowered matrix (Sec. II-C's variants claim)."
    )

    # ------------------------------------------------------------- multicore
    table_mc = result.add_table(
        Table("Data-parallel TPU cores (batch 64)", ("cores", "speedup", "efficiency"))
    )
    for cores, (speedup, efficiency) in scaling_efficiency(STUDY_LAYER).items():
        table_mc.add_row(cores, speedup, efficiency)

    # ------------------------------------------------------ energy vs word
    table_e = result.add_table(
        Table("Energy per MAC vs vector-memory word (pJ)", ("word (elems)", "pJ/MAC"))
    )
    words = (4, 8) if quick else (2, 4, 8, 16, 32)
    for word in words:
        config = TPU_V2.with_word_elems(word)
        res = TPUSim(config).simulate_conv(STUDY_LAYER)
        pj = EnergyModel(config=config).energy_per_mac_pj(STUDY_LAYER, res)
        table_e.add_row(word, pj)
    result.note(
        "Narrow words pay the per-access overhead energy on every element; "
        "widening to 8 elements captures most of the saving and further "
        "widening flattens — the same knee the area curve shows (Fig 16b)."
    )
    return result
