"""Fig 17: our GPU implementation vs cuDNN, normalized time, batch 8.

Per network, the total conv time of our block-level channel-first
implementation normalized to the cuDNN (channel-last model) baseline.
Paper: almost identical, ~1% slower on average (cuDNN has
microarchitecture-specific tuning unavailable to a from-source kernel).
"""

from __future__ import annotations

from ...gpu.channel_first import channel_first_conv_time
from ...gpu.config import V100
from ...gpu.cudnn_model import cudnn_conv_time
from ...obs import log as obs_log
from ...workloads.networks import network, network_names
from ..report import ExperimentResult, Table

BATCH = 8


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        "fig17", "Our channel-first GPU implementation vs cuDNN (normalized time, batch 8)"
    )
    table = result.add_table(
        Table("Fig 17", ("network", "cuDNN", "ours (normalized)", "ours (ms)"))
    )
    names = network_names()[:3] if quick else network_names()
    ratios = []
    for name in names:
        layers = network(name, BATCH)
        ours = sum(channel_first_conv_time(layer, V100).seconds for layer in layers)
        cudnn = sum(cudnn_conv_time(layer, V100).seconds for layer in layers)
        ratio = ours / cudnn
        ratios.append(ratio)
        table.add_row(name, 1.0, ratio, ours * 1e3)
        obs_log.debug(
            "fig17.network", network=name, layers=len(layers),
            vs_cudnn=round(ratio, 4),
        )
    mean_ratio = sum(ratios) / len(ratios)
    result.note(
        f"Average normalized time {mean_ratio:.3f} "
        f"({100 * abs(mean_ratio - 1):.1f}% {'slower' if mean_ratio > 1 else 'faster'} "
        "than cuDNN; paper: ~1% slower on average)."
    )
    return result
