"""Fig 15: end-to-end model validation, TPUSim vs TPU-v2, batch 8.

(a) Per-network total conv latency, simulated vs measured.
(b) Layer-wise error distribution across all conv layers of all networks
(paper: MAE 5.8%).
"""

from __future__ import annotations

from ...analysis.validation import ValidationRun
from ...obs import log as obs_log
from ...oracle.tpu_oracle import TPUv2Oracle
from ...systolic.simulator import TPUSim
from ...workloads.networks import network, network_names
from ..report import ExperimentResult, Table

BATCH = 8


def layerwise_validation(quick: bool = False) -> ValidationRun:
    sim = TPUSim()
    oracle = TPUv2Oracle()
    run_ = ValidationRun("fig15b-layers")
    names = network_names()[:2] if quick else network_names()
    for name in names:
        for layer in network(name, BATCH):
            simulated = sim.simulate_conv(layer).cycles
            measured = oracle.measured_conv_cycles(layer)
            run_.add(layer.name, simulated, measured)
    return run_


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult("fig15", "End-to-end model validation (batch 8)")
    sim = TPUSim()
    oracle = TPUv2Oracle()
    names = network_names()[:2] if quick else network_names()

    table_a = result.add_table(
        Table(
            "Fig 15a: per-network conv latency (ms)",
            ("network", "TPUSim", "TPUv2", "error %"),
        )
    )
    clock = sim.config.clock_ghz * 1e9
    model_run = ValidationRun("fig15a-models")
    for name in names:
        layers = network(name, BATCH)
        simulated = sum(sim.simulate_conv(layer).cycles for layer in layers) / clock * 1e3
        measured = oracle.measured_network_cycles(layers) / clock * 1e3
        point = model_run.add(name, simulated, measured)
        table_a.add_row(name, simulated, measured, point.error_pct)
        obs_log.debug(
            "fig15.network", network=name, layers=len(layers),
            error_pct=round(point.error_pct, 3),
        )
    result.note(f"Model-level average error: {model_run.mape():.2f}%")

    layer_run = layerwise_validation(quick)
    stats = layer_run.stats()
    table_b = result.add_table(
        Table(
            "Fig 15b: layer-wise error distribution",
            ("layers", "MAE %", "median %", "p90 %", "max %"),
        )
    )
    table_b.add_row(stats.count, stats.mean_pct, stats.median_pct, stats.p90_pct, stats.max_pct)
    result.note(f"Layer-wise MAE: {stats.mean_pct:.2f}% (paper: 5.8%)")
    return result
