"""Fig 2: execution-time comparison of explicit vs implicit im2col, batch 64.

(a) V100 GPU: per network, the explicit path's (GEMM + transform) stacked
time normalized to the implicit (cuDNN-model) time.  Paper: explicit is 28%
slower on average, its GEMM component nearly equal to the implicit total.

(b) TPU-v2: the paper cannot run explicit im2col on the TPU, so it combines
the TPU's GEMM time with the GPU-measured transform time as a lower bound.
We mimic exactly that: TPUSim GEMM-primitive time on the lowered shapes plus
the GPU transform-kernel time, normalized to TPUSim's implicit conv time.
Paper: explicit ~23% slower, transform overhead ~26%.
"""

from __future__ import annotations

from ...core.conv_spec import GemmShape
from ...gpu.config import V100
from ...gpu.explicit import im2col_transform_time
from ...obs import log as obs_log
from ...oracle.gpu_oracle import GPUOracle
from ...systolic.config import TPU_V2
from ...systolic.simulator import TPUSim
from ...workloads.networks import network_names, network
from ..report import ExperimentResult, Table

BATCH = 64


def _gpu_breakdown(layers):
    """Per-network (implicit_s, explicit_gemm_s, explicit_transform_s)."""
    oracle = GPUOracle()
    implicit = sum(oracle.measured_implicit_seconds(layer) for layer in layers)
    gemm = 0.0
    transform = 0.0
    for layer in layers:
        explicit = oracle.measured_explicit(layer)
        gemm += explicit.gemm.seconds
        transform += explicit.transform.seconds
    return implicit, gemm, transform


def _tpu_breakdown(layers, sim: TPUSim):
    """Per-network (implicit_s, gemm_s, transform_s) on the TPU.

    Following the paper's construction: the explicit method's GEMM time is
    the conv's GEMM work on the TPU — which is exactly the implicit method's
    execution time, since the implicit method spends all its time on GEMM —
    and the im2col transform time is estimated from the GPU measurement
    (a lower bound: shipping the lowered matrix to the TPU is not charged).
    """
    implicit_cycles = sum(sim.simulate_conv(layer).cycles for layer in layers)
    clock = sim.config.clock_ghz * 1e9
    implicit = implicit_cycles / clock
    transform = sum(im2col_transform_time(layer, V100).seconds for layer in layers)
    return implicit, implicit, transform


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        "fig2", "Explicit vs implicit im2col execution time (normalized), batch 64"
    )
    names = network_names()
    if quick:
        names = names[:3]

    gpu_table = result.add_table(
        Table(
            "Fig 2a: V100 GPU (normalized to implicit)",
            ("network", "implicit", "explicit GEMM", "explicit im2col", "explicit total"),
        )
    )
    gpu_overheads = []
    for name in names:
        layers = network(name, BATCH)
        implicit, gemm, transform = _gpu_breakdown(layers)
        gpu_table.add_row(
            name, 1.0, gemm / implicit, transform / implicit, (gemm + transform) / implicit
        )
        gpu_overheads.append((gemm + transform) / implicit - 1.0)
        obs_log.debug(
            "fig2.gpu_network", network=name, layers=len(layers),
            explicit_overhead=round(gpu_overheads[-1], 4),
        )
    gpu_avg = sum(gpu_overheads) / len(gpu_overheads)
    result.note(
        f"GPU: explicit im2col is {100 * gpu_avg:.0f}% slower than implicit on average "
        "(paper: 28%); explicit GEMM time tracks the implicit total."
    )

    sim = TPUSim(TPU_V2)
    tpu_table = result.add_table(
        Table(
            "Fig 2b: TPU-v2 (normalized to implicit; transform est. from GPU)",
            ("network", "implicit", "explicit GEMM", "explicit im2col", "explicit total"),
        )
    )
    tpu_overheads = []
    for name in names:
        layers = network(name, BATCH)
        implicit, gemm, transform = _tpu_breakdown(layers, sim)
        tpu_table.add_row(
            name, 1.0, gemm / implicit, transform / implicit, (gemm + transform) / implicit
        )
        tpu_overheads.append((gemm + transform) / implicit - 1.0)
    tpu_avg = sum(tpu_overheads) / len(tpu_overheads)
    result.note(
        f"TPU: explicit im2col lower bound is {100 * tpu_avg:.0f}% slower than implicit "
        "on average (paper: 23%)."
    )
    return result
