"""Position-structured sparsity study (the paper's future-work direction).

Sweeps the kept-position count of a 3x3 layer from 9 (dense) down to 1 and
reports the TPU speedup of the sparse channel-first schedule against the
dense one, plus the end-to-end effect of a 5/9 pruning across VGG16.

Expected shape: speedup tracks ``1/density`` while compute-bound, flattening
only where weight/OFMap movement stops shrinking — structured sparsity that
a plain systolic array exploits with zero added hardware, versus the
explicit-GEMM world where zero positions buy nothing.
"""

from __future__ import annotations

from ...core.conv_spec import ConvSpec
from ...core.reference import random_conv_weights
from ...core.sparsity import PositionMask, prune_positions
from ...systolic.simulator import TPUSim
from ...systolic.sparse_schedule import simulate_conv_sparse
from ...workloads.networks import vgg16
from ..report import ExperimentResult, Table

STUDY_LAYER = ConvSpec(
    n=8, c_in=128, h_in=28, w_in=28, c_out=128,
    h_filter=3, w_filter=3, stride=1, padding=1, name="sparsity.28-128-128-3",
)


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        "sparsity", "Position-structured sparsity via channel-first scheduling"
    )
    sim = TPUSim()
    weights = random_conv_weights(STUDY_LAYER, seed=17)
    dense = sim.simulate_conv(STUDY_LAYER)

    table = result.add_table(
        Table(
            "Kept-position sweep (3x3 layer)",
            ("kept / 9", "density", "cycles", "speedup", "ideal (1/density)"),
        )
    )
    keeps = (9, 5, 3, 1) if quick else (9, 7, 5, 3, 2, 1)
    for keep in keeps:
        _, mask = prune_positions(weights, STUDY_LAYER, keep)
        sparse = simulate_conv_sparse(STUDY_LAYER, mask)
        table.add_row(
            keep, mask.density, sparse.cycles, dense.cycles / sparse.cycles,
            1.0 / mask.density,
        )
    result.note(
        "Skipping pruned positions shortens the schedule near-linearly in "
        "density — structured sparsity a plain systolic array exploits with "
        "no sparse hardware (the paper's Sec. VIII suggestion, implemented)."
    )

    # End-to-end: prune every 3x3 VGG16 layer to 5/9 positions.
    layers = [l for l in vgg16(batch=8) if l.positions == 9]
    if quick:
        layers = layers[:4]
    dense_total = 0.0
    sparse_total = 0.0
    # VGG16 repeats (shape, seed) combinations; their weights — and hence
    # their pruned position sets — are identical, so generate/prune once per
    # distinct combination.
    kept_memo = {}
    for layer in layers:
        gen_key = (layer.ifmap_shape, layer.filter_shape, layer.c_in)
        kept = kept_memo.get(gen_key)
        if kept is None:
            w = random_conv_weights(layer, seed=layer.c_in)
            _, mask = prune_positions(w, layer, keep=5)
            kept = mask.kept
            kept_memo[gen_key] = kept
        mask = PositionMask(spec=layer, kept=kept)
        dense_total += sim.simulate_conv(layer).cycles
        sparse_total += simulate_conv_sparse(layer, mask).cycles
    table_net = result.add_table(
        Table(
            "VGG16 at 5/9 positions per layer (batch 8)",
            ("variant", "total cycles", "speedup"),
        )
    )
    table_net.add_row("dense", dense_total, 1.0)
    table_net.add_row("5/9 position-sparse", sparse_total, dense_total / sparse_total)
    result.note(
        f"A 44% position-pruned VGG16 runs {dense_total / sparse_total:.2f}x faster "
        "end to end (accuracy impact is a training question outside this scope)."
    )
    return result
