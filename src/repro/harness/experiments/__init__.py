"""One module per reproduced table/figure; each exposes ``run(quick=False)``
returning an :class:`~repro.harness.report.ExperimentResult`."""
