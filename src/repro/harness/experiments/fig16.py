"""Fig 16: hardware design-space exploration with TPUSim.

(a) Systolic-array size 32..512 running VGG16: performance (TFLOPS) rises
with array size while utilization falls — roughly halving from 128 to 256 —
corroborating the TPU-v2's choice of 128.

(b) Vector-memory word size 1..32 at fixed 256 KB per SRAM array: macro area
(OpenRAM-substitute model) falls steeply to word 8 then flattens, while the
port's bandwidth idle ratio rises; word 8 is the area-efficient knee the
TPU-v2 picked, with >50% of port bandwidth left idle — the headroom TPU-v3
spends on a second systolic array.
"""

from __future__ import annotations

from ...memory.sram import SRAMModel
from ...systolic.config import TPU_V2
from ...systolic.simulator import TPUSim
from ...systolic.vector_memory import VectorMemoryModel
from ...workloads.networks import vgg16
from ..report import ExperimentResult, Table

ARRAY_SIZES = (32, 64, 128, 256, 512)
WORD_SIZES = (1, 2, 4, 8, 16, 32)


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult("fig16", "Hardware design-space exploration")
    layers = vgg16(batch=8)
    if quick:
        layers = layers[:4]

    table_a = result.add_table(
        Table(
            "Fig 16a: array size sweep (VGG16)",
            ("array", "TFLOPS", "utilization"),
        )
    )
    utilization = {}
    for size in ARRAY_SIZES if not quick else (64, 128, 256):
        sim = TPUSim(TPU_V2.with_array(size))
        total_cycles = 0.0
        total_macs = 0
        for layer in layers:
            res = sim.simulate_conv(layer)
            total_cycles += res.cycles
            total_macs += res.macs
        tflops = 2 * total_macs * sim.config.clock_ghz / total_cycles / 1e3
        util = total_macs / (sim.config.peak_macs_per_cycle * total_cycles)
        utilization[size] = util
        table_a.add_row(size, tflops, util)
    if 128 in utilization and 256 in utilization:
        result.note(
            f"Utilization 128 -> 256: {utilization[128]:.2f} -> {utilization[256]:.2f} "
            f"({utilization[256] / utilization[128]:.2f}x; paper: roughly halves)"
        )

    sram = SRAMModel()
    capacity = 256 * 1024
    table_b = result.add_table(
        Table(
            "Fig 16b: vector-memory word size (256 KB macro)",
            ("word (elems)", "area (mm^2)", "area vs word-32", "port idle ratio"),
        )
    )
    for word in WORD_SIZES:
        word_bytes = word * TPU_V2.sram_elem_bytes
        area = sram.area_mm2(capacity, word_bytes)
        ratio = sram.area_ratio(capacity, word_bytes, 32 * TPU_V2.sram_elem_bytes)
        idle = VectorMemoryModel(TPU_V2.with_word_elems(word)).idle_ratio()
        table_b.add_row(word, area, ratio, idle)
    r_4b_vs_32b = sram.area_ratio(capacity, 4, 32)
    r_word1_vs_min = sram.area_ratio(
        capacity, 1 * TPU_V2.sram_elem_bytes, 32 * TPU_V2.sram_elem_bytes
    )
    result.note(
        f"4-byte vs 32-byte word area ratio: {r_4b_vs_32b:.1f}x (paper: 3.2x); "
        f"word-1-element vs large-word minimum: {r_word1_vs_min:.1f}x (paper: ~5x)."
    )
    idle8 = VectorMemoryModel(TPU_V2).idle_ratio()
    result.note(
        f"At word 8 the port is idle {100 * idle8:.0f}% of cycles (utilization "
        f"{100 * (1 - idle8):.0f}% < 50%, matching the paper's observation that "
        "motivates TPU-v3's second systolic array)."
    )
    return result
