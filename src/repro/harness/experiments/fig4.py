"""Fig 4: TFLOPS of implicit im2col vs stride, GPU and TPU.

(a) V100 tensor cores, channel-last implicit (the cuDNN-like path) against
the equivalent-size GEMM reference: performance should degrade ~30% at
stride 2 and ~60% at stride 4 while the GEMM stays high.

(b) TPU (channel-first via TPUSim): insensitive to stride.

Layers are the representative ResNet layers labelled (W_I, C_I, C_O, W_F).
"""

from __future__ import annotations

from ...gpu.blocked_gemm import gemm_kernel_time
from ...gpu.channel_last import channel_last_conv_time
from ...gpu.config import V100
from ...systolic.simulator import TPUSim
from ...workloads.synthetic import fig4_layers
from ..report import ExperimentResult, Table

STRIDES = (1, 2, 4)


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult("fig4", "Implicit im2col TFLOPS under different strides")
    layers = fig4_layers(batch=64)
    if quick:
        layers = layers[:2]

    gpu_table = result.add_table(
        Table(
            "Fig 4a: V100 tensor cores (TFLOPS)",
            ("layer", *[f"conv s{s}" for s in STRIDES], *[f"GEMM s{s}" for s in STRIDES]),
        )
    )
    gpu_drop = {s: [] for s in STRIDES}
    for layer in layers:
        conv_tflops = []
        gemm_tflops = []
        for stride in STRIDES:
            spec = layer.with_stride(stride)
            conv_tflops.append(channel_last_conv_time(spec, V100).tflops)
            gemm_tflops.append(gemm_kernel_time(spec.gemm_shape(), V100).tflops)
        gpu_table.add_row(layer.name, *conv_tflops, *gemm_tflops)
        for stride, value in zip(STRIDES, conv_tflops):
            gpu_drop[stride].append(value / conv_tflops[0])
    for stride in STRIDES[1:]:
        mean_ratio = sum(gpu_drop[stride]) / len(gpu_drop[stride])
        result.note(
            f"GPU: stride {stride} retains {100 * mean_ratio:.0f}% of stride-1 TFLOPS "
            f"(paper: ~{70 if stride == 2 else 40}%)"
        )

    sim = TPUSim()
    tpu_table = result.add_table(
        Table("Fig 4b: TPU (TFLOPS)", ("layer", *[f"conv s{s}" for s in STRIDES]))
    )
    tpu_drop = {s: [] for s in STRIDES}
    for layer in layers:
        conv_tflops = []
        for stride in STRIDES:
            conv_tflops.append(sim.simulate_conv(layer.with_stride(stride)).tflops)
        tpu_table.add_row(layer.name, *conv_tflops)
        for stride, value in zip(STRIDES, conv_tflops):
            tpu_drop[stride].append(value / conv_tflops[0])
    worst = min(min(tpu_drop[s]) for s in STRIDES[1:])
    result.note(
        f"TPU: worst stride-s retention is {100 * worst:.0f}% of stride-1 — "
        "insensitive to stride (paper: insensitive)."
    )
    return result
