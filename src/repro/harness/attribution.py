"""``repro report`` — Fig 2a-style bottleneck attribution from golden snapshots.

The paper's central characterization (Fig 2a, Sec. IV) splits every layer's
execution into *useful compute*, *lowering overhead* (im2col data
re-arrangement stretching the compute schedule beyond the MAC roofline),
and *DRAM-bound* time.  The repo already freezes exactly the inputs that
decomposition needs — the per-layer golden snapshots
(``tests/trace/goldens/<id>.json``) carry ``cycles`` / ``compute_cycles``
/ ``exposed_dma_cycles`` / ``macs`` per workload — so the report is pure
arithmetic over checked-in data plus the workload enumerations the golden
builders themselves use:

- **ideal compute** = ``macs / peak_macs_per_cycle`` — the MAC-array
  roofline, what a perfectly-packed schedule would take;
- **lowering overhead** = ``compute_cycles - ideal`` — schedule cycles the
  implicit-im2col dataflow spends beyond the roofline (ramp-up, partial
  tiles, fill/drain);
- **DRAM-bound** = ``exposed_dma_cycles`` — DMA time the double-buffering
  could not hide (the exposure identity makes
  ``cycles = compute_cycles + exposed_dma_cycles`` for single-array runs).

Each workload is also placed on the machine's roofline
(:mod:`repro.analysis.roofline`) by re-deriving its ConvSpec/GemmShape from
the same workload generators the golden builders enumerate — the report
never guesses shapes from names.

Output is a markdown (or ``--html``) table per experiment plus a run-wide
summary, suitable for checking into a PR description or pasting next to
Fig 2a.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Callable, Dict, List, Optional

from ..analysis.roofline import RooflinePoint, conv_roofline, gemm_roofline
from ..systolic.config import TPU_V2, TPUConfig

__all__ = [
    "attribute_entries",
    "load_golden",
    "render_markdown",
    "render_html",
    "report_main",
    "build_parser",
]


# --------------------------------------------------------------------------
# Workload re-derivation (mirrors the golden builders in repro.trace.goldens)
# --------------------------------------------------------------------------


def _gemm_name(shape) -> str:
    return f"gemm.{shape.m}x{shape.k}x{shape.n}"


def _specs_networks(batch: int) -> Dict[str, Any]:
    from ..workloads.networks import network, network_names

    return {
        layer.describe(): layer
        for name in network_names()
        for layer in network(name, batch)
    }


def _specs_fig4() -> Dict[str, Any]:
    from ..workloads.synthetic import fig4_layers

    index: Dict[str, Any] = {}
    for layer in fig4_layers(batch=64):
        for stride in (1, 2, 4):
            spec = layer.with_stride(stride)
            index[spec.describe()] = spec
            shape = spec.gemm_shape()
            index[_gemm_name(shape)] = shape
    return index


def _specs_fig13() -> Dict[str, Any]:
    from ..workloads.synthetic import conv_validation_layers, gemm_sweep

    index: Dict[str, Any] = {_gemm_name(s): s for s in gemm_sweep()}
    index.update(
        {spec.describe(): spec for spec in conv_validation_layers(batch=8)}
    )
    return index


def _specs_fig14() -> Dict[str, Any]:
    from ..workloads.synthetic import fig14_layer, small_channel_sweep

    study = fig14_layer(batch=8)
    index: Dict[str, Any] = {study.describe(): study}
    index.update(
        {spec.describe(): spec for spec in small_channel_sweep(batch=8)}
    )
    return index


def _specs_fig16() -> Dict[str, Any]:
    from ..workloads.networks import network

    return {layer.describe(): layer for layer in network("VGG16", 8)}


def _specs_fig18() -> Dict[str, Any]:
    from ..workloads.synthetic import memory_bound_layers, strided_layers

    return {
        spec.describe(): spec
        for spec in strided_layers(batch=8) + memory_bound_layers(batch=8)
    }


#: experiment id -> workload-name -> ConvSpec | GemmShape.
_SPEC_SOURCES: Dict[str, Callable[[], Dict[str, Any]]] = {
    "fig2": lambda: _specs_networks(64),
    "fig4": _specs_fig4,
    "fig13": _specs_fig13,
    "fig14": _specs_fig14,
    "fig15": lambda: _specs_networks(8),
    "fig16": _specs_fig16,
    "fig18": _specs_fig18,
    "table1": lambda: _specs_networks(1),
}


def _config_for(tag: str) -> Optional[TPUConfig]:
    """The TPUConfig a golden entry's ``config`` tag names."""
    if tag == "tpu_v2":
        return TPU_V2
    prefix = "tpu_v2.array"
    if tag.startswith(prefix):
        try:
            return TPU_V2.with_array(int(tag[len(prefix):]))
        except ValueError:
            return None
    return None


# --------------------------------------------------------------------------
# Attribution arithmetic
# --------------------------------------------------------------------------


def load_golden(path) -> dict:
    """Load one golden payload, validating the minimal schema."""
    path = pathlib.Path(path)
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(f"{path} is not a golden payload (no 'entries')")
    return payload


def attribute_entries(payload: dict) -> List[dict]:
    """Decompose each TPU entry of a golden payload into the Fig 2a split.

    Returns one row per ``tpu-conv``/``tpu-gemm`` entry; other kinds
    (``ifmap-fill``, ``gpu-*``) carry no cycle decomposition and are
    skipped.  Each row holds absolute cycles and fractions-of-total, plus
    the workload's roofline placement when its spec could be re-derived.
    """
    experiment = payload.get("experiment", "?")
    spec_index: Dict[str, Any] = {}
    source = _SPEC_SOURCES.get(experiment)
    if source is not None:
        spec_index = source()
    rows: List[dict] = []
    for entry in payload.get("entries", []):
        kind = entry.get("kind")
        if kind not in ("tpu-conv", "tpu-gemm"):
            continue
        config = _config_for(entry.get("config", ""))
        if config is None:
            continue
        cycles = float(entry["cycles"])
        compute = float(entry["compute_cycles"])
        exposed = float(entry["exposed_dma_cycles"])
        macs = float(entry["macs"])
        ideal = macs / config.peak_macs_per_cycle
        lowering = max(0.0, compute - ideal)
        total = max(cycles, 1.0)
        row = {
            "workload": entry.get("workload", "?"),
            "kind": kind,
            "config": entry.get("config"),
            "cycles": cycles,
            "ideal_cycles": ideal,
            "lowering_cycles": lowering,
            "dram_cycles": exposed,
            "ideal_frac": ideal / total,
            "lowering_frac": lowering / total,
            "dram_frac": exposed / total,
            "roofline": None,
        }
        spec = spec_index.get(row["workload"])
        if spec is not None:
            point = _place(spec, kind, config)
            if point is not None:
                row["roofline"] = {
                    "intensity": point.intensity_flops_per_byte,
                    "attainable_tflops": point.attainable_tflops,
                    "peak_tflops": point.peak_tflops,
                    "bound": point.bound,
                }
        rows.append(row)
    return rows


def _place(spec: Any, kind: str, config: TPUConfig) -> Optional[RooflinePoint]:
    peak = config.peak_tflops
    bandwidth = config.hbm.peak_bandwidth_gbps
    try:
        if kind == "tpu-conv":
            return conv_roofline(spec, peak, bandwidth)
        return gemm_roofline(spec, peak, bandwidth)
    except (ValueError, AttributeError):
        return None


def summarize(rows: List[dict]) -> dict:
    """Experiment-wide totals: the aggregate Fig 2a bar."""
    cycles = sum(r["cycles"] for r in rows)
    ideal = sum(r["ideal_cycles"] for r in rows)
    lowering = sum(r["lowering_cycles"] for r in rows)
    dram = sum(r["dram_cycles"] for r in rows)
    total = max(cycles, 1.0)
    memory_bound = sum(
        1 for r in rows if r["roofline"] and r["roofline"]["bound"] == "memory"
    )
    placed = sum(1 for r in rows if r["roofline"])
    return {
        "workloads": len(rows),
        "cycles": cycles,
        "ideal_frac": ideal / total,
        "lowering_frac": lowering / total,
        "dram_frac": dram / total,
        "memory_bound": memory_bound,
        "placed": placed,
    }


# --------------------------------------------------------------------------
# Rendering
# --------------------------------------------------------------------------


def _pct(fraction: float) -> str:
    return f"{100.0 * fraction:.1f}%"


def render_markdown(experiment: str, rows: List[dict], top: int = 0) -> str:
    """The markdown report for one experiment's attribution rows.

    ``top`` truncates the per-workload table to the N most cycle-hungry
    workloads (0 = all); the summary always covers every row.
    """
    lines: List[str] = [f"## Bottleneck attribution · {experiment}", ""]
    if not rows:
        lines.append("_No TPU cycle entries in this golden set._")
        return "\n".join(lines)
    summary = summarize(rows)
    lines.append(
        f"{summary['workloads']} workloads, "
        f"{summary['cycles']:,.0f} total cycles — "
        f"**compute {_pct(summary['ideal_frac'])}** / "
        f"**lowering overhead {_pct(summary['lowering_frac'])}** / "
        f"**DRAM-bound {_pct(summary['dram_frac'])}**"
        + (
            f"; {summary['memory_bound']}/{summary['placed']} placed "
            "workloads are memory-bound on the roofline"
            if summary["placed"]
            else ""
        )
    )
    lines.append("")
    lines.append(
        "| workload | cycles | compute | lowering | DRAM-bound | "
        "intensity (FLOP/B) | roofline |"
    )
    lines.append("|---|---:|---:|---:|---:|---:|---|")
    ordered = sorted(rows, key=lambda r: -r["cycles"])
    shown = ordered[:top] if top else ordered
    for row in shown:
        roof = row["roofline"]
        intensity = f"{roof['intensity']:.1f}" if roof else "-"
        bound = roof["bound"] if roof else "-"
        lines.append(
            f"| {row['workload']} | {row['cycles']:,.0f} "
            f"| {_pct(row['ideal_frac'])} | {_pct(row['lowering_frac'])} "
            f"| {_pct(row['dram_frac'])} | {intensity} | {bound} |"
        )
    if top and len(ordered) > top:
        lines.append("")
        lines.append(
            f"_…and {len(ordered) - top} more workloads (summary covers all)._"
        )
    return "\n".join(lines)


def render_html(sections: List[str]) -> str:
    """Wrap rendered markdown sections in a minimal self-contained page.

    Markdown is left verbatim inside ``<pre>`` — the point is a file that
    opens in a browser without any renderer dependency, not typography.
    """
    body = "\n\n".join(sections)
    return (
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">"
        "<title>repro report</title>"
        "<style>body{font-family:monospace;margin:2em;}"
        "pre{white-space:pre-wrap;}</style>"
        "</head><body><pre>\n" + body + "\n</pre></body></html>\n"
    )


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Fig 2a-style bottleneck attribution from golden snapshots.",
    )
    parser.add_argument(
        "experiments", nargs="*", default=None,
        help="golden experiment ids (default: fig13)",
    )
    parser.add_argument(
        "--goldens", default="tests/trace/goldens", metavar="DIR",
        help="directory holding <experiment>.json golden payloads",
    )
    parser.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="write the report here instead of stdout",
    )
    parser.add_argument(
        "--html", action="store_true",
        help="emit a self-contained HTML page instead of markdown",
    )
    parser.add_argument(
        "--top", type=int, default=0, metavar="N",
        help="per-experiment table rows to show (0 = all workloads)",
    )
    return parser


def report_main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    experiments = args.experiments or ["fig13"]
    goldens_dir = pathlib.Path(args.goldens)
    sections: List[str] = []
    for experiment in experiments:
        path = goldens_dir / f"{experiment}.json"
        if not path.exists():
            print(f"repro report: no golden payload at {path}", file=sys.stderr)
            return 1
        try:
            payload = load_golden(path)
        except (ValueError, json.JSONDecodeError) as err:
            print(f"repro report: {err}", file=sys.stderr)
            return 1
        rows = attribute_entries(payload)
        sections.append(render_markdown(experiment, rows, top=args.top))
    text = render_html(sections) if args.html else "\n\n".join(sections) + "\n"
    if args.output:
        from ..resilience.atomic import atomic_write_text

        atomic_write_text(args.output, text)
        print(f"report written to {args.output}")
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":
    sys.exit(report_main())
