"""Plain-text rendering of experiment results.

Every experiment produces an :class:`ExperimentResult` containing one or
more :class:`Table` blocks (the same rows/series the paper's table or figure
reports) plus free-form notes (the headline comparisons, e.g. "average error
4.4%" or "explicit is 1.28x implicit").  The runner renders them to stdout;
the benchmarks assert on their numbers.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Sequence

__all__ = ["Table", "ExperimentResult", "fmt"]


def fmt(value: Any) -> str:
    """Uniform cell formatting: floats to 3 significant-ish places."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 100:
            return f"{value:.0f}"
        if magnitude >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


@dataclasses.dataclass
class Table:
    """One titled table of rows."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = dataclasses.field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def column(self, name: str) -> List[Any]:
        """Extract a column by header name (used by benchmarks' assertions)."""
        try:
            index = list(self.headers).index(name)
        except ValueError:
            raise KeyError(f"no column {name!r} in {list(self.headers)}") from None
        return [row[index] for row in self.rows]

    def render(self) -> str:
        cells = [[fmt(c) for c in row] for row in self.rows]
        widths = [
            max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
            for i, h in enumerate(self.headers)
        ]
        lines = [self.title]
        header = " | ".join(str(h).ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


@dataclasses.dataclass
class ExperimentResult:
    """Everything one table/figure reproduction produced."""

    experiment_id: str
    title: str
    tables: List[Table] = dataclasses.field(default_factory=list)
    notes: List[str] = dataclasses.field(default_factory=list)

    def add_table(self, table: Table) -> Table:
        self.tables.append(table)
        return table

    def note(self, text: str) -> None:
        self.notes.append(text)

    def table(self, title: str) -> Table:
        """Look up a produced table by title (benchmark assertions)."""
        for table in self.tables:
            if table.title == title:
                return table
        raise KeyError(f"no table {title!r} in {self.experiment_id}")

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        for table in self.tables:
            parts.append(table.render())
        if self.notes:
            parts.append("Notes:")
            parts.extend(f"  - {n}" for n in self.notes)
        return "\n\n".join(parts)
