"""Experiment harness: runners and text reports for every table and figure."""

from .report import ExperimentResult, Table

__all__ = ["ExperimentResult", "Table"]
