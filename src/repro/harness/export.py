"""Machine-readable experiment export (JSON and CSV).

The text reports are for humans; downstream tooling (plotting, regression
tracking across commits) wants structured data.  ``result_to_dict`` gives a
JSON-safe representation of an :class:`~repro.harness.report.ExperimentResult`;
``write_results`` dumps a set of results into a directory as one
``<id>.json`` plus one ``<id>.<table>.csv`` per table.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
import re
from typing import Dict, Iterable, List

from ..resilience.atomic import atomic_write_text
from .report import ExperimentResult, Table

__all__ = ["result_to_dict", "table_to_rows", "write_results", "slugify"]


def slugify(text: str) -> str:
    """A filesystem-safe slug for table titles."""
    slug = re.sub(r"[^a-zA-Z0-9]+", "-", text.lower()).strip("-")
    return slug or "table"


def table_to_rows(table: Table) -> List[Dict[str, object]]:
    """A table as a list of header->cell dicts (JSON/CSV friendly)."""
    return [dict(zip(table.headers, row)) for row in table.rows]


def result_to_dict(result: ExperimentResult) -> Dict[str, object]:
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "tables": [
            {
                "title": table.title,
                "headers": list(table.headers),
                "rows": [list(row) for row in table.rows],
            }
            for table in result.tables
        ],
        "notes": list(result.notes),
    }


def write_results(results: Iterable[ExperimentResult], directory) -> List[pathlib.Path]:
    """Write each result as JSON plus per-table CSVs; returns written paths.

    Table slugs are de-duplicated within each experiment (``-2``, ``-3``,
    ... suffixes), so two tables whose titles slugify identically can never
    overwrite each other's CSV.  Unique titles keep their unsuffixed name,
    which is every checked-in artifact today.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[pathlib.Path] = []
    for result in results:
        json_path = directory / f"{result.experiment_id}.json"
        atomic_write_text(
            json_path, json.dumps(result_to_dict(result), indent=2, default=str)
        )
        written.append(json_path)
        used: set = set()
        for table in result.tables:
            base = slugify(table.title)
            slug, serial = base, 1
            while slug in used:
                serial += 1
                slug = f"{base}-{serial}"
            used.add(slug)
            csv_path = directory / f"{result.experiment_id}.{slug}.csv"
            buffer = io.StringIO(newline="")  # keep csv's \r\n terminators
            writer = csv.writer(buffer)
            writer.writerow(table.headers)
            writer.writerows(table.rows)
            atomic_write_text(csv_path, buffer.getvalue())
            written.append(csv_path)
    return written
