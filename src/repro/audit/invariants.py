"""The conservation-law catalog: what a simulated result must obey.

Every check here is a *physical* identity or bound, independent of how the
schedule was built or executed — that independence is what makes them
audits rather than change detectors:

======================================  =======================================
invariant id                            identity / bound
======================================  =======================================
``tpu.macs.conservation``               executed MACs == ΣK·R·S·C·P·Q (``spec.macs``)
``tpu.cycles.accounting``               exposure identity bit-exact; compute ≤ total;
                                        total ≤ compute + DMA (serial-sum bound)
``tpu.utilization.range``               utilization ∈ (0, 1]
``tpu.latency.roofline``                cycles ≥ directional roofline lower bound
``tpu.dram.read-bounds``                unique touched footprint ≤ scheduled DRAM
                                        reads ≤ im2col-expanded (lowered) bound
``tpu.flops.equivalence``               channel-first merged-GEMM MACs ==
                                        explicit-im2col GEMM MACs == direct conv
``tpu.gemm.*``                          the same four for raw GEMM layers
``tpu.dual.*``                          the same with the dual-MXU capacity model
``hbm.bandwidth.law``                   transfer cycles ≥ bytes / peak bytes-per-cycle
``sram.latency.sane``                   access latency finite and positive
``gpu.kernel.accounting``               kernel seconds ≥ max(compute, memory) parts
``gpu.kernel.roofline``                 compute/memory parts ≥ their roofs
``gpu.flops.equivalence``               implicit-im2col kernel MACs == direct conv
``gpu.reuse.range``                     halo-reuse fraction ∈ [0, 1]
======================================  =======================================

Inequalities tolerate a relative ``1e-9`` (float sums associated
differently by the reference and vectorized executors); identities are
exact.  Violations raise :class:`repro.errors.AuditFault` via
:func:`repro.audit.auditor.check`, carrying the invariant id,
expected/actual values and the ConvSpec + config fingerprints.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Dict, Optional

from ..analysis.roofline import cycle_lower_bound
from ..core.conv_spec import ConvSpec, GemmShape
from . import auditor as _auditor

__all__ = [
    "REL_TOL",
    "fingerprint_context",
    "unique_ifmap_elements",
    "check_tpu_conv",
    "check_tpu_gemm",
    "check_tpu_multi_mxu",
    "check_hbm_transfer",
    "check_sram_latency",
    "check_gpu_kernel",
    "check_gpu_channel_first",
]

#: Relative slack for inequality checks only; identities are exact.
REL_TOL = 1e-9


def _digest(value: Any) -> str:
    from ..perf.cache import fingerprint

    return hashlib.sha256(repr(fingerprint(value)).encode()).hexdigest()[:16]


def fingerprint_context(
    spec: Optional[object] = None, config: Optional[object] = None, **extra
) -> Dict[str, Any]:
    """The structured-payload context: what failed, on which machine."""
    context: Dict[str, Any] = dict(extra)
    if spec is not None:
        context["spec"] = getattr(spec, "name", "") or repr(spec)
        context["spec_fingerprint"] = _digest(spec)
    if config is not None:
        context["config_fingerprint"] = _digest(config)
    return context


def unique_ifmap_elements(spec: ConvSpec) -> int:
    """How many distinct *real* IFMap elements the convolution touches.

    The row/column coordinate sets factor (height taps and width taps are
    independent), so the footprint is ``N · C_I · |Y| · |X|`` with
    ``Y = {oy·stride + r·dilation − pad} ∩ [0, H)`` and likewise for
    ``X`` — exact, and cheap even for large layers.  Strided or dilated
    layers can skip input elements entirely, so this is the true lower
    bound on DRAM reads (padding contributes nothing: it is not in DRAM).
    """
    ys = {
        oy * spec.stride + r * spec.dilation - spec.padding
        for oy in range(spec.h_out)
        for r in range(spec.h_filter)
    }
    xs = {
        ox * spec.stride + s * spec.dilation - spec.padding
        for ox in range(spec.w_out)
        for s in range(spec.w_filter)
    }
    rows = sum(1 for y in ys if 0 <= y < spec.h_in)
    cols = sum(1 for x in xs if 0 <= x < spec.w_in)
    return spec.n * spec.c_in * rows * cols


def _check_cycle_accounting(
    prefix: str,
    total: float,
    compute: float,
    dma: float,
    exposed: float,
    context: Dict[str, Any],
    arrays: int = 1,
) -> None:
    check = _auditor.check
    expected_exposed = max(0.0, total - compute / arrays)
    check(
        f"{prefix}.cycles.accounting",
        exposed == expected_exposed,
        expected=expected_exposed,
        actual=exposed,
        message="exposure identity broken (exposed != max(0, total - compute/arrays))",
        context=context,
    )
    check(
        f"{prefix}.cycles.accounting",
        compute <= arrays * total * (1 + REL_TOL),
        expected=f"<= {arrays} array(s) x {total}",
        actual=compute,
        message="array busier than the makespan allows",
        context=context,
    )
    # Fully serialised execution — every fill, multiply and drain
    # back-to-back on one array — is the worst any pipeline can do.
    check(
        f"{prefix}.cycles.accounting",
        total <= (compute + dma) * (1 + REL_TOL),
        expected=f"<= compute + dma = {compute + dma}",
        actual=total,
        message="total exceeds the serial-sum upper bound (idle cycles invented)",
        context=context,
    )


def check_tpu_conv(
    spec: ConvSpec,
    config,
    result,
    *,
    group_size: int,
    layout=None,
) -> None:
    """Cheap-level conservation checks for one simulated conv layer.

    ``result`` is the *published* :class:`~repro.systolic.simulator.
    LayerResult` — checked after the simulation cache so that cache hits
    (including entries populated by earlier unaudited runs) are audited
    exactly like fresh computations; a corrupted cache entry fails here.
    """
    check = _auditor.check
    context = fingerprint_context(spec, config, group_size=group_size)
    check(
        "tpu.macs.conservation",
        result.macs == spec.macs,
        expected=spec.macs,
        actual=result.macs,
        message="published MAC total != sum(K*R*S*C*P*Q) over tiles",
        context=context,
    )
    _check_cycle_accounting(
        "tpu",
        result.cycles,
        result.compute_cycles,
        result.dma_cycles,
        result.exposed_dma_cycles,
        context,
    )
    check(
        "tpu.utilization.range",
        0.0 < result.utilization <= 1 + REL_TOL,
        expected="(0, 1]",
        actual=result.utilization,
        message="utilization outside (0, 1]",
        context=context,
    )
    elem = config.compute_elem_bytes
    unique_bytes = unique_ifmap_elements(spec) * elem
    lowered_bytes = spec.lowered_bytes(elem)
    # Re-derive scheduled reads from the *tiling plan* (independent of the
    # lowered-matrix arithmetic): each group streams M rows of g*C_I.
    from ..core.tiling import plan_multi_tile

    groups = plan_multi_tile(spec, group_size)
    scheduled_read = (
        spec.lowered_rows() * spec.c_in * sum(g.group_size for g in groups) * elem
    )
    check(
        "tpu.dram.read-bounds",
        unique_bytes <= scheduled_read <= lowered_bytes,
        expected=f"[{unique_bytes}, {lowered_bytes}]",
        actual=scheduled_read,
        message="scheduled DRAM reads outside [unique footprint, im2col bound]",
        context=context,
    )
    gemm = spec.gemm_shape()
    merged_macs = spec.lowered_rows() * spec.c_out * spec.c_in * sum(
        g.group_size for g in groups
    )
    check(
        "tpu.flops.equivalence",
        gemm.macs == spec.macs and merged_macs == spec.macs,
        expected=spec.macs,
        actual=gemm.macs if gemm.macs != spec.macs else merged_macs,
        message="channel-first merged GEMM work != explicit-im2col GEMM work",
        context=context,
    )
    lower = cycle_lower_bound(
        spec.macs,
        config.peak_macs_per_cycle,
        read_bytes=unique_bytes + spec.filter_bytes(elem),
        write_bytes=spec.ofmap_bytes(elem),
        bytes_per_cycle=config.hbm.bytes_per_cycle,
    )
    check(
        "tpu.latency.roofline",
        result.cycles >= lower * (1 - REL_TOL),
        expected=f">= {lower}",
        actual=result.cycles,
        message="cycles beat the roofline lower bound (throughput from thin air)",
        context=context,
    )


def check_tpu_gemm(shape: GemmShape, config, result) -> None:
    """Cheap-level conservation checks for one raw GEMM layer (post-cache)."""
    check = _auditor.check
    context = fingerprint_context(None, config, shape=(shape.m, shape.n, shape.k))
    check(
        "tpu.gemm.macs.conservation",
        result.macs == shape.macs,
        expected=shape.macs,
        actual=result.macs,
        message="published MAC total != m*n*k",
        context=context,
    )
    _check_cycle_accounting(
        "tpu.gemm",
        result.cycles,
        result.compute_cycles,
        result.dma_cycles,
        result.exposed_dma_cycles,
        context,
    )
    check(
        "tpu.gemm.utilization.range",
        0.0 < result.utilization <= 1 + REL_TOL,
        expected="(0, 1]",
        actual=result.utilization,
        message="utilization outside (0, 1]",
        context=context,
    )
    elem = config.compute_elem_bytes
    lower = cycle_lower_bound(
        shape.macs,
        config.peak_macs_per_cycle,
        read_bytes=(shape.m * shape.k + shape.k * shape.n) * elem,
        write_bytes=shape.m * shape.n * elem,
        bytes_per_cycle=config.hbm.bytes_per_cycle,
    )
    check(
        "tpu.gemm.latency.roofline",
        result.cycles >= lower * (1 - REL_TOL),
        expected=f">= {lower}",
        actual=result.cycles,
        message="GEMM cycles beat the roofline lower bound",
        context=context,
    )


def check_tpu_multi_mxu(spec: ConvSpec, config, arrays: int, result) -> None:
    """Cheap-level checks for the dual/multi-MXU capacity model (post-cache)."""
    check = _auditor.check
    context = fingerprint_context(spec, config, arrays=arrays)
    check(
        "tpu.dual.macs.conservation",
        result.macs == spec.macs,
        expected=spec.macs,
        actual=result.macs,
        message="multi-MXU MAC total != sum(K*R*S*C*P*Q)",
        context=context,
    )
    _check_cycle_accounting(
        "tpu.dual",
        result.cycles,
        result.compute_cycles,
        result.dma_cycles,
        result.exposed_dma_cycles,
        context,
        arrays=arrays,
    )
    check(
        "tpu.dual.utilization.range",
        0.0 < result.utilization <= 1 + REL_TOL,
        expected="(0, 1]",
        actual=result.utilization,
        message="multi-MXU utilization outside (0, 1]",
        context=context,
    )
    elem = config.compute_elem_bytes
    lower = cycle_lower_bound(
        spec.macs,
        arrays * config.peak_macs_per_cycle,
        read_bytes=unique_ifmap_elements(spec) * elem + spec.filter_bytes(elem),
        write_bytes=spec.ofmap_bytes(elem),
        bytes_per_cycle=config.hbm.bytes_per_cycle,
    )
    check(
        "tpu.dual.latency.roofline",
        result.cycles >= lower * (1 - REL_TOL),
        expected=f">= {lower}",
        actual=result.cycles,
        message="multi-MXU cycles beat the roofline lower bound",
        context=context,
    )


def check_hbm_transfer(stats, total_cycles: float, config) -> None:
    """The bandwidth law: no transfer lands faster than peak bandwidth."""
    floor = stats.bytes / config.bytes_per_cycle
    _auditor.check(
        "hbm.bandwidth.law",
        total_cycles >= floor * (1 - REL_TOL),
        expected=f">= {floor}",
        actual=total_cycles,
        message=f"{stats.bytes} B transfer beat peak bandwidth",
        context={"bytes": stats.bytes, "runs": stats.runs},
    )


def check_sram_latency(latency_ns: float, capacity_bytes: int) -> None:
    """SRAM access latency must be a positive, finite number."""
    _auditor.check(
        "sram.latency.sane",
        latency_ns > 0.0 and math.isfinite(latency_ns),
        expected="> 0 and finite",
        actual=latency_ns,
        message="SRAM access latency is non-positive or non-finite",
        context={"capacity_bytes": capacity_bytes},
    )


def check_gpu_kernel(kernel, config) -> None:
    """Cheap-level checks for one priced GPU kernel (any algorithm)."""
    check = _auditor.check
    context = fingerprint_context(None, config, kernel=kernel.name)
    check(
        "gpu.kernel.accounting",
        kernel.seconds >= max(kernel.compute_seconds, kernel.memory_seconds)
        * (1 - REL_TOL)
        and kernel.seconds > 0.0,
        expected=f">= {max(kernel.compute_seconds, kernel.memory_seconds)}",
        actual=kernel.seconds,
        message="kernel time below its own compute/memory components",
        context=context,
    )
    peak_macs_per_s = (
        config.num_sms * config.macs_per_sm_per_cycle * config.clock_ghz * 1e9
    )
    compute_floor = kernel.macs / (peak_macs_per_s * config.compute_efficiency)
    memory_floor = kernel.traffic_bytes / (config.hbm_bandwidth_gbps * 1e9)
    check(
        "gpu.kernel.roofline",
        kernel.compute_seconds >= compute_floor * (1 - REL_TOL)
        and kernel.memory_seconds >= memory_floor * (1 - REL_TOL),
        expected=f"compute >= {compute_floor}, memory >= {memory_floor}",
        actual=(kernel.compute_seconds, kernel.memory_seconds),
        message="kernel components beat their roofline floors",
        context=context,
    )


def check_gpu_channel_first(spec: ConvSpec, result, config) -> None:
    """Channel-first implicit-im2col specific GPU checks."""
    check = _auditor.check
    context = fingerprint_context(spec, config)
    gemm = spec.gemm_shape()
    check(
        "gpu.flops.equivalence",
        gemm.macs == spec.macs and result.kernel.macs == spec.macs,
        expected=spec.macs,
        actual=gemm.macs if gemm.macs != spec.macs else result.kernel.macs,
        message="implicit-im2col kernel work != direct convolution work",
        context=context,
    )
    check(
        "gpu.reuse.range",
        0.0 <= result.reuse_fraction <= 1.0,
        expected="[0, 1]",
        actual=result.reuse_fraction,
        message="halo-reuse fraction outside [0, 1]",
        context=context,
    )
    check(
        "gpu.kernel.accounting",
        result.seconds >= result.kernel.seconds * (1 - REL_TOL),
        expected=f">= {result.kernel.seconds}",
        actual=result.seconds,
        message="layer time below its own kernel time",
        context=context,
    )
