"""Seeded ConvSpec fuzzing with greedy shrink and a crash-safe corpus.

``repro fuzz`` drives this module: sample random convolution specs biased
toward the corners where implicit-im2col implementations historically
break (dilation, stride larger than the kernel, channel counts that do
not divide the array, 1×1 and 1×N kernels, batch 1, tiny or degenerate
images), run every spec through the TPU and GPU models under **full**
audit, and treat any :class:`~repro.errors.AuditFault` — or any
unclassified exception from deep inside a model — as a finding.

A finding is then **shrunk**: a deterministic greedy pass walks the spec
fields in a fixed order, repeatedly trying smaller values (floor first,
then bisection) and keeping any reduction that still reproduces the same
invariant violation, until no field can shrink further.  The minimal
reproducer is appended to ``tests/audit/corpus/`` with the PR-4 atomic
write helpers, so every found case becomes a permanent regression input
replayed by the test suite.

Everything derives from ``random.Random(seed)`` — same seed, same specs,
same shrinks, same corpus filenames.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import random
from typing import Any, Callable, Dict, List, Optional

from ..core.conv_spec import ConvSpec
from ..errors import AuditFault, ConfigError
from ..resilience.atomic import atomic_write_text
from . import auditor as _auditor

__all__ = [
    "CORPUS_SCHEMA",
    "DEFAULT_CORPUS_DIR",
    "SPEC_FIELDS",
    "FuzzReport",
    "sample_spec",
    "run_spec",
    "shrink_spec",
    "spec_to_dict",
    "spec_from_dict",
    "write_corpus_entry",
    "load_corpus",
    "run_fuzz",
]

CORPUS_SCHEMA = 1
DEFAULT_CORPUS_DIR = "tests/audit/corpus"

#: Shrink order: batch and channels first (they dominate runtime), then
#: spatial dims, then the filter, then the lowering parameters.
SPEC_FIELDS = (
    "n", "c_in", "h_in", "w_in", "c_out",
    "h_filter", "w_filter", "stride", "padding", "dilation",
)

#: Per-field shrink floors (a valid ConvSpec needs positives; padding 0).
_FLOORS = {field: 1 for field in SPEC_FIELDS}
_FLOORS["padding"] = 0

#: Hostile-corner value pools the sampler draws from.
_CHANNELS = (1, 3, 8, 16, 24, 32, 48, 96, 127, 128, 129, 160, 192)
_KERNELS = ((1, 1), (1, 3), (3, 1), (1, 7), (3, 3), (5, 5), (7, 7), (2, 2))
_BATCHES = (1, 1, 1, 2, 4, 8)  # batch 1 is the hostile default


@dataclasses.dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` campaign."""

    specs_run: int = 0
    rejected: int = 0
    failures: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    corpus_paths: List[str] = dataclasses.field(default_factory=list)

    @property
    def violations(self) -> int:
        return len(self.failures)


def _tpu_configs() -> Dict[str, Any]:
    """Named TPU config variants the fuzzer sweeps (all valid machines)."""
    from ..systolic.config import TPU_V2

    return {
        "tpu_v2": TPU_V2,
        # One vector memory per PE row is a structural TPUConfig invariant,
        # so geometry sweeps must move num_vector_memories in lockstep.
        "tpu_v2-64x64": dataclasses.replace(
            TPU_V2, array_rows=64, array_cols=64, num_vector_memories=64
        ),
        "tpu_v2-256x256": dataclasses.replace(
            TPU_V2, array_rows=256, array_cols=256, num_vector_memories=256
        ),
    }


def sample_spec(rng: random.Random) -> ConvSpec:
    """One random spec draw; may raise :class:`ConfigError` (caller retries).

    Biases: small batches, non-array-divisible channels, degenerate and
    rectangular kernels, strides that can exceed the kernel, dilation.
    """
    h_filter, w_filter = rng.choice(_KERNELS)
    stride = rng.choice((1, 1, 1, 2, 2, 3, 4))  # stride > kernel happens
    dilation = rng.choice((1, 1, 1, 2, 3))
    padding = rng.choice((0, 0, 1, 1, 2, 3))
    h_in = rng.choice((1, 4, 7, 8, 14, 16, 23, 28, 32))
    w_in = rng.choice((1, 4, 7, 8, 14, 16, 23, 28, 32))
    return ConvSpec(
        n=rng.choice(_BATCHES),
        c_in=rng.choice(_CHANNELS),
        h_in=h_in,
        w_in=w_in,
        c_out=rng.choice(_CHANNELS),
        h_filter=h_filter,
        w_filter=w_filter,
        stride=stride,
        padding=padding,
        dilation=dilation,
        name="fuzz",
    )


def _sample_valid_spec(rng: random.Random, max_tries: int = 64):
    """Draw until a spec constructs; returns ``(spec, rejected_count)``."""
    rejected = 0
    for _ in range(max_tries):
        try:
            return sample_spec(rng), rejected
        except ConfigError:
            rejected += 1
    # Geometrically impossible draws exhausted the budget — fall back to a
    # spec that always constructs so the campaign length stays deterministic.
    return ConvSpec(1, 1, 8, 8, 1, 3, 3, name="fuzz"), rejected


def run_spec(
    spec: ConvSpec, tpu_config: str = "tpu_v2", gpu: bool = True
) -> Optional[Dict[str, Any]]:
    """Run one spec through the models under full audit.

    Returns ``None`` on success, or a failure record: the AuditFault's
    structured payload, or — for an unclassified exception from inside a
    model, itself a finding — the exception type and message.
    """
    from ..gpu.channel_first import channel_first_conv_time
    from ..gpu.config import V100
    from ..systolic.dual_mxu import port_budget_allows, simulate_conv_dual_mxu
    from ..systolic.simulator import TPUSim

    config = _tpu_configs()[tpu_config]
    _auditor.configure("full")
    try:
        sim = TPUSim(config)
        sim.simulate_conv(spec)
        sim.simulate_gemm(spec.gemm_shape(), name="fuzz-gemm")
        if port_budget_allows(2, config):
            simulate_conv_dual_mxu(spec, arrays=2, config=config)
        if gpu:
            channel_first_conv_time(spec, V100)
    except AuditFault as fault:
        record = fault.payload()
        record["error_type"] = "AuditFault"
        return record
    except Exception as err:  # a traceback from a model IS a finding
        return {
            "invariant": None,
            "expected": None,
            "actual": None,
            "context": {},
            "message": f"{type(err).__name__}: {err}",
            "error_type": type(err).__name__,
        }
    return None


def _same_failure(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    """Shrink only while the *same* bug reproduces (id + exception type)."""
    return (
        a.get("invariant") == b.get("invariant")
        and a.get("error_type") == b.get("error_type")
    )


def _shrink_candidates(value: int, floor: int) -> List[int]:
    """Smaller values to try, most aggressive first; deterministic."""
    candidates = []
    if value > floor:
        candidates.append(floor)
        midpoint = floor + (value - floor) // 2
        if midpoint not in (floor, value):
            candidates.append(midpoint)
        if value - 1 not in candidates and value - 1 >= floor:
            candidates.append(value - 1)
    return candidates


def shrink_spec(
    spec: ConvSpec,
    failure: Dict[str, Any],
    tpu_config: str = "tpu_v2",
    max_attempts: int = 400,
    reproduce: Optional[Callable[[ConvSpec], Optional[Dict[str, Any]]]] = None,
) -> ConvSpec:
    """Greedy field-by-field reduction to a minimal reproducer.

    Walks :data:`SPEC_FIELDS` in order, adopting any smaller value that
    still reproduces the same failure, and repeats until a full pass
    changes nothing (or the attempt budget runs out).  Fully
    deterministic — no randomness, fixed field and candidate order.
    """
    if reproduce is None:
        reproduce = lambda s: run_spec(s, tpu_config)  # noqa: E731
    attempts = 0
    current = spec
    progressed = True
    while progressed and attempts < max_attempts:
        progressed = False
        for field in SPEC_FIELDS:
            value = getattr(current, field)
            for candidate_value in _shrink_candidates(value, _FLOORS[field]):
                if attempts >= max_attempts:
                    return current
                attempts += 1
                try:
                    candidate = dataclasses.replace(
                        current, **{field: candidate_value}
                    )
                except ConfigError:
                    continue  # geometrically invalid reduction
                outcome = reproduce(candidate)
                if outcome is not None and _same_failure(outcome, failure):
                    current = candidate
                    progressed = True
                    break  # restart this field from its new, smaller value
    return current


# --------------------------------------------------------------------- corpus
def spec_to_dict(spec: ConvSpec) -> Dict[str, int]:
    return {field: getattr(spec, field) for field in SPEC_FIELDS}


def spec_from_dict(payload: Dict[str, int]) -> ConvSpec:
    return ConvSpec(name="corpus", **{f: int(payload[f]) for f in SPEC_FIELDS})


def _case_id(entry: Dict[str, Any]) -> str:
    canonical = json.dumps(
        {"spec": entry["spec"], "tpu_config": entry["tpu_config"],
         "invariant": entry.get("invariant")},
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def write_corpus_entry(
    corpus_dir,
    spec: ConvSpec,
    tpu_config: str,
    failure: Optional[Dict[str, Any]] = None,
    shrunk_from: Optional[ConvSpec] = None,
    seed: Optional[int] = None,
    injected: Optional[str] = None,
) -> pathlib.Path:
    """Atomically write one corpus case; returns its path.

    The filename is a content hash, so re-finding the same minimal case is
    idempotent and concurrent fuzzers cannot tear each other's files.
    """
    entry: Dict[str, Any] = {
        "schema": CORPUS_SCHEMA,
        "spec": spec_to_dict(spec),
        "tpu_config": tpu_config,
        "invariant": (failure or {}).get("invariant"),
        "error_type": (failure or {}).get("error_type"),
        "message": (failure or {}).get("message"),
        "seed": seed,
        "injected": injected,
        "shrunk_from": spec_to_dict(shrunk_from) if shrunk_from else None,
    }
    entry["id"] = _case_id(entry)
    corpus_dir = pathlib.Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / f"case-{entry['id']}.json"
    atomic_write_text(path, json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return path


def load_corpus(corpus_dir) -> List[Dict[str, Any]]:
    """Every corpus entry, sorted by filename for determinism."""
    corpus_dir = pathlib.Path(corpus_dir)
    entries = []
    for path in sorted(corpus_dir.glob("case-*.json")):
        payload = json.loads(path.read_text())
        payload["_path"] = str(path)
        entries.append(payload)
    return entries


# ------------------------------------------------------------------- campaign
def run_fuzz(
    specs: int = 200,
    seed: int = 0,
    corpus_dir=DEFAULT_CORPUS_DIR,
    shrink: bool = True,
    write_corpus: bool = True,
    inject_faults: Optional[str] = None,
    gpu: bool = True,
    log: Callable[[str], None] = print,
) -> FuzzReport:
    """Run a fuzz campaign; the CLI's exit code is ``report.violations > 0``."""
    from ..resilience import faults as _faults

    rng = random.Random(seed)
    config_names = list(_tpu_configs())
    plan = None
    if inject_faults:
        plan = _faults.activate(_faults.FaultPlan.parse(inject_faults))
    report = FuzzReport()
    try:
        for index in range(specs):
            # Mostly the reference machine; every 5th spec sweeps a variant.
            tpu_config = (
                config_names[0] if index % 5 else rng.choice(config_names)
            )
            spec, rejected = _sample_valid_spec(rng)
            report.rejected += rejected
            report.specs_run += 1
            failure = run_spec(spec, tpu_config, gpu=gpu)
            if failure is None:
                continue
            log(
                f"fuzz: violation on spec {index} "
                f"[{failure.get('invariant') or failure.get('error_type')}]: "
                f"{spec.describe()}"
            )
            minimal = spec
            if shrink:
                minimal = shrink_spec(spec, failure, tpu_config)
                log(f"fuzz: shrunk to minimal reproducer: {minimal.describe()}")
            failure["spec"] = spec_to_dict(minimal)
            failure["tpu_config"] = tpu_config
            report.failures.append(failure)
            if write_corpus:
                path = write_corpus_entry(
                    corpus_dir,
                    minimal,
                    tpu_config,
                    failure=failure,
                    shrunk_from=spec if shrink and minimal != spec else None,
                    seed=seed,
                    injected=inject_faults,
                )
                report.corpus_paths.append(str(path))
                log(f"fuzz: wrote corpus case {path}")
    finally:
        if plan is not None:
            _faults.deactivate()
    log(
        f"fuzz: {report.specs_run} specs, {report.rejected} invalid draws "
        f"resampled, {report.violations} violation(s)"
    )
    return report
