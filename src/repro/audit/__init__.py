"""Simulation sanitizer: runtime invariant audits, differential checks, fuzzing.

Three pieces, layered like :mod:`repro.trace` and :mod:`repro.obs` with the
same zero-overhead-when-off contract (``--audit off`` keeps every run
byte-identical — the instrumented models pay one plain-bool check):

- :mod:`repro.audit.auditor` — the level state machine (``off`` /
  ``cheap`` / ``full``) plus check/violation counters; every invariant
  evaluation funnels through :func:`check`, which raises a structured
  :class:`~repro.errors.AuditFault` on violation and honours the
  ``--inject-faults audit-break=<invariant>`` hook so CI can prove the
  catch → shrink → corpus pipeline end to end;
- :mod:`repro.audit.invariants` — the conservation-law catalog
  (MAC conservation, DRAM read/write bounds, cycle-accounting identities,
  utilization ranges, roofline lower bounds, channel-first vs im2col FLOP
  equivalence) evaluated in-line by the systolic simulator, scheduler,
  DMA engine, dual-MXU model, memory models and GPU timing models;
- :mod:`repro.audit.differential` — ``full``-level cross-model
  consistency: the reference scheduler, the vectorized
  ``ScheduleArrays`` engine and the memoized perf cache must agree
  bit-for-bit per layer (verified once per perf-cache key, so repeated
  layers stay cheap);
- :mod:`repro.audit.fuzz` — the ``repro fuzz`` harness: seeded
  hostile-corner ConvSpec generation, full-audit execution, greedy
  deterministic shrinking of failures, and the crash-safe
  ``tests/audit/corpus/`` of minimal reproducers.

See DESIGN.md ("Simulation sanitizer") for the invariant catalog and the
fuzz/shrink loop.
"""

from .auditor import (
    AuditLevel,
    Auditor,
    check,
    configure,
    enabled,
    full,
    get_auditor,
    level,
    reset,
    snapshot,
)
from .differential import verify_conv_layer, verify_gemm_layer
from .fuzz import (
    CORPUS_SCHEMA,
    DEFAULT_CORPUS_DIR,
    FuzzReport,
    load_corpus,
    run_fuzz,
    run_spec,
    sample_spec,
    shrink_spec,
    spec_from_dict,
    spec_to_dict,
    write_corpus_entry,
)
from .invariants import (
    REL_TOL,
    check_gpu_channel_first,
    check_gpu_kernel,
    check_hbm_transfer,
    check_sram_latency,
    check_tpu_conv,
    check_tpu_gemm,
    check_tpu_multi_mxu,
    fingerprint_context,
    unique_ifmap_elements,
)

__all__ = [
    "AuditLevel",
    "Auditor",
    "get_auditor",
    "configure",
    "enabled",
    "full",
    "level",
    "reset",
    "check",
    "snapshot",
    "REL_TOL",
    "fingerprint_context",
    "unique_ifmap_elements",
    "check_tpu_conv",
    "check_tpu_gemm",
    "check_tpu_multi_mxu",
    "check_hbm_transfer",
    "check_sram_latency",
    "check_gpu_kernel",
    "check_gpu_channel_first",
    "verify_conv_layer",
    "verify_gemm_layer",
    "CORPUS_SCHEMA",
    "DEFAULT_CORPUS_DIR",
    "FuzzReport",
    "sample_spec",
    "run_spec",
    "shrink_spec",
    "spec_to_dict",
    "spec_from_dict",
    "write_corpus_entry",
    "load_corpus",
    "run_fuzz",
]
