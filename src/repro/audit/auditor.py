"""Audit levels and the process-global auditor state.

This is the control plane of the sanitizer, deliberately shaped like
:mod:`repro.trace.tracer`: a module-global :class:`Auditor` whose
``level`` the instrumented models consult through :func:`enabled` /
:func:`full` before doing *any* work, so a default (``--audit off``) run
pays one attribute load + truthiness test per instrumentation point and
produces byte-identical output.

Levels:

- ``off``   — nothing runs (the default);
- ``cheap`` — O(1)-per-layer conservation checks (MAC totals, cycle
  accounting, utilization range, roofline lower bounds, DRAM byte
  bounds, FLOP equivalence);
- ``full``  — everything in ``cheap`` plus per-layer differential
  checks: the per-item reference pipeline, the vectorized
  ``ScheduleArrays`` executor, the memo cache and the oracle bounds must
  all agree, verified once per perf-cache fingerprint so repeated layers
  stay cheap.

Failed checks raise :class:`repro.errors.AuditFault` with a structured
payload; the auditor also counts every check and remembers recent
violations so the runner can surface ``checks run / violations`` in its
manifest and metrics.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Set, Tuple

from ..errors import AuditFault
from ..resilience import faults as _faults
from ..trace import tracer as _tracer

__all__ = [
    "AuditLevel",
    "Auditor",
    "get_auditor",
    "configure",
    "enabled",
    "full",
    "level",
    "reset",
    "check",
    "snapshot",
]

#: How many violation payloads the auditor retains for the run summary.
_MAX_VIOLATIONS_KEPT = 64


class AuditLevel(enum.Enum):
    """The three audit levels, ordered ``OFF < CHEAP < FULL``."""

    OFF = "off"
    CHEAP = "cheap"
    FULL = "full"

    @classmethod
    def parse(cls, value) -> "AuditLevel":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ValueError(
                f"unknown audit level {value!r} (choose off, cheap or full)"
            ) from None

    @property
    def rank(self) -> int:
        return ("off", "cheap", "full").index(self.value)


class Auditor:
    """Holds the active level plus check/violation accounting.

    ``enabled`` is a plain bool mirror of ``level != OFF`` so the hot
    guard in the simulators is a single attribute read, exactly like the
    tracer's ``enabled`` flag.
    """

    __slots__ = (
        "level",
        "enabled",
        "checks",
        "checks_by_invariant",
        "violations",
        "violation_records",
        "verified_keys",
        "differential_skipped",
    )

    def __init__(self, level: AuditLevel = AuditLevel.OFF) -> None:
        self.level = level
        self.enabled = level is not AuditLevel.OFF
        self.checks = 0
        self.checks_by_invariant: Dict[str, int] = {}
        self.violations = 0
        self.violation_records: List[Dict[str, Any]] = []
        #: Perf-cache fingerprints whose differential check already ran —
        #: the mechanism that keeps ``full`` affordable on repeated layers.
        self.verified_keys: Set[Tuple] = set()
        #: Keys whose reference re-run was skipped for size (never silent:
        #: surfaced in :meth:`snapshot` and as a trace instant).
        self.differential_skipped = 0

    # ------------------------------------------------------------- control
    def configure(self, level) -> None:
        self.level = AuditLevel.parse(level)
        self.enabled = self.level is not AuditLevel.OFF

    def reset(self) -> None:
        """Zero the counters (level is left alone); per-experiment scoping."""
        self.checks = 0
        self.checks_by_invariant.clear()
        self.violations = 0
        self.violation_records.clear()
        self.verified_keys.clear()
        self.differential_skipped = 0

    @property
    def full(self) -> bool:
        return self.level is AuditLevel.FULL

    # ------------------------------------------------------------ checking
    def check(
        self,
        invariant: str,
        ok: bool,
        *,
        expected: Any,
        actual: Any,
        message: str = "invariant violated",
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Count one invariant evaluation; raise :class:`AuditFault` if it failed.

        The deliberate-break fault hook lives here: an active
        ``audit-break=<invariant>`` injection plan flips the matching
        check to failed so the catch → shrink → corpus pipeline can be
        exercised end to end without a real model bug.
        """
        self.checks += 1
        self.checks_by_invariant[invariant] = (
            self.checks_by_invariant.get(invariant, 0) + 1
        )
        plan = _faults.ACTIVE
        if plan is not None and plan.breaks_invariant(invariant):
            ok = False
            message = f"deliberately broken by fault injection: {message}"
        if ok:
            return
        self.violations += 1
        fault = AuditFault(
            message,
            invariant=invariant,
            expected=expected,
            actual=actual,
            context=context,
        )
        if len(self.violation_records) < _MAX_VIOLATIONS_KEPT:
            self.violation_records.append(fault.payload())
        if _tracer.enabled():
            _tracer.instant(
                "audit.violation", cat="audit", invariant=invariant
            )
            _tracer.counter("audit.violations", 1, cat="audit")
        raise fault

    # ------------------------------------------------------------ snapshot
    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly summary for manifests/telemetry."""
        return {
            "level": self.level.value,
            "checks": self.checks,
            "checks_by_invariant": dict(sorted(self.checks_by_invariant.items())),
            "violations": self.violations,
            **(
                {"differential_skipped": self.differential_skipped}
                if self.differential_skipped
                else {}
            ),
        }


#: The process-global auditor every instrumentation point consults.
_AUDITOR = Auditor()


def get_auditor() -> Auditor:
    return _AUDITOR


def configure(level) -> Auditor:
    """Set the global audit level; returns the auditor for chaining."""
    _AUDITOR.configure(level)
    return _AUDITOR


def enabled() -> bool:
    """Fast guard: is any auditing active?"""
    return _AUDITOR.enabled


def full() -> bool:
    """Fast guard: are the differential (``full``-level) checks active?"""
    return _AUDITOR.level is AuditLevel.FULL


def level() -> AuditLevel:
    return _AUDITOR.level


def reset() -> None:
    """Zero the global auditor's counters (level unchanged)."""
    _AUDITOR.reset()


def check(
    invariant: str,
    ok: bool,
    *,
    expected: Any,
    actual: Any,
    message: str = "invariant violated",
    context: Optional[Dict[str, Any]] = None,
) -> None:
    """Module-level convenience for :meth:`Auditor.check`."""
    _AUDITOR.check(
        invariant,
        ok,
        expected=expected,
        actual=actual,
        message=message,
        context=context,
    )


def snapshot() -> Dict[str, Any]:
    return _AUDITOR.snapshot()
