"""Full-level differential checks: every execution path must agree.

The repo prices each layer through several interchangeable machineries —
the per-item reference scheduler fold, the vectorized
:class:`~repro.perf.schedule_arrays.ScheduleArrays` executor, and the
fingerprint-keyed simulation memo that may serve either from cache.  The
bit-exactness contract between them is what the golden snapshots and the
perf layer's equivalence tests assert *offline*; at ``--audit full`` it
is enforced *at run time*, per layer:

- ``diff.reference-vs-vectorized`` — rebuild the schedule with the
  per-item reference builder, execute it with the reference fold, and
  compare every :class:`~repro.systolic.scheduler.ScheduleResult` field
  bit-for-bit against the vectorized executor;
- ``diff.executor-equivalence`` — feed the *same* vectorized arrays
  through the reference fold (isolates executor drift from builder
  drift);
- ``diff.cache-coherence`` — the served (possibly memoized) result must
  equal the fresh recomputation, so a stale or corrupted cache entry is
  caught the moment it is used.

Each perf-cache fingerprint is verified **once** per process (the
auditor keeps a ``verified_keys`` set), so the memoized fast path stays
fast: repeated layers cost one set lookup.

One cost control keeps ``full`` usable on real experiment sweeps:
schedules above :data:`DIFFERENTIAL_ITEM_CAP` work items skip the
O(items) reference re-runs (the per-item builder and fold are pure
Python and dwarf the vectorized path on 50k-item GEMMs).  The cheap
``diff.cache-coherence`` comparison still runs for every key, and every
skip is counted in the auditor's ``differential_skipped`` — surfaced in
the snapshot and as a trace instant, never silent.
"""

from __future__ import annotations

from typing import Tuple

from ..trace import tracer as _trace
from . import auditor as _auditor
from .invariants import fingerprint_context

__all__ = ["DIFFERENTIAL_ITEM_CAP", "verify_conv_layer", "verify_gemm_layer"]

#: Schedules with more work items than this skip the per-item reference
#: re-runs (counted, never silent).  1024 items ≈ a millisecond of
#: pure-Python fold, which keeps full-audit wall-clock well within 2x of
#: an unaudited run on the fig13 sweep; the biggest GEMM keys sit two
#: orders of magnitude above the cap.
DIFFERENTIAL_ITEM_CAP = 1024

#: The ScheduleResult fields two paths must agree on, bit for bit.
_FIELDS = (
    "total_cycles",
    "compute_cycles",
    "dma_cycles",
    "exposed_dma_cycles",
    "items",
    "macs",
)


def _outcome_tuple(outcome) -> Tuple:
    return tuple(getattr(outcome, f) for f in _FIELDS)


def _skip_reference(items: int, layer: str) -> None:
    """Account (loudly) for one size-capped reference re-run."""
    _auditor.get_auditor().differential_skipped += 1
    if _trace.enabled():
        _trace.instant(
            "audit.differential.size_cap",
            cat="audit",
            layer=layer,
            items=items,
            cap=DIFFERENTIAL_ITEM_CAP,
        )


def _compare(invariant: str, left, right, message: str, context) -> None:
    _auditor.check(
        invariant,
        _outcome_tuple(left) == _outcome_tuple(right),
        expected=dict(zip(_FIELDS, _outcome_tuple(left))),
        actual=dict(zip(_FIELDS, _outcome_tuple(right))),
        message=message,
        context=context,
    )


def verify_conv_layer(
    key: Tuple, spec, config, engine, result, *, group_size: int, layout
) -> None:
    """Differential-check one conv layer (once per perf-cache key)."""
    auditor = _auditor.get_auditor()
    if key in auditor.verified_keys:
        return
    auditor.verified_keys.add(key)
    # Imported lazily: the audit package must not pull the simulators in
    # at import time (they import *us* for instrumentation).
    from ..perf.schedule_arrays import (
        channel_first_schedule_arrays,
        execute_schedule_arrays,
    )
    from ..systolic.scheduler import channel_first_schedule, execute_schedule

    context = fingerprint_context(spec, config, group_size=group_size)
    with _trace.span("audit.differential", cat="audit", layer=spec.name or "conv"):
        arrays = channel_first_schedule_arrays(
            spec, config, engine, group_size=group_size, layout=layout
        )
        vectorized = execute_schedule_arrays(arrays)
        if vectorized.items <= DIFFERENTIAL_ITEM_CAP:
            item_fold = execute_schedule(arrays.to_work_items())
            _compare(
                "diff.executor-equivalence",
                vectorized,
                item_fold,
                "vectorized executor disagrees with the reference fold on the "
                "same schedule",
                context,
            )
            reference = execute_schedule(
                channel_first_schedule(
                    spec, config, engine, group_size=group_size, layout=layout
                )
            )
            _compare(
                "diff.reference-vs-vectorized",
                reference,
                vectorized,
                "reference schedule pipeline disagrees with the vectorized "
                "ScheduleArrays path",
                context,
            )
        else:
            _skip_reference(vectorized.items, spec.name or "conv")
        served = (
            result.cycles,
            result.compute_cycles,
            result.dma_cycles,
            result.exposed_dma_cycles,
            result.macs,
        )
        fresh = (
            vectorized.total_cycles,
            vectorized.compute_cycles,
            vectorized.dma_cycles,
            vectorized.exposed_dma_cycles,
            vectorized.macs,
        )
        _auditor.check(
            "diff.cache-coherence",
            served == fresh,
            expected=fresh,
            actual=served,
            message="memoized layer result disagrees with a fresh recomputation",
            context=context,
        )


def verify_gemm_layer(key: Tuple, shape, config, engine, result) -> None:
    """Differential-check one raw GEMM layer (once per perf-cache key)."""
    auditor = _auditor.get_auditor()
    if key in auditor.verified_keys:
        return
    auditor.verified_keys.add(key)
    from ..perf.schedule_arrays import (
        execute_schedule_arrays,
        gemm_schedule_arrays,
    )
    from ..systolic.scheduler import execute_schedule, gemm_schedule

    context = fingerprint_context(None, config, shape=(shape.m, shape.n, shape.k))
    with _trace.span("audit.differential", cat="audit", layer="gemm"):
        arrays = gemm_schedule_arrays(shape, config, engine)
        vectorized = execute_schedule_arrays(arrays)
        if vectorized.items <= DIFFERENTIAL_ITEM_CAP:
            item_fold = execute_schedule(arrays.to_work_items())
            _compare(
                "diff.executor-equivalence",
                vectorized,
                item_fold,
                "vectorized executor disagrees with the reference fold on the "
                "same GEMM schedule",
                context,
            )
            reference = execute_schedule(gemm_schedule(shape, config, engine))
            _compare(
                "diff.reference-vs-vectorized",
                reference,
                vectorized,
                "reference GEMM pipeline disagrees with the vectorized path",
                context,
            )
        else:
            _skip_reference(vectorized.items, "gemm")
        served = (
            result.cycles,
            result.compute_cycles,
            result.dma_cycles,
            result.exposed_dma_cycles,
            result.macs,
        )
        fresh = (
            vectorized.total_cycles,
            vectorized.compute_cycles,
            vectorized.dma_cycles,
            vectorized.exposed_dma_cycles,
            vectorized.macs,
        )
        _auditor.check(
            "diff.cache-coherence",
            served == fresh,
            expected=fresh,
            actual=served,
            message="memoized GEMM result disagrees with a fresh recomputation",
            context=context,
        )
