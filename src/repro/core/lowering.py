"""Explicit im2col lowering in both column orders.

This module materialises the lowered IFMap matrix — the thing the implicit
algorithms avoid materialising — in the two orders the paper contrasts
(Fig 6):

- **channel-last** (classical): the ``H_F*W_F*C_I`` axis is expanded
  ``C_I -> H_F -> W_F``, i.e. all taps of one sliding window are stored
  together, channel-major.  Column index = ``(c * H_F + r) * W_F + s``.
- **channel-first** (the paper's reordering): expanded ``H_F -> W_F -> C_I``,
  i.e. elements of the same filter position across channels are adjacent.
  Column index = ``(r * W_F + s) * C_I + c``.

The two differ only by a column permutation; :func:`column_permutation`
exposes it, and the tests assert that permuting one lowering yields the
other and that GEMM against correspondingly-reordered filters is invariant —
the paper's correctness argument, executed.

Also here: ``col2im`` (scatter-add inverse, needed for gradient-style checks),
filter flattening in both orders, and the Table I memory accounting.
"""

from __future__ import annotations

import enum
from typing import Tuple

import numpy as np

from .conv_spec import ConvSpec
from .reference import pad_ifmap

__all__ = [
    "ColumnOrder",
    "im2col",
    "col2im",
    "flatten_filters",
    "unflatten_filters",
    "column_permutation",
    "ofmap_from_gemm",
    "lowered_matrix_mb",
    "ifmap_mb",
]


class ColumnOrder(enum.Enum):
    """Order in which the ``H_F*W_F*C_I`` lowered axis is expanded."""

    CHANNEL_LAST = "channel_last"  # C_I -> H_F -> W_F (classical im2col)
    CHANNEL_FIRST = "channel_first"  # H_F -> W_F -> C_I (the paper)

    def column_index(self, spec: ConvSpec, c: int, r: int, s: int) -> int:
        """Lowered-matrix column index of tap ``(channel c, position r, s)``."""
        if self is ColumnOrder.CHANNEL_LAST:
            return (c * spec.h_filter + r) * spec.w_filter + s
        return (r * spec.w_filter + s) * spec.c_in + c


def _window_taps(padded: np.ndarray, spec: ConvSpec) -> np.ndarray:
    """Gather all taps as a 6-D array ``(N, C_I, H_F, W_F, H_O, W_O)``."""
    n, c_in = padded.shape[0], padded.shape[1]
    taps = np.empty(
        (n, c_in, spec.h_filter, spec.w_filter, spec.h_out, spec.w_out),
        dtype=padded.dtype,
    )
    h_span = (spec.h_out - 1) * spec.stride + 1
    w_span = (spec.w_out - 1) * spec.stride + 1
    for r in range(spec.h_filter):
        for s in range(spec.w_filter):
            y0 = r * spec.dilation
            x0 = s * spec.dilation
            taps[:, :, r, s] = padded[
                :, :, y0 : y0 + h_span : spec.stride, x0 : x0 + w_span : spec.stride
            ]
    return taps


def im2col(ifmap: np.ndarray, spec: ConvSpec, order: ColumnOrder) -> np.ndarray:
    """Explicitly lower an NCHW IFMap to the ``(N*H_O*W_O, H_F*W_F*C_I)`` matrix.

    Row index is ``(n * H_O + oy) * W_O + ox``; column order is chosen by
    ``order``.  Padding is materialised as zeros, matching what a GEMM engine
    would consume.
    """
    if ifmap.shape != spec.ifmap_shape:
        raise ValueError(f"ifmap shape {ifmap.shape} != spec {spec.ifmap_shape}")
    taps = _window_taps(pad_ifmap(ifmap, spec.padding), spec)
    if order is ColumnOrder.CHANNEL_LAST:
        # (N, HO, WO, C, HF, WF) -> rows x (C*HF*WF)
        arranged = taps.transpose(0, 4, 5, 1, 2, 3)
    else:
        # (N, HO, WO, HF, WF, C) -> rows x (HF*WF*C)
        arranged = taps.transpose(0, 4, 5, 2, 3, 1)
    return np.ascontiguousarray(arranged.reshape(spec.lowered_rows(), spec.lowered_cols()))


def col2im(lowered: np.ndarray, spec: ConvSpec, order: ColumnOrder) -> np.ndarray:
    """Scatter-add inverse of :func:`im2col`.

    Overlapping receptive fields accumulate, so ``col2im(im2col(x))`` equals
    ``x`` scaled per-element by the number of windows covering it — the usual
    convention (this is the adjoint, not an inverse).  Padding regions are
    accumulated then discarded.
    """
    expected = (spec.lowered_rows(), spec.lowered_cols())
    if lowered.shape != expected:
        raise ValueError(f"lowered shape {lowered.shape} != expected {expected}")
    h_pad = spec.h_in + 2 * spec.padding
    w_pad = spec.w_in + 2 * spec.padding
    padded = np.zeros((spec.n, spec.c_in, h_pad, w_pad), dtype=np.float64)
    if order is ColumnOrder.CHANNEL_LAST:
        taps = lowered.reshape(
            spec.n, spec.h_out, spec.w_out, spec.c_in, spec.h_filter, spec.w_filter
        ).transpose(0, 3, 4, 5, 1, 2)
    else:
        taps = lowered.reshape(
            spec.n, spec.h_out, spec.w_out, spec.h_filter, spec.w_filter, spec.c_in
        ).transpose(0, 5, 3, 4, 1, 2)
    h_span = (spec.h_out - 1) * spec.stride + 1
    w_span = (spec.w_out - 1) * spec.stride + 1
    for r in range(spec.h_filter):
        for s in range(spec.w_filter):
            y0 = r * spec.dilation
            x0 = s * spec.dilation
            padded[:, :, y0 : y0 + h_span : spec.stride, x0 : x0 + w_span : spec.stride] += taps[
                :, :, r, s
            ]
    if spec.padding:
        return padded[:, :, spec.padding : -spec.padding, spec.padding : -spec.padding]
    return padded


def flatten_filters(weights: np.ndarray, spec: ConvSpec, order: ColumnOrder) -> np.ndarray:
    """Flatten (C_O, C_I, H_F, W_F) weights to the ``(H_F*W_F*C_I, C_O)`` GEMM
    operand, with rows in the same order as the lowered matrix's columns."""
    if weights.shape != spec.filter_shape:
        raise ValueError(f"weights shape {weights.shape} != spec {spec.filter_shape}")
    if order is ColumnOrder.CHANNEL_LAST:
        arranged = weights.transpose(1, 2, 3, 0)  # (C, HF, WF, CO)
    else:
        arranged = weights.transpose(2, 3, 1, 0)  # (HF, WF, C, CO)
    return np.ascontiguousarray(arranged.reshape(spec.lowered_cols(), spec.c_out))


def unflatten_filters(flat: np.ndarray, spec: ConvSpec, order: ColumnOrder) -> np.ndarray:
    """Inverse of :func:`flatten_filters`."""
    expected = (spec.lowered_cols(), spec.c_out)
    if flat.shape != expected:
        raise ValueError(f"flat shape {flat.shape} != expected {expected}")
    if order is ColumnOrder.CHANNEL_LAST:
        arranged = flat.reshape(spec.c_in, spec.h_filter, spec.w_filter, spec.c_out)
        return np.ascontiguousarray(arranged.transpose(3, 0, 1, 2))
    arranged = flat.reshape(spec.h_filter, spec.w_filter, spec.c_in, spec.c_out)
    return np.ascontiguousarray(arranged.transpose(3, 2, 0, 1))


def column_permutation(spec: ConvSpec) -> np.ndarray:
    """Permutation ``p`` with ``channel_first[:, j] == channel_last[:, p[j]]``.

    Applying ``p`` to the channel-last lowered matrix's columns (and to the
    flattened filters' rows) yields the channel-first operands; GEMM results
    are identical — the formal content of Sec. III-A's "General Principle".
    """
    perm = np.empty(spec.lowered_cols(), dtype=np.int64)
    for r in range(spec.h_filter):
        for s in range(spec.w_filter):
            for c in range(spec.c_in):
                cf = ColumnOrder.CHANNEL_FIRST.column_index(spec, c, r, s)
                cl = ColumnOrder.CHANNEL_LAST.column_index(spec, c, r, s)
                perm[cf] = cl
    return perm


def ofmap_from_gemm(result: np.ndarray, spec: ConvSpec) -> np.ndarray:
    """Reshape the ``(N*H_O*W_O, C_O)`` GEMM result to the NCHW OFMap."""
    expected = (spec.lowered_rows(), spec.c_out)
    if result.shape != expected:
        raise ValueError(f"result shape {result.shape} != expected {expected}")
    return np.ascontiguousarray(
        result.reshape(spec.n, spec.h_out, spec.w_out, spec.c_out).transpose(0, 3, 1, 2)
    )


# ------------------------------------------------------------------ Table I
def ifmap_mb(spec: ConvSpec, elem_bytes: int = 2) -> float:
    """IFMap size in MB — Table I's first row, per layer."""
    return spec.ifmap_bytes(elem_bytes) / (1024.0 * 1024.0)


def lowered_matrix_mb(spec: ConvSpec, elem_bytes: int = 2) -> float:
    """Lowered-IFMap size in MB — Table I's second row, per layer."""
    return spec.lowered_bytes(elem_bytes) / (1024.0 * 1024.0)
