"""Grouped and depthwise convolution (extension study).

Modern efficient CNNs (MobileNet, ResNeXt) use grouped convolutions, whose
extreme form — depthwise, one channel per group — is the *adversarial* case
for any GEMM-lowering strategy: the per-group contraction depth collapses to
``C_I/G``, so a GEMM engine's K dimension starves.  For the channel-first
TPU mapping this is precisely the small-channel regime Sec. IV-B's
multi-tile optimisation targets, with the group structure as an extra
constraint (channels of different groups must not mix in a merged K chunk).

A grouped conv is exactly ``G`` independent convolutions over channel
slices; :class:`GroupedConvSpec` owns that decomposition so everything else
in the library (reference, lowering, simulators) is reused per group —
correct by construction, and the analysis experiments can price the
utilisation cliff directly.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from .conv_spec import ConvSpec
from .reference import direct_conv2d

__all__ = ["GroupedConvSpec", "grouped_conv2d", "depthwise_spec"]


@dataclasses.dataclass(frozen=True)
class GroupedConvSpec:
    """A grouped convolution: ``groups`` independent channel-slice convs.

    ``c_in`` and ``c_out`` are the *total* channel counts; each group sees
    ``c_in/groups`` inputs and produces ``c_out/groups`` outputs.  Weights
    are ``(C_O, C_I/G, H_F, W_F)`` (the framework convention).
    """

    base: ConvSpec
    groups: int

    def __post_init__(self) -> None:
        if self.groups <= 0:
            raise ValueError(f"groups must be positive, got {self.groups}")
        if self.base.c_in % self.groups or self.base.c_out % self.groups:
            raise ValueError(
                f"groups={self.groups} must divide C_I={self.base.c_in} "
                f"and C_O={self.base.c_out}"
            )

    @property
    def is_depthwise(self) -> bool:
        return self.groups == self.base.c_in and self.base.c_in == self.base.c_out

    @property
    def weight_shape(self):
        b = self.base
        return (b.c_out, b.c_in // self.groups, b.h_filter, b.w_filter)

    @property
    def macs(self) -> int:
        """Grouped MACs: 1/groups of the dense layer's volume."""
        return self.base.macs // self.groups

    def per_group_spec(self) -> ConvSpec:
        """The ConvSpec of one group's independent convolution."""
        b = self.base
        return dataclasses.replace(
            b,
            c_in=b.c_in // self.groups,
            c_out=b.c_out // self.groups,
            name=f"{b.name or 'conv'}.group",
        )

    def split_operands(self, ifmap: np.ndarray, weights: np.ndarray):
        """Yield (group_ifmap, group_weights) pairs."""
        b = self.base
        if ifmap.shape != b.ifmap_shape:
            raise ValueError(f"ifmap shape {ifmap.shape} != {b.ifmap_shape}")
        if weights.shape != self.weight_shape:
            raise ValueError(f"weights shape {weights.shape} != {self.weight_shape}")
        cin_g = b.c_in // self.groups
        cout_g = b.c_out // self.groups
        for g in range(self.groups):
            yield (
                ifmap[:, g * cin_g : (g + 1) * cin_g],
                weights[g * cout_g : (g + 1) * cout_g],
            )


def grouped_conv2d(
    ifmap: np.ndarray, weights: np.ndarray, spec: GroupedConvSpec
) -> np.ndarray:
    """Reference grouped convolution: concatenated per-group direct convs."""
    group_spec = spec.per_group_spec()
    outputs: List[np.ndarray] = []
    for g_ifmap, g_weights in spec.split_operands(ifmap, weights):
        outputs.append(direct_conv2d(g_ifmap, g_weights, group_spec))
    return np.concatenate(outputs, axis=1)


def depthwise_spec(
    n: int, channels: int, hw: int, f: int = 3, stride: int = 1, name: str = ""
) -> GroupedConvSpec:
    """Convenience constructor for a depthwise layer (groups == channels)."""
    base = ConvSpec(
        n=n, c_in=channels, h_in=hw, w_in=hw, c_out=channels,
        h_filter=f, w_filter=f, stride=stride, padding=f // 2,
        name=name or f"dw{channels}x{hw}",
    )
    return GroupedConvSpec(base=base, groups=channels)
