"""Tiling: SRAM-capacity blocking and the multi-tile merge optimization.

Two distinct tilings live here:

1. **Capacity tiling** (:func:`plan_row_tiles`): the lowered matrix's M
   dimension (``N*H_O*W_O``) is split into blocks so one block's IFMap slice
   plus the in-flight OFMap fits on chip.  Both hardware backends use it.

2. **Multi-tile merge** (Sec. IV-B, :class:`MultiTileGroup` /
   :func:`plan_multi_tile`): when ``C_I`` is smaller than the systolic array
   height, several decomposed filters are merged into one GEMM so the merged
   K dimension ``group_size * C_I`` fills the array.  The paper infers the
   TPU's policy as ``tiles = MIN(array/C_I, W_F)``; :func:`tpu_multi_tile_policy`
   implements it, and the cost of the merge — input duplication in the vector
   memory — is accounted by :meth:`MultiTileGroup.duplication_factor`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Sequence, Tuple

import numpy as np

from .channel_first import DecomposedFilter, decompose, decomposed_tile_view
from .conv_spec import ConvSpec
from .reference import pad_ifmap

__all__ = [
    "RowTile",
    "plan_row_tiles",
    "MultiTileGroup",
    "tpu_multi_tile_policy",
    "plan_multi_tile",
    "merged_gemm_operands",
    "workspace_elements",
    "array_k_utilization",
]


# --------------------------------------------------------------- capacity tiling
@dataclasses.dataclass(frozen=True)
class RowTile:
    """A contiguous block of lowered-matrix rows (output pixels)."""

    row_start: int
    row_end: int  # exclusive

    @property
    def rows(self) -> int:
        return self.row_end - self.row_start

    def __post_init__(self) -> None:
        if not (0 <= self.row_start < self.row_end):
            raise ValueError(f"bad row tile [{self.row_start}, {self.row_end})")


def plan_row_tiles(total_rows: int, max_rows_per_tile: int) -> List[RowTile]:
    """Split ``total_rows`` into blocks of at most ``max_rows_per_tile``."""
    if total_rows <= 0:
        raise ValueError(f"total_rows must be positive, got {total_rows}")
    if max_rows_per_tile <= 0:
        raise ValueError(f"max_rows_per_tile must be positive, got {max_rows_per_tile}")
    tiles = []
    for start in range(0, total_rows, max_rows_per_tile):
        tiles.append(RowTile(start, min(start + max_rows_per_tile, total_rows)))
    return tiles


# --------------------------------------------------------------- multi-tile merge
@dataclasses.dataclass(frozen=True)
class MultiTileGroup:
    """A group of decomposed filters executed as one merged GEMM.

    Merging ``g`` tiles turns ``g`` GEMMs of ``[M, C_I] x [C_I, C_O]`` into
    one ``[M, g*C_I] x [g*C_I, C_O]`` GEMM — correct because GEMM over a
    concatenated K axis equals the sum of the per-slice GEMMs (associativity,
    Sec. IV-B).  The price: each group stores its ``g`` (largely overlapping)
    IFMap tile slices separately on chip.
    """

    tiles: Tuple[DecomposedFilter, ...]
    spec: ConvSpec

    def __post_init__(self) -> None:
        if not self.tiles:
            raise ValueError("multi-tile group must contain at least one tile")

    @property
    def group_size(self) -> int:
        return len(self.tiles)

    @property
    def merged_k(self) -> int:
        """K dimension of the merged GEMM: group_size * C_I."""
        return self.group_size * self.spec.c_in

    def input_elements(self) -> int:
        """On-chip IFMap elements this group occupies (with duplication)."""
        return self.group_size * self.spec.lowered_rows() * self.spec.c_in

    def duplication_factor(self) -> float:
        """On-chip elements stored / unique elements needed.

        For stride >= filter spacing the tiles are disjoint (factor 1);
        for the common stride-1 3x3 case a group of g tiles re-stores data
        roughly g times (Fig 11's "2x").
        """
        unique = self._unique_input_elements()
        return self.input_elements() / unique if unique else float(self.group_size)

    def _unique_input_elements(self) -> int:
        """Count distinct (padded) IFMap coordinates the group touches."""
        coords = set()
        h_span = (self.spec.h_out - 1) * self.spec.stride + 1
        w_span = (self.spec.w_out - 1) * self.spec.stride + 1
        for tile in self.tiles:
            y0 = tile.r * self.spec.dilation
            x0 = tile.s * self.spec.dilation
            for y in range(y0, y0 + h_span, self.spec.stride):
                for x in range(x0, x0 + w_span, self.spec.stride):
                    coords.add((y, x))
        return len(coords) * self.spec.n * self.spec.c_in


def tpu_multi_tile_policy(spec: ConvSpec, array_rows: int = 128) -> int:
    """The multi-tile count the paper infers the TPU uses (Fig 14b).

    ``tiles = MIN(array_rows / C_I, W_F)``: enough duplication to fill the
    array's K dimension, but never more groups than one filter row provides.
    Always at least 1.
    """
    if array_rows <= 0:
        raise ValueError(f"array_rows must be positive, got {array_rows}")
    by_array = max(1, array_rows // spec.c_in)
    return max(1, min(by_array, spec.w_filter))


def plan_multi_tile(
    spec: ConvSpec, group_size: int, row_aligned: bool = True
) -> List[MultiTileGroup]:
    """Partition the decomposed filters into groups of ``group_size``.

    With ``row_aligned=True`` (the TPU behaviour this reproduction infers),
    groups never span filter rows: merging within a row keeps the merged
    tile's vector-memory fill a set of simple W-shifted streams, and it is
    what makes the observed policy's ``W_F`` bound binding — merging more
    than ``W_F`` tiles would have to cross rows, so the hardware stops there
    (Fig 14).  ``row_aligned=False`` gives plain consecutive grouping.
    """
    if group_size <= 0:
        raise ValueError(f"group_size must be positive, got {group_size}")
    tiles = decompose(spec)
    groups = []
    if row_aligned:
        for r in range(spec.h_filter):
            row_tiles = tiles[r * spec.w_filter : (r + 1) * spec.w_filter]
            for start in range(0, len(row_tiles), group_size):
                groups.append(
                    MultiTileGroup(tiles=tuple(row_tiles[start : start + group_size]), spec=spec)
                )
    else:
        for start in range(0, len(tiles), group_size):
            groups.append(
                MultiTileGroup(tiles=tuple(tiles[start : start + group_size]), spec=spec)
            )
    return groups


def merged_gemm_operands(
    ifmap: np.ndarray, weights: np.ndarray, spec: ConvSpec, group: MultiTileGroup
) -> Tuple[np.ndarray, np.ndarray]:
    """Materialise the merged GEMM operands for one multi-tile group.

    Returns ``(A, B)`` with ``A`` of shape ``(M, g*C_I)`` and ``B`` of shape
    ``(g*C_I, C_O)`` such that ``A @ B`` is the group's OFMap contribution.
    Used by the functional simulators and the correctness tests; hardware
    would form A incrementally in the vector memories.
    """
    if ifmap.shape != spec.ifmap_shape:
        raise ValueError(f"ifmap shape {ifmap.shape} != spec {spec.ifmap_shape}")
    if weights.shape != spec.filter_shape:
        raise ValueError(f"weights shape {weights.shape} != spec {spec.filter_shape}")
    padded = pad_ifmap(ifmap, spec.padding).astype(np.float64)
    m = spec.lowered_rows()
    a_parts = []
    b_parts = []
    for tile in group.tiles:
        view = decomposed_tile_view(padded, spec, tile)
        a_parts.append(view.transpose(0, 2, 3, 1).reshape(m, spec.c_in))
        b_parts.append(weights[:, :, tile.r, tile.s].T.astype(np.float64))
    return np.concatenate(a_parts, axis=1), np.concatenate(b_parts, axis=0)


def workspace_elements(spec: ConvSpec, group_size: int) -> int:
    """Total on-chip IFMap workspace (elements) across all groups for a given
    multi-tile parameter — the linearly-growing quantity in Fig 14a."""
    groups = plan_multi_tile(spec, group_size)
    return max(g.input_elements() for g in groups)


def array_k_utilization(spec: ConvSpec, group_size: int, array_rows: int = 128) -> float:
    """Fraction of the systolic array's row (K) dimension a merged group
    fills: ``min(1, g*C_I / array_rows)`` — the quantity multi-tile exists to
    push toward 1."""
    if array_rows <= 0:
        raise ValueError(f"array_rows must be positive, got {array_rows}")
    merged_k = group_size * spec.c_in
    return min(1.0, merged_k / array_rows)
