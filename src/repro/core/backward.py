"""Convolution backward passes via the channel-first decomposition.

The TPU-v2/v3 are *training* chips (Sec. IV-C notes batching "is common in
training — a key focus of TPU-v2/v3"), so a credible release of this system
must run the two backward GEMMs, and both lower through the same
decomposed-1x1 machinery as the forward pass:

- **Backward-data** (``dL/dIFMap``): each decomposed filter ``(r, s)``
  contributed ``taps(r,s) @ W[:, :, r, s]^T`` to the output, so its gradient
  contribution is ``dOFMap @ W[:, :, r, s]`` scattered back onto the taps —
  a ``[M, C_O] x [C_O, C_I]`` GEMM per position followed by a strided
  scatter-add (the adjoint of the forward's strided view).
- **Backward-weights** (``dL/dW``): per position, the correlation of the
  taps with the output gradient — ``taps^T @ dOFMap``, a
  ``[C_I, M] x [M, C_O]`` GEMM per position.

Both therefore decompose into ``H_F * W_F`` GEMMs exactly like the forward
pass, which is why the channel-first hardware story covers training too.
Results are validated against finite-difference-free analytic references in
the tests (linearity makes the convolution its own derivative).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .channel_first import DecomposedFilter, decompose, decomposed_tile_view
from .conv_spec import ConvSpec
from .reference import pad_ifmap

__all__ = ["conv2d_backward_data", "conv2d_backward_weights"]


def _grad_matrix(grad_ofmap: np.ndarray, spec: ConvSpec) -> np.ndarray:
    """(N, C_O, H_O, W_O) -> (M, C_O) in lowered-row order."""
    if grad_ofmap.shape != spec.ofmap_shape:
        raise ValueError(f"grad shape {grad_ofmap.shape} != {spec.ofmap_shape}")
    return (
        grad_ofmap.astype(np.float64)
        .transpose(0, 2, 3, 1)
        .reshape(spec.lowered_rows(), spec.c_out)
    )


def conv2d_backward_data(
    grad_ofmap: np.ndarray,
    weights: np.ndarray,
    spec: ConvSpec,
    order: Optional[Sequence[DecomposedFilter]] = None,
) -> np.ndarray:
    """Gradient w.r.t. the IFMap, via per-position GEMM + strided scatter.

    Returns an array of ``spec.ifmap_shape`` (float64).
    """
    if weights.shape != spec.filter_shape:
        raise ValueError(f"weights shape {weights.shape} != {spec.filter_shape}")
    tiles = list(order) if order is not None else decompose(spec)
    grad_rows = _grad_matrix(grad_ofmap, spec)

    h_pad = spec.h_in + 2 * spec.padding
    w_pad = spec.w_in + 2 * spec.padding
    grad_padded = np.zeros((spec.n, spec.c_in, h_pad, w_pad))
    h_span = (spec.h_out - 1) * spec.stride + 1
    w_span = (spec.w_out - 1) * spec.stride + 1
    for tile in tiles:
        # [M, C_O] x [C_O, C_I] -> per-tap input gradients for this position.
        w_slice = weights[:, :, tile.r, tile.s].astype(np.float64)  # (C_O, C_I)
        per_tap = grad_rows @ w_slice  # (M, C_I)
        taps = per_tap.reshape(spec.n, spec.h_out, spec.w_out, spec.c_in).transpose(0, 3, 1, 2)
        y0 = tile.r * spec.dilation
        x0 = tile.s * spec.dilation
        grad_padded[
            :, :, y0 : y0 + h_span : spec.stride, x0 : x0 + w_span : spec.stride
        ] += taps
    if spec.padding:
        return grad_padded[:, :, spec.padding : -spec.padding, spec.padding : -spec.padding]
    return grad_padded


def conv2d_backward_weights(
    ifmap: np.ndarray,
    grad_ofmap: np.ndarray,
    spec: ConvSpec,
    order: Optional[Sequence[DecomposedFilter]] = None,
) -> np.ndarray:
    """Gradient w.r.t. the weights: per-position ``taps^T @ dOFMap``.

    Returns an array of ``spec.filter_shape`` (float64).
    """
    if ifmap.shape != spec.ifmap_shape:
        raise ValueError(f"ifmap shape {ifmap.shape} != {spec.ifmap_shape}")
    tiles = list(order) if order is not None else decompose(spec)
    grad_rows = _grad_matrix(grad_ofmap, spec)
    padded = pad_ifmap(ifmap, spec.padding).astype(np.float64)
    grad_weights = np.zeros(spec.filter_shape)
    m = spec.lowered_rows()
    for tile in tiles:
        view = decomposed_tile_view(padded, spec, tile)
        taps = view.transpose(0, 2, 3, 1).reshape(m, spec.c_in)  # (M, C_I)
        # (C_I, M) x (M, C_O) -> (C_I, C_O); store transposed at (r, s).
        grad_weights[:, :, tile.r, tile.s] = (taps.T @ grad_rows).T
    return grad_weights
