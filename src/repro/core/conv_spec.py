"""Convolution and GEMM shape descriptors.

Every component in this library — the pure-algorithm lowering paths, the
systolic-array simulator and the tensor-core timing model — consumes
convolution problems through :class:`ConvSpec`.  The class owns all of the
output-shape geometry, FLOP accounting and lowered-matrix size math so the
numbers used by Table I, the TFLOPS reports and the simulators are computed
in exactly one place.

Terminology follows the paper:

- IFMap: input feature map, shape ``(N, C_I, H_I, W_I)`` in NCHW terms.
- Filter: ``(C_O, C_I, H_F, W_F)``.
- OFMap: output feature map, ``(N, C_O, H_O, W_O)``.
- Lowered IFMap: the ``(N * H_O * W_O, H_F * W_F * C_I)`` matrix produced by
  im2col (explicitly, or conceptually by the implicit algorithms).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterator, Tuple

from ..errors import ConfigError

__all__ = ["ConvSpec", "GemmShape", "output_extent"]


def output_extent(in_extent: int, filt: int, stride: int, pad: int, dilation: int = 1) -> int:
    """Return the output spatial extent of a convolution along one axis.

    Uses the standard floor convention::

        out = floor((in + 2*pad - dilation*(filt-1) - 1) / stride) + 1

    Raises :class:`~repro.errors.ConfigError` (a ``ValueError``) if the
    result would be non-positive, which means the filter does not fit
    inside the (padded) input even once.
    """
    if in_extent <= 0 or filt <= 0:
        raise ConfigError(
            f"extents must be positive, got in={in_extent}, filter={filt}"
        )
    if stride <= 0:
        raise ConfigError("stride must be positive", field="stride", value=stride)
    if dilation <= 0:
        raise ConfigError(
            "dilation must be positive", field="dilation", value=dilation
        )
    if pad < 0:
        raise ConfigError("padding must be non-negative", field="padding", value=pad)
    effective = dilation * (filt - 1) + 1
    out = (in_extent + 2 * pad - effective) // stride + 1
    if out <= 0:
        raise ConfigError(
            f"filter (effective {effective}) does not fit input {in_extent} with pad {pad}"
        )
    return out


@dataclasses.dataclass(frozen=True)
class GemmShape:
    """A plain ``C[M,N] += A[M,K] @ B[K,N]`` problem shape.

    The systolic and tensor-core engines consume conv work as a sequence of
    GEMMs of this shape; the shape also carries the FLOP/byte accounting.
    """

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        for field in ("m", "n", "k"):
            value = getattr(self, field)
            if value <= 0:
                raise ConfigError(
                    "GEMM dims must be positive", field=field, value=value
                )

    @property
    def flops(self) -> int:
        """Multiply-accumulate counted as 2 FLOPs, the paper's convention."""
        return 2 * self.m * self.n * self.k

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k

    def bytes_moved(self, elem_bytes: int = 2) -> int:
        """Minimum off-chip traffic assuming each operand is touched once."""
        return elem_bytes * (self.m * self.k + self.k * self.n + self.m * self.n)

    def arithmetic_intensity(self, elem_bytes: int = 2) -> float:
        """FLOPs per byte of compulsory traffic (roofline x-coordinate)."""
        return self.flops / self.bytes_moved(elem_bytes)


@dataclasses.dataclass(frozen=True)
class ConvSpec:
    """A complete 2-D convolution problem.

    Parameters mirror the paper's notation.  ``stride``/``padding``/
    ``dilation`` apply to both spatial axes (the paper only evaluates square
    cases, but the geometry here is exact for rectangular inputs/filters).
    """

    n: int  # batch
    c_in: int  # C_I
    h_in: int  # H_I
    w_in: int  # W_I
    c_out: int  # C_O
    h_filter: int  # H_F
    w_filter: int  # W_F
    stride: int = 1
    padding: int = 0
    dilation: int = 1
    name: str = ""

    def __post_init__(self) -> None:
        for field in ("n", "c_in", "h_in", "w_in", "c_out", "h_filter", "w_filter"):
            value = getattr(self, field)
            if value <= 0:
                raise ConfigError("must be positive", field=field, value=value)
        # Raises if the filter does not fit; validates stride/pad/dilation too.
        # Non-fit errors are re-raised naming the offending output axis, its
        # (non-positive) derived extent, and the full derived OFMap shape.
        for axis_field, in_extent, filt in (
            ("h_out", self.h_in, self.h_filter),
            ("w_out", self.w_in, self.w_filter),
        ):
            try:
                output_extent(
                    in_extent, filt, self.stride, self.padding, self.dilation
                )
            except ConfigError as err:
                if err.field is not None:
                    raise  # stride/padding/dilation already carry their field
                effective = self.dilation * (filt - 1) + 1
                derived = (
                    in_extent + 2 * self.padding - effective
                ) // self.stride + 1
                shape = (self.n, self.c_out) + tuple(
                    (ext + 2 * self.padding - (self.dilation * (f - 1) + 1))
                    // self.stride + 1
                    for ext, f in (
                        (self.h_in, self.h_filter), (self.w_in, self.w_filter)
                    )
                )
                raise ConfigError(
                    f"non-positive output extent: effective filter {effective} "
                    f"does not fit input {in_extent} with pad {self.padding} "
                    f"(derived OFMap shape {shape})",
                    field=axis_field,
                    value=derived,
                ) from None

    # ---------------------------------------------------------------- shapes
    @property
    def h_out(self) -> int:
        return output_extent(self.h_in, self.h_filter, self.stride, self.padding, self.dilation)

    @property
    def w_out(self) -> int:
        return output_extent(self.w_in, self.w_filter, self.stride, self.padding, self.dilation)

    @property
    def ifmap_shape(self) -> Tuple[int, int, int, int]:
        """NCHW shape of the input."""
        return (self.n, self.c_in, self.h_in, self.w_in)

    @property
    def filter_shape(self) -> Tuple[int, int, int, int]:
        """(C_O, C_I, H_F, W_F) shape of the weights."""
        return (self.c_out, self.c_in, self.h_filter, self.w_filter)

    @property
    def ofmap_shape(self) -> Tuple[int, int, int, int]:
        """NCHW shape of the output."""
        return (self.n, self.c_out, self.h_out, self.w_out)

    @property
    def positions(self) -> int:
        """Number of decomposed 1x1 filters, i.e. H_F * W_F."""
        return self.h_filter * self.w_filter

    # ------------------------------------------------------------- accounting
    @property
    def macs(self) -> int:
        return self.n * self.c_out * self.h_out * self.w_out * self.c_in * self.positions

    @property
    def flops(self) -> int:
        return 2 * self.macs

    def ifmap_elements(self) -> int:
        return self.n * self.c_in * self.h_in * self.w_in

    def filter_elements(self) -> int:
        return self.c_out * self.c_in * self.positions

    def ofmap_elements(self) -> int:
        return self.n * self.c_out * self.h_out * self.w_out

    def ifmap_bytes(self, elem_bytes: int = 2) -> int:
        return elem_bytes * self.ifmap_elements()

    def filter_bytes(self, elem_bytes: int = 2) -> int:
        return elem_bytes * self.filter_elements()

    def ofmap_bytes(self, elem_bytes: int = 2) -> int:
        return elem_bytes * self.ofmap_elements()

    def lowered_rows(self) -> int:
        """M dimension of the lowered-IFMap matrix: N * H_O * W_O."""
        return self.n * self.h_out * self.w_out

    def lowered_cols(self) -> int:
        """K dimension of the lowered-IFMap matrix: H_F * W_F * C_I."""
        return self.positions * self.c_in

    def lowered_elements(self) -> int:
        return self.lowered_rows() * self.lowered_cols()

    def lowered_bytes(self, elem_bytes: int = 2) -> int:
        """Size of the explicit lowered matrix — Table I's second row."""
        return elem_bytes * self.lowered_elements()

    def lowering_expansion(self) -> float:
        """How much larger the lowered IFMap is than the IFMap itself.

        Equals ``H_F*W_F`` for stride 1 without padding edge effects; the paper
        reports 1.5x-10x across real networks.
        """
        return self.lowered_elements() / self.ifmap_elements()

    def gemm_shape(self) -> GemmShape:
        """The single equivalent GEMM: [N*H_O*W_O, HWC] x [HWC, C_O]."""
        return GemmShape(m=self.lowered_rows(), n=self.c_out, k=self.lowered_cols())

    def decomposed_gemm_shape(self) -> GemmShape:
        """One decomposed 1x1-filter GEMM tile (Sec. III-B).

        Each of the ``H_F*W_F`` decomposed filters contributes a
        ``[N*H_O*W_O, C_I] x [C_I, C_O]`` GEMM whose results accumulate.
        """
        return GemmShape(m=self.lowered_rows(), n=self.c_out, k=self.c_in)

    # ------------------------------------------------------------- utilities
    def is_pointwise(self) -> bool:
        return self.h_filter == 1 and self.w_filter == 1

    def with_batch(self, n: int) -> "ConvSpec":
        return dataclasses.replace(self, n=n)

    def with_stride(self, stride: int) -> "ConvSpec":
        return dataclasses.replace(self, stride=stride)

    def filter_positions(self) -> Iterator[Tuple[int, int]]:
        """Iterate decomposed-filter positions ``(r, s)`` in row-major order."""
        for r in range(self.h_filter):
            for s in range(self.w_filter):
                yield (r, s)

    def receptive_origin(self, oy: int, ox: int) -> Tuple[int, int]:
        """Top-left IFMap coordinate (may be negative under padding) of the
        receptive field for output pixel ``(oy, ox)``."""
        return (oy * self.stride - self.padding, ox * self.stride - self.padding)

    def tap_coordinate(self, oy: int, ox: int, r: int, s: int) -> Tuple[int, int]:
        """IFMap coordinate read by decomposed filter ``(r, s)`` for output
        pixel ``(oy, ox)``; may fall outside the IFMap under padding."""
        y0, x0 = self.receptive_origin(oy, ox)
        return (y0 + r * self.dilation, x0 + s * self.dilation)

    def describe(self) -> str:
        """Compact human-readable identifier, e.g. for experiment x-axis labels."""
        tag = self.name or "conv"
        return (
            f"{tag}[N{self.n} {self.c_in}x{self.h_in}x{self.w_in} -> "
            f"{self.c_out}, f{self.h_filter}x{self.w_filter} s{self.stride} "
            f"p{self.padding} d{self.dilation}]"
        )


def _check_module_sanity() -> None:
    # Cheap import-time self-check of the geometry conventions (kept trivial
    # so importing the package stays fast).
    assert output_extent(5, 3, 1, 0) == 3
    assert output_extent(5, 3, 2, 0) == 2
    assert output_extent(224, 7, 2, 3) == 112
    assert math.isclose(GemmShape(2, 2, 2).arithmetic_intensity(2), 16 / 24)


_check_module_sanity()
