"""Tensor memory-layout transforms.

The paper's algorithm is inseparable from layout: the channel-first schedule
wants the IFMap stored HWC in on-chip SRAM and HWC(N) in DRAM, while classical
frameworks store CHW.  This module provides the layout tags and the (pure
numpy, zero-surprise) permutations between them, plus flattened "DRAM image"
views used by the access-pattern analysis in :mod:`repro.memory.access_pattern`.

All functions take and return arrays whose *logical* indexing is NCHW and only
change the physical ordering, so round-trips are exact.
"""

from __future__ import annotations

import enum
from typing import Tuple

import numpy as np

__all__ = [
    "Layout",
    "nchw_to",
    "to_nchw",
    "flatten_index",
    "dram_linear_address",
]


class Layout(enum.Enum):
    """Physical orderings used in the paper.

    - ``NCHW``: framework-default, channel-major per image ("CHW" in the paper
      when batch is implicit).
    - ``NHWC``: channel-first / HWC layout the paper proposes for DRAM+SRAM.
    - ``HWCN``: the batched vector-memory layout of Sec. IV-A, where the batch
      dimension fills the SRAM word.
    - ``CHWN``: channel-major with batch innermost (used for comparison).
    """

    NCHW = "NCHW"
    NHWC = "NHWC"
    HWCN = "HWCN"
    CHWN = "CHWN"

    @property
    def axes_from_nchw(self) -> Tuple[int, int, int, int]:
        """Permutation applied to an NCHW array to reach this layout."""
        return {
            Layout.NCHW: (0, 1, 2, 3),
            Layout.NHWC: (0, 2, 3, 1),
            Layout.HWCN: (2, 3, 1, 0),
            Layout.CHWN: (1, 2, 3, 0),
        }[self]

    @property
    def axes_to_nchw(self) -> Tuple[int, int, int, int]:
        """Permutation applied to an array in this layout to recover NCHW."""
        forward = self.axes_from_nchw
        inverse = [0, 0, 0, 0]
        for position, axis in enumerate(forward):
            inverse[axis] = position
        return tuple(inverse)


def nchw_to(tensor: np.ndarray, layout: Layout) -> np.ndarray:
    """Physically reorder an NCHW tensor into ``layout`` (contiguous copy).

    A contiguous copy (rather than a transposed view) is deliberate: the
    memory models inspect the *physical* order via flat indices.
    """
    if tensor.ndim != 4:
        raise ValueError(f"expected a 4-D NCHW tensor, got shape {tensor.shape}")
    return np.ascontiguousarray(np.transpose(tensor, layout.axes_from_nchw))


def to_nchw(tensor: np.ndarray, layout: Layout) -> np.ndarray:
    """Inverse of :func:`nchw_to`."""
    if tensor.ndim != 4:
        raise ValueError(f"expected a 4-D tensor, got shape {tensor.shape}")
    return np.ascontiguousarray(np.transpose(tensor, layout.axes_to_nchw))


def flatten_index(
    layout: Layout,
    shape_nchw: Tuple[int, int, int, int],
    n: int,
    c: int,
    h: int,
    w: int,
) -> int:
    """Flat element offset of logical element ``(n, c, h, w)`` in ``layout``.

    This is the core primitive of the DRAM access-pattern study (Fig 7): the
    same logical read sequence maps to very different physical address
    sequences under CHW vs HWC.
    """
    dim_n, dim_c, dim_h, dim_w = shape_nchw
    if not (0 <= n < dim_n and 0 <= c < dim_c and 0 <= h < dim_h and 0 <= w < dim_w):
        raise IndexError(f"({n},{c},{h},{w}) out of bounds for {shape_nchw}")
    logical = {"N": (n, dim_n), "C": (c, dim_c), "H": (h, dim_h), "W": (w, dim_w)}
    offset = 0
    for axis_name in layout.value:
        index, extent = logical[axis_name]
        offset = offset * extent + index
    return offset


def dram_linear_address(
    layout: Layout,
    shape_nchw: Tuple[int, int, int, int],
    n: int,
    c: int,
    h: int,
    w: int,
    elem_bytes: int = 2,
    base: int = 0,
) -> int:
    """Byte address of a logical element in a DRAM image of the tensor."""
    return base + elem_bytes * flatten_index(layout, shape_nchw, n, c, h, w)
