"""Inter-tile reuse analysis and decomposed-filter reordering (Sec. V).

Consecutive decomposed filters whose IFMap working sets overlap let a GPU
thread block keep most of its shared-memory tile across tiles, shrinking the
fill latency.  The paper observes that under stride > 1 the *naive* row-major
visit order has no overlap between consecutive tiles, while a reordering
that steps by the stride does — e.g. for a 3x3 filter at stride 2, visiting
``<1,1>, <1,3>, <1,2>`` makes ``<1,1> -> <1,3>`` share most of their columns
(their taps differ by exactly one stride step), and quotes 96% overlap at
a 99x99 IFMap.

This module computes exact pairwise working-set overlaps and produces a
greedy max-overlap visit order.  The GPU backend turns the overlap fraction
of each consecutive pair directly into saved shared-memory fill traffic.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from .channel_first import DecomposedFilter, decompose
from .conv_spec import ConvSpec

__all__ = [
    "tile_working_set",
    "overlap_fraction",
    "pairwise_overlap",
    "greedy_reuse_order",
    "order_reuse_fraction",
]


def tile_working_set(spec: ConvSpec, tile: DecomposedFilter) -> Set[Tuple[int, int]]:
    """Padded-IFMap spatial coordinates read by one decomposed filter.

    Channels and batch multiply every coordinate identically, so spatial
    coordinates alone determine overlap fractions.
    """
    coords = set()
    y0 = tile.r * spec.dilation
    x0 = tile.s * spec.dilation
    for oy in range(spec.h_out):
        for ox in range(spec.w_out):
            coords.add((y0 + oy * spec.stride, x0 + ox * spec.stride))
    return coords


def overlap_fraction(spec: ConvSpec, a: DecomposedFilter, b: DecomposedFilter) -> float:
    """|WS(a) ∩ WS(b)| / |WS(a)| — fraction of a's working set reusable when
    b was the previous tile (working sets are equal-sized, so symmetric).

    Computed in closed form: two decomposed filters' tap grids are the same
    lattice shifted by ``(dr*dilation, ds*dilation)``; taps coincide exactly
    where the shift is a multiple of the stride and the grids overlap.
    """
    dy = (b.r - a.r) * spec.dilation
    dx = (b.s - a.s) * spec.dilation
    total = spec.h_out * spec.w_out

    def _axis_shared(delta: int, out_extent: int) -> int:
        # Tap positions along one axis: {origin + i*stride}.  Shifted lattices
        # intersect only if delta is a multiple of stride; then the overlap is
        # out_extent - |delta|/stride grid points (clamped at 0).
        if delta % spec.stride != 0:
            return 0
        return max(0, out_extent - abs(delta) // spec.stride)

    shared = _axis_shared(dy, spec.h_out) * _axis_shared(dx, spec.w_out)
    return shared / total


def pairwise_overlap(spec: ConvSpec) -> Dict[Tuple[int, int], float]:
    """Overlap fraction for every ordered pair of decomposed-filter indices."""
    tiles = decompose(spec)
    table = {}
    for a in tiles:
        for b in tiles:
            if a.index != b.index:
                table[(a.index, b.index)] = overlap_fraction(spec, a, b)
    return table


def greedy_reuse_order(spec: ConvSpec) -> List[DecomposedFilter]:
    """Visit order maximising consecutive working-set overlap, greedily.

    Starts at tile ``<1,1>`` and repeatedly moves to the unvisited tile with
    the largest overlap with the current one (ties broken by index, keeping
    the order deterministic).  The paper leaves optimal reordering to future
    work; greedy already captures the win it reports (Fig 18b).
    """
    tiles = decompose(spec)
    if len(tiles) == 1:
        return tiles
    by_index = {t.index: t for t in tiles}
    remaining = set(by_index) - {0}
    order = [by_index[0]]
    current = 0
    while remaining:
        best = max(
            sorted(remaining),
            key=lambda idx: overlap_fraction(spec, by_index[current], by_index[idx]),
        )
        order.append(by_index[best])
        remaining.discard(best)
        current = best
    return order


def order_reuse_fraction(spec: ConvSpec, order: Sequence[DecomposedFilter]) -> float:
    """Average fraction of each tile's working set already on chip when it
    runs, given the previous tile in ``order`` (first tile scores 0).

    This is the quantity the GPU shared-memory fill model multiplies traffic
    by: a value f means consecutive fills move only (1-f) of a full tile on
    average.
    """
    if not order:
        raise ValueError("order must be non-empty")
    if len(order) == 1:
        return 0.0
    total = 0.0
    for prev, cur in zip(order, order[1:]):
        total += overlap_fraction(spec, cur, prev)
    return total / len(order)
