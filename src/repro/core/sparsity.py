"""Position-structured sparsity through the channel-first decomposition.

The paper closes by hoping its algorithm "can encourage future study for
designing sparse CNN accelerators based on the described channel-first
implicit im2col" (Sec. VIII).  This module implements the most natural such
design: **filter-position sparsity**.  Because the channel-first algorithm
executes one GEMM per decomposed filter position, a position whose weights
are entirely zero can be *skipped outright* — no gather, no GEMM pass, no
accumulation — turning structured sparsity directly into proportional work
reduction with zero hardware support beyond the scheduler.

Contrast with the explicit/channel-last world, where the lowered matrix
interleaves positions along K and a zero position saves nothing without
dedicated sparse hardware (the SparTen/Bit-Tactical line of work the paper
cites).

Provided here:

- :class:`PositionMask` — which of the ``H_F*W_F`` positions survive;
- :func:`prune_positions` — magnitude-based position pruning of a weight
  tensor (keep the top-k positions by L2 norm);
- :func:`conv2d_channel_first_sparse` — the sparse forward pass, exact
  w.r.t. the masked weights;
- :func:`sparse_schedule_speedup` helpers used by the sparsity experiment.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

import numpy as np

from .channel_first import DecomposedFilter, decompose
from .conv_spec import ConvSpec
from .reference import direct_conv2d, pad_ifmap

__all__ = [
    "PositionMask",
    "prune_positions",
    "conv2d_channel_first_sparse",
    "apply_mask_to_weights",
]


@dataclasses.dataclass(frozen=True)
class PositionMask:
    """A keep-set over the decomposed filter positions."""

    spec: ConvSpec
    kept: Tuple[int, ...]  # sorted position indices that survive

    def __post_init__(self) -> None:
        if not self.kept:
            raise ValueError("a position mask must keep at least one position")
        if sorted(set(self.kept)) != list(self.kept):
            raise ValueError("kept indices must be sorted and unique")
        if self.kept[0] < 0 or self.kept[-1] >= self.spec.positions:
            raise ValueError(
                f"kept indices out of range for {self.spec.positions} positions"
            )

    @property
    def density(self) -> float:
        return len(self.kept) / self.spec.positions

    def kept_tiles(self) -> Sequence[DecomposedFilter]:
        tiles = decompose(self.spec)
        return [tiles[i] for i in self.kept]

    def keeps(self, index: int) -> bool:
        return index in self.kept


def prune_positions(
    weights: np.ndarray, spec: ConvSpec, keep: int
) -> Tuple[np.ndarray, PositionMask]:
    """Keep the ``keep`` filter positions with the largest L2 norms.

    Returns the pruned weights (zeros at dropped positions) and the mask.
    The centre-heavy norm distribution of trained CNNs makes this the
    standard structured-pruning baseline.
    """
    if weights.shape != spec.filter_shape:
        raise ValueError(f"weights shape {weights.shape} != {spec.filter_shape}")
    if not (1 <= keep <= spec.positions):
        raise ValueError(f"keep must be in [1, {spec.positions}], got {keep}")
    norms = np.linalg.norm(
        weights.reshape(spec.c_out * spec.c_in, spec.positions).astype(np.float64), axis=0
    )
    kept = tuple(sorted(np.argsort(norms)[-keep:].tolist()))
    mask = PositionMask(spec=spec, kept=kept)
    return apply_mask_to_weights(weights, mask), mask


def apply_mask_to_weights(weights: np.ndarray, mask: PositionMask) -> np.ndarray:
    """Zero the dropped positions (returns a copy)."""
    spec = mask.spec
    if weights.shape != spec.filter_shape:
        raise ValueError(f"weights shape {weights.shape} != {spec.filter_shape}")
    pruned = weights.copy()
    for tile in decompose(spec):
        if not mask.keeps(tile.index):
            pruned[:, :, tile.r, tile.s] = 0
    return pruned


def conv2d_channel_first_sparse(
    ifmap: np.ndarray,
    weights: np.ndarray,
    spec: ConvSpec,
    mask: PositionMask,
) -> np.ndarray:
    """The sparse forward pass: only the kept positions' GEMMs run.

    Exact w.r.t. the *masked* weights: equals
    ``direct_conv2d(ifmap, apply_mask_to_weights(weights, mask), spec)``
    (a test pins this), while executing ``density`` of the dense work.
    """
    if ifmap.shape != spec.ifmap_shape:
        raise ValueError(f"ifmap shape {ifmap.shape} != {spec.ifmap_shape}")
    if weights.shape != spec.filter_shape:
        raise ValueError(f"weights shape {weights.shape} != {spec.filter_shape}")
    if mask.spec != spec:
        raise ValueError("mask was built for a different spec")
    padded = pad_ifmap(ifmap, spec.padding).astype(np.float64)
    m = spec.lowered_rows()
    accumulator = np.zeros((m, spec.c_out))
    h_span = (spec.h_out - 1) * spec.stride + 1
    w_span = (spec.w_out - 1) * spec.stride + 1
    for tile in mask.kept_tiles():
        y0 = tile.r * spec.dilation
        x0 = tile.s * spec.dilation
        view = padded[:, :, y0 : y0 + h_span : spec.stride, x0 : x0 + w_span : spec.stride]
        a_matrix = view.transpose(0, 2, 3, 1).reshape(m, spec.c_in)
        b_matrix = weights[:, :, tile.r, tile.s].T.astype(np.float64)
        accumulator += a_matrix @ b_matrix
    return np.ascontiguousarray(
        accumulator.reshape(spec.n, spec.h_out, spec.w_out, spec.c_out).transpose(0, 3, 1, 2)
    )
