"""Numerical references: direct convolution and plain GEMM.

These are the ground truth every lowering path and both simulators' functional
modes are validated against.  They are written for clarity and obvious
correctness, not speed: the direct convolution loops over filter taps and lets
numpy handle the batched channel contraction for each tap.
"""

from __future__ import annotations

import numpy as np

from .conv_spec import ConvSpec

__all__ = [
    "direct_conv2d",
    "gemm",
    "pad_ifmap",
    "random_conv_operands",
    "random_conv_weights",
]


def gemm(a: np.ndarray, b: np.ndarray, accumulate_into: np.ndarray = None) -> np.ndarray:
    """``C (+)= A @ B`` in float64 accumulation, mirroring accelerator MACs.

    Accelerators accumulate in wider precision than their inputs (FP16 inputs,
    FP32 accumulators on both TPU and tensor cores); accumulating in float64
    here keeps the reference strictly more precise than any modelled engine.
    """
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(f"gemm expects 2-D operands, got {a.shape} and {b.shape}")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dims disagree: {a.shape} @ {b.shape}")
    product = a.astype(np.float64) @ b.astype(np.float64)
    if accumulate_into is None:
        return product
    if accumulate_into.shape != product.shape:
        raise ValueError(
            f"accumulator shape {accumulate_into.shape} != product shape {product.shape}"
        )
    accumulate_into += product
    return accumulate_into


def pad_ifmap(ifmap: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two spatial axes of an NCHW tensor."""
    if padding == 0:
        return ifmap
    if padding < 0:
        raise ValueError(f"padding must be non-negative, got {padding}")
    return np.pad(ifmap, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def direct_conv2d(ifmap: np.ndarray, weights: np.ndarray, spec: ConvSpec) -> np.ndarray:
    """Direct 2-D convolution (cross-correlation, the DNN convention).

    ``ifmap`` is NCHW, ``weights`` is (C_O, C_I, H_F, W_F); the result is the
    NCHW OFMap.  Implemented as a sum over the ``H_F * W_F`` filter taps: each
    tap contributes a strided-slice x weight contraction.  This tap-by-tap
    structure is *exactly* the decomposed-1x1-CONV view that underpins the
    channel-first algorithm (Sec. III-B), so the reference doubles as an
    executable statement of the paper's correctness argument.
    """
    if ifmap.shape != spec.ifmap_shape:
        raise ValueError(f"ifmap shape {ifmap.shape} != spec {spec.ifmap_shape}")
    if weights.shape != spec.filter_shape:
        raise ValueError(f"weights shape {weights.shape} != spec {spec.filter_shape}")

    padded = pad_ifmap(ifmap, spec.padding).astype(np.float64)
    out = np.zeros(spec.ofmap_shape, dtype=np.float64)
    h_span = (spec.h_out - 1) * spec.stride + 1
    w_span = (spec.w_out - 1) * spec.stride + 1
    for r, s in spec.filter_positions():
        y0 = r * spec.dilation
        x0 = s * spec.dilation
        # (N, C_I, H_O, W_O) slab of the taps this decomposed filter reads.
        taps = padded[:, :, y0 : y0 + h_span : spec.stride, x0 : x0 + w_span : spec.stride]
        # Contract channels against the (C_O, C_I) slice of the weights.
        out += np.einsum("nchw,oc->nohw", taps, weights[:, :, r, s].astype(np.float64))
    return out


def random_conv_operands(spec: ConvSpec, seed: int = 0, dtype=np.float32):
    """Deterministic random (ifmap, weights) for tests and examples.

    Values are small integers cast to ``dtype`` so FP16 paths stay exact and
    comparisons can demand bit equality rather than tolerances.
    """
    rng = np.random.default_rng(seed)
    ifmap = rng.integers(-4, 5, size=spec.ifmap_shape).astype(dtype)
    weights = rng.integers(-4, 5, size=spec.filter_shape).astype(dtype)
    return ifmap, weights


def random_conv_weights(spec: ConvSpec, seed: int = 0, dtype=np.float32) -> np.ndarray:
    """Exactly ``random_conv_operands(spec, seed)[1]``, skipping the IFMap.

    The IFMap's integer draw still happens (the generator's stream position
    determines the weight values), but the large float conversion/copy is
    avoided — used by weight-only consumers like the sparsity study.
    """
    rng = np.random.default_rng(seed)
    rng.integers(-4, 5, size=spec.ifmap_shape)  # consume the IFMap draw
    return rng.integers(-4, 5, size=spec.filter_shape).astype(dtype)
