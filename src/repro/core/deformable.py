"""Deformable convolution (Dai et al., the paper's reference [23]).

The paper argues the channel-last/crossbar design "incurs significant
performance overhead for common convolution variants such as strided and
deformable convolution" — deformable conv replaces each filter tap's fixed
offset with a learned fractional offset per output position, so the taps are
*data-dependent gathers* that no offline bank-conflict-free layout can serve.

The channel-first decomposition extends naturally: the computation is still
``H_F*W_F`` accumulating 1x1 convolutions, only each decomposed tile's taps
are gathered (with bilinear interpolation) instead of strided-viewed.  This
module provides:

- :func:`deformable_conv2d` — functional reference (zero-padded sampling,
  bilinear interpolation), validated against plain convolution when all
  offsets are zero;
- :func:`deformable_tile_gather` — the per-decomposed-filter gathered tile
  (the implicit lowered tile of the variant), mirroring
  :func:`repro.core.channel_first.decomposed_tile_view`;
- :func:`gather_traffic_elements` — the tap count the GPU/TPU fill models
  price (4 bilinear reads per tap).

Offsets use the standard layout: shape ``(N, 2 * H_F * W_F, H_O, W_O)``,
ordered ``(dy, dx)`` per position, position-major.
"""

from __future__ import annotations

import numpy as np

from .channel_first import DecomposedFilter, decompose
from .conv_spec import ConvSpec
from .reference import pad_ifmap

__all__ = [
    "zero_offsets",
    "deformable_tile_gather",
    "deformable_conv2d",
    "gather_traffic_elements",
]


def zero_offsets(spec: ConvSpec) -> np.ndarray:
    """The offset tensor that reduces deformable conv to plain conv."""
    return np.zeros((spec.n, 2 * spec.positions, spec.h_out, spec.w_out))


def _bilinear_sample(padded: np.ndarray, y: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Sample ``padded`` (N, C, H, W) at fractional (y, x) per (n, oy, ox).

    ``y``/``x`` have shape (N, H_O, W_O); out-of-range samples read zeros
    (consistent with zero padding).  Returns (N, C, H_O, W_O).
    """
    n, c, h, w = padded.shape
    y0 = np.floor(y).astype(np.int64)
    x0 = np.floor(x).astype(np.int64)
    wy = y - y0
    wx = x - x0
    result = np.zeros((n, c) + y.shape[1:], dtype=np.float64)
    batch_index = np.arange(n)[:, None, None]
    for dy, dx, weight in (
        (0, 0, (1 - wy) * (1 - wx)),
        (0, 1, (1 - wy) * wx),
        (1, 0, wy * (1 - wx)),
        (1, 1, wy * wx),
    ):
        yy = y0 + dy
        xx = x0 + dx
        valid = (yy >= 0) & (yy < h) & (xx >= 0) & (xx < w)
        yc = np.clip(yy, 0, h - 1)
        xc = np.clip(xx, 0, w - 1)
        sampled = padded[batch_index, :, yc, xc]  # (N, H_O, W_O, C)
        sampled = np.where(valid[..., None], sampled, 0.0)
        result += (weight[..., None] * sampled).transpose(0, 3, 1, 2)
    return result


def deformable_tile_gather(
    padded_ifmap: np.ndarray,
    spec: ConvSpec,
    tile: DecomposedFilter,
    offsets: np.ndarray,
) -> np.ndarray:
    """Gathered (N, C_I, H_O, W_O) taps of one decomposed filter.

    The deformable analogue of the forward strided view: base coordinate
    plus this position's learned fractional offset, bilinearly sampled.
    """
    expected = (spec.n, 2 * spec.positions, spec.h_out, spec.w_out)
    if offsets.shape != expected:
        raise ValueError(f"offsets shape {offsets.shape} != {expected}")
    oy = np.arange(spec.h_out)[None, :, None]
    ox = np.arange(spec.w_out)[None, None, :]
    base_y = oy * spec.stride + tile.r * spec.dilation
    base_x = ox * spec.stride + tile.s * spec.dilation
    dy = offsets[:, 2 * tile.index]
    dx = offsets[:, 2 * tile.index + 1]
    y = base_y + dy
    x = base_x + dx
    return _bilinear_sample(padded_ifmap.astype(np.float64), y, x)


def deformable_conv2d(
    ifmap: np.ndarray,
    weights: np.ndarray,
    offsets: np.ndarray,
    spec: ConvSpec,
) -> np.ndarray:
    """Deformable convolution via the channel-first decomposition.

    Identical accumulation structure to
    :func:`repro.core.channel_first.conv2d_channel_first`; only the tile
    gather differs.  With :func:`zero_offsets` the result is bit-equal to
    plain convolution (a test pins this).
    """
    if ifmap.shape != spec.ifmap_shape:
        raise ValueError(f"ifmap shape {ifmap.shape} != {spec.ifmap_shape}")
    if weights.shape != spec.filter_shape:
        raise ValueError(f"weights shape {weights.shape} != {spec.filter_shape}")
    padded = pad_ifmap(ifmap, spec.padding)
    m = spec.lowered_rows()
    accumulator = np.zeros((m, spec.c_out))
    for tile in decompose(spec):
        gathered = deformable_tile_gather(padded, spec, tile, offsets)
        a_matrix = gathered.transpose(0, 2, 3, 1).reshape(m, spec.c_in)
        b_matrix = weights[:, :, tile.r, tile.s].T.astype(np.float64)
        accumulator += a_matrix @ b_matrix
    return np.ascontiguousarray(
        accumulator.reshape(spec.n, spec.h_out, spec.w_out, spec.c_out).transpose(0, 3, 1, 2)
    )


def gather_traffic_elements(spec: ConvSpec) -> int:
    """IFMap elements a deformable fill touches: 4 bilinear corners per tap.

    This is what makes deformable conv hostile to the channel-last design —
    the 4x gather has no static structure — while the channel-first path
    prices it as just another (4x heavier) per-tap gather.
    """
    return 4 * spec.lowered_rows() * spec.c_in * spec.positions
