"""Core algorithms: convolution geometry, lowering, and the channel-first
implicit im2col contribution of the paper (Sec. III), hardware-independent."""

from .conv_spec import ConvSpec, GemmShape, output_extent
from .layouts import Layout, nchw_to, to_nchw
from .reference import direct_conv2d, gemm, random_conv_operands
from .lowering import (
    ColumnOrder,
    im2col,
    col2im,
    flatten_filters,
    unflatten_filters,
    column_permutation,
    ofmap_from_gemm,
    ifmap_mb,
    lowered_matrix_mb,
)
from .channel_first import (
    ChannelFirstPlan,
    DecomposedFilter,
    conv2d_channel_first,
    decompose,
    decomposed_tile_view,
    decomposed_weight_slice,
)
from .tiling import (
    MultiTileGroup,
    RowTile,
    array_k_utilization,
    merged_gemm_operands,
    plan_multi_tile,
    plan_row_tiles,
    tpu_multi_tile_policy,
    workspace_elements,
)
from .backward import conv2d_backward_data, conv2d_backward_weights
from .grouped import GroupedConvSpec, depthwise_spec, grouped_conv2d
from .sparsity import (
    PositionMask,
    apply_mask_to_weights,
    conv2d_channel_first_sparse,
    prune_positions,
)
from .deformable import (
    deformable_conv2d,
    deformable_tile_gather,
    gather_traffic_elements,
    zero_offsets,
)
from .reordering import (
    greedy_reuse_order,
    order_reuse_fraction,
    overlap_fraction,
    pairwise_overlap,
    tile_working_set,
)

__all__ = [
    "ConvSpec",
    "GemmShape",
    "output_extent",
    "Layout",
    "nchw_to",
    "to_nchw",
    "direct_conv2d",
    "gemm",
    "random_conv_operands",
    "ColumnOrder",
    "im2col",
    "col2im",
    "flatten_filters",
    "unflatten_filters",
    "column_permutation",
    "ofmap_from_gemm",
    "ifmap_mb",
    "lowered_matrix_mb",
    "ChannelFirstPlan",
    "DecomposedFilter",
    "conv2d_channel_first",
    "decompose",
    "decomposed_tile_view",
    "decomposed_weight_slice",
    "MultiTileGroup",
    "RowTile",
    "array_k_utilization",
    "merged_gemm_operands",
    "plan_multi_tile",
    "plan_row_tiles",
    "tpu_multi_tile_policy",
    "workspace_elements",
    "greedy_reuse_order",
    "order_reuse_fraction",
    "overlap_fraction",
    "pairwise_overlap",
    "tile_working_set",
    "conv2d_backward_data",
    "conv2d_backward_weights",
    "deformable_conv2d",
    "deformable_tile_gather",
    "gather_traffic_elements",
    "zero_offsets",
    "GroupedConvSpec",
    "depthwise_spec",
    "grouped_conv2d",
    "PositionMask",
    "apply_mask_to_weights",
    "conv2d_channel_first_sparse",
    "prune_positions",
]
