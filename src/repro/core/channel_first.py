"""The implicit channel-first im2col algorithm, as a pure algorithm.

This is the paper's core contribution (Sec. III) stripped of any hardware:
a convolution is executed as ``H_F * W_F`` accumulating 1x1 convolutions —
one per *decomposed filter* position ``(r, s)`` — where each 1x1 convolution
is a ``[N*H_O*W_O, C_I] x [C_I, C_O]`` GEMM whose A-operand is a **view**
(never a copy) of the IFMap.

Key properties, each of which the hardware backends rely on and the tests
pin down:

- *Zero memory overhead*: :func:`decomposed_tile_view` returns a strided view
  into the (padded) IFMap; nothing the size of the lowered matrix ever exists.
- *Order freedom*: the decomposed filters may be visited in any order
  (accumulation is commutative/associative); :func:`conv2d_channel_first`
  accepts an explicit visit order, which is what the inter-tile-reuse
  reordering (Sec. V) exploits.
- *Stride/dilation come for free*: a decomposed tile under stride ``s`` is
  just a coarser strided view — its size shrinks with stride, which is the
  entire reason the algorithm is stride-insensitive (Fig 8b).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .conv_spec import ConvSpec
from .reference import pad_ifmap

__all__ = [
    "DecomposedFilter",
    "decompose",
    "decomposed_tile_view",
    "decomposed_weight_slice",
    "conv2d_channel_first",
    "ChannelFirstPlan",
]


@dataclasses.dataclass(frozen=True)
class DecomposedFilter:
    """One ``(r, s)`` position of the filter: a 1x1 CONV over all channels.

    ``index`` is the row-major position index ``r * W_F + s``; it doubles as
    the tile id ``<r+1, s+1>`` in the paper's figures (their indices are
    1-based).
    """

    r: int
    s: int
    index: int

    def paper_tag(self) -> str:
        """The ``<r, s>`` label used in the paper's figures (1-based)."""
        return f"<{self.r + 1},{self.s + 1}>"


def decompose(spec: ConvSpec) -> List[DecomposedFilter]:
    """All decomposed filters of ``spec``, in row-major (naive) order."""
    return [
        DecomposedFilter(r=r, s=s, index=r * spec.w_filter + s)
        for r, s in spec.filter_positions()
    ]


def decomposed_tile_view(
    padded_ifmap: np.ndarray, spec: ConvSpec, tile: DecomposedFilter
) -> np.ndarray:
    """Strided **view** of the taps read by one decomposed filter.

    ``padded_ifmap`` must be the NCHW IFMap already padded by
    ``spec.padding`` (use :func:`repro.core.reference.pad_ifmap`).  The result
    has shape ``(N, C_I, H_O, W_O)`` and shares memory with the input —
    ``result.base`` is the padded IFMap.  This view *is* the implicit lowered
    tile: reshaping it to ``(N*H_O*W_O, C_I)`` gives the A-operand of the
    decomposed GEMM without any data movement.
    """
    expected_h = spec.h_in + 2 * spec.padding
    expected_w = spec.w_in + 2 * spec.padding
    if padded_ifmap.shape != (spec.n, spec.c_in, expected_h, expected_w):
        raise ValueError(
            f"padded ifmap shape {padded_ifmap.shape} != expected "
            f"{(spec.n, spec.c_in, expected_h, expected_w)}"
        )
    y0 = tile.r * spec.dilation
    x0 = tile.s * spec.dilation
    h_span = (spec.h_out - 1) * spec.stride + 1
    w_span = (spec.w_out - 1) * spec.stride + 1
    return padded_ifmap[:, :, y0 : y0 + h_span : spec.stride, x0 : x0 + w_span : spec.stride]


def decomposed_weight_slice(
    weights: np.ndarray, spec: ConvSpec, tile: DecomposedFilter
) -> np.ndarray:
    """The ``(C_I, C_O)`` weight matrix of one decomposed 1x1 filter."""
    if weights.shape != spec.filter_shape:
        raise ValueError(f"weights shape {weights.shape} != spec {spec.filter_shape}")
    return weights[:, :, tile.r, tile.s].T  # (C_O, C_I) -> (C_I, C_O)


def conv2d_channel_first(
    ifmap: np.ndarray,
    weights: np.ndarray,
    spec: ConvSpec,
    order: Optional[Sequence[DecomposedFilter]] = None,
) -> np.ndarray:
    """Execute a convolution via the channel-first decomposition.

    Iterates decomposed filters (in ``order`` if given, else row-major),
    performing one ``[M, C_I] x [C_I, C_O]`` GEMM per filter position and
    accumulating into the OFMap.  Returns the NCHW OFMap in float64.

    This function is the *executable specification* the simulators are tested
    against; its result is bit-identical to
    :func:`repro.core.reference.direct_conv2d` because both accumulate the
    same partial products in float64 (order differences are exercised by the
    property tests and shown to be exact for integer-valued inputs).
    """
    if ifmap.shape != spec.ifmap_shape:
        raise ValueError(f"ifmap shape {ifmap.shape} != spec {spec.ifmap_shape}")
    if weights.shape != spec.filter_shape:
        raise ValueError(f"weights shape {weights.shape} != spec {spec.filter_shape}")
    tiles = list(order) if order is not None else decompose(spec)
    _validate_order(tiles, spec)

    padded = pad_ifmap(ifmap, spec.padding).astype(np.float64)
    m = spec.lowered_rows()
    accumulator = np.zeros((m, spec.c_out), dtype=np.float64)
    for tile in tiles:
        a_view = decomposed_tile_view(padded, spec, tile)
        # (N, C, HO, WO) -> (N, HO, WO, C) -> (M, C_I): the only copy made is
        # this M x C_I staging (the on-chip tile in hardware terms).
        a_matrix = a_view.transpose(0, 2, 3, 1).reshape(m, spec.c_in)
        b_matrix = decomposed_weight_slice(weights, spec, tile).astype(np.float64)
        accumulator += a_matrix @ b_matrix
    return np.ascontiguousarray(
        accumulator.reshape(spec.n, spec.h_out, spec.w_out, spec.c_out).transpose(0, 3, 1, 2)
    )


def _validate_order(tiles: Iterable[DecomposedFilter], spec: ConvSpec) -> None:
    indices = sorted(t.index for t in tiles)
    if indices != list(range(spec.positions)):
        raise ValueError(
            f"tile order must visit each of {spec.positions} decomposed filters "
            f"exactly once, got indices {indices}"
        )
    for tile in tiles:
        if tile.index != tile.r * spec.w_filter + tile.s:
            raise ValueError(f"inconsistent tile {tile}")
        if not (0 <= tile.r < spec.h_filter and 0 <= tile.s < spec.w_filter):
            raise ValueError(f"tile {tile} out of range for {spec.filter_shape}")


@dataclasses.dataclass(frozen=True)
class ChannelFirstPlan:
    """A fully-resolved execution plan for the channel-first algorithm.

    Hardware backends consume the algorithm through this plan rather than
    re-deriving geometry: it names the decomposed GEMM shape, the visit
    order, and the per-tile IFMap footprint (used for SRAM-fill costing).
    """

    spec: ConvSpec
    tiles: Tuple[DecomposedFilter, ...]

    @classmethod
    def build(
        cls, spec: ConvSpec, order: Optional[Sequence[DecomposedFilter]] = None
    ) -> "ChannelFirstPlan":
        tiles = tuple(order) if order is not None else tuple(decompose(spec))
        _validate_order(tiles, spec)
        return cls(spec=spec, tiles=tiles)

    @property
    def gemm_m(self) -> int:
        return self.spec.lowered_rows()

    @property
    def gemm_k(self) -> int:
        return self.spec.c_in

    @property
    def gemm_n(self) -> int:
        return self.spec.c_out

    # Derived quantities are uniformly properties (like the gemm_* axes and
    # every result type's accessors): a plan is frozen data, and mixing
    # call-vs-attribute access across twins of the same concept invites
    # ``plan.total_macs`` silently evaluating to a bound method.
    @property
    def tile_input_elements(self) -> int:
        """IFMap elements one decomposed tile reads: N * H_O * W_O * C_I.

        Shrinks quadratically with stride — the stride-insensitivity story.
        """
        return self.gemm_m * self.gemm_k

    @property
    def tile_macs(self) -> int:
        return self.gemm_m * self.gemm_k * self.gemm_n

    @property
    def total_macs(self) -> int:
        return self.tile_macs * len(self.tiles)
