"""Content-addressed on-disk result store, sharded by fingerprint prefix.

One record file per cached result::

    <root>/shards/<digest[:2]>/<digest>.json

where ``digest`` is the SHA-256 of the structural cache key the in-process
memo already computes (:mod:`repro.perf.cache`) — the key fingerprints
every config field and every spec field, so content addressing is exactly
"same problem, same entry", across processes and across runs.  A value is
stored under its **exact** key and (when the caller supplies one) under
its **canonical** symmetry-folded key, so timing-equivalent specs share a
persistent entry the same way they share a memo entry.

Durability and integrity:

- every write goes through :func:`repro.resilience.atomic.atomic_write_bytes`
  (temp file + fsync + ``os.replace``), so a reader sees an old complete
  record or a new complete record, never a torn one — concurrent writers
  of the same digest race benignly because simulation is deterministic
  (identical bytes, last rename wins);
- every record carries a schema version and a SHA-256 checksum over its
  body; :meth:`ResultStore.load` re-verifies both plus the key digest and
  the typed payload decode, and a record failing *any* check is
  **skipped with a warning** (and counted) — the caller recomputes and
  the write-through replaces the bad record;
- :meth:`ResultStore.verify` runs the same checks over every record (the
  ``repro store verify`` command), and :meth:`ResultStore.compact`
  LRU-evicts by record mtime down to entry/byte caps (reads touch their
  record's mtime, so recency is meaningful).

Fault injection: an active :class:`~repro.resilience.faults.FaultPlan`
with ``corrupt-store`` set corrupts records as they are written
(truncated / bad checksum / wrong schema / torn shard file), which is how
the corruption test matrix and CI prove the skip-and-warn path end to end.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import time
from typing import Any, Iterator, List, Optional, Tuple

from ..obs import log as obs_log
from ..resilience.atomic import atomic_write_bytes
from .codec import CodecError, decode_value, encode_value

__all__ = [
    "STORE_SCHEMA",
    "StoreStats",
    "RecordProblem",
    "VerifyReport",
    "CompactReport",
    "ResultStore",
    "key_digest",
]

STORE_SCHEMA = 1

#: Hex characters of the digest that name the shard directory.
SHARD_PREFIX_CHARS = 2


def key_digest(key: Any) -> str:
    """SHA-256 hex digest of a structural cache key.

    Keys are tuples of primitives (type names, ints, floats, strings) whose
    ``repr`` is deterministic across processes and Python runs — unlike
    ``hash()``, which is salted — so the digest is a stable cross-process
    content address.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


@dataclasses.dataclass
class StoreStats:
    """Per-handle counters of one :class:`ResultStore`."""

    hits: int = 0
    canonical_hits: int = 0  # subset of hits served via the canonical digest
    misses: int = 0
    writes: int = 0
    corrupt_skipped: int = 0
    unsupported: int = 0  # values the codec could not persist

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclasses.dataclass(frozen=True)
class RecordProblem:
    """One record that failed an integrity check."""

    path: str
    reason: str


@dataclasses.dataclass
class VerifyReport:
    """Outcome of a full integrity scan."""

    scanned: int = 0
    ok: int = 0
    problems: List[RecordProblem] = dataclasses.field(default_factory=list)
    quarantined: List[str] = dataclasses.field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.problems

    @property
    def healed(self) -> bool:
        """True when every problem record was moved out of the serving
        tree (``verify(quarantine=True)``) — the store reads clean now."""
        return len(self.quarantined) == len(self.problems)


@dataclasses.dataclass
class CompactReport:
    """Outcome of one LRU/size-capped compaction pass."""

    scanned: int = 0
    removed: int = 0
    kept: int = 0
    bytes_before: int = 0
    bytes_after: int = 0


def _record_bytes(digest: str, payload: Any) -> bytes:
    body = {"schema": STORE_SCHEMA, "key": digest, "payload": payload}
    canonical = json.dumps(body, sort_keys=True)
    checksum = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    record = dict(body)
    record["checksum"] = checksum
    return (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")


def _corrupt_bytes(data: bytes, mode: str) -> bytes:
    """Deterministically damage a record the way the fault plan asked."""
    if mode == "truncate":
        return data[: max(1, len(data) // 2)]
    if mode == "torn":  # a barely-started shard file
        return data[:16]
    if mode == "checksum":
        text = data.decode("utf-8")
        flipped = "0" if '"checksum": "0' not in text else "1"
        marker = '"checksum": "'
        at = text.index(marker) + len(marker)
        return (text[:at] + flipped + text[at + 1 :]).encode("utf-8")
    if mode == "schema":
        return data.replace(
            f'"schema": {STORE_SCHEMA}'.encode(), b'"schema": 999', 1
        )
    raise ValueError(f"unknown store corruption mode {mode!r}")


class ResultStore:
    """A sharded, content-addressed, corruption-detecting result store."""

    def __init__(self, root, touch_on_hit: bool = True) -> None:
        self.root = pathlib.Path(root)
        self.shard_root = self.root / "shards"
        self.touch_on_hit = touch_on_hit
        self.stats = StoreStats()
        self.shard_root.mkdir(parents=True, exist_ok=True)

    # --------------------------------------------------------------- paths
    def record_path(self, digest: str) -> pathlib.Path:
        return self.shard_root / digest[:SHARD_PREFIX_CHARS] / f"{digest}.json"

    def record_paths(self) -> Iterator[pathlib.Path]:
        """Every record file, in deterministic (sorted) order."""
        if not self.shard_root.exists():
            return
        for shard in sorted(self.shard_root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                yield path

    def __len__(self) -> int:
        return sum(1 for _ in self.record_paths())

    def total_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.record_paths())

    # ---------------------------------------------------------------- read
    def _read_record(self, path: pathlib.Path) -> Tuple[Optional[Any], Optional[str]]:
        """``(value, problem)`` — exactly one side is non-None.

        Every failure mode a crashed or corrupted writer can produce maps
        to a *reason string*, never an exception: a bad record costs one
        recomputation, nothing more.
        """
        try:
            raw = path.read_bytes()
        except OSError as err:
            return None, f"unreadable: {err}"
        try:
            record = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            return None, f"unparseable (torn/truncated?): {err}"
        if not isinstance(record, dict):
            return None, "record is not an object"
        checksum = record.pop("checksum", None)
        if not isinstance(checksum, str):
            return None, "missing checksum"
        canonical = json.dumps(record, sort_keys=True)
        actual = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        if actual != checksum:
            return None, f"checksum mismatch ({checksum[:12]}… != {actual[:12]}…)"
        if record.get("schema") != STORE_SCHEMA:
            return None, f"unknown schema {record.get('schema')!r}"
        if record.get("key") != path.stem:
            return None, f"key digest {record.get('key')!r} does not match filename"
        try:
            return decode_value(record.get("payload")), None
        except CodecError as err:
            return None, f"undecodable payload: {err}"

    def _load_digest(self, digest: str) -> Optional[Any]:
        path = self.record_path(digest)
        if not path.exists():
            return None
        value, problem = self._read_record(path)
        if problem is not None:
            self.stats.corrupt_skipped += 1
            obs_log.warning(
                "store.corrupt_record", path=str(path), reason=problem
            )
            return None
        if self.touch_on_hit:
            try:  # recency for LRU compaction; best-effort only
                os.utime(path)
            except OSError:
                pass
        return value

    def load(
        self, key: Any, canonical_key: Optional[Any] = None
    ) -> Tuple[bool, Any, bool]:
        """One store lookup: ``(found, value, via_canonical)``.

        Tries the exact digest, then the canonical one; a canonical serve
        promotes the value to the exact digest (mirroring the memo cache's
        exact-key aliasing) so the next process hits in one probe.
        """
        digest = key_digest(key)
        value = self._load_digest(digest)
        if value is not None:
            self.stats.hits += 1
            return True, value, False
        if canonical_key is not None and canonical_key != key:
            value = self._load_digest(key_digest(canonical_key))
            if value is not None:
                self.stats.hits += 1
                self.stats.canonical_hits += 1
                self._write_digest(digest, value, overwrite=True)
                return True, value, True
        self.stats.misses += 1
        return False, None, False

    # --------------------------------------------------------------- write
    def _write_digest(self, digest: str, value: Any, overwrite: bool) -> bool:
        path = self.record_path(digest)
        if not overwrite and path.exists():
            return False
        try:
            payload = encode_value(value)
        except CodecError:
            self.stats.unsupported += 1
            return False
        data = _record_bytes(digest, payload)
        from ..resilience import faults

        plan = faults.get_active()
        if plan is not None:
            mode = plan.store_corruption(digest)
            if mode is not None:
                data = _corrupt_bytes(data, mode)
        atomic_write_bytes(path, data)
        self.stats.writes += 1
        return True

    def save(self, key: Any, value: Any, canonical_key: Optional[Any] = None) -> bool:
        """Write-through one computed value (exact + canonical records).

        Returns False when the codec cannot persist the value — the caller
        keeps its in-memory entry and nothing else changes.
        """
        if not self._write_digest(key_digest(key), value, overwrite=True):
            return False
        if canonical_key is not None and canonical_key != key:
            self._write_digest(key_digest(canonical_key), value, overwrite=False)
        return True

    # ----------------------------------------------------------- integrity
    def verify(self, quarantine: bool = False) -> VerifyReport:
        """Full integrity scan: every record, every check the read path runs.

        With ``quarantine=True`` each corrupt record is *healed out* of the
        serving tree — moved (same-filesystem rename) into
        ``<root>/quarantine/`` with its shard prefix flattened into the
        name, so the evidence survives for post-mortems while the store
        itself reads clean again (the read path already treats a missing
        record as a miss and recomputes).
        """
        report = VerifyReport()
        for path in self.record_paths():
            report.scanned += 1
            _, problem = self._read_record(path)
            if problem is None:
                report.ok += 1
                continue
            report.problems.append(RecordProblem(path=str(path), reason=problem))
            if not quarantine:
                continue
            quarantine_dir = self.root / "quarantine"
            quarantine_dir.mkdir(parents=True, exist_ok=True)
            target = quarantine_dir / f"{path.parent.name}-{path.name}"
            try:
                os.replace(path, target)
            except OSError:
                continue  # leave it counted as an unhealed problem
            report.quarantined.append(str(target))
        return report

    def compact(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> CompactReport:
        """LRU eviction down to the given caps (mtime = recency).

        Newest records are kept; a corrupt record is always evicted first
        (it can never be served).  Empty shard directories are removed.
        """
        entries = []
        for path in self.record_paths():
            stat = path.stat()
            _, problem = self._read_record(path)
            entries.append((problem is not None, -stat.st_mtime, stat.st_size, path))
        report = CompactReport(scanned=len(entries))
        report.bytes_before = sum(size for _, _, size, _ in entries)
        # Corrupt first, then oldest first, at the *end* of the keep order.
        entries.sort(key=lambda item: (item[0], item[1]))
        kept_bytes = 0
        for index, (corrupt, _, size, path) in enumerate(entries):
            over_entries = max_entries is not None and index >= max_entries
            over_bytes = max_bytes is not None and kept_bytes + size > max_bytes
            if corrupt or over_entries or over_bytes:
                try:
                    path.unlink()
                except OSError:
                    continue
                report.removed += 1
            else:
                kept_bytes += size
                report.kept += 1
        report.bytes_after = kept_bytes
        for shard in list(self.shard_root.iterdir()):
            if shard.is_dir():
                try:
                    shard.rmdir()  # only succeeds when empty
                except OSError:
                    pass
        if report.removed:
            obs_log.info(
                "store.compacted",
                root=str(self.root), removed=report.removed, kept=report.kept,
            )
        return report

    # --------------------------------------------------------- descriptive
    def describe(self) -> dict:
        """A stats snapshot for CLIs and manifests."""
        entries = 0
        size = 0
        shards = set()
        for path in self.record_paths():
            entries += 1
            size += path.stat().st_size
            shards.add(path.parent.name)
        return {
            "root": str(self.root),
            "schema": STORE_SCHEMA,
            "entries": entries,
            "bytes": size,
            "shards": len(shards),
        }
