"""Pre-forked worker supervision for ``repro serve --workers N``.

Crash-only process model (DESIGN.md §4l): a supervising **parent** owns
the listener socket and *never* touches a request; N forked **workers**
inherit the socket and ``accept()`` from the shared queue, so the kernel
load-balances connections and a worker can die at any instant without
losing the listening endpoint.  The parent's only jobs are:

- **liveness**: each worker writes a byte down a heartbeat pipe about
  once a second; a worker silent past ``LIVENESS_TIMEOUT_S`` is presumed
  hung and gets SIGKILL (its replacement is what answers clients);
- **respawn**: a dead worker (crash, injected ``worker-crash`` fault,
  external ``kill -9``) is respawned after a seeded exponential backoff —
  the same :class:`~repro.resilience.supervisor.RetryPolicy` schedule the
  offline planes use, so a crash-looping fleet backs off deterministically
  instead of fork-bombing;
- **crash budget**: past ``MAX_TOTAL_RESPAWNS`` respawns in one life the
  parent stops pretending — it degrades to a single worker (better a slow
  truth than a fast crash loop) and says so in the status file;
- **forensics**: every worker death produces a flight-recorder dump
  (``flightrec-serve-worker-death-*.json``) and a supervisor status-file
  update (``--status-file``), which is how ``tools/serve_chaos.py``
  asserts "the supervisor restored full worker count".

SIGTERM/SIGINT to the parent forwards SIGTERM to every worker, waits for
their graceful drains (each worker answers everything it admitted), then
exits 0.  The parent runs no asyncio — plain ``select``/``waitpid`` — so
``fork()`` never duplicates a live event loop.
"""

from __future__ import annotations

import dataclasses
import errno
import os
import select
import signal
import socket
import sys
import time
from typing import Dict, List, Optional

from ..obs import log as obs_log
from ..obs.flight import beacon as flight_beacon
from ..obs.flight.recorder import maybe_dump
from ..resilience.supervisor import RetryPolicy

__all__ = ["supervise", "WorkerSlot"]

#: Seconds between worker heartbeat bytes (written by run_server's task).
HEARTBEAT_INTERVAL_S = 1.0
#: A worker silent this long is presumed hung and killed.
LIVENESS_TIMEOUT_S = 10.0
#: A worker alive this long resets its slot's backoff attempt counter.
STABLE_AFTER_S = 30.0
#: Total respawns before the supervisor degrades to a single worker.
MAX_TOTAL_RESPAWNS = 16
#: Seconds the parent waits for graceful worker drains before SIGKILL.
SHUTDOWN_GRACE_S = 15.0


@dataclasses.dataclass
class WorkerSlot:
    """One worker position in the fleet (stable across respawns)."""

    index: int
    pid: Optional[int] = None
    pipe_r: int = -1
    last_beat: float = 0.0
    spawned_at: float = 0.0
    attempts: int = 0  # consecutive fast deaths, drives the backoff
    respawn_at: Optional[float] = None  # backoff timer when pending


def _worker_main(args, config, run_id, sock, heartbeat_fd, index) -> int:
    """Entry point of one forked worker (never returns: os._exit)."""
    import asyncio

    from .serve import configure_worker_observability, run_server

    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    configure_worker_observability(args, run_id, worker_index=index)
    if config.store_dir:
        from . import attach

        attach(config.store_dir)

    def _beat() -> None:
        try:
            os.write(heartbeat_fd, b".")
        except OSError:
            # The parent is gone: a worker with no supervisor drains out.
            os.kill(os.getpid(), signal.SIGTERM)

    trace_path = f"{args.trace}.w{index}" if args.trace else None
    asyncio.run(
        run_server(
            config, run_id, sock=sock, worker_index=index,
            announce=False, heartbeat=_beat, trace_path=trace_path,
        )
    )
    obs_log.shutdown()
    return 0


def supervise(args, config, run_id) -> int:
    """Run the pre-forked fleet until SIGTERM/SIGINT; returns exit code."""
    obs_log.configure(log_file=args.log_file, run_id=run_id)
    flight_beacon.configure_beacon(
        role="serve-supervisor", run_id=run_id, status_path=args.status_file
    )
    if args.flight:
        from ..obs.flight import recorder as flight_recorder

        flight_recorder.configure_recorder(run_dir=args.flight)

    sock = socket.create_server(
        (config.host, config.port), backlog=max(128, config.max_pending)
    )
    sock.set_inheritable(True)
    host, port = sock.getsockname()[:2]
    print(f"serve: listening on http://{host}:{port} "
          f"(max_pending={config.max_pending}, max_batch={config.max_batch}, "
          f"workers={config.workers}, run={run_id})",
          flush=True)
    obs_log.info(
        "serve.supervisor_started",
        host=host, port=port, workers=config.workers,
    )

    policy = RetryPolicy(
        backoff_base_s=0.25, backoff_cap_s=5.0, jitter=0.5, seed=port or 1
    )
    target_workers = config.workers
    slots = [WorkerSlot(index=i) for i in range(config.workers)]
    respawns = 0
    degraded_single = False
    stopping = False

    def _request_stop(signum, frame):  # noqa: ARG001 - signal signature
        nonlocal stopping
        stopping = True

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)

    def _spawn(slot: WorkerSlot) -> None:
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # ------------------------------------------ child
            rc = 1
            try:
                os.close(read_fd)
                for other in slots:
                    if other.pipe_r >= 0:
                        try:
                            os.close(other.pipe_r)
                        except OSError:
                            pass
                rc = _worker_main(
                    args, config, run_id, sock, write_fd, slot.index
                )
            except BaseException as err:  # never unwind into parent code
                try:
                    sys.stderr.write(
                        f"serve worker {slot.index} crashed: "
                        f"{type(err).__name__}: {err}\n"
                    )
                except Exception:
                    pass
            finally:
                os._exit(rc)
        # ------------------------------------------------------- parent
        os.close(write_fd)
        now = time.monotonic()
        slot.pid = pid
        slot.pipe_r = read_fd
        slot.last_beat = now
        slot.spawned_at = now
        slot.respawn_at = None
        obs_log.info("serve.worker_spawned", worker=slot.index, pid=pid)

    def _publish_status(force: bool = False) -> None:
        beacon = flight_beacon.get_beacon()
        beacon.update(
            workers_target=target_workers,
            workers_alive=sum(1 for s in slots if s.pid is not None),
            worker_pids=[s.pid for s in slots if s.pid is not None],
            respawns=respawns,
            degraded_single=degraded_single,
            port=port,
        )
        if force:
            beacon.maybe_write(min_interval=0.0)
        else:
            beacon.maybe_write()

    for slot in slots[:target_workers]:
        _spawn(slot)
    _publish_status(force=True)

    def _on_worker_death(slot: WorkerSlot, status: int) -> None:
        nonlocal respawns, degraded_single, target_workers
        now = time.monotonic()
        lifetime = now - slot.spawned_at
        if os.WIFSIGNALED(status):
            cause = f"signal {os.WTERMSIG(status)}"
        else:
            cause = f"exit {os.WEXITSTATUS(status)}"
        obs_log.warning(
            "serve.worker_died",
            worker=slot.index, pid=slot.pid, cause=cause,
            lifetime_s=round(lifetime, 3),
        )
        maybe_dump(
            "serve-worker-death",
            {"worker": slot.index, "pid": slot.pid, "cause": cause,
             "lifetime_s": round(lifetime, 3), "respawns": respawns},
        )
        if slot.pipe_r >= 0:
            try:
                os.close(slot.pipe_r)
            except OSError:
                pass
        slot.pid = None
        slot.pipe_r = -1
        if stopping:
            return
        respawns += 1
        if lifetime >= STABLE_AFTER_S:
            slot.attempts = 0
        slot.attempts += 1
        if respawns > MAX_TOTAL_RESPAWNS and not degraded_single:
            # Crash budget exhausted: stop feeding the loop.  One worker
            # still serves (slowly, honestly) instead of the fleet dying.
            degraded_single = True
            target_workers = 1
            obs_log.warning(
                "serve.supervisor_degraded_single",
                respawns=respawns, budget=MAX_TOTAL_RESPAWNS,
            )
            maybe_dump(
                "serve-crash-budget",
                {"respawns": respawns, "budget": MAX_TOTAL_RESPAWNS},
            )
        if slot.index < target_workers:
            delay = policy.backoff_s(slot.index, slot.attempts)
            slot.respawn_at = now + delay
            obs_log.info(
                "serve.worker_respawn_scheduled",
                worker=slot.index, delay_s=round(delay, 3),
                attempt=slot.attempts,
            )

    try:
        while True:
            now = time.monotonic()
            fds = [s.pipe_r for s in slots if s.pid is not None and s.pipe_r >= 0]
            try:
                ready, _, _ = select.select(fds, [], [], 0.25)
            except InterruptedError:
                ready = []
            except OSError as err:
                if err.errno != errno.EBADF:
                    raise
                ready = []  # a worker died between list and select; reap below
            for fd in ready:
                try:
                    os.read(fd, 4096)
                except OSError:
                    continue
                for slot in slots:
                    if slot.pipe_r == fd:
                        slot.last_beat = now
                        break
            # Reap every worker death since the last tick.
            while True:
                try:
                    pid, status = os.waitpid(-1, os.WNOHANG)
                except ChildProcessError:
                    break
                if pid == 0:
                    break
                for slot in slots:
                    if slot.pid == pid:
                        _on_worker_death(slot, status)
                        break
            if stopping:
                break
            now = time.monotonic()
            for slot in slots:
                if slot.pid is not None:
                    if now - slot.last_beat > LIVENESS_TIMEOUT_S:
                        # Hung, not dead: SIGKILL now, reap + respawn next
                        # tick.  A worker that cannot heartbeat cannot serve.
                        obs_log.warning(
                            "serve.worker_hung_killed",
                            worker=slot.index, pid=slot.pid,
                            silent_s=round(now - slot.last_beat, 3),
                        )
                        try:
                            os.kill(slot.pid, signal.SIGKILL)
                        except ProcessLookupError:
                            pass
                        slot.last_beat = now  # one SIGKILL per hang
                elif slot.respawn_at is not None and now >= slot.respawn_at:
                    if slot.index < target_workers:
                        _spawn(slot)
                    else:
                        slot.respawn_at = None  # degraded: slot retired
            _publish_status()
    finally:
        # ---------------------------------------------------- graceful stop
        live = [s for s in slots if s.pid is not None]
        obs_log.info("serve.supervisor_draining", workers=len(live))
        for slot in live:
            try:
                os.kill(slot.pid, signal.SIGTERM)
            except ProcessLookupError:
                slot.pid = None
        deadline = time.monotonic() + SHUTDOWN_GRACE_S
        while any(s.pid is not None for s in slots) and time.monotonic() < deadline:
            try:
                pid, status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                break
            if pid == 0:
                time.sleep(0.05)
                continue
            for slot in slots:
                if slot.pid == pid:
                    slot.pid = None
                    if slot.pipe_r >= 0:
                        try:
                            os.close(slot.pipe_r)
                        except OSError:
                            pass
                        slot.pipe_r = -1
                    break
        for slot in slots:
            if slot.pid is not None:  # drain grace blown: stop waiting
                try:
                    os.kill(slot.pid, signal.SIGKILL)
                    os.waitpid(slot.pid, 0)
                except (ProcessLookupError, ChildProcessError):
                    pass
                slot.pid = None
        sock.close()
        _publish_status(force=True)
    print(f"serve: supervisor drained; respawns={respawns}"
          f"{' (degraded to single worker)' if degraded_single else ''}",
          flush=True)
    obs_log.info("serve.supervisor_stopped", respawns=respawns)
    obs_log.shutdown()
    return 0
