"""``repro serve`` — a crash-only conv-timing daemon over HTTP/JSON.

A stdlib-``asyncio`` front-end for the simulation stack: clients POST a
ConvSpec (plus optional hardware-config overrides) and get back the same
:class:`~repro.systolic.simulator.LayerResult` numbers a ``repro run``
would compute — served from the in-process memo, the persistent store
(:mod:`repro.store`), or a fresh batched simulation, in that order.

Request handling is built for fleets of duplicate queries:

- **dedup**: queries are keyed by the simulator's own cache key; a query
  identical to one already in flight awaits the same future — N clients
  asking for ResNet conv3_1 cost one simulation;
- **batching**: queued queries are drained every ``batch_window_s`` (or
  when ``max_batch`` accumulate) and grouped by hardware config into
  single :meth:`TPUSim.simulate_conv_batch` calls, so the batched
  schedule engine amortizes pricing exactly as the harness does;
- **load shedding**: admission consults the service's
  :class:`~repro.resilience.supervisor.ErrorBudget` — when the pending
  backlog exceeds the configured budget the query is refused with HTTP
  429 + ``Retry-After`` (and counted as a ``LoadShed`` fault) instead of
  growing the queue without bound;
- **graceful drain**: shutdown stops admitting (503 + ``Retry-After``),
  finishes every in-flight simulation, and answers the clients that were
  already queued.

And for everything the fault injector can throw at it (DESIGN.md §4l):

- **per-request deadlines** — ``X-Repro-Deadline-Ms`` (or
  ``--default-deadline-ms``) bounds how long a client waits; a blown
  deadline answers 504 + ``Retry-After``, and when the *last* waiter on a
  deduped query gives up the query is cooperatively cancelled so
  abandoned work stops burning simulator time;
- **per-fingerprint circuit breakers**
  (:mod:`repro.resilience.breaker`) — repeated AuditFault / crash /
  deadline overrun attributed to one *canonical* spec fingerprint trips
  an open breaker: later requests for that spec get a fast 422 carrying
  the quarantine verdict instead of re-simulating; half-open probes
  re-admit after cooldown;
- **a degradation ladder** driven by an SLO watchdog over the error
  ratio and p99 latency: ``full`` batched simulation → ``serial``
  simulation → ``store-only`` (warm hits served, misses an honest 503)
  → ``drain``.  The current rung is exposed in ``/statusz``, ``repro
  top`` and the ``repro_serve_degraded`` gauge, with a flight-recorder
  dump on every rung change;
- **protocol hardening** — slowloris headers, truncated or oversized
  bodies and garbage JSON each get a clean 4xx/408 within a bounded
  time, never a hung connection or a dead worker;
- **multi-worker supervision** — ``--workers N`` pre-forks request
  workers behind a supervising parent that owns the listener socket
  (:mod:`repro.store.workers`): heartbeat liveness, seeded
  exponential-backoff respawn, crash-budget degradation to a single
  worker rather than death.

Endpoints: ``GET /healthz`` (liveness: the process is up), ``GET
/readyz`` (readiness: 503 while draining or degraded past ``serial``),
``GET /statusz`` (live beacon snapshot for ``repro top``), ``GET
/metrics`` (Prometheus exposition, including per-route latency
histograms and the breaker/degradation series), ``POST /v1/conv`` (one
query), ``POST /v1/conv/batch`` (``{"queries": [...]}``).  Everything is
stdlib-only — no web framework.

Observability: every request gets a W3C-style trace context — parsed from
an incoming ``traceparent`` header or freshly minted — echoed back as
``X-Repro-Trace-Id`` alongside ``X-Repro-Run-Id``.  Under ``--trace`` the
daemon records a connected span tree per request (``serve.request`` →
``serve.batch`` → cache probe → engine spans) and writes the Chrome
export on drain.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import hashlib
import json
import signal
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..core.conv_spec import ConvSpec
from ..core.layouts import Layout
from ..errors import AuditFault, ConfigError
from ..obs import log as obs_log
from ..obs.flight import beacon as flight_beacon
from ..obs.flight.recorder import maybe_dump
from ..obs.prom import render_prometheus
from ..perf.cache import (
    SIM_CACHE,
    canonical_layout,
    canonical_spec,
    config_key,
    spec_key,
)
from ..resilience import faults as fault_injection
from ..resilience.breaker import BreakerOpen, BreakerPolicy, BreakerRegistry
from ..resilience.supervisor import ErrorBudget
from ..systolic.config import TPU_V2, TPUConfig
from ..systolic.simulator import TPUSim, tpu_multi_tile_policy
from ..trace import context as trace_context
from ..trace import tracer as trace
from ..trace.metrics import MetricsRegistry

__all__ = [
    "ServeConfig",
    "BadRequest",
    "LoadShed",
    "Draining",
    "StoreOnlyMiss",
    "ProtocolError",
    "LADDER_RUNGS",
    "Query",
    "slo_decision",
    "SimulationService",
    "ReproServer",
    "http_request",
    "http_request_retry",
    "result_payload",
    "serve_main",
    "build_parser",
]

#: ConvSpec fields a query's ``spec`` object may set.
SPEC_FIELDS = frozenset(
    {"n", "c_in", "h_in", "w_in", "c_out", "h_filter", "w_filter",
     "stride", "padding", "dilation", "name"}
)

#: TPUConfig scalar fields a query's ``config`` object may override.
CONFIG_FIELDS = frozenset(
    {"array_rows", "array_cols", "clock_ghz", "sram_word_elems",
     "sram_elem_bytes", "unified_sram_bytes", "vector_alus",
     "compute_elem_bytes", "weight_load_cycles_per_row",
     "tile_setup_cycles", "weight_double_buffer"}
)

#: The degradation ladder, healthiest first.  ``full`` batches queries
#: through the batched schedule engine; ``serial`` prices one spec at a
#: time (exact failure attribution, no batch blast radius); ``store-only``
#: answers warm memo/store hits and honestly 503s misses; ``drain``
#: refuses all simulation work.
LADDER_RUNGS = ("full", "serial", "store-only", "drain")
RUNG_FULL, RUNG_SERIAL, RUNG_STORE_ONLY, RUNG_DRAIN = range(4)


class BadRequest(ValueError):
    """The request body cannot be turned into a simulation query."""


class LoadShed(RuntimeError):
    """Admission refused: the pending backlog exceeds the error budget."""


class Draining(RuntimeError):
    """Admission refused: the server is shutting down (or rung = drain)."""


class StoreOnlyMiss(RuntimeError):
    """Admission refused: degraded to store-only and this spec is cold."""


class ProtocolError(Exception):
    """A malformed/hostile HTTP exchange; carries the status to answer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclasses.dataclass
class ServeConfig:
    """Tunables of one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 8707
    #: Pending-query budget; admission beyond it sheds with HTTP 429.
    max_pending: int = 256
    #: Seconds the batcher waits to let concurrent queries coalesce.
    batch_window_s: float = 0.005
    #: Queries drained into one ``simulate_conv_batch`` call at most.
    max_batch: int = 64
    #: Persistent store directory ("" = serve from memo only).
    store_dir: str = ""
    #: Pre-forked request workers (1 = single process, no fork).
    workers: int = 1
    #: Deadline applied when no ``X-Repro-Deadline-Ms`` header arrives.
    default_deadline_ms: float = 30_000.0
    #: Request bodies beyond this answer 413 without being read.
    max_body_bytes: int = 1 << 20
    #: Seconds a client may take to finish sending headers (slowloris cap).
    header_timeout_s: float = 10.0
    #: Seconds a client may take to deliver a Content-Length'd body.
    body_timeout_s: float = 10.0
    #: Failures within the breaker window that trip a fingerprint open.
    breaker_threshold: int = 3
    #: Seconds an open breaker refuses before half-opening one probe.
    breaker_cooldown_s: float = 30.0
    #: SLO watchdog: p99 latency (ms) above which the ladder escalates.
    slo_p99_ms: float = 5_000.0
    #: SLO watchdog: error ratio above which the ladder escalates.
    slo_error_ratio: float = 0.5
    #: Request samples the watchdog evaluates over (sliding window).
    slo_window: int = 128
    #: Samples required before the watchdog acts at all.
    slo_min_samples: int = 16
    #: Seconds between watchdog evaluations.
    slo_interval_s: float = 1.0
    #: Clean seconds on a degraded rung before stepping back down.
    slo_recovery_s: float = 10.0
    #: Run the SLO watchdog task (tests drive ``set_rung`` directly).
    watchdog: bool = True
    #: ``Retry-After`` seconds suggested on 429 load sheds.
    retry_after_shed_s: float = 1.0
    #: ``Retry-After`` seconds suggested on 503 drain/degraded refusals.
    retry_after_drain_s: float = 5.0


def spec_fingerprint(
    config: TPUConfig, spec: ConvSpec, resolved_group: int, layout: Layout
) -> str:
    """Canonical fingerprint a circuit breaker keys on.

    Built from the same symmetry-folded key the memo cache shares work
    under (:meth:`TPUSim._conv_canonical_key`): renamed / transposed /
    dilation-folded copies of one hostile spec meet one breaker.
    """
    canon, _ = canonical_spec(spec)
    key = (
        "tpu-conv@c", config_key(config), spec_key(canon),
        resolved_group, canonical_layout(layout),
    )
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:16]


@dataclasses.dataclass(frozen=True)
class Query:
    """One admitted, validated timing query."""

    spec: ConvSpec
    config: TPUConfig
    group_size: Optional[int]
    layout: Layout
    key: Tuple  # the simulator's exact cache key — also the dedup key
    #: Canonical-spec digest the circuit breaker tracks this query under.
    fingerprint: str = ""
    #: The request's trace context (excluded from equality/hashing so two
    #: identical queries from different requests still dedup onto one key).
    ctx: Optional[trace_context.TraceContext] = dataclasses.field(
        default=None, compare=False
    )
    #: Absolute monotonic deadline of the *request* that carried it.
    deadline_at: Optional[float] = dataclasses.field(default=None, compare=False)

    @classmethod
    def parse(cls, payload: Any) -> "Query":
        """Validate a JSON body into a query (raises :class:`BadRequest`)."""
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        raw_spec = payload.get("spec")
        if not isinstance(raw_spec, dict):
            raise BadRequest("missing 'spec' object")
        unknown = set(raw_spec) - SPEC_FIELDS
        if unknown:
            raise BadRequest(f"unknown spec fields: {sorted(unknown)}")
        overrides = payload.get("config", {})
        if not isinstance(overrides, dict):
            raise BadRequest("'config' must be an object of TPUConfig overrides")
        unknown = set(overrides) - CONFIG_FIELDS
        if unknown:
            raise BadRequest(f"unknown config fields: {sorted(unknown)}")
        raw_layout = payload.get("layout", Layout.NHWC.value)
        try:
            layout = Layout(raw_layout)
        except ValueError:
            raise BadRequest(f"unknown layout {raw_layout!r}") from None
        group_size = payload.get("group_size")
        if group_size is not None and (
            not isinstance(group_size, int) or group_size <= 0
        ):
            raise BadRequest("'group_size' must be a positive integer")
        try:
            spec = ConvSpec(**raw_spec)
            if overrides:
                if "array_rows" in overrides and "num_vector_memories" not in overrides:
                    # TPUConfig ties one vector memory to each PE row.
                    overrides = dict(
                        overrides, num_vector_memories=overrides["array_rows"]
                    )
                config = dataclasses.replace(TPU_V2, **overrides)
            else:
                config = TPU_V2
        except (ConfigError, TypeError) as err:
            raise BadRequest(str(err)) from None
        resolved = (
            group_size
            if group_size is not None
            else tpu_multi_tile_policy(spec, config.array_rows)
        )
        key = ("tpu-conv", config_key(config), spec_key(spec), resolved, layout.value)
        return cls(
            spec=spec, config=config, group_size=group_size,
            layout=layout, key=key,
            fingerprint=spec_fingerprint(config, spec, resolved, layout),
        )

    def canonical_key(self) -> Tuple:
        """The symmetry-folded secondary cache key (store-only probes)."""
        canon, _ = canonical_spec(self.spec)
        resolved = self.key[3]
        return (
            "tpu-conv@c", self.key[1], spec_key(canon),
            resolved, canonical_layout(self.layout),
        )


def result_payload(query: Query, result) -> Dict[str, Any]:
    """JSON response body for one served LayerResult."""
    clock_hz = query.config.clock_ghz * 1e9
    return {
        "name": result.name,
        "cycles": result.cycles,
        "seconds": result.cycles / clock_hz,
        "tflops": result.tflops,
        "utilization": result.utilization,
        "compute_cycles": result.compute_cycles,
        "dma_cycles": result.dma_cycles,
        "exposed_dma_cycles": result.exposed_dma_cycles,
        "macs": result.macs,
        "group_size": result.group_size,
        "layout": query.layout.value,
    }


def slo_decision(
    samples: List[Tuple[float, float, bool]],
    rung: int,
    config: ServeConfig,
    now: float,
    last_change: float,
) -> Optional[str]:
    """Pure ladder policy: ``"escalate"``, ``"recover"`` or ``None``.

    ``samples`` are ``(ts, latency_ms, ok)`` per completed query request.
    Escalation needs ``slo_min_samples`` of evidence and a breached SLO
    (p99 latency or error ratio); recovery needs a clean window *and*
    ``slo_recovery_s`` of distance from the last rung change, so the
    ladder cannot flap.  The watchdog never escalates past ``store-only``
    — ``drain`` is reserved for shutdown.
    """
    if rung >= RUNG_DRAIN:
        return None
    breached = False
    if len(samples) >= config.slo_min_samples:
        latencies = sorted(ms for _, ms, _ in samples)
        p99 = latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))]
        errors = sum(1 for _, _, ok in samples if not ok)
        ratio = errors / len(samples)
        breached = p99 > config.slo_p99_ms or ratio > config.slo_error_ratio
    if breached:
        return "escalate" if rung < RUNG_STORE_ONLY else None
    if rung > RUNG_FULL and now - last_change >= config.slo_recovery_s:
        recent_errors = sum(1 for _, _, ok in samples if not ok)
        if recent_errors == 0:
            return "recover"
    return None


class SimulationService:
    """Dedups, batches, gates, and prices admitted queries.

    Owns the daemon's :class:`ErrorBudget` (every admitted query is a
    task, sheds are ``LoadShed`` faults), the per-fingerprint
    :class:`BreakerRegistry`, and the degradation-ladder rung.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.budget = ErrorBudget()
        self.draining = False
        self.rung = RUNG_FULL
        self.breakers = BreakerRegistry(
            BreakerPolicy(
                threshold=self.config.breaker_threshold,
                cooldown_s=self.config.breaker_cooldown_s,
            )
        )
        self._sims: Dict[Tuple, TPUSim] = {}
        self._inflight: Dict[Tuple, asyncio.Future] = {}
        self._waiters: Dict[Tuple, int] = {}
        self._queue: List[Query] = []
        self._wakeup: Optional[asyncio.Event] = None
        self._batcher: Optional[asyncio.Task] = None
        self._watchdog: Optional[asyncio.Task] = None
        self._samples: Deque[Tuple[float, float, bool]] = deque(
            maxlen=self.config.slo_window
        )
        self._rung_changed_at = time.monotonic()
        self.simulations = 0  # queries that reached the engine (post-dedup)

    # ----------------------------------------------------------- lifecycle
    async def start(self) -> None:
        self._wakeup = asyncio.Event()
        self._batcher = asyncio.create_task(self._batch_loop())
        if self.config.watchdog:
            self._watchdog = asyncio.create_task(self._watchdog_loop())

    async def drain(self) -> None:
        """Stop admitting, finish every queued/in-flight query, stop."""
        self.draining = True
        while self._queue or self._inflight:
            if self._wakeup is not None:
                self._wakeup.set()
            await asyncio.sleep(self.config.batch_window_s)
        for task_attr in ("_batcher", "_watchdog"):
            task = getattr(self, task_attr)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                setattr(self, task_attr, None)

    @property
    def pending(self) -> int:
        return len(self._inflight)

    @property
    def rung_name(self) -> str:
        return LADDER_RUNGS[self.rung]

    # ----------------------------------------------------- degradation ladder
    def set_rung(self, rung: int, reason: str) -> None:
        """Move the ladder; logs, dumps the flight ring, bumps metrics."""
        rung = max(RUNG_FULL, min(rung, RUNG_DRAIN))
        if rung == self.rung:
            return
        previous = self.rung
        self.rung = rung
        self._rung_changed_at = time.monotonic()
        self._samples.clear()  # each rung earns its own evidence
        self.registry.inc_counter("repro_serve_rung_changes_total")
        log = obs_log.warning if rung > previous else obs_log.info
        log(
            "serve.rung_changed",
            rung=LADDER_RUNGS[rung], was=LADDER_RUNGS[previous], reason=reason,
        )
        flight_beacon.get_beacon().update(rung=LADDER_RUNGS[rung])
        maybe_dump(
            "serve-degraded" if rung > previous else "serve-recovered",
            {"rung": LADDER_RUNGS[rung], "was": LADDER_RUNGS[previous],
             "reason": reason},
        )

    def record_sample(self, latency_ms: float, ok: bool) -> None:
        """One completed query request, fuel for the SLO watchdog."""
        self._samples.append((time.monotonic(), latency_ms, ok))

    async def _watchdog_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.slo_interval_s)
            now = time.monotonic()
            decision = slo_decision(
                list(self._samples), self.rung, self.config, now,
                self._rung_changed_at,
            )
            if decision == "escalate":
                self.set_rung(self.rung + 1, "slo-watchdog: budget/p99 breach")
            elif decision == "recover":
                self.set_rung(self.rung - 1, "slo-watchdog: window clean")

    # ----------------------------------------------------------- admission
    def submit(self, query: Query) -> asyncio.Future:
        """Admit one query; returns the future its result resolves on.

        Raises :class:`Draining` during shutdown (or on the drain rung),
        :class:`BreakerOpen` when the spec's breaker refuses,
        :class:`StoreOnlyMiss` on a cold spec at the store-only rung and
        :class:`LoadShed` when the backlog exhausted the budget.
        """
        beacon = flight_beacon.get_beacon()
        beacon.requests += 1
        self.registry.inc_counter("repro_serve_requests_total")
        if self.draining or self.rung >= RUNG_DRAIN:
            self.budget.tasks += 1
            self.budget.failed += 1
            self.budget.count_fault("Draining")
            raise Draining(
                "server is draining"
                if self.draining
                else "server degraded to drain"
            )
        try:
            self.breakers.admit(query.fingerprint)
        except BreakerOpen:
            self.budget.tasks += 1
            self.budget.failed += 1
            self.budget.count_fault("BreakerOpen")
            self.registry.inc_counter("repro_serve_breaker_fastfail_total")
            raise
        loop = asyncio.get_running_loop()
        if self.rung >= RUNG_STORE_ONLY:
            # Store-only: answer warm memo/store hits, refuse cold specs.
            found, value = SIM_CACHE.peek(query.key, query.canonical_key())
            self.budget.tasks += 1
            if not found:
                self.budget.failed += 1
                self.budget.count_fault("StoreOnlyMiss")
                self.registry.inc_counter("repro_serve_store_only_miss_total")
                raise StoreOnlyMiss(
                    "degraded to store-only and this spec is not warm"
                )
            self.budget.succeeded += 1
            name = query.spec.describe() or "conv"
            if value.name != name:
                value = dataclasses.replace(value, name=name)
            future: asyncio.Future = loop.create_future()
            future.set_result(value)
            return future
        existing = self._inflight.get(query.key)
        if existing is not None:
            # Identical query already in flight: same future, no new task.
            self.registry.inc_counter("repro_serve_deduped_total")
            beacon.dedup_joins += 1
            if query.ctx is not None:
                # The joining request's tree records where its answer came
                # from: an instant linking it to the in-flight computation.
                trace.instant(
                    "serve.dedup_join", cat="serve",
                    trace_id=query.ctx.trace_id, span_id=query.ctx.span_id,
                )
            self.budget.tasks += 1
            self.budget.succeeded += 1
            self._waiters[query.key] = self._waiters.get(query.key, 0) + 1
            return existing
        if self.pending >= self.config.max_pending:
            self.budget.tasks += 1
            self.budget.failed += 1
            self.budget.count_fault("LoadShed")
            self.registry.inc_counter("repro_serve_shed_total")
            beacon.shed += 1
            raise LoadShed(
                f"pending backlog {self.pending} exhausts the budget "
                f"({self.config.max_pending})"
            )
        self.budget.tasks += 1
        future = loop.create_future()
        self._inflight[query.key] = future
        self._waiters[query.key] = self._waiters.get(query.key, 0) + 1
        self._queue.append(query)
        beacon.in_flight = self.pending
        beacon.queue_depth = len(self._queue)
        if self._wakeup is not None:
            self._wakeup.set()
        return future

    def release(self, query: Query, timed_out: bool = False) -> None:
        """One waiter is done with ``query`` (answered, failed, or gave up).

        When the *last* waiter abandons a query that has not been answered
        yet, the query is cooperatively cancelled: pulled from the batch
        queue (so it never reaches the engine) and its future cancelled
        (so a pricing pass already underway knows nobody is listening).
        """
        remaining = self._waiters.get(query.key, 0) - 1
        if remaining > 0:
            self._waiters[query.key] = remaining
            return
        self._waiters.pop(query.key, None)
        if not timed_out:
            return
        self.registry.inc_counter("repro_serve_deadline_timeouts_total")
        self.budget.failed += 1
        self.budget.count_fault("DeadlineExceeded")
        try:
            self._queue.remove(query)
        except ValueError:
            pass  # already handed to the pricer; the cancel below tells it
        future = self._inflight.pop(query.key, None)
        if future is not None and not future.done():
            future.cancel()
        beacon = flight_beacon.get_beacon()
        beacon.in_flight = self.pending
        beacon.queue_depth = len(self._queue)

    # ------------------------------------------------------------ batching
    def _sim_for(self, query: Query) -> TPUSim:
        cfg_key = query.key[1]
        sim = self._sims.get(cfg_key)
        if sim is None:
            sim = TPUSim(query.config)
            self._sims[cfg_key] = sim
        return sim

    async def _batch_loop(self) -> None:
        assert self._wakeup is not None
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if not self._queue:
                continue
            # Let a burst of concurrent clients coalesce into one batch.
            await asyncio.sleep(self.config.batch_window_s)
            batch = self._queue[: self.config.max_batch]
            del self._queue[: len(batch)]
            if self._queue:
                self._wakeup.set()
            await self._price_batch(batch)

    @staticmethod
    def _check_poison(specs: List[ConvSpec]) -> None:
        """Raise the injected AuditFault for a seeded poison spec, if any."""
        plan = fault_injection.get_active()
        if plan is None or not plan.poison_spec:
            return
        for spec in specs:
            if plan.poison_matches(spec.name):
                raise AuditFault(
                    f"injected poison spec {spec.name!r} "
                    "(--inject-faults poison=)"
                )

    def _settle(self, query: Query, result) -> None:
        """Resolve one priced query: future, budget, breaker bookkeeping."""
        future = self._inflight.pop(query.key, None)
        if future is None or future.cancelled():
            # Every waiter gave up before pricing finished: the result is
            # cached for next time, but this spec burned engine time past
            # its deadline — that is breaker-relevant history.
            self._record_breaker_failure(
                query, "DeadlineExceeded",
                "pricing outlived every waiter's deadline",
            )
            return
        self.budget.succeeded += 1
        self.breakers.record_success(query.fingerprint)
        if not future.done():
            future.set_result(result)

    def _fail(self, query: Query, err: BaseException) -> None:
        """Fail one priced query: future, budget, breaker bookkeeping."""
        self.budget.failed += 1
        self.budget.count_fault(type(err).__name__)
        self._record_breaker_failure(query, type(err).__name__, str(err))
        future = self._inflight.pop(query.key, None)
        if future is not None and not future.done():
            future.set_exception(err)

    def _record_breaker_failure(
        self, query: Query, fault: str, message: str
    ) -> None:
        tripped = self.breakers.record_failure(query.fingerprint, fault, message)
        if not tripped:
            return
        self.registry.inc_counter("repro_serve_breaker_trips_total")
        maybe_dump(
            "breaker-trip",
            {"fingerprint": query.fingerprint, "fault": fault,
             "spec": query.spec.describe(), "message": message},
        )
        self._quarantine_tripped(query, fault, message)

    def _quarantine_tripped(self, query: Query, fault: str, message: str) -> None:
        """Park a tripped spec in the store's serve quarantine journal.

        Best-effort: the journal rides in the persistent store directory
        (when one is attached) so ``dse replay``-style forensics get the
        full spec; a daemon without a store keeps the verdict in memory
        only.
        """
        from . import attached

        store = attached()
        if store is None:
            return
        from ..resilience.quarantine import QuarantineFile, QuarantineRecord

        breaker = self.breakers._breakers.get(query.fingerprint)
        failures = [
            {"attempt": i + 1, "fault": f["fault"], "error": f["message"]}
            for i, f in enumerate(breaker.failures if breaker else [])
        ]
        try:
            QuarantineFile(store.root / "serve-quarantine.jsonl").park(
                QuarantineRecord(
                    task_id=query.fingerprint,
                    payload={
                        "spec": dataclasses.asdict(query.spec),
                        "layout": query.layout.value,
                        "group_size": query.group_size,
                    },
                    reason=f"breaker tripped: {fault}: {message}"[:500],
                    failures=failures,
                )
            )
        except OSError as err:  # forensics must never take down serving
            obs_log.warning("serve.quarantine_write_failed", error=str(err))

    async def _price_serially(
        self, queries: List[Query], group_size, layout
    ) -> None:
        """Price one spec at a time: exact attribution, no blast radius.

        Used on the ``serial`` rung and as the fallback when a *batched*
        pricing call fails — the serial replay separates the poison spec
        (charged to its breaker) from innocent co-batched neighbors
        (answered normally), the same verdict discipline the DSE plane's
        quarantine replay uses.
        """
        loop = asyncio.get_running_loop()
        for query in queries:
            sim = self._sim_for(query)
            misses_before = SIM_CACHE.misses

            def _price_one(query=query, sim=sim):
                self._check_poison([query.spec])
                return sim.simulate_conv(
                    query.spec, group_size=query.group_size, layout=layout
                )

            try:
                result = await loop.run_in_executor(None, _price_one)
            except Exception as err:
                self._fail(query, err)
                obs_log.error(
                    "serve.query_failed",
                    spec=query.spec.describe(), fingerprint=query.fingerprint,
                    error=str(err),
                )
            else:
                self.simulations += SIM_CACHE.misses - misses_before
                self._settle(query, result)

    async def _price_batch(self, batch: List[Query]) -> None:
        # Group by (config, group_size mode, layout): one engine call each.
        groups: Dict[Tuple, List[Query]] = {}
        for query in batch:
            group = (query.key[1], query.group_size, query.layout)
            groups.setdefault(group, []).append(query)

        loop = asyncio.get_running_loop()
        for (_, group_size, layout), queries in groups.items():
            if self.rung >= RUNG_SERIAL:
                await self._price_serially(queries, group_size, layout)
                self._after_group()
                continue
            sim = self._sim_for(queries[0])
            specs = [q.spec for q in queries]
            started = time.perf_counter()
            misses_before = SIM_CACHE.misses
            # The batch span parents under the first traced query's request;
            # other members' trace ids ride along as link args so their
            # trees point at the shared computation.
            parent = next((q.ctx for q in queries if q.ctx is not None), None)
            batch_ctx = parent.child() if parent is not None else None
            links = [
                q.ctx.trace_id
                for q in queries
                if q.ctx is not None and q.ctx is not parent
            ]

            def _price(ctx=batch_ctx, sim=sim, specs=specs,
                       group_size=group_size, layout=layout):
                # run_in_executor does not propagate contextvars: re-activate
                # the batch node so engine spans/cache probes join its tree.
                with trace_context.activate(ctx):
                    self._check_poison(specs)
                    return sim.simulate_conv_batch(
                        specs, group_size=group_size, layout=layout
                    )

            try:
                if batch_ctx is not None:
                    with trace_context.activate_root(batch_ctx):
                        with trace.span(
                            "serve.batch", cat="serve",
                            queries=len(queries),
                            linked_traces=",".join(links),
                        ):
                            results = await loop.run_in_executor(None, _price)
                else:
                    results = await loop.run_in_executor(None, _price)
            except Exception as err:
                # Batched pricing failed: replay serially so the culprit is
                # charged to its breaker and innocents still get answers.
                obs_log.warning(
                    "serve.batch_failed_serial_replay",
                    error=str(err), queries=len(queries),
                )
                await self._price_serially(queries, group_size, layout)
                self._after_group()
                continue
            elapsed = time.perf_counter() - started
            # "Simulations" = fresh engine work, not queries priced: a query
            # answered from the memo or the persistent store is not one.
            performed = SIM_CACHE.misses - misses_before
            self.simulations += performed
            self.registry.inc_counter("repro_serve_batches_total")
            self.registry.inc_counter(
                "repro_serve_simulations_total", float(performed)
            )
            self.registry.observe("repro_serve_batch_seconds", elapsed)
            for query, result in zip(queries, results):
                self._settle(query, result)
            self._after_group()

    def _after_group(self) -> None:
        beacon = flight_beacon.get_beacon()
        beacon.in_flight = self.pending
        beacon.queue_depth = len(self._queue)
        beacon.maybe_write()


#: Paths with their own latency-histogram label; anything else is "other"
#: so a port scan cannot explode the metric's label cardinality.
KNOWN_ROUTES = (
    "/healthz", "/readyz", "/statusz", "/metrics", "/v1/conv", "/v1/conv/batch",
)

_JSON = "application/json"


class ReproServer:
    """The asyncio HTTP front-end around one :class:`SimulationService`."""

    def __init__(
        self,
        service: SimulationService,
        run_id: Optional[str] = None,
        worker_index: Optional[int] = None,
    ) -> None:
        self.service = service
        self.run_id = run_id
        #: Set in pre-forked workers; arms the worker-crash chaos mode and
        #: labels ``/statusz``.  ``None`` = single-process daemon.
        self.worker_index = worker_index
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_seq = 0

    # ------------------------------------------------------------ lifecycle
    async def start(self, sock=None) -> Tuple[str, int]:
        await self.service.start()
        config = self.service.config
        if sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=sock
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=config.host, port=config.port
            )
        host, port = self._server.sockets[0].getsockname()[:2]
        obs_log.info("serve.listening", host=host, port=port)
        return host, port

    @property
    def port(self) -> int:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, answer everything admitted."""
        obs_log.info("serve.draining", pending=self.service.pending)
        await self.service.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        obs_log.info("serve.stopped", budget=self.service.budget.to_dict())

    # ------------------------------------------------------------- protocol
    def _chaos_abort(self, writer: asyncio.StreamWriter) -> bool:
        """Fire pre-admission connection chaos, if armed.

        Both modes fire *before* the request is read, so an injected abort
        or worker crash never strands an **admitted** request — that
        invariant is the chaos campaign's gate.  (An external ``kill -9``
        still lands anywhere; the retrying client covers that.)
        """
        plan = fault_injection.get_active()
        if plan is None or not plan.serve:
            return False
        seq = self._conn_seq
        self._conn_seq += 1
        if plan.serve_fires("conn-reset", seq):
            transport = writer.transport
            if transport is not None:
                transport.abort()
            return True
        if self.worker_index is not None and plan.serve_fires("worker-crash", seq):
            obs_log.warning(
                "serve.injected_worker_crash", worker=self.worker_index
            )
            import os

            os._exit(137)  # the supervising parent must respawn us
        return False

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._chaos_abort(writer):
            return
        ctx: Optional[trace_context.TraceContext] = None
        started = time.perf_counter()
        route = "other"
        extra_headers: Dict[str, str] = {}
        discard_input = False
        try:
            request = await self._read_request(reader)
            if request is None:
                return  # connection opened and closed without a request
            method, path, headers, body = request
            route = path if path in KNOWN_ROUTES else "other"
            # One trace context per request: continue the caller's trace
            # when a traceparent header arrived, else mint a fresh root.
            ctx = trace_context.TraceContext.from_traceparent(
                headers.get("traceparent")
            ) or trace_context.TraceContext.new()
            with trace_context.activate_root(ctx):
                with trace.span(
                    "serve.request", cat="serve", method=method, route=route
                ) as span:
                    status, content_type, payload, extra_headers = (
                        await self._route(method, path, headers, body, ctx)
                    )
                    if span is not trace.NULL_SPAN:
                        span.note(status=status)
        except ProtocolError as err:
            status, content_type = err.status, _JSON
            payload = json.dumps(self._error_body(str(err)))
            discard_input = True  # see the drain below the response write
        except Exception as err:  # never tear the connection on a bug
            status, content_type = 500, _JSON
            payload = json.dumps(
                self._error_body(f"{type(err).__name__}: {err}")
            )
        elapsed = time.perf_counter() - started
        self.service.registry.observe(
            f'repro_serve_request_seconds{{route="{route}"}}', elapsed
        )
        if route.startswith("/v1/"):
            # Watchdog evidence: sheds and 5xx are failures, a breaker's
            # fast 422 and client errors are healthy fast paths.
            self.service.record_sample(
                elapsed * 1000.0, ok=status < 500 and status != 429
            )
        try:
            data = payload.encode("utf-8")
            extra = ""
            if ctx is not None:
                extra += f"X-Repro-Trace-Id: {ctx.trace_id}\r\n"
            if self.run_id:
                extra += f"X-Repro-Run-Id: {self.run_id}\r\n"
            for name, value in extra_headers.items():
                extra += f"{name}: {value}\r\n"
            writer.write(
                (
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"{extra}"
                    "Connection: close\r\n\r\n"
                ).encode("ascii")
                + data
            )
            await writer.drain()
            if discard_input:
                # A hostile request likely has unsent/unread bytes in
                # flight; closing with unread data makes the kernel RST
                # the connection and *destroy the error response*.
                # Briefly drain and discard so the 4xx actually arrives.
                loop = asyncio.get_running_loop()
                deadline = loop.time() + 0.25
                while True:
                    budget_s = deadline - loop.time()
                    if budget_s <= 0:
                        break
                    chunk = await asyncio.wait_for(
                        reader.read(1 << 16), timeout=budget_s
                    )
                    if not chunk:
                        break
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass  # client went away mid-response; nothing left to tell it
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _error_body(self, message: str, **fields) -> Dict[str, Any]:
        """Error JSON with correlatable detail (run id rides along)."""
        body: Dict[str, Any] = {"error": message}
        if self.run_id:
            body["run_id"] = self.run_id
        body.update(fields)
        return body

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Read one HTTP request under the protocol-hardening limits.

        Raises :class:`ProtocolError` for every hostile shape — slowloris
        headers (408), oversized headers (431), bad/oversized
        Content-Length (400/413), truncated bodies (400) — so the caller
        can always *answer* instead of silently hanging or dying.
        """
        config = self.service.config
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=config.header_timeout_s
            )
        except asyncio.TimeoutError:
            raise ProtocolError(
                408,
                f"request headers not finished within {config.header_timeout_s}s",
            ) from None
        except asyncio.LimitOverrunError:
            raise ProtocolError(431, "request headers too large") from None
        except asyncio.IncompleteReadError as err:
            if not err.partial:
                return None  # clean connect-then-close; nothing to answer
            raise ProtocolError(400, "connection closed mid-headers") from None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise ProtocolError(400, "malformed request line")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name and _:
                headers[name.strip().lower()] = value.strip()
        length = 0
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise ProtocolError(400, "malformed Content-Length") from None
            if length < 0:
                raise ProtocolError(400, "negative Content-Length")
            if length > config.max_body_bytes:
                raise ProtocolError(
                    413,
                    f"body of {length} bytes exceeds the "
                    f"{config.max_body_bytes}-byte limit",
                )
        if not length:
            return method, path, headers, b""
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=config.body_timeout_s
            )
        except asyncio.TimeoutError:
            raise ProtocolError(
                408,
                f"request body not delivered within {config.body_timeout_s}s",
            ) from None
        except asyncio.IncompleteReadError as err:
            raise ProtocolError(
                400,
                f"truncated body: Content-Length {length}, "
                f"got {len(err.partial)} bytes",
            ) from None
        return method, path, headers, body

    async def _route(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        ctx: Optional[trace_context.TraceContext] = None,
    ) -> Tuple[int, str, str, Dict[str, str]]:
        service = self.service
        if method == "GET" and path == "/healthz":
            # Liveness only: answering at all is the signal.  Routing
            # decisions belong to /readyz.
            return 200, _JSON, json.dumps(
                {
                    "status": "draining" if service.draining else "ok",
                    "rung": service.rung_name,
                    "pending": service.pending,
                    "budget": service.budget.to_dict(),
                },
                sort_keys=True,
            ), {}
        if method == "GET" and path == "/readyz":
            ready = not service.draining and service.rung < RUNG_STORE_ONLY
            doc = {
                "ready": ready,
                "rung": service.rung_name,
                "draining": service.draining,
            }
            if ready:
                return 200, _JSON, json.dumps(doc, sort_keys=True), {}
            retry = service.config.retry_after_drain_s
            return 503, _JSON, json.dumps(doc, sort_keys=True), {
                "Retry-After": _retry_after(retry)
            }
        if method == "GET" and path == "/statusz":
            return 200, _JSON, json.dumps(self.statusz(), sort_keys=True), {}
        if method == "GET" and path == "/metrics":
            self._export_gauges()
            return 200, "text/plain; version=0.0.4", render_prometheus(
                service.registry
            ), {}
        if method == "POST" and path == "/v1/conv":
            return await self._answer(headers, body, batch=False, ctx=ctx)
        if method == "POST" and path == "/v1/conv/batch":
            return await self._answer(headers, body, batch=True, ctx=ctx)
        return 404, _JSON, json.dumps({"error": f"no route {path}"}), {}

    def statusz(self) -> dict:
        """The live beacon snapshot, overlaid with serve-side truth."""
        service = self.service
        doc = flight_beacon.get_beacon().snapshot()
        doc["role"] = "serve"
        if self.run_id:
            doc["run_id"] = self.run_id
        doc["serve"]["in_flight"] = service.pending
        doc["serve"]["draining"] = service.draining
        doc["serve"]["simulations"] = service.simulations
        doc["serve"]["rung"] = service.rung_name
        doc["serve"]["breakers"] = service.breakers.snapshot()
        if self.worker_index is not None:
            doc["serve"]["worker"] = {
                "index": self.worker_index,
                "configured": service.config.workers,
            }
        doc["budget"] = service.budget.to_dict()
        return doc

    def _export_gauges(self) -> None:
        """Point-in-time serve state, refreshed at scrape time."""
        registry = self.service.registry
        registry.set_gauge("repro_serve_pending", float(self.service.pending))
        registry.set_gauge(
            "repro_serve_draining", 1.0 if self.service.draining else 0.0
        )
        registry.set_gauge("repro_serve_degraded", float(self.service.rung))
        breakers = self.service.breakers
        registry.set_gauge(
            "repro_serve_breaker_open", float(len(breakers.open_keys()))
        )
        stats = SIM_CACHE.stats
        registry.set_gauge("repro_sim_cache_entries", float(stats.entries))
        registry.set_gauge("repro_sim_cache_hit_rate", stats.hit_rate)
        if SIM_CACHE.backing is not None:
            store_stats = SIM_CACHE.backing.stats
            registry.set_gauge("repro_store_hit_rate", store_stats.hit_rate)
            registry.set_gauge(
                "repro_store_corrupt_skipped", float(store_stats.corrupt_skipped)
            )

    def _deadline_ms(self, headers: Dict[str, str]) -> float:
        raw = headers.get("x-repro-deadline-ms")
        if raw is None:
            return self.service.config.default_deadline_ms
        try:
            deadline = float(raw)
        except ValueError:
            raise BadRequest(f"X-Repro-Deadline-Ms must be numeric, got {raw!r}")
        if deadline <= 0:
            raise BadRequest("X-Repro-Deadline-Ms must be positive")
        return min(deadline, 3_600_000.0)

    async def _answer(
        self,
        headers: Dict[str, str],
        body: bytes,
        batch: bool,
        ctx: Optional[trace_context.TraceContext] = None,
    ) -> Tuple[int, str, str, Dict[str, str]]:
        config = self.service.config
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (json.JSONDecodeError, UnicodeDecodeError) as err:
            return 400, _JSON, json.dumps(
                self._error_body(f"bad JSON: {err}")
            ), {}
        try:
            deadline_ms = self._deadline_ms(headers)
            deadline_at = time.monotonic() + deadline_ms / 1000.0
            if batch:
                if not isinstance(payload, dict) or not isinstance(
                    payload.get("queries"), list
                ):
                    raise BadRequest("batch body must be {'queries': [...]}")
                queries = [Query.parse(q) for q in payload["queries"]]
            else:
                queries = [Query.parse(payload)]
        except BadRequest as err:
            return 400, _JSON, json.dumps(self._error_body(str(err))), {}
        queries = [
            dataclasses.replace(q, ctx=ctx, deadline_at=deadline_at)
            for q in queries
        ]
        submitted: List[Query] = []
        try:
            futures = []
            for query in queries:
                futures.append(self.service.submit(query))
                submitted.append(query)
        except Draining as err:
            for query in submitted:
                self.service.release(query)
            retry = config.retry_after_drain_s
            return 503, _JSON, json.dumps(
                self._error_body(str(err), retry_after_ms=int(retry * 1000))
            ), {"Retry-After": _retry_after(retry)}
        except StoreOnlyMiss as err:
            for query in submitted:
                self.service.release(query)
            retry = config.retry_after_drain_s
            return 503, _JSON, json.dumps(
                self._error_body(
                    str(err), rung=self.service.rung_name,
                    retry_after_ms=int(retry * 1000),
                )
            ), {"Retry-After": _retry_after(retry)}
        except LoadShed as err:
            for query in submitted:
                self.service.release(query)
            retry = config.retry_after_shed_s
            return 429, _JSON, json.dumps(
                self._error_body(str(err), retry_after_ms=int(retry * 1000))
            ), {"Retry-After": _retry_after(retry)}
        except BreakerOpen as err:
            for query in submitted:
                self.service.release(query)
            retry = max(0.5, err.verdict.get("retry_after_s", 0.0))
            return 422, _JSON, json.dumps(
                self._error_body(
                    str(err), verdict=err.verdict,
                    retry_after_ms=int(retry * 1000),
                ), sort_keys=True,
            ), {"Retry-After": _retry_after(retry)}
        try:
            remaining = deadline_at - time.monotonic()
            results = await asyncio.wait_for(
                asyncio.gather(*(asyncio.shield(f) for f in futures)),
                timeout=max(0.001, remaining),
            )
        except asyncio.TimeoutError:
            for query in queries:
                self.service.release(query, timed_out=True)
            retry = config.retry_after_shed_s
            return 504, _JSON, json.dumps(
                self._error_body(
                    f"deadline of {deadline_ms:.0f}ms exceeded",
                    retry_after_ms=int(retry * 1000),
                )
            ), {"Retry-After": _retry_after(retry)}
        except asyncio.CancelledError:
            # Another request's abandonment cancelled a shared future from
            # under us — answer this waiter honestly rather than unwinding.
            for query in queries:
                self.service.release(query, timed_out=True)
            retry = config.retry_after_shed_s
            return 504, _JSON, json.dumps(
                self._error_body(
                    "shared computation was cancelled past its deadline",
                    retry_after_ms=int(retry * 1000),
                )
            ), {"Retry-After": _retry_after(retry)}
        except Exception as err:
            for query in queries:
                self.service.release(query)
            return 500, _JSON, json.dumps(
                self._error_body(f"{type(err).__name__}: {err}")
            ), {}
        for query in queries:
            self.service.release(query)
        # End-to-end latency is observed per route in _handle_connection;
        # a second unlabeled observation here would double-count requests.
        answers = [result_payload(q, r) for q, r in zip(queries, results)]
        if batch:
            return 200, _JSON, json.dumps(
                {"results": answers}, sort_keys=True
            ), {}
        return 200, _JSON, json.dumps(answers[0], sort_keys=True), {}


def _retry_after(seconds: float) -> str:
    """``Retry-After`` is delta-seconds; round up so 0.4s isn't "now"."""
    return str(max(1, int(-(-seconds // 1))))


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Any] = None,
    headers: Optional[Dict[str, str]] = None,
    return_headers: bool = False,
):
    """Minimal asyncio HTTP client: ``(status, decoded body)``.

    Used by the integration tests and ``tools/serve_smoke.py`` so the
    round-trip stays stdlib-only end to end.  ``headers`` adds extra
    request headers (e.g. ``traceparent``); with ``return_headers`` the
    result is ``(status, body, response_headers)`` with lower-cased
    header names.
    """
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    extra = "".join(f"{k}: {v}\r\n" for k, v in (headers or {}).items())
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Content-Type: application/json\r\n"
                f"{extra}"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
            + body
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    if not raw:
        raise ConnectionResetError("empty response (connection reset?)")
    head, _, data = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    text = data.decode("utf-8")
    if b"application/json" in head:
        decoded: Any = json.loads(text) if text else None
    else:
        decoded = text
    if not return_headers:
        return status, decoded
    response_headers: Dict[str, str] = {}
    for line in head.decode("latin-1").split("\r\n")[1:]:
        name, sep, value = line.partition(":")
        if sep:
            response_headers[name.strip().lower()] = value.strip()
    return status, decoded, response_headers


#: Statuses :func:`http_request_retry` retries (all carry ``Retry-After``).
RETRYABLE_STATUSES = frozenset({429, 503, 504})


async def http_request_retry(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Any] = None,
    headers: Optional[Dict[str, str]] = None,
    deadline_s: float = 60.0,
    max_attempts: int = 32,
):
    """A retrying client that honors ``Retry-After``.

    Retries 429/503/504 after the server-suggested delay (capped so a
    drain hint cannot stall the loop) and connection-level failures
    (reset, refused, truncated response — a crashed worker mid-exchange)
    after a short backoff.  Returns ``(status, body, response_headers)``
    of the first definitive answer; raises ``TimeoutError`` when the
    deadline or attempt budget runs out — a *lost* request, which the
    chaos campaign treats as an invariant violation.
    """
    deadline = time.monotonic() + deadline_s
    delay = 0.05
    last: Optional[str] = None
    for _ in range(max_attempts):
        if time.monotonic() >= deadline:
            break
        try:
            status, body, response_headers = await http_request(
                host, port, method, path, payload,
                headers=headers, return_headers=True,
            )
        except (ConnectionError, OSError, asyncio.IncompleteReadError) as err:
            last = f"connection failure: {err}"
            await asyncio.sleep(min(delay, max(0.0, deadline - time.monotonic())))
            delay = min(1.0, delay * 2)
            continue
        if status not in RETRYABLE_STATUSES:
            return status, body, response_headers
        last = f"HTTP {status}: {body}"
        retry_after = response_headers.get("retry-after")
        try:
            wait = min(float(retry_after), 2.0) if retry_after else delay
        except ValueError:
            wait = delay
        await asyncio.sleep(min(wait, max(0.0, deadline - time.monotonic())))
        delay = min(1.0, delay * 2)
    raise TimeoutError(
        f"{method} {path} got no definitive answer in {deadline_s}s "
        f"(last: {last})"
    )


# ----------------------------------------------------------------- CLI entry


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve conv-timing queries over HTTP/JSON (stdlib asyncio).",
    )
    defaults = ServeConfig()
    parser.add_argument("--host", default=defaults.host)
    parser.add_argument("--port", type=int, default=defaults.port,
                        help=f"listen port (default {defaults.port}; 0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=defaults.workers,
                        help="pre-forked request workers behind a supervising "
                             "parent (default 1 = single process)")
    parser.add_argument("--store", default="", metavar="DIR",
                        help="persistent result store to warm-start from / write through to")
    parser.add_argument("--max-pending", type=int, default=defaults.max_pending,
                        help="pending-query budget before load-shedding (429)")
    parser.add_argument("--batch-window", type=float, default=defaults.batch_window_s,
                        metavar="S", help="coalescing window before each engine batch")
    parser.add_argument("--max-batch", type=int, default=defaults.max_batch,
                        help="queries per simulate_conv_batch call at most")
    parser.add_argument("--default-deadline-ms", type=float,
                        default=defaults.default_deadline_ms, metavar="MS",
                        help="per-request deadline when no X-Repro-Deadline-Ms "
                             "header arrives")
    parser.add_argument("--breaker-threshold", type=int,
                        default=defaults.breaker_threshold,
                        help="failures that trip a spec fingerprint's breaker")
    parser.add_argument("--breaker-cooldown", type=float,
                        default=defaults.breaker_cooldown_s, metavar="S",
                        help="seconds an open breaker refuses before half-opening")
    parser.add_argument("--slo-p99-ms", type=float, default=defaults.slo_p99_ms,
                        help="p99 latency above which the degradation ladder "
                             "escalates")
    parser.add_argument("--slo-error-ratio", type=float,
                        default=defaults.slo_error_ratio,
                        help="error ratio above which the ladder escalates")
    parser.add_argument("--no-watchdog", action="store_true",
                        help="disable the SLO watchdog (ladder moves only "
                             "explicitly)")
    parser.add_argument("--inject-faults", default=None, metavar="SPEC",
                        help="seeded chaos plan, e.g. 'serve=conn-reset,"
                             "worker-crash,rate=0.05,seed=7,poison=hostile'")
    parser.add_argument("--run-id", default=None,
                        help="run id stamped on responses/logs (default: generated)")
    parser.add_argument("--log-file", default=None, metavar="PATH",
                        help="append JSONL log events (with run/trace ids) here")
    parser.add_argument("--trace", default=None, metavar="PATH", nargs="?",
                        const="serve-trace.json",
                        help="record request span trees; Chrome export written "
                             "to PATH on drain (default serve-trace.json)")
    parser.add_argument("--status-file", default=None, metavar="PATH",
                        help="mirror the live beacon snapshot to this file "
                             "(readable by 'repro top --status-file'; with "
                             "--workers N the supervisor writes it and worker "
                             "i writes PATH.w<i>)")
    parser.add_argument("--flight", default=None, metavar="DIR",
                        help="enable the flight recorder; dumps land in DIR "
                             "on faults or SIGUSR1")
    return parser


def _config_from_args(args) -> ServeConfig:
    return ServeConfig(
        host=args.host, port=args.port, max_pending=args.max_pending,
        batch_window_s=args.batch_window, max_batch=args.max_batch,
        store_dir=args.store, workers=max(1, args.workers),
        default_deadline_ms=args.default_deadline_ms,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        slo_p99_ms=args.slo_p99_ms,
        slo_error_ratio=args.slo_error_ratio,
        watchdog=not args.no_watchdog,
    )


def configure_worker_observability(
    args, run_id: str, worker_index: Optional[int] = None
) -> None:
    """Wire logging / beacon / flight recorder / faults for one process.

    Shared by the single-process daemon and every pre-forked worker (each
    worker gets its own beacon file suffix and the same seeded fault
    plan — deterministic chaos per worker index).
    """
    status_path = args.status_file
    if status_path and worker_index is not None:
        status_path = f"{status_path}.w{worker_index}"
    obs_log.configure(log_file=args.log_file, run_id=run_id)
    flight_beacon.configure_beacon(
        role="serve", run_id=run_id, status_path=status_path
    )
    if args.flight:
        from ..obs.flight import recorder as flight_recorder

        flight_recorder.configure_recorder(run_dir=args.flight)
    if args.trace:
        trace.enable()
    if args.inject_faults:
        fault_injection.activate(
            fault_injection.FaultPlan.parse(args.inject_faults)
        )


async def run_server(
    config: ServeConfig,
    run_id: str,
    sock=None,
    worker_index: Optional[int] = None,
    announce: bool = True,
    heartbeat=None,
    trace_path: Optional[str] = None,
) -> None:
    """One serving process's main loop: listen, handle, drain on signal.

    ``sock`` is the supervisor-owned listener in pre-forked workers;
    ``heartbeat`` an optional zero-arg callable invoked about once a
    second so the supervisor can tell a live worker from a hung one.
    """
    service = SimulationService(config)
    server = ReproServer(service, run_id=run_id, worker_index=worker_index)
    host, port = await server.start(sock=sock)
    if announce:
        print(f"serve: listening on http://{host}:{port} "
              f"(max_pending={config.max_pending}, max_batch={config.max_batch}, "
              f"workers={config.workers}, run={run_id})",
              flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass

    beat_task: Optional[asyncio.Task] = None
    if heartbeat is not None:
        async def _beat() -> None:
            while True:
                heartbeat()
                await asyncio.sleep(1.0)

        beat_task = asyncio.create_task(_beat())
    await stop.wait()
    if beat_task is not None:
        beat_task.cancel()
    await server.shutdown()
    budget = service.budget
    print(f"serve: drained; served {budget.succeeded}/{budget.tasks} "
          f"(shed {budget.faults_by_class.get('LoadShed', 0)})",
          flush=True)
    if trace_path:
        from ..trace.export import write_chrome_trace

        path = write_chrome_trace(
            trace_path, trace.drain_events(), {"run_id": run_id}
        )
        print(f"serve: trace written to {path}")


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Run the daemon until SIGINT/SIGTERM, then drain gracefully."""
    args = build_parser().parse_args(argv)
    config = _config_from_args(args)
    from ..obs.manifest import new_run_id

    run_id = args.run_id or new_run_id()
    if config.workers > 1:
        from .workers import supervise

        return supervise(args, config, run_id)
    configure_worker_observability(args, run_id)
    if config.store_dir:
        from . import attach

        store = attach(config.store_dir)
        print(f"serve: persistent store at {store.root} "
              f"({len(store)} records)")
    asyncio.run(run_server(config, run_id, trace_path=args.trace))
    obs_log.shutdown()
    return 0
