"""``repro serve`` — a long-lived conv-timing daemon over HTTP/JSON.

A stdlib-``asyncio`` front-end for the simulation stack: clients POST a
ConvSpec (plus optional hardware-config overrides) and get back the same
:class:`~repro.systolic.simulator.LayerResult` numbers a ``repro run``
would compute — served from the in-process memo, the persistent store
(:mod:`repro.store`), or a fresh batched simulation, in that order.

Request handling is built for fleets of duplicate queries:

- **dedup**: queries are keyed by the simulator's own cache key; a query
  identical to one already in flight awaits the same future — N clients
  asking for ResNet conv3_1 cost one simulation;
- **batching**: queued queries are drained every ``batch_window_s`` (or
  when ``max_batch`` accumulate) and grouped by hardware config into
  single :meth:`TPUSim.simulate_conv_batch` calls, so the batched
  schedule engine amortizes pricing exactly as the harness does;
- **load shedding**: admission consults the service's
  :class:`~repro.resilience.supervisor.ErrorBudget` — when the pending
  backlog exceeds the configured budget the query is refused with HTTP
  429 (and counted as a ``LoadShed`` fault) instead of growing the queue
  without bound;
- **graceful drain**: shutdown stops admitting (503), finishes every
  in-flight simulation, and answers the clients that were already queued.

Endpoints: ``GET /healthz``, ``GET /statusz`` (live beacon snapshot for
``repro top``), ``GET /metrics`` (Prometheus exposition of the live
registry, including per-route latency histograms), ``POST /v1/conv`` (one
query), ``POST /v1/conv/batch`` (``{"queries": [...]}``).  Everything is
stdlib-only — no web framework.

Observability: every request gets a W3C-style trace context — parsed from
an incoming ``traceparent`` header or freshly minted — echoed back as
``X-Repro-Trace-Id`` alongside ``X-Repro-Run-Id``.  Under ``--trace`` the
daemon records a connected span tree per request (``serve.request`` →
``serve.batch`` → cache probe → engine spans) and writes the Chrome
export on drain.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import signal
import time
from typing import Any, Dict, List, Optional, Tuple

from ..core.conv_spec import ConvSpec
from ..core.layouts import Layout
from ..errors import ConfigError
from ..obs import log as obs_log
from ..obs.flight import beacon as flight_beacon
from ..obs.prom import render_prometheus
from ..perf.cache import config_key, spec_key
from ..resilience.supervisor import ErrorBudget
from ..systolic.config import TPU_V2, TPUConfig
from ..systolic.simulator import TPUSim, tpu_multi_tile_policy
from ..trace import context as trace_context
from ..trace import tracer as trace
from ..trace.metrics import MetricsRegistry

__all__ = [
    "ServeConfig",
    "BadRequest",
    "LoadShed",
    "Draining",
    "Query",
    "SimulationService",
    "ReproServer",
    "http_request",
    "result_payload",
    "serve_main",
    "build_parser",
]

#: ConvSpec fields a query's ``spec`` object may set.
SPEC_FIELDS = frozenset(
    {"n", "c_in", "h_in", "w_in", "c_out", "h_filter", "w_filter",
     "stride", "padding", "dilation", "name"}
)

#: TPUConfig scalar fields a query's ``config`` object may override.
CONFIG_FIELDS = frozenset(
    {"array_rows", "array_cols", "clock_ghz", "sram_word_elems",
     "sram_elem_bytes", "unified_sram_bytes", "vector_alus",
     "compute_elem_bytes", "weight_load_cycles_per_row",
     "tile_setup_cycles", "weight_double_buffer"}
)


class BadRequest(ValueError):
    """The request body cannot be turned into a simulation query."""


class LoadShed(RuntimeError):
    """Admission refused: the pending backlog exceeds the error budget."""


class Draining(RuntimeError):
    """Admission refused: the server is shutting down."""


@dataclasses.dataclass
class ServeConfig:
    """Tunables of one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 8707
    #: Pending-query budget; admission beyond it sheds with HTTP 429.
    max_pending: int = 256
    #: Seconds the batcher waits to let concurrent queries coalesce.
    batch_window_s: float = 0.005
    #: Queries drained into one ``simulate_conv_batch`` call at most.
    max_batch: int = 64
    #: Persistent store directory ("" = serve from memo only).
    store_dir: str = ""


@dataclasses.dataclass(frozen=True)
class Query:
    """One admitted, validated timing query."""

    spec: ConvSpec
    config: TPUConfig
    group_size: Optional[int]
    layout: Layout
    key: Tuple  # the simulator's exact cache key — also the dedup key
    #: The request's trace context (excluded from equality/hashing so two
    #: identical queries from different requests still dedup onto one key).
    ctx: Optional[trace_context.TraceContext] = dataclasses.field(
        default=None, compare=False
    )

    @classmethod
    def parse(cls, payload: Any) -> "Query":
        """Validate a JSON body into a query (raises :class:`BadRequest`)."""
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        raw_spec = payload.get("spec")
        if not isinstance(raw_spec, dict):
            raise BadRequest("missing 'spec' object")
        unknown = set(raw_spec) - SPEC_FIELDS
        if unknown:
            raise BadRequest(f"unknown spec fields: {sorted(unknown)}")
        overrides = payload.get("config", {})
        if not isinstance(overrides, dict):
            raise BadRequest("'config' must be an object of TPUConfig overrides")
        unknown = set(overrides) - CONFIG_FIELDS
        if unknown:
            raise BadRequest(f"unknown config fields: {sorted(unknown)}")
        raw_layout = payload.get("layout", Layout.NHWC.value)
        try:
            layout = Layout(raw_layout)
        except ValueError:
            raise BadRequest(f"unknown layout {raw_layout!r}") from None
        group_size = payload.get("group_size")
        if group_size is not None and (
            not isinstance(group_size, int) or group_size <= 0
        ):
            raise BadRequest("'group_size' must be a positive integer")
        try:
            spec = ConvSpec(**raw_spec)
            if overrides:
                if "array_rows" in overrides and "num_vector_memories" not in overrides:
                    # TPUConfig ties one vector memory to each PE row.
                    overrides = dict(
                        overrides, num_vector_memories=overrides["array_rows"]
                    )
                config = dataclasses.replace(TPU_V2, **overrides)
            else:
                config = TPU_V2
        except (ConfigError, TypeError) as err:
            raise BadRequest(str(err)) from None
        resolved = (
            group_size
            if group_size is not None
            else tpu_multi_tile_policy(spec, config.array_rows)
        )
        key = ("tpu-conv", config_key(config), spec_key(spec), resolved, layout.value)
        return cls(
            spec=spec, config=config, group_size=group_size,
            layout=layout, key=key,
        )


def result_payload(query: Query, result) -> Dict[str, Any]:
    """JSON response body for one served LayerResult."""
    clock_hz = query.config.clock_ghz * 1e9
    return {
        "name": result.name,
        "cycles": result.cycles,
        "seconds": result.cycles / clock_hz,
        "tflops": result.tflops,
        "utilization": result.utilization,
        "compute_cycles": result.compute_cycles,
        "dma_cycles": result.dma_cycles,
        "exposed_dma_cycles": result.exposed_dma_cycles,
        "macs": result.macs,
        "group_size": result.group_size,
        "layout": query.layout.value,
    }


class SimulationService:
    """Dedups, batches, and prices admitted queries.

    Owns the daemon's :class:`ErrorBudget`: every admitted query is a
    task, sheds are failures of class ``LoadShed``, and the budget is
    what ``/healthz`` and the final drain report expose.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.budget = ErrorBudget()
        self.draining = False
        self._sims: Dict[Tuple, TPUSim] = {}
        self._inflight: Dict[Tuple, asyncio.Future] = {}
        self._queue: List[Query] = []
        self._wakeup: Optional[asyncio.Event] = None
        self._batcher: Optional[asyncio.Task] = None
        self.simulations = 0  # queries that reached the engine (post-dedup)

    # ----------------------------------------------------------- lifecycle
    async def start(self) -> None:
        self._wakeup = asyncio.Event()
        self._batcher = asyncio.create_task(self._batch_loop())

    async def drain(self) -> None:
        """Stop admitting, finish every queued/in-flight query, stop."""
        self.draining = True
        while self._queue or self._inflight:
            if self._wakeup is not None:
                self._wakeup.set()
            await asyncio.sleep(self.config.batch_window_s)
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None

    @property
    def pending(self) -> int:
        return len(self._inflight)

    # ----------------------------------------------------------- admission
    def submit(self, query: Query) -> asyncio.Future:
        """Admit one query; returns the future its result resolves on.

        Raises :class:`Draining` during shutdown and :class:`LoadShed`
        when the pending backlog has exhausted the budget.
        """
        if self.draining:
            raise Draining("server is draining")
        beacon = flight_beacon.get_beacon()
        beacon.requests += 1
        self.registry.inc_counter("repro_serve_requests_total")
        existing = self._inflight.get(query.key)
        if existing is not None:
            # Identical query already in flight: same future, no new task.
            self.registry.inc_counter("repro_serve_deduped_total")
            beacon.dedup_joins += 1
            if query.ctx is not None:
                # The joining request's tree records where its answer came
                # from: an instant linking it to the in-flight computation.
                trace.instant(
                    "serve.dedup_join", cat="serve",
                    trace_id=query.ctx.trace_id, span_id=query.ctx.span_id,
                )
            self.budget.tasks += 1
            self.budget.succeeded += 1
            return existing
        if self.pending >= self.config.max_pending:
            self.budget.tasks += 1
            self.budget.failed += 1
            self.budget.count_fault("LoadShed")
            self.registry.inc_counter("repro_serve_shed_total")
            beacon.shed += 1
            raise LoadShed(
                f"pending backlog {self.pending} exhausts the budget "
                f"({self.config.max_pending})"
            )
        self.budget.tasks += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[query.key] = future
        self._queue.append(query)
        beacon.in_flight = self.pending
        beacon.queue_depth = len(self._queue)
        if self._wakeup is not None:
            self._wakeup.set()
        return future

    # ------------------------------------------------------------ batching
    def _sim_for(self, query: Query) -> TPUSim:
        cfg_key = query.key[1]
        sim = self._sims.get(cfg_key)
        if sim is None:
            sim = TPUSim(query.config)
            self._sims[cfg_key] = sim
        return sim

    async def _batch_loop(self) -> None:
        assert self._wakeup is not None
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if not self._queue:
                continue
            # Let a burst of concurrent clients coalesce into one batch.
            await asyncio.sleep(self.config.batch_window_s)
            batch = self._queue[: self.config.max_batch]
            del self._queue[: len(batch)]
            if self._queue:
                self._wakeup.set()
            await self._price_batch(batch)

    async def _price_batch(self, batch: List[Query]) -> None:
        # Group by (config, group_size mode, layout): one engine call each.
        groups: Dict[Tuple, List[Query]] = {}
        for query in batch:
            group = (query.key[1], query.group_size, query.layout)
            groups.setdefault(group, []).append(query)
        from ..perf.cache import SIM_CACHE

        loop = asyncio.get_running_loop()
        for (_, group_size, layout), queries in groups.items():
            sim = self._sim_for(queries[0])
            specs = [q.spec for q in queries]
            started = time.perf_counter()
            misses_before = SIM_CACHE.misses
            # The batch span parents under the first traced query's request;
            # other members' trace ids ride along as link args so their
            # trees point at the shared computation.
            parent = next((q.ctx for q in queries if q.ctx is not None), None)
            batch_ctx = parent.child() if parent is not None else None
            links = [
                q.ctx.trace_id
                for q in queries
                if q.ctx is not None and q.ctx is not parent
            ]

            def _price(ctx=batch_ctx, sim=sim, specs=specs,
                       group_size=group_size, layout=layout):
                # run_in_executor does not propagate contextvars: re-activate
                # the batch node so engine spans/cache probes join its tree.
                with trace_context.activate(ctx):
                    return sim.simulate_conv_batch(
                        specs, group_size=group_size, layout=layout
                    )

            try:
                if batch_ctx is not None:
                    with trace_context.activate_root(batch_ctx):
                        with trace.span(
                            "serve.batch", cat="serve",
                            queries=len(queries),
                            linked_traces=",".join(links),
                        ):
                            results = await loop.run_in_executor(None, _price)
                else:
                    results = await loop.run_in_executor(None, _price)
            except Exception as err:  # pricing failed: fail those futures
                for query in queries:
                    self.budget.failed += 1
                    self.budget.count_fault(type(err).__name__)
                    future = self._inflight.pop(query.key, None)
                    if future is not None and not future.done():
                        future.set_exception(err)
                obs_log.error(
                    "serve.batch_failed", error=str(err), queries=len(queries)
                )
                beacon = flight_beacon.get_beacon()
                beacon.in_flight = self.pending
                beacon.queue_depth = len(self._queue)
                continue
            elapsed = time.perf_counter() - started
            # "Simulations" = fresh engine work, not queries priced: a query
            # answered from the memo or the persistent store is not one.
            performed = SIM_CACHE.misses - misses_before
            self.simulations += performed
            self.registry.inc_counter("repro_serve_batches_total")
            self.registry.inc_counter(
                "repro_serve_simulations_total", float(performed)
            )
            self.registry.observe("repro_serve_batch_seconds", elapsed)
            for query, result in zip(queries, results):
                self.budget.succeeded += 1
                future = self._inflight.pop(query.key, None)
                if future is not None and not future.done():
                    future.set_result(result)
            beacon = flight_beacon.get_beacon()
            beacon.in_flight = self.pending
            beacon.queue_depth = len(self._queue)
            beacon.maybe_write()


#: Paths with their own latency-histogram label; anything else is "other"
#: so a port scan cannot explode the metric's label cardinality.
KNOWN_ROUTES = ("/healthz", "/statusz", "/metrics", "/v1/conv", "/v1/conv/batch")


class ReproServer:
    """The asyncio HTTP front-end around one :class:`SimulationService`."""

    def __init__(
        self, service: SimulationService, run_id: Optional[str] = None
    ) -> None:
        self.service = service
        self.run_id = run_id
        self._server: Optional[asyncio.base_events.Server] = None

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> Tuple[str, int]:
        await self.service.start()
        config = self.service.config
        self._server = await asyncio.start_server(
            self._handle_connection, host=config.host, port=config.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        obs_log.info("serve.listening", host=host, port=port)
        return host, port

    @property
    def port(self) -> int:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, answer everything admitted."""
        obs_log.info("serve.draining", pending=self.service.pending)
        await self.service.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        obs_log.info("serve.stopped", budget=self.service.budget.to_dict())

    # ------------------------------------------------------------- protocol
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        ctx: Optional[trace_context.TraceContext] = None
        started = time.perf_counter()
        route = "other"
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, headers, body = request
            route = path if path in KNOWN_ROUTES else "other"
            # One trace context per request: continue the caller's trace
            # when a traceparent header arrived, else mint a fresh root.
            ctx = trace_context.TraceContext.from_traceparent(
                headers.get("traceparent")
            ) or trace_context.TraceContext.new()
            with trace_context.activate_root(ctx):
                with trace.span(
                    "serve.request", cat="serve", method=method, route=route
                ) as span:
                    status, content_type, payload = await self._route(
                        method, path, body, ctx
                    )
                    if span is not trace.NULL_SPAN:
                        span.note(status=status)
        except Exception as err:  # never tear the connection on a bug
            status, content_type, payload = 500, "application/json", json.dumps(
                {"error": f"{type(err).__name__}: {err}"}
            )
        self.service.registry.observe(
            f'repro_serve_request_seconds{{route="{route}"}}',
            time.perf_counter() - started,
        )
        try:
            data = payload.encode("utf-8")
            extra = ""
            if ctx is not None:
                extra += f"X-Repro-Trace-Id: {ctx.trace_id}\r\n"
            if self.run_id:
                extra += f"X-Repro-Run-Id: {self.run_id}\r\n"
            writer.write(
                (
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"{extra}"
                    "Connection: close\r\n\r\n"
                ).encode("ascii")
                + data
            )
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name and _:
                headers[name.strip().lower()] = value.strip()
        length = 0
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                return None
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        ctx: Optional[trace_context.TraceContext] = None,
    ) -> Tuple[int, str, str]:
        service = self.service
        if method == "GET" and path == "/healthz":
            return 200, "application/json", json.dumps(
                {
                    "status": "draining" if service.draining else "ok",
                    "pending": service.pending,
                    "budget": service.budget.to_dict(),
                },
                sort_keys=True,
            )
        if method == "GET" and path == "/statusz":
            return 200, "application/json", json.dumps(
                self.statusz(), sort_keys=True
            )
        if method == "GET" and path == "/metrics":
            self._export_gauges()
            return 200, "text/plain; version=0.0.4", render_prometheus(
                service.registry
            )
        if method == "POST" and path == "/v1/conv":
            return await self._answer(body, batch=False, ctx=ctx)
        if method == "POST" and path == "/v1/conv/batch":
            return await self._answer(body, batch=True, ctx=ctx)
        return 404, "application/json", json.dumps({"error": f"no route {path}"})

    def statusz(self) -> dict:
        """The live beacon snapshot, overlaid with serve-side truth."""
        service = self.service
        doc = flight_beacon.get_beacon().snapshot()
        doc["role"] = "serve"
        if self.run_id:
            doc["run_id"] = self.run_id
        doc["serve"]["in_flight"] = service.pending
        doc["serve"]["draining"] = service.draining
        doc["serve"]["simulations"] = service.simulations
        doc["budget"] = service.budget.to_dict()
        return doc

    def _export_gauges(self) -> None:
        """Point-in-time serve state, refreshed at scrape time."""
        registry = self.service.registry
        registry.set_gauge("repro_serve_pending", float(self.service.pending))
        registry.set_gauge(
            "repro_serve_draining", 1.0 if self.service.draining else 0.0
        )
        from ..perf.cache import SIM_CACHE

        stats = SIM_CACHE.stats
        registry.set_gauge("repro_sim_cache_entries", float(stats.entries))
        registry.set_gauge("repro_sim_cache_hit_rate", stats.hit_rate)
        if SIM_CACHE.backing is not None:
            store_stats = SIM_CACHE.backing.stats
            registry.set_gauge("repro_store_hit_rate", store_stats.hit_rate)
            registry.set_gauge(
                "repro_store_corrupt_skipped", float(store_stats.corrupt_skipped)
            )

    async def _answer(
        self,
        body: bytes,
        batch: bool,
        ctx: Optional[trace_context.TraceContext] = None,
    ) -> Tuple[int, str, str]:
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (json.JSONDecodeError, UnicodeDecodeError) as err:
            return 400, "application/json", json.dumps({"error": f"bad JSON: {err}"})
        try:
            if batch:
                if not isinstance(payload, dict) or not isinstance(
                    payload.get("queries"), list
                ):
                    raise BadRequest("batch body must be {'queries': [...]}")
                queries = [Query.parse(q) for q in payload["queries"]]
            else:
                queries = [Query.parse(payload)]
        except BadRequest as err:
            return 400, "application/json", json.dumps({"error": str(err)})
        if ctx is not None:
            queries = [dataclasses.replace(q, ctx=ctx) for q in queries]
        try:
            futures = [self.service.submit(q) for q in queries]
        except Draining as err:
            return 503, "application/json", json.dumps({"error": str(err)})
        except LoadShed as err:
            return 429, "application/json", json.dumps({"error": str(err)})
        results = await asyncio.gather(*futures)
        # End-to-end latency is observed per route in _handle_connection;
        # a second unlabeled observation here would double-count requests.
        answers = [result_payload(q, r) for q, r in zip(queries, results)]
        if batch:
            return 200, "application/json", json.dumps(
                {"results": answers}, sort_keys=True
            )
        return 200, "application/json", json.dumps(answers[0], sort_keys=True)


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Any] = None,
    headers: Optional[Dict[str, str]] = None,
    return_headers: bool = False,
):
    """Minimal asyncio HTTP client: ``(status, decoded body)``.

    Used by the integration tests and ``tools/serve_smoke.py`` so the
    round-trip stays stdlib-only end to end.  ``headers`` adds extra
    request headers (e.g. ``traceparent``); with ``return_headers`` the
    result is ``(status, body, response_headers)`` with lower-cased
    header names.
    """
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    extra = "".join(f"{k}: {v}\r\n" for k, v in (headers or {}).items())
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Content-Type: application/json\r\n"
                f"{extra}"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
            + body
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, data = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    text = data.decode("utf-8")
    if b"application/json" in head:
        decoded: Any = json.loads(text) if text else None
    else:
        decoded = text
    if not return_headers:
        return status, decoded
    response_headers: Dict[str, str] = {}
    for line in head.decode("latin-1").split("\r\n")[1:]:
        name, sep, value = line.partition(":")
        if sep:
            response_headers[name.strip().lower()] = value.strip()
    return status, decoded, response_headers


# ----------------------------------------------------------------- CLI entry


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve conv-timing queries over HTTP/JSON (stdlib asyncio).",
    )
    defaults = ServeConfig()
    parser.add_argument("--host", default=defaults.host)
    parser.add_argument("--port", type=int, default=defaults.port,
                        help=f"listen port (default {defaults.port}; 0 = ephemeral)")
    parser.add_argument("--store", default="", metavar="DIR",
                        help="persistent result store to warm-start from / write through to")
    parser.add_argument("--max-pending", type=int, default=defaults.max_pending,
                        help="pending-query budget before load-shedding (429)")
    parser.add_argument("--batch-window", type=float, default=defaults.batch_window_s,
                        metavar="S", help="coalescing window before each engine batch")
    parser.add_argument("--max-batch", type=int, default=defaults.max_batch,
                        help="queries per simulate_conv_batch call at most")
    parser.add_argument("--run-id", default=None,
                        help="run id stamped on responses/logs (default: generated)")
    parser.add_argument("--log-file", default=None, metavar="PATH",
                        help="append JSONL log events (with run/trace ids) here")
    parser.add_argument("--trace", default=None, metavar="PATH", nargs="?",
                        const="serve-trace.json",
                        help="record request span trees; Chrome export written "
                             "to PATH on drain (default serve-trace.json)")
    parser.add_argument("--status-file", default=None, metavar="PATH",
                        help="mirror the live beacon snapshot to this file "
                             "(readable by 'repro top --status-file')")
    parser.add_argument("--flight", default=None, metavar="DIR",
                        help="enable the flight recorder; dumps land in DIR "
                             "on faults or SIGUSR1")
    return parser


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Run the daemon until SIGINT/SIGTERM, then drain gracefully."""
    args = build_parser().parse_args(argv)
    config = ServeConfig(
        host=args.host, port=args.port, max_pending=args.max_pending,
        batch_window_s=args.batch_window, max_batch=args.max_batch,
        store_dir=args.store,
    )
    from ..obs.manifest import new_run_id

    run_id = args.run_id or new_run_id()
    obs_log.configure(log_file=args.log_file, run_id=run_id)
    flight_beacon.configure_beacon(
        role="serve", run_id=run_id, status_path=args.status_file
    )
    if args.flight:
        from ..obs.flight import recorder as flight_recorder

        flight_recorder.configure_recorder(run_dir=args.flight)
    if args.trace:
        trace.enable()
    if config.store_dir:
        from . import attach

        store = attach(config.store_dir)
        print(f"serve: persistent store at {store.root} "
              f"({len(store)} records)")

    async def run() -> None:
        service = SimulationService(config)
        server = ReproServer(service, run_id=run_id)
        host, port = await server.start()
        print(f"serve: listening on http://{host}:{port} "
              f"(max_pending={config.max_pending}, max_batch={config.max_batch}, "
              f"run={run_id})",
              flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await stop.wait()
        await server.shutdown()
        budget = service.budget
        print(f"serve: drained; served {budget.succeeded}/{budget.tasks} "
              f"(shed {budget.faults_by_class.get('LoadShed', 0)})")
        if args.trace:
            from ..trace.export import write_chrome_trace

            path = write_chrome_trace(
                args.trace, trace.drain_events(), {"run_id": run_id}
            )
            print(f"serve: trace written to {path}")

    asyncio.run(run())
    obs_log.shutdown()
    return 0
