"""JSON codec for cached simulation results: exact, typed, whitelisted.

The persistent store holds the same frozen-dataclass values the in-process
memo cache holds (:class:`~repro.systolic.simulator.LayerResult`, the GPU
timing results, ...).  They must round-trip **bit-exactly** — a served
record feeds the same report renderers and audits as a fresh computation —
so the codec leans on two guarantees:

- Python's ``json`` emits floats with ``repr``, the shortest string that
  round-trips the IEEE double exactly, and parses them back to the same
  bits; ints are arbitrary-precision both ways.
- Structure is encoded *with its type*: a dataclass becomes
  ``{"__dc__": [module, qualname], "fields": {...}}``, an enum becomes
  ``{"__enum__": [module, qualname], "value": ...}``, tuples are tagged so
  they do not come back as lists.

Decoding resolves types only from :data:`ALLOWED_MODULES` — the closed set
of modules that define cacheable result types — so a store file can never
cause an arbitrary import or construct an unexpected class.  A value the
codec cannot express (e.g. one holding a numpy array) raises
:class:`CodecError`; the store counts it and simply does not persist it,
which is always safe (the entry stays memoized in process).
"""

from __future__ import annotations

import dataclasses
import enum
import importlib
from typing import Any

__all__ = ["CodecError", "ALLOWED_MODULES", "encode_value", "decode_value"]


class CodecError(ValueError):
    """A value (or record) the result codec cannot faithfully handle."""


#: Modules cacheable result types may come from.  Decoding refuses any
#: other module, so records cannot trigger arbitrary imports.
ALLOWED_MODULES = frozenset(
    {
        "repro.systolic.simulator",
        "repro.systolic.explicit_schedule",
        "repro.systolic.scheduler",
        "repro.core.conv_spec",
        "repro.core.layouts",
        "repro.gpu.blocked_gemm",
        "repro.gpu.tensor_core",
        "repro.gpu.shared_memory",
        "repro.gpu.channel_first",
        "repro.gpu.channel_last",
        "repro.gpu.explicit",
        "repro.gpu.cudnn_model",
        "repro.gpu.functional",
        "repro.analysis.roofline",
    }
)


def _type_ref(cls: type) -> list:
    module = cls.__module__
    if module not in ALLOWED_MODULES:
        raise CodecError(
            f"type {cls.__qualname__} lives in {module}, which is not an "
            f"allowed result-type module"
        )
    return [module, cls.__qualname__]


def encode_value(value: Any) -> Any:
    """Encode a cached value into JSON-serialisable structure."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, enum.Enum):
        return {"__enum__": _type_ref(type(value)), "value": encode_value(value.value)}
    if isinstance(value, int):  # bool handled above
        return int(value)
    if isinstance(value, float):  # includes np.float64 (a float subclass)
        return float(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dc__": _type_ref(type(value)),
            "fields": {
                f.name: encode_value(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    item = getattr(value, "item", None)  # numpy scalars not covered above
    if callable(item):
        try:
            return encode_value(item())
        except (TypeError, ValueError):
            pass
    raise CodecError(f"cannot encode value of type {type(value).__name__}")


def _resolve_type(ref: Any) -> type:
    if (
        not isinstance(ref, (list, tuple))
        or len(ref) != 2
        or not all(isinstance(part, str) for part in ref)
    ):
        raise CodecError(f"malformed type reference {ref!r}")
    module_name, qualname = ref
    if module_name not in ALLOWED_MODULES:
        raise CodecError(f"module {module_name!r} is not an allowed result module")
    module = importlib.import_module(module_name)
    obj: Any = module
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            raise CodecError(f"unknown type {qualname!r} in {module_name}")
    if not isinstance(obj, type):
        raise CodecError(f"{module_name}.{qualname} is not a type")
    return obj


def decode_value(obj: Any) -> Any:
    """Decode :func:`encode_value` output back into the original value."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [decode_value(v) for v in obj]
    if isinstance(obj, dict):
        if "__tuple__" in obj:
            return tuple(decode_value(v) for v in obj["__tuple__"])
        if "__enum__" in obj:
            cls = _resolve_type(obj["__enum__"])
            if not issubclass(cls, enum.Enum):
                raise CodecError(f"{cls.__qualname__} is not an enum")
            return cls(decode_value(obj.get("value")))
        if "__dc__" in obj:
            cls = _resolve_type(obj["__dc__"])
            if not dataclasses.is_dataclass(cls):
                raise CodecError(f"{cls.__qualname__} is not a dataclass")
            fields = obj.get("fields")
            if not isinstance(fields, dict):
                raise CodecError("dataclass record has no field map")
            known = {f.name for f in dataclasses.fields(cls)}
            if set(fields) - known:
                raise CodecError(
                    f"unknown fields for {cls.__qualname__}: "
                    f"{sorted(set(fields) - known)}"
                )
            try:
                return cls(**{k: decode_value(v) for k, v in fields.items()})
            except TypeError as err:
                raise CodecError(
                    f"cannot rebuild {cls.__qualname__}: {err}"
                ) from None
        raise CodecError(f"unrecognised structure keys {sorted(obj)!r}")
    raise CodecError(f"cannot decode value of type {type(obj).__name__}")
