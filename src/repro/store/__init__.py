"""Persistent, sharded, content-addressed result store (DESIGN.md §4i).

The in-process memo cache (:mod:`repro.perf.cache`) dies with the process;
this package gives it a cross-process warm-start tier.  Attach a
:class:`ResultStore` with :func:`attach` (or :func:`attach_from_env`, which
honours :data:`ENV_VAR` so ``--store DIR`` reaches pool workers) and every
simulation memo miss falls through to disk — exact digest, then canonical
symmetry-folded digest — with computed values written through atomically.

Nothing here is imported by the hot path unless a store is attached:
``perf/cache.py`` only holds an optional ``backing`` reference, so flagless
runs are byte-identical with or without this package on disk.
"""

from __future__ import annotations

import os
import pathlib
from typing import Optional, Union

from .codec import ALLOWED_MODULES, CodecError, decode_value, encode_value
from .store import (
    STORE_SCHEMA,
    CompactReport,
    RecordProblem,
    ResultStore,
    StoreStats,
    VerifyReport,
    key_digest,
)

__all__ = [
    "ENV_VAR",
    "STORE_SCHEMA",
    "ALLOWED_MODULES",
    "CodecError",
    "encode_value",
    "decode_value",
    "ResultStore",
    "StoreStats",
    "RecordProblem",
    "VerifyReport",
    "CompactReport",
    "key_digest",
    "attach",
    "attach_from_env",
    "attached",
    "detach",
    "resolve_store_dir",
]

#: Environment variable naming the store directory.  Set by ``repro run
#: --store DIR`` before workers fork, so every pool process attaches the
#: same store.
ENV_VAR = "REPRO_STORE_DIR"


def attached() -> Optional[ResultStore]:
    """The store currently backing the global simulation cache, if any."""
    from ..perf.cache import SIM_CACHE

    return SIM_CACHE.backing


def attach(store_or_dir: Union[ResultStore, str, os.PathLike]) -> ResultStore:
    """Back the global simulation cache with a persistent store.

    Accepts an existing :class:`ResultStore` or a directory path (created
    if missing).  Returns the attached store.
    """
    from ..perf.cache import SIM_CACHE

    if isinstance(store_or_dir, ResultStore):
        store = store_or_dir
    else:
        store = ResultStore(store_or_dir)
    SIM_CACHE.backing = store
    return store


def detach() -> Optional[ResultStore]:
    """Detach the persistent tier (returns it so callers can read stats)."""
    from ..perf.cache import SIM_CACHE

    store = SIM_CACHE.backing
    SIM_CACHE.backing = None
    return store


def resolve_store_dir(flag_value: Optional[str]) -> Optional[str]:
    """Resolve a ``--store`` flag against :data:`ENV_VAR`, strictly.

    Precedence: when only one of the two is set, it wins; when **both**
    are set they must name the same directory (compared as absolute
    paths) — conflicting values raise
    :class:`~repro.errors.ConfigError` instead of silently preferring one
    tier, because the loser would be a store that quietly never receives
    (or serves) results.  Returns the absolute directory, or None when
    neither source names one.
    """
    env_value = os.environ.get(ENV_VAR, "").strip()
    if flag_value:
        flag_abs = os.path.abspath(flag_value)
        if env_value and os.path.abspath(env_value) != flag_abs:
            from ..errors import ConfigError

            raise ConfigError(
                f"--store {flag_value!r} conflicts with {ENV_VAR}="
                f"{env_value!r}; they must name the same directory "
                "(unset one, or make them agree)",
                field="store",
                value=flag_value,
            )
        return flag_abs
    if env_value:
        return os.path.abspath(env_value)
    return None


def attach_from_env() -> Optional[ResultStore]:
    """Attach the store named by :data:`ENV_VAR`, if set.

    Idempotent: re-attaching the same directory keeps the existing handle
    (and its stats); a different directory replaces it.  Returns the active
    store, or None when the variable is unset/empty.
    """
    directory = os.environ.get(ENV_VAR, "").strip()
    if not directory:
        return attached()
    current = attached()
    if current is not None and current.root == pathlib.Path(directory):
        return current
    return attach(directory)
