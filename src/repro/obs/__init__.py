"""Run-level observability: logging, manifests, profiling, metrics, sentinel.

Where :mod:`repro.trace` makes the *simulators* observable (cycle spans,
golden snapshots), this package makes the *harness* observable — the layer
above, answering "what ran, on what code, at what cost, and is it getting
slower?".  Five pieces:

- :mod:`repro.obs.log` — structured JSONL event logging plus the console
  channel that replaced the harness's bare prints (``--log-level``,
  ``--log-file``, ``--quiet``);
- :mod:`repro.obs.manifest` — ``results/<run_id>/manifest.json`` provenance
  records (git SHA, config fingerprints, versions, argv, wall/CPU/RSS);
- :mod:`repro.obs.profiler` — the ``--profile`` phase profiler (wall, CPU,
  tracemalloc peak per experiment) and its hotspot table;
- :mod:`repro.obs.prom` — Prometheus text exposition of the
  :class:`repro.trace.MetricsRegistry`'s counters/gauges/histograms to
  ``results/<run_id>/metrics.prom``;
- :mod:`repro.obs.sentinel` — the perf-regression gate over
  ``BENCH_history.jsonl`` and the trace goldens
  (``tools/check_regression.py`` / ``repro sentinel``).

Everything follows the trace layer's contract: **off by default, zero
footprint when off** — a default run's stdout and ``results/`` artifacts
are byte-identical to a build without this package.
"""

from . import log
from .manifest import (
    RunContext,
    RunManifest,
    collect_provenance,
    config_fingerprints,
    git_revision,
    new_run_id,
    peak_rss_kb,
    write_manifest,
)
from .profiler import PhaseProfiler, PhaseSample, render_hotspots
from .prom import render_prometheus, write_prometheus
from .sentinel import (
    append_history,
    check_goldens,
    check_perf,
    flatten_metrics,
    history_entry,
    load_history,
    metric_direction,
    rolling_baseline,
    run_sentinel,
)

__all__ = [
    "log",
    "RunContext",
    "RunManifest",
    "collect_provenance",
    "config_fingerprints",
    "git_revision",
    "new_run_id",
    "peak_rss_kb",
    "write_manifest",
    "PhaseProfiler",
    "PhaseSample",
    "render_hotspots",
    "render_prometheus",
    "write_prometheus",
    "append_history",
    "check_goldens",
    "check_perf",
    "flatten_metrics",
    "history_entry",
    "load_history",
    "metric_direction",
    "rolling_baseline",
    "run_sentinel",
]
