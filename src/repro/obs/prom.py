"""Prometheus text-format exposition of harness metrics.

Renders a :class:`repro.trace.MetricsRegistry` — its scalar counters,
gauges and histograms plus aggregates derived from the per-layer cycle
ledger — in the Prometheus `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_, the
lingua franca of fleet monitoring.  An observability-enabled run writes
the snapshot to ``results/<run_id>/metrics.prom``; a scrape sidecar (or a
human with ``grep``) reads it without knowing anything about this repo.

Naming follows Prometheus conventions: ``repro_`` prefix, ``_total``
suffix on counters, base units in the name (``_seconds``, ``_cycles``).
Output is deterministically ordered (sorted by metric name, then label)
so two runs over the same work diff cleanly.
"""

from __future__ import annotations

import math
import pathlib
from typing import Dict, List, Optional, Tuple

from ..trace.metrics import Histogram, MetricsRegistry

__all__ = ["HELP_TEXT", "render_prometheus", "write_prometheus"]

#: ``# HELP`` strings for the well-known harness metrics (unknown names
#: still render, just without a HELP line).
HELP_TEXT: Dict[str, str] = {
    "repro_experiments_total": "Experiments executed in this run.",
    "repro_experiment_failures_total": "Experiments that raised in this run.",
    "repro_layers_simulated_total": "Simulation-cache lookups (hits + misses) in this run.",
    "repro_sim_cache_hits_total": "Simulation-cache hits in this run.",
    "repro_sim_cache_misses_total": "Simulation-cache misses in this run.",
    "repro_sim_cache_entries": "Entries resident in the simulation cache (summed across workers).",
    "repro_sim_cache_hit_rate": "Simulation-cache hit rate over this run.",
    "repro_layers_per_second": "Simulated layers (cache lookups) per wall-clock second.",
    "repro_run_wall_seconds": "Wall-clock duration of the whole run.",
    "repro_experiment_seconds": "Per-experiment wall-clock latency distribution.",
    "repro_simulate_layer_seconds": "Per-layer simulate_conv wall latency distribution.",
    "repro_layer_cycles_total": "Simulated cycles recorded, by instrumentation source.",
    "repro_layer_exposed_dma_cycles_total": "Exposed (non-overlapped) DMA cycles, by source.",
    "repro_layer_records_total": "Per-layer cycle records captured, by source.",
    "repro_sim_cache_persistent_hits_total": "Cache lookups served by the persistent result store in this run.",
    "repro_store_hit_rate": "Persistent result-store hit rate (hits / lookups).",
    "repro_store_corrupt_skipped": "Corrupt store records skipped (recomputed) so far.",
    "repro_serve_requests_total": "Timing queries admitted by the serve daemon.",
    "repro_serve_deduped_total": "Queries answered by an identical in-flight query's future.",
    "repro_serve_shed_total": "Queries refused with 429 because the pending budget was exhausted.",
    "repro_serve_batches_total": "simulate_conv_batch calls issued by the serve batcher.",
    "repro_serve_simulations_total": "Fresh simulations performed by the serve batcher (memo/store hits excluded).",
    "repro_serve_request_seconds": "End-to-end serve request latency distribution (per route when labeled).",
    "repro_serve_batch_seconds": "Engine wall time per served batch.",
    "repro_serve_pending": "Queries currently in flight in the serve daemon.",
    "repro_serve_draining": "1 while the serve daemon is draining for shutdown.",
    "repro_serve_degraded": "Current degradation-ladder rung (0=full 1=serial 2=store-only 3=drain).",
    "repro_serve_rung_changes_total": "Degradation-ladder rung changes (escalations and recoveries).",
    "repro_serve_breaker_trips_total": "Circuit-breaker trips (a spec fingerprint went open).",
    "repro_serve_breaker_fastfail_total": "Queries fast-failed with 422 by an open circuit breaker.",
    "repro_serve_breaker_open": "Spec-fingerprint circuit breakers currently open or half-open.",
    "repro_serve_deadline_timeouts_total": "Requests that blew their deadline (504) and abandoned their queries.",
    "repro_serve_store_only_miss_total": "Queries refused 503 at the store-only rung because the spec was cold.",
    "repro_dse_tasks_total": "Design-space sweep tasks enqueued (point x workload).",
    "repro_dse_results_total": "Design-space sweep tasks with a journaled result.",
    "repro_dse_failures_total": "Failed sweep task attempts journaled (pre-quarantine).",
    "repro_dse_quarantined_total": "Sweep tasks parked as poison in quarantine.jsonl.",
    "repro_dse_points_seen": "Design points planned across all refinement rounds.",
    "repro_dse_frontier_size": "Points on the final Pareto frontier.",
    "repro_dse_rounds": "Refinement rounds the sweep was configured for.",
}


def _fmt_value(value: float) -> str:
    """Prometheus sample value: integers without the trailing ``.0``."""
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _fmt_labels(labels: Optional[Dict[str, str]]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return "{" + body + "}"


def _sample(
    name: str, value: float, labels: Optional[Dict[str, str]] = None
) -> str:
    return f"{name}{_fmt_labels(labels)} {_fmt_value(value)}"


def _header(lines: List[str], name: str, kind: str) -> None:
    help_text = HELP_TEXT.get(name)
    if help_text:
        lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")


def _split_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a registry key like ``name{route="/v1/conv"}`` into (name, labels).

    The registry stores labeled series under one flat string key (its dicts
    are keyed by name only); the exposition layer is where the labels must
    come apart again so bucket/sum/count suffixes attach to the *name*.
    Keys without a ``{...}`` suffix return ``(key, {})``.
    """
    brace = key.find("{")
    if brace < 0 or not key.endswith("}"):
        return key, {}
    name, body = key[:brace], key[brace + 1 : -1]
    labels: Dict[str, str] = {}
    for part in body.split(","):
        label, sep, value = part.partition("=")
        if not sep:
            return key, {}  # not label syntax after all; treat as a plain name
        labels[label.strip()] = value.strip().strip('"')
    return name, labels


def _render_histogram(
    lines: List[str],
    name: str,
    histogram: Histogram,
    labels: Optional[Dict[str, str]] = None,
    header: bool = True,
) -> None:
    if header:
        _header(lines, name, "histogram")
    for bound, cumulative in histogram.cumulative():
        sample_labels = dict(labels or {})
        sample_labels["le"] = _fmt_value(bound)
        lines.append(_sample(f"{name}_bucket", float(cumulative), sample_labels))
    lines.append(_sample(f"{name}_sum", histogram.sum, labels))
    lines.append(_sample(f"{name}_count", float(histogram.count), labels))


def render_prometheus(
    registry: MetricsRegistry, labels: Optional[Dict[str, str]] = None
) -> str:
    """The full exposition document for one registry snapshot.

    ``labels`` (e.g. ``{"run_id": ...}``) are attached to every scalar
    sample so multiple runs' files can be concatenated into one corpus.
    """
    lines: List[str] = []
    for name in sorted(registry.counters):
        _header(lines, name, "counter")
        lines.append(_sample(name, registry.counters[name], labels))
    for name in sorted(registry.gauges):
        _header(lines, name, "gauge")
        lines.append(_sample(name, registry.gauges[name], labels))
    # Histogram keys may carry inline labels (``name{route="..."}``); group
    # labeled variants under one HELP/TYPE header per base name.
    seen_bases: set = set()
    for key in sorted(registry.histograms, key=lambda k: (_split_key(k)[0], k)):
        base, key_labels = _split_key(key)
        _render_histogram(
            lines,
            base,
            registry.histograms[key],
            labels=key_labels or None,
            header=base not in seen_bases,
        )
        seen_bases.add(base)
    # Derived series from the per-layer cycle ledger (populated under --trace).
    by_source = registry.by_source()
    if by_source:
        derived: List[Tuple[str, str]] = [
            ("repro_layer_records_total", "layers"),
            ("repro_layer_cycles_total", "cycles"),
            ("repro_layer_exposed_dma_cycles_total", "exposed_dma_cycles"),
        ]
        for metric, field in derived:
            _header(lines, metric, "counter")
            for source in sorted(by_source):
                label = dict(labels or {})
                label["source"] = source
                lines.append(_sample(metric, float(by_source[source][field]), label))
    return "\n".join(lines) + "\n"


def write_prometheus(
    path, registry: MetricsRegistry, labels: Optional[Dict[str, str]] = None
) -> pathlib.Path:
    """Write the exposition document atomically; returns the path written."""
    from ..resilience.atomic import atomic_write_text

    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(path, render_prometheus(registry, labels))
    return path
