"""Phase profiler: wall / CPU / allocation hotspots per harness phase.

``--profile`` wraps each experiment (and any finer phase an experiment
opts into) in a :class:`PhaseProfiler` window that samples three costs:

- **wall seconds** (``time.perf_counter``) — what the operator waits for;
- **CPU seconds** (``time.process_time``) — how much of that wait was
  compute vs. blocking (a large gap under ``--jobs`` means the parent sat
  idle while workers did the pricing, which is the *goal*);
- **peak traced allocation** (``tracemalloc``) — the high-water mark of
  Python heap allocations inside the phase, the quantity that actually
  predicts whether a sweep fits in a worker's memory budget.

``tracemalloc`` is only armed while a profiler window is open, so the
``--profile``-off path costs nothing; samples are plain frozen dataclasses
and pickle across the ``--jobs`` pool like every other telemetry record.
"""

from __future__ import annotations

import dataclasses
import time
import tracemalloc
from typing import Iterable, List, Optional

__all__ = ["PhaseSample", "PhaseProfiler", "render_hotspots"]


@dataclasses.dataclass(frozen=True)
class PhaseSample:
    """One profiled phase's cost triple."""

    name: str
    wall_s: float
    cpu_s: float
    alloc_peak_kb: float

    @property
    def cpu_fraction(self) -> float:
        """CPU seconds per wall second (can exceed 1 with busy C extensions)."""
        return self.cpu_s / self.wall_s if self.wall_s > 0 else 0.0


class _PhaseWindow:
    """Context manager recording one sample into its owning profiler."""

    __slots__ = ("_profiler", "_name", "_wall0", "_cpu0", "_started_tracing")

    def __init__(self, profiler: "PhaseProfiler", name: str):
        self._profiler = profiler
        self._name = name
        self._wall0 = 0.0
        self._cpu0 = 0.0
        self._started_tracing = False

    def __enter__(self) -> "_PhaseWindow":
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True
        else:
            tracemalloc.reset_peak()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        _, peak = tracemalloc.get_traced_memory()
        if self._started_tracing:
            tracemalloc.stop()
        else:
            tracemalloc.reset_peak()
        self._profiler.samples.append(
            PhaseSample(
                name=self._name,
                wall_s=wall,
                cpu_s=cpu,
                alloc_peak_kb=peak / 1024.0,
            )
        )
        return False


class PhaseProfiler:
    """Collects :class:`PhaseSample` records; render with :func:`render_hotspots`."""

    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples: List[PhaseSample] = []

    def phase(self, name: str) -> _PhaseWindow:
        """``with profiler.phase("fig15"):`` — time one named region."""
        return _PhaseWindow(self, name)

    def merge(self, samples: Iterable[PhaseSample]) -> None:
        """Fold samples shipped home from a worker process."""
        self.samples.extend(samples)

    def total_wall_s(self) -> float:
        return sum(sample.wall_s for sample in self.samples)


def render_hotspots(
    samples: Iterable[PhaseSample], top: Optional[int] = None
) -> str:
    """The ``--profile`` hotspot table, widest wall-time phases first."""
    ordered = sorted(samples, key=lambda s: -s.wall_s)
    if top is not None:
        ordered = ordered[:top]
    lines = ["== phase profile =="]
    if not ordered:
        lines.append("(no phases recorded)")
        return "\n".join(lines)
    total_wall = sum(sample.wall_s for sample in ordered) or 1.0
    lines.append(
        f"{'phase':<28} {'wall s':>9} {'wall %':>7} {'cpu s':>9} "
        f"{'cpu/wall':>9} {'alloc KiB':>11}"
    )
    for sample in ordered:
        lines.append(
            f"{sample.name:<28} {sample.wall_s:>9.3f} "
            f"{100 * sample.wall_s / total_wall:>6.1f}% {sample.cpu_s:>9.3f} "
            f"{sample.cpu_fraction:>9.2f} {sample.alloc_peak_kb:>11,.0f}"
        )
    lines.append(
        f"{'total':<28} {sum(s.wall_s for s in ordered):>9.3f} "
        f"{100.0:>6.1f}% {sum(s.cpu_s for s in ordered):>9.3f}"
    )
    return "\n".join(lines)
