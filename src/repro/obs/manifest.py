"""Run manifests: who/what/where provenance for every observed run.

A ``results/`` artifact is only as trustworthy as the record of what
produced it.  The paper's methodology (simulator-vs-oracle error tracked
across dozens of workload sweeps) collapses if two sweeps silently ran
different code or configs — so every observability-enabled invocation of
the runner, CLI or benchmark writes ``results/<run_id>/manifest.json``
capturing:

- the **code**: git SHA (+ dirty flag), Python and numpy versions, platform;
- the **problem**: CLI argv, experiment ids, quick/jobs flags, RNG seed,
  structural fingerprints of the accelerator configs (the same
  :func:`repro.perf.cache.fingerprint` the memo keys use, hashed — two runs
  with equal fingerprints priced identical machines);
- the **cost**: wall seconds, CPU seconds, and peak RSS of the run.

:class:`RunContext` is the one-stop wrapper: it stamps a run id, measures
the run, and writes the manifest on exit.  Manifest writing is *opt-in by
flags* (``--log-file``/``--profile``/``--manifest``) so a default run
keeps its zero-footprint, byte-identical behaviour.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import platform
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "MANIFEST_SCHEMA",
    "RunManifest",
    "RunContext",
    "new_run_id",
    "git_revision",
    "config_fingerprints",
    "collect_provenance",
    "peak_rss_kb",
    "write_manifest",
]

MANIFEST_SCHEMA = 1


def new_run_id(prefix: str = "run") -> str:
    """A sortable, collision-resistant run id: ``<prefix>-<utc stamp>-<pid>``."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{prefix}-{stamp}-{os.getpid()}"


def git_revision(cwd: Optional[str] = None) -> Dict[str, Any]:
    """The current git SHA and dirty flag; degrades gracefully outside a repo."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return {"sha": "unknown", "dirty": None}
    if not sha:
        return {"sha": "unknown", "dirty": None}
    return {"sha": sha, "dirty": bool(status)}


def config_fingerprints() -> Dict[str, str]:
    """Short stable hashes of the default accelerator configs.

    Built from the same structural fingerprint the simulation memo keys
    use, so any config field change — nested sub-configs included — shows
    up here exactly when it would invalidate cached timings.
    """
    from ..gpu.config import V100
    from ..perf.cache import fingerprint
    from ..systolic.config import TPU_V2

    def digest(value: Any) -> str:
        return hashlib.sha256(repr(fingerprint(value)).encode()).hexdigest()[:16]

    return {"tpu_v2": digest(TPU_V2), "v100": digest(V100)}


def collect_provenance(cwd: Optional[str] = None) -> Dict[str, Any]:
    """Everything about the *environment* a manifest records."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unavailable"
    return {
        "git": git_revision(cwd),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "argv": list(sys.argv),
        "config_fingerprints": config_fingerprints(),
    }


def peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in KiB (None if unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover
        rss //= 1024
    return int(rss)


@dataclasses.dataclass
class RunManifest:
    """The JSON-serialisable record of one observed run."""

    run_id: str
    tool: str
    started_at: float
    provenance: Dict[str, Any] = dataclasses.field(default_factory=dict)
    args: Dict[str, Any] = dataclasses.field(default_factory=dict)
    seed: Optional[int] = None
    wall_seconds: Optional[float] = None
    cpu_seconds: Optional[float] = None
    max_rss_kb: Optional[int] = None
    exit_code: Optional[int] = None
    outputs: List[str] = dataclasses.field(default_factory=list)
    extra: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["schema"] = MANIFEST_SCHEMA
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunManifest":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})


def write_manifest(manifest: RunManifest, directory) -> pathlib.Path:
    """Write ``<directory>/manifest.json`` atomically; returns the path."""
    from ..resilience.atomic import atomic_write_text

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "manifest.json"
    atomic_write_text(
        path, json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    return path


class RunContext:
    """Measure a run and (optionally) write its manifest on exit.

    Usage::

        with RunContext(tool="runner", results_dir="results") as run:
            ...
            run.add_output(path)
        # -> results/<run.run_id>/manifest.json

    Pass ``results_dir=None`` to measure without writing (the manifest is
    still available as ``run.manifest`` for embedding elsewhere, e.g. the
    benchmark report's provenance block).
    """

    def __init__(
        self,
        tool: str,
        results_dir: Optional[str] = "results",
        run_id: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.run_id = run_id or new_run_id()
        self.results_dir = results_dir
        self.manifest = RunManifest(
            run_id=self.run_id,
            tool=tool,
            started_at=time.time(),
            provenance=collect_provenance(),
            args=dict(args or {}),
            seed=seed,
        )
        self.manifest_path: Optional[pathlib.Path] = None
        self._wall0 = 0.0
        self._cpu0 = 0.0

    @property
    def run_dir(self) -> Optional[pathlib.Path]:
        if self.results_dir is None:
            return None
        return pathlib.Path(self.results_dir) / self.run_id

    def add_output(self, path) -> None:
        self.manifest.outputs.append(str(path))

    def __enter__(self) -> "RunContext":
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def finish(self, exit_code: Optional[int] = None) -> RunManifest:
        """Stamp the cost fields (idempotent; called by ``__exit__``)."""
        self.manifest.wall_seconds = round(time.perf_counter() - self._wall0, 6)
        self.manifest.cpu_seconds = round(time.process_time() - self._cpu0, 6)
        self.manifest.max_rss_kb = peak_rss_kb()
        if exit_code is not None:
            self.manifest.exit_code = exit_code
        return self.manifest

    def __exit__(self, exc_type, exc, tb) -> bool:
        # A caller-recorded exit code (e.g. the CLI's) wins over the default.
        default = 0 if exc_type is None else 1
        self.finish(
            exit_code=default if self.manifest.exit_code is None else None
        )
        if self.run_dir is not None:
            self.manifest_path = write_manifest(self.manifest, self.run_dir)
        return False
