"""Perf-regression sentinel: rolling benchmark history + drift gates.

``BENCH_perf.json`` used to be a single overwritten data point — a perf
regression only showed up if someone happened to diff it.  The sentinel
turns it into a guarded time series:

- :func:`history_entry` / :func:`append_history` — each benchmark run
  appends one JSONL record (metrics + provenance) to ``BENCH_history.jsonl``;
- :func:`rolling_baseline` — the per-metric **median** over the last *N*
  history entries, which shrugs off a single noisy run the way best-of-3
  timing does;
- :func:`check_perf` — compares a fresh report against the baseline and
  returns violations for any metric that moved beyond the threshold in
  its *bad* direction (wall seconds up, layers/sec down, hit rate down);
- :func:`check_goldens` — re-derives every golden cycle snapshot and
  compares bit-exactly against the committed files, so a *result* change
  can never hide behind a perf run;
- :func:`run_sentinel` — the CLI entry shared by ``repro sentinel`` and
  ``tools/check_regression.py``: exits nonzero on perf drift, any
  bit-exactness break, or (when the report carries an ``audit`` block from
  ``--audit-overhead``) a nonzero invariant-violation count.

Directions are explicit, not guessed: a metric the table below does not
classify is recorded in history but never gated on (histogram buckets,
entry counts and other shape-dependent fields ride along freely).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from typing import Dict, List, Optional

__all__ = [
    "HISTORY_SCHEMA",
    "DEFAULT_THRESHOLD",
    "DEFAULT_WINDOW",
    "flatten_metrics",
    "metric_direction",
    "history_entry",
    "load_history",
    "append_history",
    "rolling_baseline",
    "check_perf",
    "check_goldens",
    "run_sentinel",
    "add_sentinel_args",
    "build_parser",
]

HISTORY_SCHEMA = 1
DEFAULT_THRESHOLD = 0.25
DEFAULT_WINDOW = 5

#: Gated metrics: dotted-name prefix -> which way is *worse*.
_DIRECTIONS = (
    ("harness_wall_seconds", "up"),
    ("experiment_wall_seconds.", "up"),
    ("simulate_conv_layers_per_second.", "down"),
    ("cache.hit_rate", "down"),
    ("cache.canonical_hit_rate", "down"),
    ("store.hit_rate", "down"),
    ("serve.p99_ms", "up"),
    ("serve.breaker_false_trips", "up"),
)


def metric_direction(name: str) -> Optional[str]:
    """``"up"``/``"down"`` = which movement is a regression; None = ungated."""
    for prefix, worse in _DIRECTIONS:
        if name == prefix or (prefix.endswith(".") and name.startswith(prefix)):
            return worse
    return None


def flatten_metrics(report: dict, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a (possibly nested) benchmark report, dotted keys."""
    flat: Dict[str, float] = {}
    for key, value in report.items():
        name = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            flat[name] = float(value)
        elif isinstance(value, dict):
            flat.update(flatten_metrics(value, prefix=f"{name}."))
    return flat


def history_entry(
    report: dict,
    provenance: Optional[dict] = None,
    run_id: Optional[str] = None,
    ts: Optional[float] = None,
) -> dict:
    """One JSONL record for ``BENCH_history.jsonl``."""
    entry = {
        "schema": HISTORY_SCHEMA,
        "ts": round(time.time() if ts is None else ts, 3),
        "run_id": run_id,
        "metrics": flatten_metrics(report),
    }
    if provenance is not None:
        entry["provenance"] = provenance
    return entry


def load_history(path) -> List[dict]:
    """Parse the JSONL history; malformed lines fail loudly (they are data)."""
    path = pathlib.Path(path)
    if not path.exists():
        return []
    entries = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError as err:
            raise ValueError(f"{path}:{lineno}: corrupt history line: {err}") from None
    return entries


def append_history(path, entry: dict) -> pathlib.Path:
    """Append one record crash-safely (single write + fsync, no torn tail)."""
    from ..resilience.atomic import crash_safe_append

    path = pathlib.Path(path)
    crash_safe_append(path, json.dumps(entry, sort_keys=True))
    return path


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def rolling_baseline(history: List[dict], window: int = DEFAULT_WINDOW) -> Dict[str, float]:
    """Per-metric median over the last ``window`` entries."""
    recent = history[-window:] if window > 0 else history
    series: Dict[str, List[float]] = {}
    for entry in recent:
        for name, value in entry.get("metrics", {}).items():
            series.setdefault(name, []).append(float(value))
    return {name: _median(values) for name, values in series.items()}


def check_perf(
    current: Dict[str, float],
    baseline: Dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[str]:
    """Violations for every gated metric that drifted the wrong way."""
    violations: List[str] = []
    for name in sorted(set(current) & set(baseline)):
        worse = metric_direction(name)
        if worse is None or baseline[name] == 0:
            continue
        change = (current[name] - baseline[name]) / abs(baseline[name])
        drifted = change > threshold if worse == "up" else change < -threshold
        if drifted:
            violations.append(
                f"{name}: {current[name]:.4g} vs baseline {baseline[name]:.4g} "
                f"({change:+.1%}, threshold ±{threshold:.0%}, "
                f"{'higher' if worse == 'up' else 'lower'} is worse)"
            )
    return violations


def check_goldens(golden_dir=None, experiments=None) -> List[str]:
    """Bit-exactness gate: recompute golden snapshots vs. the committed files."""
    from ..trace.goldens import GOLDEN_EXPERIMENTS, compute_golden, golden_filename

    if golden_dir is None:
        golden_dir = (
            pathlib.Path(__file__).resolve().parents[3] / "tests" / "trace" / "goldens"
        )
    golden_dir = pathlib.Path(golden_dir)
    violations: List[str] = []
    for eid in experiments or GOLDEN_EXPERIMENTS:
        path = golden_dir / golden_filename(eid)
        fresh = json.dumps(compute_golden(eid), indent=1, sort_keys=True) + "\n"
        if not path.exists():
            violations.append(f"goldens:{eid}: missing snapshot {path}")
        elif path.read_text() != fresh:
            violations.append(f"goldens:{eid}: bit-exactness break vs {path}")
    return violations


def add_sentinel_args(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Install the sentinel's options on ``parser`` (shared with ``repro sentinel``)."""
    parser.add_argument(
        "--current", default="BENCH_perf.json",
        help="fresh benchmark report to check (default: BENCH_perf.json)",
    )
    parser.add_argument(
        "--history", default="BENCH_history.jsonl",
        help="rolling history JSONL (default: BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help=f"relative drift tolerance (default: {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--window", type=int, default=DEFAULT_WINDOW,
        help=f"history entries in the rolling baseline (default: {DEFAULT_WINDOW})",
    )
    parser.add_argument(
        "--append", action="store_true",
        help="append the current report to the history after checking",
    )
    parser.add_argument(
        "--skip-goldens", action="store_true",
        help="skip the golden bit-exactness sweep (perf gate only)",
    )
    parser.add_argument(
        "--skip-perf", action="store_true",
        help="skip the perf gate (goldens only)",
    )
    return parser


def build_parser() -> argparse.ArgumentParser:
    return add_sentinel_args(
        argparse.ArgumentParser(
            prog="check_regression",
            description="Gate perf drift and golden bit-exactness for one bench run.",
        )
    )


def run_sentinel(argv=None, args: Optional[argparse.Namespace] = None) -> int:
    from . import log

    if args is None:
        args = build_parser().parse_args(argv)
    violations: List[str] = []
    if not args.skip_perf:
        current_path = pathlib.Path(args.current)
        if not current_path.exists():
            print(f"sentinel: current report {current_path} not found")
            return 2
        report = json.loads(current_path.read_text())
        if "audit" in report:
            # Reports produced under --audit-overhead carry the invariant
            # audit's verdict; any violation is a model bug, not perf drift.
            audit_violations = int(report["audit"].get("violations", 0))
            if audit_violations:
                violations.append(
                    f"audit: {audit_violations} invariant violation(s) in the "
                    "benchmarked run (see the report's 'audit' block)"
                )
            print(f"sentinel: audit gate: {audit_violations} violation(s)")
        current = flatten_metrics(report)
        history = load_history(args.history)
        if history:
            baseline = rolling_baseline(history, window=args.window)
            perf_violations = check_perf(current, baseline, threshold=args.threshold)
            violations.extend(perf_violations)
            print(
                f"sentinel: perf gate over {min(len(history), args.window)} "
                f"history entr{'y' if min(len(history), args.window) == 1 else 'ies'}: "
                f"{len(perf_violations)} violation(s)"
            )
        else:
            print(f"sentinel: no history at {args.history}; perf gate skipped")
        if args.append:
            entry = history_entry(report, provenance=report.get("provenance"))
            append_history(args.history, entry)
            print(f"sentinel: appended run to {args.history}")
    if not args.skip_goldens:
        golden_violations = check_goldens()
        violations.extend(golden_violations)
        print(f"sentinel: goldens gate: {len(golden_violations)} break(s)")
    for violation in violations:
        log.error("sentinel.violation", detail=violation)
        print(f"REGRESSION: {violation}")
    if violations:
        print(f"sentinel: FAIL ({len(violations)} violation(s))")
        return 1
    print("sentinel: OK")
    return 0
